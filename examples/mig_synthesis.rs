//! From boolean equation to DRAM commands (§4.2's synthesis pipeline):
//! build the masked forward-shift circuit as a Majority-Inverter Graph,
//! optimise it, lower it to Ambit AAP/AP commands, and execute those
//! commands bit-accurately on a simulated subarray.
//!
//! ```text
//! cargo run --example mig_synthesis
//! ```

use count2multiply::cim::ambit::MicroOp;
use count2multiply::cim::Row;
use count2multiply::mig::counting;
use count2multiply::mig::lower::{Lowerer, PinMap};
use count2multiply::mig::rewrite::optimize_size;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

fn main() {
    // 1. The §4.2 bit-update equation b' = (b ∧ !m) ∨ (s ∧ m) as a MIG.
    let circuit = counting::forward_shift();
    println!(
        "forward shift: {} majority nodes, depth {}",
        circuit.size(),
        circuit.depth()
    );

    // 2. Algebraic optimisation (Ω axioms) — preserves the function.
    let opt = optimize_size(&circuit.mig, &circuit.outputs);
    println!(
        "after MIG optimisation: {} nodes",
        opt.mig.node_count(&opt.outputs)
    );

    // 3. Schedule onto Ambit's B-group rows: inputs in D-group rows
    //    0..3, scratch from row 4.
    let pins = PinMap::dense(3, 4);
    let lowered = Lowerer::new(&opt.mig, &pins).lower(&opt.outputs);
    println!(
        "lowered to {} macro commands ({} scratch rows peak):",
        lowered.command_count(),
        lowered.peak_scratch_rows
    );
    for (i, op) in lowered.program.ops().iter().enumerate() {
        match op {
            MicroOp::Aap(src, dst) => println!("  {i:2}: AAP {src:?} -> {dst:?}"),
            MicroOp::Ap(addr) => println!("  {i:2}: AP  {addr:?} (TRA)"),
        }
    }

    // 4. Execute on a simulated subarray and cross-check every column
    //    against direct evaluation of the graph.
    let mut rng = ChaCha12Rng::seed_from_u64(3);
    let width = 32;
    let pi_rows: Vec<Row> = (0..3)
        .map(|_| Row::from_bits((0..width).map(|_| rng.gen_bool(0.5))))
        .collect();
    let got = lowered.execute(&pins, &pi_rows);
    let expect = opt.mig.eval_rows(opt.outputs[0], &pi_rows);
    assert_eq!(got[0], expect);
    println!("\nexecuted on a {width}-column subarray: all columns match ✓");

    // 5. The gap to the paper's hand-tuned template: a whole n=5 unit
    //    increment costs 7n+7 = 42 commands in Fig. 6b's schedule.
    let unit = counting::unit_increment(5);
    let pins5 = PinMap::dense(6, 8);
    let generic = Lowerer::new(&unit.mig, &pins5).lower(&unit.outputs);
    println!(
        "unit increment (n=5): generic lowering {} cmds vs hand-tuned 42 \
         — the paper's template keeps operands resident in B-group rows",
        generic.command_count()
    );
}
