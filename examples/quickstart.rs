//! Quickstart: multiply an integer vector by a ternary matrix entirely
//! through simulated in-memory counting.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use count2multiply::arch::engine::{C2mEngine, EngineConfig};
use count2multiply::arch::kernels::{ternary_gemv, KernelConfig};
use count2multiply::arch::matrix::TernaryMatrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

fn main() {
    // 1. A ternary weight matrix Z [K x N] stored as +1/-1 mask planes.
    let mut rng = ChaCha12Rng::seed_from_u64(1);
    let k = 64;
    let n = 16;
    let z = TernaryMatrix::random(k, n, 0.7, &mut rng);

    // 2. An int8 input vector X.
    let x: Vec<i64> = (0..k).map(|_| rng.gen_range(-128i64..128)).collect();

    // 3. Bit-accurate in-memory execution: every mask row, every k-ary
    //    Johnson-counter increment is simulated.
    let cfg = KernelConfig::compact();
    let result = ternary_gemv(&cfg, &x, &z);

    // 4. Check against a plain host-side matmul.
    let reference = z.reference_gemv(&x);
    for (col, (got, want)) in result.y.iter().zip(&reference).enumerate() {
        assert_eq!(*got, i128::from(*want), "column {col}");
    }
    println!("y = x · Z  ->  {:?}", &result.y[..8.min(n)]);
    println!(
        "executed {} k-ary increment sequences = {} Ambit AAP/AP commands",
        result.stats.increments, result.stats.ambit_ops
    );

    // 5. Project the same kernel at LLaMA scale on the Table 2 module.
    let engine = C2mEngine::builder(EngineConfig::c2m(16)).build();
    let big_x: Vec<i64> = (0..8192).map(|_| rng.gen_range(-128i64..128)).collect();
    let report = engine.ternary_gemv(&big_x, 22016);
    println!(
        "LLaMA V0 (1x22016x8192) on C2M:16 -> {:.2} ms, {:.0} GOPS, {:.1} GOPS/W",
        report.elapsed_ms(),
        report.gops(),
        report.gops_per_watt()
    );

    // 6. Shard the same kernel over a 4-channel module: the engine
    //    splits K across channels, runs each channel's command stream
    //    concurrently, and pays the cross-channel partial-sum merge.
    let mut quad_cfg = EngineConfig::c2m(16);
    quad_cfg.dram.channels = 4;
    let quad = C2mEngine::builder(quad_cfg)
        .build()
        .ternary_gemv(&big_x, 22016);
    println!(
        "same kernel on 4 channels          -> {:.2} ms ({:.2}x, sublinear: merge rounds)",
        quad.elapsed_ms(),
        report.elapsed_ns / quad.elapsed_ns
    );
}
