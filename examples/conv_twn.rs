//! Ternary-weight convolution through in-memory counting (§5.2, Fig. 18's
//! LeNet/VGG workloads): a LeNet-style conv layer runs bit-accurately on
//! the simulated substrate via im2col, and the same layer is projected at
//! full LeNet/VGG scale on the Table 2 DRAM module.
//!
//! ```text
//! cargo run --example conv_twn
//! ```

use count2multiply::arch::kernels::KernelConfig;
use count2multiply::arch::matrix::TernaryMatrix;
use count2multiply::arch::nn::{conv2d_ternary, reference_conv2d, ConvShape, Image};
use count2multiply::workloads::twn;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

fn main() {
    let mut rng = ChaCha12Rng::seed_from_u64(7);

    // 1. A LeNet-conv1-like layer at test scale: 1 -> 6 channels, 5x5
    //    kernel, on a 12x12 synthetic "digit" with 4-bit pixels.
    let shape = ConvShape {
        in_channels: 1,
        out_channels: 6,
        kernel: 5,
        in_h: 12,
        in_w: 12,
        stride: 1,
        padding: 2,
    };
    let image: Image = vec![(0..shape.in_h)
        .map(|y| {
            (0..shape.in_w)
                .map(|x| {
                    // A bright diagonal stroke on a noisy background.
                    if (y as i64 - x as i64).abs() <= 1 {
                        12 + rng.gen_range(0i64..4)
                    } else {
                        rng.gen_range(0i64..3)
                    }
                })
                .collect()
        })
        .collect()];
    let weights = TernaryMatrix::random(shape.gemm_k(), shape.out_channels, 0.6, &mut rng);

    // 2. Run the convolution entirely through the counting path: im2col
    //    rows become broadcast inputs, ternary filters become ±masks.
    let cfg = KernelConfig::compact();
    let result = conv2d_ternary(&cfg, &image, &weights, &shape);
    assert_eq!(result.output, reference_conv2d(&image, &weights, &shape));

    println!(
        "conv {}x{}x{} * {} filters ({}x{}) -> {}x{}x{}",
        shape.in_channels,
        shape.in_h,
        shape.in_w,
        shape.out_channels,
        shape.kernel,
        shape.kernel,
        shape.out_channels,
        shape.out_h(),
        shape.out_w(),
    );
    println!(
        "bit-accurate: {} increments, {} Ambit commands ({} MACs)",
        result.stats.increments,
        result.stats.ambit_ops,
        shape.macs(),
    );

    // 3. Channel activation energy: sum of each output map (a cheap
    //    feature the DNA/GCN workloads use as filter scores).
    for (c, map) in result.output.iter().enumerate() {
        let sum: i128 = map.iter().flatten().sum();
        println!("  filter {c}: activation sum {sum}");
    }

    // 4. The real model zoo: the paper's Fig. 18 conv workloads as
    //    im2col GEMM shapes.
    println!("\nfull-scale conv layers (im2col GEMM M x K x N):");
    for (model, layers) in [
        ("LeNet", twn::lenet()),
        ("VGG-13", twn::vgg13()),
        ("VGG-16", twn::vgg16()),
    ] {
        let macs: u64 = layers
            .iter()
            .map(|l| {
                let g = l.gemm();
                (g.m * g.k * g.n) as u64
            })
            .sum();
        println!(
            "  {model}: {} conv layers, {:.2} GMAC/image",
            layers.len(),
            macs as f64 / 1e9
        );
    }
}
