//! GCN neighbourhood aggregation as sparse in-memory counting.
//!
//! Builds a synthetic power-law citation graph at PubMed-like sparsity
//! and aggregates integer node features (`Y = A · X`) through the
//! Count2Multiply kernel: adjacency bits are the (mostly zero, hence
//! mostly skipped) inputs, feature columns are the counters.
//!
//! ```text
//! cargo run --release --example gcn_aggregation
//! ```

use count2multiply::arch::kernels::{int_binary_gemv, KernelConfig};
use count2multiply::arch::matrix::BinaryMatrix;
use count2multiply::workloads::gcn::SyntheticGraph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

fn main() {
    let nodes = 300;
    let features = 24;
    let graph = SyntheticGraph::power_law(nodes, 1200, 7);
    println!(
        "graph: {} nodes, {} edges, {:.2}% adjacency sparsity",
        graph.nodes(),
        graph.edges(),
        graph.sparsity() * 100.0
    );

    // Integer node features.
    let mut rng = ChaCha12Rng::seed_from_u64(3);
    let x: Vec<Vec<i64>> = (0..nodes)
        .map(|_| (0..features).map(|_| rng.gen_range(0..16)).collect())
        .collect();

    // In-memory view: for node v, inputs are the adjacency row bits of v
    // (value 1 for each neighbour, 0 otherwise) and Z is the feature
    // matrix X as binary planes per feature bit; here we use the
    // integer-binary kernel per node with X^T as the mask matrix.
    // Z[k][f] = bit: does node k light feature column f? We instead
    // accumulate neighbour features by treating each neighbour's feature
    // vector as the masked addend: mask = features' columns, value = X.
    let reference = graph.aggregate(&x);

    // Execute node 0..4 through the CIM kernel: inputs = adjacency row
    // (0/1), masks = per-node "this node contributes" rows sliced by
    // feature plane. Equivalent formulation: y_v = sum_k A[v][k] * X[k],
    // i.e. an integer-binary GEMV per feature with Z = X bit-planes; for
    // the demo we run the direct integer-binary form with Z[k] = rows of
    // an indicator and values = feature entries.
    let cfg = KernelConfig::compact();
    let mut checked = 0;
    for (v, neigh) in graph.adj.iter().enumerate().take(5) {
        // Build the K x N problem for node v: K = neighbours, N = features.
        if neigh.is_empty() {
            continue;
        }
        // Inputs: one per (neighbour, feature) — use the feature value as
        // the input and an all-ones single-column mask per feature.
        // Simplest exact mapping: K = neighbours, Z[k][f] = 1 iff we add
        // X[k][f]... since values differ per feature, run per-feature.
        let mut y = vec![0i128; features];
        for f in 0..features {
            let vals: Vec<i64> = neigh.iter().map(|&u| x[u as usize][f]).collect();
            let z = BinaryMatrix::from_rows(&vec![vec![true]; vals.len()]);
            let r = int_binary_gemv(&cfg, &vals, &z);
            y[f] = r.y[0];
        }
        for f in 0..features {
            assert_eq!(y[f], i128::from(reference[v][f]), "node {v} feature {f}");
        }
        checked += 1;
        println!(
            "node {v}: aggregated {} neighbours -> {:?}…",
            neigh.len(),
            &y[..4]
        );
    }
    println!("verified {checked} nodes against the host reference");
}
