//! The §6 fault-tolerance scheme, end to end: XOR-embedding protection
//! of a masked AND on real rows, Table 1 analysis, and a protected
//! counter bank accumulating under heavy faults.
//!
//! ```text
//! cargo run --example fault_tolerant_counting
//! ```

use count2multiply::cim::{FaultModel, Row};
use count2multiply::ecc::protect::{EccProtection, ProtectionAnalysis, ProtectionKind};
use count2multiply::jc::bank::CounterBank;

fn main() {
    // --- 1. Protected masked AND (Fig. 13): IR1/IR2/FR with syndrome
    // checks against homomorphically-predicted SECDED words.
    let a = Row::from_bits((0..512).map(|i| i % 3 == 0));
    let m = Row::from_bits((0..512).map(|i| i % 2 == 0));
    let mut prot = EccProtection::new(2, FaultModel::new(1e-3, 1));
    let (result, stats) = prot.protected_and(&a, &m);
    println!(
        "protected AND over 512 columns: exact = {}, ops = {}, retries = {}",
        result == a.and(&m),
        stats.ops,
        stats.retries
    );

    // --- 2. Table 1 closed forms.
    println!("\nundetected-error rates (Table 1):");
    for fr_checks in [2u32, 4, 6] {
        let at = |p: f64| {
            ProtectionAnalysis {
                fault_rate: p,
                fr_checks,
            }
            .undetected_error_rate()
        };
        println!(
            "  {fr_checks} FR checks: 1e-1 -> {:.1e}, 1e-2 -> {:.1e}, 1e-4 -> {:.1e}",
            at(1e-1),
            at(1e-2),
            at(1e-4)
        );
    }

    // --- 3. A protected counter bank under a 1% CIM fault rate.
    let rate = 1e-2;
    println!("\naccumulating 30x +7 into 256 counters at fault rate {rate}:");
    for (name, prot) in [
        ("unprotected", ProtectionKind::None),
        ("TMR        ", ProtectionKind::Tmr),
        ("ECC (r=2)  ", ProtectionKind::ecc_default()),
    ] {
        let mut bank = CounterBank::with_faults(10, 3, 256, FaultModel::new(rate, 5), prot);
        let mask = Row::ones(256);
        for _ in 0..30 {
            bank.accumulate_ripple(7, &mask);
        }
        let exact = 210u128;
        let errors = (0..256).filter(|&c| bank.get_nearest(c) != exact).count();
        println!(
            "  {name}: {errors:>3}/256 counters wrong, {} AAP ops",
            bank.stats().ambit_ops
        );
    }
}
