//! Serving-runtime demo: the same open-loop multi-tenant trace priced
//! under the seed one-request-at-a-time host path and under the tuned
//! runtime (batching + async planning + heterogeneity-aware sizing on a
//! mixed Ambit/FCDRAM 4-channel module).
//!
//! ```console
//! $ cargo run --release --example serving_runtime
//! ```

use count2multiply::arch::engine::{C2mEngine, EngineConfig};
use count2multiply::arch::BackendPolicy;
use count2multiply::cim::Backend;
use count2multiply::serve::{
    open_loop, OpenLoopConfig, ServeConfig, ServeReport, ServeRuntime, TenantSpec,
};

fn show(label: &str, rep: &ServeReport) {
    println!(
        "{label:<28} p50 {:>8.1} us | p95 {:>8.1} us | p99 {:>8.1} us | {:>7.0} req/s | mean batch {:>5.2} | host hit {:>5.1}%",
        rep.p50_ns() / 1e3,
        rep.p95_ns() / 1e3,
        rep.p99_ns() / 1e3,
        rep.throughput_rps(),
        rep.mean_batch_size(),
        rep.host_hit_rate * 100.0,
    );
}

fn main() {
    // Two tenants sharing a 4-channel mixed Ambit+FCDRAM module under
    // Poisson traffic heavy enough to backlog the queue.
    let trace = open_loop(&OpenLoopConfig {
        tenants: vec![
            TenantSpec { n: 4096, k: 2048 },
            TenantSpec { n: 2048, k: 1024 },
        ],
        requests: 48,
        mean_interarrival_ns: 25_000.0,
        seed: 0xC0FFEE,
    });

    let mut cfg = EngineConfig::c2m(16);
    cfg.dram.channels = 4;
    let policy = BackendPolicy::PerChannel(vec![Backend::Ambit, Backend::Fcdram]);
    let engine = C2mEngine::with_backends(cfg, policy);

    // Seed-faithful serving: one request per dispatch, synchronous
    // planning, even shard sizing.
    let serial = ServeRuntime::new(engine.clone(), ServeConfig::default()).run(&trace);

    // Tuned serving: batch up to 8 same-tenant requests, double-buffer
    // the planner, weight shard lengths by backend throughput.
    let weights = engine.heterogeneity_weights();
    let tuned = ServeRuntime::new(
        engine.with_shard_sizing(weights),
        ServeConfig {
            window_ns: 1e9,
            max_batch: 8,
            async_planner: true,
            ..ServeConfig::default()
        },
    )
    .run(&trace);

    println!("48 requests, 2 tenants, 4-channel mixed Ambit+FCDRAM module\n");
    show("seed host path (batch 1)", &serial);
    show("batched + async + weighted", &tuned);
    println!(
        "\nspeedup: {:.2}x throughput, {:.2}x p99",
        tuned.throughput_rps() / serial.throughput_rps(),
        serial.p99_ns() / tuned.p99_ns(),
    );
    assert!(tuned.throughput_rps() > serial.throughput_rps());
}
