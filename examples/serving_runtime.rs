//! Serving-runtime demo: the same open-loop multi-tenant trace priced
//! under the seed one-request-at-a-time host path, under the tuned
//! runtime (batching + async planning + heterogeneity-aware sizing on a
//! mixed Ambit/FCDRAM 4-channel module), under SLO-aware admission
//! with tenant weight residency — the latency-critical tenant's p99
//! drops when EDF pulls it ahead of the bulk backlog, while an
//! oversubscribed mask budget makes every tenant switch pay a reload —
//! and finally under a rolling-window power cap, where the scheduler
//! shrinks and defers batches to hold the module's average power,
//! trading latency for cap compliance (every run also reports
//! J/request off the engine's energy ledger).
//!
//! ```console
//! $ cargo run --release --example serving_runtime
//! ```

use count2multiply::arch::engine::{C2mEngine, EngineConfig};
use count2multiply::arch::BackendPolicy;
use count2multiply::cim::Backend;
use count2multiply::serve::{
    open_loop, OpenLoopConfig, SchedPolicy, ServeConfig, ServeReport, ServeRuntime, ServiceClass,
    TenantSpec,
};
use std::sync::Arc;

fn show(label: &str, rep: &ServeReport) {
    println!(
        "{label:<28} p50 {:>8.1} us | p99 {:>8.1} us | {:>7.0} req/s | batch {:>5.2} | hi-p99 {:>8.1} us | miss {:>4.0}% | reloads {:>2} | {:>7.0} uJ/req | pk {:>5.2} W",
        rep.p50_ns() / 1e3,
        rep.p99_ns() / 1e3,
        rep.throughput_rps(),
        rep.mean_batch_size(),
        rep.class_stats().last().expect("classes").p99_ns / 1e3,
        rep.deadline_miss_rate() * 100.0,
        rep.reload_count(),
        rep.joules_per_request() * 1e6,
        rep.peak_window_power_w(),
    );
}

fn main() {
    // Two tenants sharing a 4-channel mixed Ambit+FCDRAM module under
    // Poisson traffic heavy enough to backlog the queue: tenant 0 is
    // latency-critical (priority 2, 4 ms deadline), tenant 1 is bulk.
    let trace = open_loop(&OpenLoopConfig {
        tenants: vec![
            TenantSpec::new(4096, 2048).with_class(ServiceClass::new(2, 4_000_000.0)),
            TenantSpec::new(2048, 1024).with_class(ServiceClass::new(0, 100_000_000.0)),
        ],
        requests: 48,
        mean_interarrival_ns: 25_000.0,
        seed: 0xC0FFEE,
    });

    let mut cfg = EngineConfig::c2m(16);
    cfg.dram.channels = 4;
    let policy = BackendPolicy::PerChannel(vec![Backend::Ambit, Backend::Fcdram]);
    let engine = C2mEngine::builder(cfg.clone())
        .backends(policy.clone())
        .build();

    // Seed-faithful serving: one request per dispatch, synchronous
    // planning, even shard sizing, FIFO admission.
    let serial = ServeRuntime::new(engine.clone(), ServeConfig::default()).run(&trace);

    // Tuned serving: batch up to 8 same-tenant requests, double-buffer
    // the planner, weight shard lengths by backend throughput. The
    // weighted engine shares the first engine's plan/pricing cache, so
    // the trace's IARM planning passes are already warm.
    let tuned_cfg = ServeConfig::builder()
        .window_ns(1e9)
        .max_batch(8)
        .async_planner(true)
        .build();
    let engine = C2mEngine::builder(cfg)
        .backends(policy)
        .balanced_sizing()
        .shared_cache(Arc::clone(
            engine.cache().expect("caching is on by default"),
        ))
        .build();
    let tuned = ServeRuntime::new(engine.clone(), tuned_cfg.clone()).run(&trace);

    // SLO-aware serving with tenant residency: EDF admission pulls the
    // critical tenant ahead of the bulk backlog, and a one-tenant mask
    // budget makes every tenant switch stream its planes back in.
    let budget = engine.tenant_mask_rows(4096, 2048);
    let slo = ServeRuntime::new(
        engine.clone(),
        ServeConfig {
            policy: SchedPolicy::EarliestDeadlineFirst,
            residency_rows: Some(budget),
            ..tuned_cfg.clone()
        },
    )
    .run(&trace);

    // Power-capped serving: hold the rolling-window average power at
    // 60% of the tuned run's excursion above the module's idle floor —
    // the scheduler shrinks/defers batches to comply.
    let cap = tuned.idle_floor_w + 0.6 * (tuned.peak_window_power_w() - tuned.idle_floor_w);
    let capped = ServeRuntime::new(
        engine,
        ServeConfig {
            power_budget_w: Some(cap),
            ..tuned_cfg
        },
    )
    .run(&trace);

    println!("48 requests, critical + bulk tenant, 4-channel mixed Ambit+FCDRAM module\n");
    show("seed host path (batch 1)", &serial);
    show("batched + async + weighted", &tuned);
    show("  + EDF + tight residency", &slo);
    show(&format!("  + power cap {cap:.2} W"), &capped);
    println!(
        "\nspeedup: {:.2}x throughput, {:.2}x p99; EDF cuts critical-class p99 {:.2}x \
         while paying {} mask reloads ({:.0} us)",
        tuned.throughput_rps() / serial.throughput_rps(),
        serial.p99_ns() / tuned.p99_ns(),
        tuned.class_stats().last().expect("classes").p99_ns
            / slo.class_stats().last().expect("classes").p99_ns,
        slo.reload_count(),
        slo.reload_ns_total() / 1e3,
    );
    println!(
        "batching also cuts energy: {:.0} -> {:.0} uJ/request; the {cap:.2} W cap holds \
         (peak {:.2} W) at {:.2}x the tuned p99",
        serial.joules_per_request() * 1e6,
        tuned.joules_per_request() * 1e6,
        capped.peak_window_power_w(),
        capped.p99_ns() / tuned.p99_ns(),
    );
    assert!(tuned.throughput_rps() > serial.throughput_rps());
    assert!(
        slo.class_stats().last().expect("classes").p99_ns
            < tuned.class_stats().last().expect("classes").p99_ns,
        "EDF must cut the critical class's p99 even while paying reloads"
    );
    assert!(tuned.joules_per_request() < serial.joules_per_request());
    assert!(capped.peak_window_power_w() <= cap * (1.0 + 1e-9));
}
