//! DNA pre-alignment filtering on in-memory counters (paper §7.1).
//!
//! Builds a GRIM-Filter-style index over a synthetic genome, screens
//! reads by accumulating k-mer repetition counts into per-bin Johnson
//! counters, and shows how CIM faults degrade the filter — and how the
//! paper's ECC protection restores it.
//!
//! ```text
//! cargo run --example dna_filtering
//! ```

use count2multiply::ecc::protect::ProtectionKind;
use count2multiply::workloads::dna::{DnaFilter, FilterConfig, JcBackend};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() {
    let filter = DnaFilter::build(FilterConfig::small(), 42);
    println!(
        "indexed synthetic genome: {} bins x {}-mers",
        filter.bins(),
        filter.config().k
    );

    // Screen a few reads fault-free.
    let mut acc = JcBackend::new(filter.bins(), 0.0, ProtectionKind::None, 7);
    let mut rng = ChaCha12Rng::seed_from_u64(3);
    for i in 0..4 {
        let (label, read) = if i % 2 == 0 {
            ("genomic ", filter.positive_read(&mut rng))
        } else {
            ("random  ", filter.negative_read(&mut rng))
        };
        let accepted = filter.screen(&read, &mut acc);
        println!(
            "read {i} ({label}) -> {}",
            if accepted { "CANDIDATE" } else { "filtered" }
        );
    }

    // F1 across fault regimes.
    println!("\nfilter F1 under CIM faults:");
    for rate in [0.0, 1e-5, 1e-3] {
        let mut plain = JcBackend::new(filter.bins(), rate, ProtectionKind::None, 11);
        let mut ecc = JcBackend::new(filter.bins(), rate, ProtectionKind::ecc_default(), 11);
        println!(
            "  fault {rate:>7.0e}: unprotected F1 = {:.3}, ECC-protected F1 = {:.3}",
            filter.f1_score(&mut plain, 50, 5),
            filter.f1_score(&mut ecc, 50, 5),
        );
    }
}
