//! Tracing demo: serve a multi-tenant open-loop trace with a
//! [`RecordingSink`] threaded through all three execution layers —
//! per-bank host-fetch spans in the DRAM layer, launch/shard/merge
//! spans in the engine, and the request lifecycle in the serving
//! pipeline — then export the Chrome-trace JSON (load it at
//! `ui.perfetto.dev`), dump the flat metrics snapshot, and print the
//! per-class latency breakdown the spans explain.
//!
//! Tracing is strictly observational: the same run with a [`NullSink`]
//! — or with no sink at all — produces a bit-identical report, which
//! this example asserts at the end.
//!
//! ```console
//! $ cargo run --release --example tracing
//! ```

use count2multiply::arch::engine::{C2mEngine, EngineConfig};
use count2multiply::serve::{open_loop, OpenLoopConfig, ServeConfig, ServiceClass, TenantSpec};
use count2multiply::trace::{validate_chrome_trace, NullSink, RecordingSink};
use std::sync::Arc;

fn engine() -> C2mEngine {
    let mut cfg = EngineConfig::c2m(16);
    cfg.dram.channels = 2;
    C2mEngine::builder(cfg).build()
}

fn main() {
    // A latency-critical tenant against a bulk one, arriving fast
    // enough to coalesce, with a residency budget small enough that
    // tenant switches pay visible mask reloads.
    let trace = open_loop(&OpenLoopConfig {
        tenants: vec![
            TenantSpec::new(1024, 512).with_class(ServiceClass::new(2, 8_000_000.0)),
            TenantSpec::new(1024, 512).with_class(ServiceClass::new(0, 100_000_000.0)),
        ],
        requests: 48,
        mean_interarrival_ns: 20_000.0,
        seed: 0x7ACE,
    });
    let config = || {
        ServeConfig::builder()
            .max_batch(4)
            .window_ns(1e9)
            .residency_rows(4096)
    };

    // Traced run: one recording sink observes dram + core + serve.
    let sink = Arc::new(RecordingSink::default());
    let runtime = config().trace(sink.clone()).build_runtime(engine());
    let report = runtime.run(&trace);

    let json = sink.chrome_trace_json();
    let check = validate_chrome_trace(&json).expect("recorded trace validates");
    let out = std::env::temp_dir().join("c2m_tracing_example.json");
    std::fs::write(&out, &json).expect("trace is writable");
    println!(
        "wrote {} — {} events, {} spans, {} tracks, categories [{}]",
        out.display(),
        check.events,
        check.spans,
        check.tracks,
        check.cats.join(", ")
    );
    println!("open it at https://ui.perfetto.dev (or chrome://tracing)\n");

    println!("metrics snapshot:");
    let m = sink.registry();
    for name in [
        "dram.fetch_requests",
        "core.launches",
        "serve.batches",
        "serve.requests",
    ] {
        println!("  {name:<22} {}", m.counter_value(name));
    }
    if let Some(h) = m.histogram("serve.e2e_latency_ns") {
        let s = h.summary();
        println!(
            "  e2e latency            mean {:.1} us, p99 ~{:.1} us over {} obs",
            s.mean_ns / 1e3,
            s.p99_ns / 1e3,
            s.count
        );
    }

    println!("\nlatency breakdown (mean queue + plan + reload + exec = total, us):");
    for row in report.latency_breakdown() {
        let mean = row.mean;
        println!(
            "  class {}: {:>3} reqs | {:>8.1} + {:>6.1} + {:>6.1} + {:>8.1} = {:>8.1} | p99 total {:>8.1}",
            row.priority,
            row.count,
            mean.queue_ns / 1e3,
            mean.plan_ns / 1e3,
            mean.reload_ns / 1e3,
            mean.exec_ns / 1e3,
            mean.total_ns / 1e3,
            row.p99.total_ns / 1e3
        );
    }

    // Zero-cost check: the NullSink run (and a hook-free run) yields a
    // bit-identical report.
    let nulled = config()
        .trace(Arc::new(NullSink))
        .build_runtime(engine())
        .run(&trace);
    let bare = config().build_runtime(engine()).run(&trace);
    let traced_json = serde_json::to_string(&report).expect("report serialises");
    assert_eq!(
        traced_json,
        serde_json::to_string(&nulled).expect("report serialises")
    );
    assert_eq!(
        traced_json,
        serde_json::to_string(&bare).expect("report serialises")
    );
    println!("\ntraced, null-sink and hook-free reports are bit-identical.");
}
