//! Projecting a ternary LLaMA projection layer (Table 3) across the
//! three accelerators the paper compares: C2M, SIMDRAM, and a GPU.
//!
//! ```text
//! cargo run --example ternary_llm_layer
//! ```

use count2multiply::arch::engine::{C2mEngine, EngineConfig};
use count2multiply::baselines::{GpuModel, SimdramEngine};
use count2multiply::workloads::distributions::int8_embeddings;
use count2multiply::workloads::llama::GEMV_SHAPES;
use count2multiply::workloads::sparsity::sparse_int8_stream;

fn main() {
    let shape = GEMV_SHAPES[0]; // V0: 1 x 22016 x 8192
    println!(
        "workload {}: y[1x{}] = x[1x{}] . Z (ternary)",
        shape.id, shape.n, shape.k
    );

    let gpu = GpuModel::rtx_3090_ti();
    let simdram = SimdramEngine::x(16);
    let c2m = C2mEngine::builder(EngineConfig::c2m(16)).build();

    let x = int8_embeddings(shape.k, 99);
    let g = gpu.gemv(shape.n, shape.k);
    let s = simdram.ternary_gemv(shape.n, shape.k);
    let c = c2m.ternary_gemv(&x, shape.n);

    println!("\ndense activations:");
    println!(
        "  GPU     : {:>9.3} ms end-to-end, {:>7.0} GOPS kernel",
        g.total_ns / 1e6,
        g.gops()
    );
    println!(
        "  SIMDRAM : {:>9.3} ms,           {:>7.2} GOPS",
        s.elapsed_ms(),
        s.gops()
    );
    println!(
        "  C2M     : {:>9.3} ms,           {:>7.2} GOPS  ({:.1}x over SIMDRAM)",
        c.elapsed_ms(),
        c.gops(),
        s.elapsed_ns / c.elapsed_ns
    );

    println!("\nC2M latency falls with activation sparsity (zeros cost nothing):");
    for sp in [0.0, 0.5, 0.9, 0.99] {
        let xs = sparse_int8_stream(shape.k, sp, 123);
        let r = c2m.ternary_gemv(&xs, shape.n);
        println!(
            "  {:>5.1}% sparse -> {:>8.3} ms",
            sp * 100.0,
            r.elapsed_ms()
        );
    }

    println!("\n...and with memory channels (K shards across the topology):");
    for channels in [1usize, 2, 4] {
        let mut cfg = EngineConfig::c2m(16);
        cfg.dram.channels = channels;
        let r = C2mEngine::builder(cfg).build().ternary_gemv(&x, shape.n);
        println!(
            "  {channels} channel{} -> {:>8.3} ms, {:>7.0} GOPS",
            if channels == 1 { " " } else { "s" },
            r.elapsed_ms(),
            r.gops()
        );
    }
}
