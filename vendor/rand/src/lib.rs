//! Minimal offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Implements exactly what the workspace uses: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait with
//! `gen`, `gen_range` and `gen_bool`, and [`rngs::StdRng`] (xoshiro256++
//! under the hood — statistical quality is more than adequate for
//! simulation workloads, and determinism is all the tests rely on).

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a deterministic generator from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme
    /// the real `rand` uses) and builds the generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that [`Rng::gen`] can produce.
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts; `T` is the element type, so
/// integer-literal inference flows from the expected output exactly as
/// with the real `rand`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Two's-complement subtraction, reinterpreted in the
                // same-width unsigned type, gives the span for signed and
                // unsigned types alike without sign-extension.
                let span = self.end.wrapping_sub(self.start) as $u as u128;
                let draw = u128::sample_standard(rng) % span;
                self.start.wrapping_add(draw as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end.wrapping_sub(start) as $u as u128).wrapping_add(1);
                if span == 0 {
                    // The full 128-bit domain: every draw is valid.
                    return <$t>::sample_standard(rng);
                }
                let draw = u128::sample_standard(rng) % span;
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_range_int!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (u128, u128),
    (usize, usize),
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (i128, u128),
    (isize, usize)
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // `start + unit * (end - start)` can round up to exactly
                // `end` even though `unit < 1`; redraw to keep the
                // half-open contract (probability ~2^-53 per draw).
                loop {
                    let unit = <$t>::sample_standard(rng);
                    let value = self.start + unit * (self.end - self.start);
                    if value < self.end {
                        return value;
                    }
                }
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`StandardSample`] type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ready-made generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng` (which is explicitly not portable across versions, so a
    /// different algorithm is API-conformant).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            // Avoid the all-zero state, which is a fixed point.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(-50i64..50);
            assert_eq!(x, b.gen_range(-50i64..50));
            assert!((-50..50).contains(&x));
            let u = a.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            b.gen_range(3usize..=9);
            let f = a.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            b.gen_range(0.25f64..0.75);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
