//! Minimal offline stand-in for `serde_json`, paired with the local
//! `serde` shim.
//!
//! Provides the surface the workspace uses: [`to_string`] /
//! [`to_string_pretty`] over any [`serde::Serialize`] type, plus a small
//! strict JSON parser ([`from_str`]) used by the CI smoke tests to check
//! that the figure binaries emit well-formed JSON.

pub use serde::Value;

use serde::Serialize;
use std::fmt;

/// Error type for serialisation/parsing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialises a value to compact JSON.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (key, item)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns an error on any malformed input or trailing garbage.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => {
                        return Err(Error(format!(
                            "expected `,` or `]` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error(format!("expected `:` at byte {pos}", pos = *pos)));
                }
                *pos += 1;
                entries.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => {
                        return Err(Error(format!(
                            "expected `,` or `}}` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(Error(format!("unexpected input at byte {pos}", pos = *pos))),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("invalid literal at byte {pos}", pos = *pos)))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {pos}", pos = *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error("bad \\u escape".into()))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error("bad escape".into())),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 code point.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*pos])
                        .map_err(|_| Error("invalid UTF-8".into()))?,
                );
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| Error("bad number".into()))?;
    if !float {
        if let Ok(i) = text.parse::<i128>() {
            return Ok(Value::Int(i));
        }
        if let Ok(u) = text.parse::<u128>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("fig8".into())),
            (
                "rows".into(),
                Value::Array(vec![Value::Int(1), Value::Float(2.5)]),
            ),
            ("ok".into(), Value::Bool(true)),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn escapes_and_specials() {
        let v = Value::Str("a\"b\\c\nd".into());
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#""a\"b\\c\nd""#);
        assert_eq!(from_str(&text).unwrap(), v);
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
