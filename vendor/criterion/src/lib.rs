//! Minimal offline stand-in for `criterion`.
//!
//! Implements the walltime-only subset the workspace's bench harness
//! uses: [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Each
//! benchmark is timed with `std::time::Instant` over an adaptively-sized
//! batch and reported as ns/iter — no statistics or plots.
//!
//! Two baseline features are supported:
//!
//! * `--save-baseline <name>` (as real criterion accepts) dumps every
//!   benchmark's ns/iter to `<target>/criterion-baselines/<name>.json`
//!   so CI can diff walltimes between runs:
//!
//!   ```json
//!   {"baseline":"pr","benchmarks":{"scheduler/10k_aaps_16banks":123.4}}
//!   ```
//!
//! * `--baselines-diff <a> <b>` compares two previously saved dumps
//!   without running any benchmark, printing per-benchmark ns/iter
//!   delta and percent (`cargo bench --bench criterion_benches --
//!   --baselines-diff main pr`).

pub use std::hint::black_box;

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Results accumulated across every group of the process, drained by
/// [`save_baseline_if_requested`] at the end of `criterion_main!`.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as the benchmark `id` and prints its timing.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            ns_per_iter: f64::NAN,
        };
        f(&mut bencher);
        println!("{id:<44} {:>14} ns/iter", format_ns(bencher.ns_per_iter));
        RESULTS
            .lock()
            .expect("benchmark results poisoned")
            .push((id.to_string(), bencher.ns_per_iter));
        self
    }
}

/// Extracts the `--save-baseline <name>` argument, if present and sane
/// (a plain file-name component, to keep the dump inside the baselines
/// directory).
fn parse_save_baseline<I: Iterator<Item = String>>(mut args: I) -> Option<String> {
    while let Some(arg) = args.next() {
        let name = match arg.strip_prefix("--save-baseline=") {
            Some(rest) => Some(rest.to_string()),
            None if arg == "--save-baseline" => args.next(),
            None => None,
        };
        if let Some(name) = name {
            if !name.is_empty() && !name.contains(['/', '\\', '.']) {
                return Some(name);
            }
            eprintln!("criterion shim: ignoring invalid baseline name {name:?}");
            return None;
        }
    }
    None
}

/// Serialises the collected results as a single-line JSON document.
/// Benchmark ids in this workspace are `group/case` slugs; escaping
/// covers quotes and backslashes for safety.
fn baseline_json(name: &str, results: &[(String, f64)]) -> String {
    fn escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = format!("{{\"baseline\":\"{}\",\"benchmarks\":{{", escape(name));
    for (i, (id, ns)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let value = if ns.is_finite() {
            format!("{ns:.3}")
        } else {
            "null".to_string()
        };
        out.push_str(&format!("\"{}\":{}", escape(id), value));
    }
    out.push_str("}}");
    out
}

/// The build's `target` directory, derived from the running bench
/// executable (`<target>/<profile>/deps/<bench>-<hash>`): cargo runs
/// bench binaries with the *package* directory as cwd, so a relative
/// path would scatter dumps across workspace members.
fn target_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        let dir = std::path::PathBuf::from(dir);
        // A relative CARGO_TARGET_DIR is resolved by cargo against the
        // *invocation* cwd, which this process (running in the package
        // dir) cannot reconstruct — fall through to the executable's
        // path in that case, which is inside the real target dir either
        // way.
        if dir.is_absolute() {
            return dir;
        }
    }
    std::env::current_exe()
        .ok()
        .and_then(|exe| exe.ancestors().nth(3).map(std::path::Path::to_path_buf))
        .unwrap_or_else(|| "target".into())
}

/// Writes `<target>/criterion-baselines/<name>.json` when the process
/// was invoked with `--save-baseline <name>` (e.g.
/// `cargo bench --bench criterion_benches -- --save-baseline pr`).
/// Called automatically at the end of [`criterion_main!`]; a no-op
/// otherwise.
pub fn save_baseline_if_requested() {
    let Some(name) = parse_save_baseline(std::env::args()) else {
        return;
    };
    let dir = target_dir().join("criterion-baselines");
    let results = RESULTS.lock().expect("benchmark results poisoned");
    let payload = baseline_json(&name, &results);
    let path = dir.join(format!("{name}.json"));
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, payload)) {
        Ok(()) => println!("saved baseline {name:?} -> {}", path.display()),
        Err(e) => eprintln!("criterion shim: could not save baseline: {e}"),
    }
}

/// Extracts `--baselines-diff <a> <b>` from the argument stream,
/// applying the same name hygiene as `--save-baseline`.
fn parse_baselines_diff<I: Iterator<Item = String>>(mut args: I) -> Option<(String, String)> {
    while let Some(arg) = args.next() {
        if arg != "--baselines-diff" {
            continue;
        }
        let (Some(a), Some(b)) = (args.next(), args.next()) else {
            eprintln!("criterion shim: --baselines-diff needs two baseline names");
            return None;
        };
        for name in [&a, &b] {
            if name.is_empty() || name.contains(['/', '\\', '.']) {
                eprintln!("criterion shim: ignoring invalid baseline name {name:?}");
                return None;
            }
        }
        return Some((a, b));
    }
    None
}

/// Parses a dump produced by [`baseline_json`] back into
/// `(id, ns_per_iter)` pairs (`None` for benchmarks recorded as
/// `null`). A tiny scanner is enough because the shim wrote the file:
/// the only string escapes are `\"` and `\\`.
fn parse_baseline_dump(text: &str) -> Result<Vec<(String, Option<f64>)>, String> {
    let key = "\"benchmarks\":{";
    let start = text
        .find(key)
        .ok_or_else(|| "no \"benchmarks\" object".to_string())?
        + key.len();
    let mut out = Vec::new();
    let mut rest = text[start..].trim_start();
    while !rest.starts_with('}') {
        rest = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected a quoted id at {rest:.20?}"))?;
        let mut id = String::new();
        let mut chars = rest.char_indices();
        let value_from = loop {
            let (i, c) = chars.next().ok_or("unterminated id")?;
            match c {
                '\\' => {
                    let (_, esc) = chars.next().ok_or("dangling escape")?;
                    id.push(esc);
                }
                '"' => break i + 1,
                c => id.push(c),
            }
        };
        rest = rest[value_from..]
            .strip_prefix(':')
            .ok_or("missing value separator")?;
        let end = rest
            .find([',', '}'])
            .ok_or("unterminated benchmarks object")?;
        let raw = rest[..end].trim();
        let ns = if raw == "null" {
            None
        } else {
            Some(
                raw.parse::<f64>()
                    .map_err(|e| format!("bad ns/iter {raw:?}: {e}"))?,
            )
        };
        out.push((id, ns));
        rest = rest[end..].strip_prefix(',').unwrap_or(&rest[end..]);
    }
    Ok(out)
}

/// Renders the per-benchmark comparison of two parsed dumps: ns/iter of
/// each side, delta, and percent relative to `a`. Benchmarks present on
/// only one side are reported as `n/a`.
fn diff_lines(a: &[(String, Option<f64>)], b: &[(String, Option<f64>)]) -> Vec<String> {
    let lookup = |set: &[(String, Option<f64>)], id: &str| -> Option<f64> {
        set.iter().find(|(i, _)| i == id).and_then(|(_, ns)| *ns)
    };
    let mut ids: Vec<&String> = a.iter().map(|(id, _)| id).collect();
    for (id, _) in b {
        if !a.iter().any(|(i, _)| i == id) {
            ids.push(id);
        }
    }
    ids.iter()
        .map(|id| {
            let (x, y) = (lookup(a, id), lookup(b, id));
            match (x, y) {
                (Some(x), Some(y)) => {
                    let delta = y - x;
                    let pct = if x == 0.0 { 0.0 } else { delta / x * 100.0 };
                    format!(
                        "{id:<44} {:>14} {:>14} {:>14} {pct:>+9.2}%",
                        format_ns(x),
                        format_ns(y),
                        format_ns_signed(delta),
                    )
                }
                _ => format!(
                    "{id:<44} {:>14} {:>14} {:>14} {:>10}",
                    x.map_or_else(|| "n/a".into(), format_ns),
                    y.map_or_else(|| "n/a".into(), format_ns),
                    "n/a",
                    "n/a"
                ),
            }
        })
        .collect()
}

/// Handles `--baselines-diff <a> <b>` if present: loads both dumps from
/// `<target>/criterion-baselines/`, prints the per-benchmark ns/iter
/// delta and percent, and returns `true` so `criterion_main!` skips the
/// benchmark groups entirely. Returns `false` when the flag is absent.
/// A malformed invocation or an unreadable/corrupt dump **exits with
/// status 1** — a CI step invoking the diff must fail loudly rather
/// than succeed having compared nothing.
pub fn baselines_diff_if_requested() -> bool {
    let Some((a, b)) = parse_baselines_diff(std::env::args()) else {
        if std::env::args().any(|arg| arg == "--baselines-diff") {
            // The flag was given but its arguments did not parse; the
            // specific complaint is on stderr already.
            std::process::exit(1);
        }
        return false;
    };
    let dir = target_dir().join("criterion-baselines");
    let load = |name: &str| -> Vec<(String, Option<f64>)> {
        let path = dir.join(format!("{name}.json"));
        match std::fs::read_to_string(&path) {
            Ok(text) => match parse_baseline_dump(&text) {
                Ok(rows) => rows,
                Err(e) => {
                    eprintln!("criterion shim: {} is corrupt: {e}", path.display());
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("criterion shim: cannot read {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    };
    let (rows_a, rows_b) = (load(&a), load(&b));
    println!(
        "{:<44} {:>14} {:>14} {:>14} {:>10}",
        "benchmark",
        format!("{a} ns/iter"),
        format!("{b} ns/iter"),
        "delta ns",
        "delta %"
    );
    for line in diff_lines(&rows_a, &rows_b) {
        println!("{line}");
    }
    true
}

fn format_ns_signed(ns: f64) -> String {
    if ns >= 0.0 {
        format!("+{}", format_ns(ns))
    } else {
        format!("-{}", format_ns(-ns))
    }
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

/// Per-benchmark timing handle passed to the closure.
#[derive(Debug)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, growing the batch size until the measurement
    /// window is long enough to trust (~50 ms or 1M iterations).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        let target = Duration::from_millis(50);
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1_000_000 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            let grow = if elapsed.is_zero() {
                iters * 100
            } else {
                let scale = target.as_nanos() as f64 / elapsed.as_nanos() as f64;
                ((iters as f64 * scale * 1.2) as u64).max(iters + 1)
            };
            iters = grow.min(1_000_000);
        }
    }
}

/// Declares a group runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running every group, then saving a baseline dump if
/// `--save-baseline <name>` was passed. With `--baselines-diff <a> <b>`
/// the groups are skipped and the two saved dumps are compared instead.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if $crate::baselines_diff_if_requested() {
                return;
            }
            $( $group(); )+
            $crate::save_baseline_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> std::vec::IntoIter<String> {
        v.iter()
            .map(|s| (*s).to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_save_baseline_forms() {
        assert_eq!(
            parse_save_baseline(args(&["bench", "--save-baseline", "pr42"])),
            Some("pr42".to_string())
        );
        assert_eq!(
            parse_save_baseline(args(&["--save-baseline=main"])),
            Some("main".to_string())
        );
        assert_eq!(parse_save_baseline(args(&["bench", "--bench"])), None);
        // Missing or path-escaping names are rejected.
        assert_eq!(parse_save_baseline(args(&["--save-baseline"])), None);
        assert_eq!(
            parse_save_baseline(args(&["--save-baseline", "../evil"])),
            None
        );
    }

    #[test]
    fn parses_baselines_diff_form() {
        assert_eq!(
            parse_baselines_diff(args(&["bench", "--baselines-diff", "main", "pr"])),
            Some(("main".to_string(), "pr".to_string()))
        );
        assert_eq!(parse_baselines_diff(args(&["--baselines-diff", "a"])), None);
        assert_eq!(
            parse_baselines_diff(args(&["--baselines-diff", "../x", "b"])),
            None
        );
        assert_eq!(parse_baselines_diff(args(&["--save-baseline", "a"])), None);
    }

    #[test]
    fn baseline_dump_round_trips_through_the_parser() {
        let rows = vec![
            ("scheduler/10k".to_string(), 123.456),
            ("iarm \"q\\z\"".to_string(), f64::NAN),
            ("plain".to_string(), 7.0),
        ];
        let parsed = parse_baseline_dump(&baseline_json("pr", &rows)).expect("parses");
        assert_eq!(
            parsed,
            vec![
                ("scheduler/10k".to_string(), Some(123.456)),
                ("iarm \"q\\z\"".to_string(), None),
                ("plain".to_string(), Some(7.0)),
            ]
        );
        // Empty dumps parse to nothing.
        assert_eq!(
            parse_baseline_dump("{\"baseline\":\"x\",\"benchmarks\":{}}").expect("parses"),
            vec![]
        );
        assert!(parse_baseline_dump("{\"nope\":1}").is_err());
    }

    #[test]
    fn diff_reports_delta_and_percent() {
        let a = vec![
            ("k".to_string(), Some(100.0)),
            ("only_a".to_string(), Some(1.0)),
        ];
        let b = vec![
            ("k".to_string(), Some(150.0)),
            ("only_b".to_string(), Some(2.0)),
        ];
        let lines = diff_lines(&a, &b);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("+50.00%"), "line: {}", lines[0]);
        assert!(lines[0].contains("+50.0"), "line: {}", lines[0]);
        assert!(lines[1].contains("n/a"), "line: {}", lines[1]);
        assert!(lines[2].contains("n/a"), "line: {}", lines[2]);
        // A regression and an improvement carry opposite signs.
        let down = diff_lines(
            &[("k".to_string(), Some(200.0))],
            &[("k".to_string(), Some(100.0))],
        );
        assert!(down[0].contains("-50.00%"), "line: {}", down[0]);
    }

    #[test]
    fn baseline_json_is_valid_and_ordered() {
        let rows = vec![
            ("scheduler/10k".to_string(), 123.456),
            ("iarm \"q\"".to_string(), f64::NAN),
        ];
        let json = baseline_json("pr", &rows);
        assert_eq!(
            json,
            "{\"baseline\":\"pr\",\"benchmarks\":{\"scheduler/10k\":123.456,\"iarm \\\"q\\\"\":null}}"
        );
    }
}
