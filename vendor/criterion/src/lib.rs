//! Minimal offline stand-in for `criterion`.
//!
//! Implements the walltime-only subset the workspace's bench harness
//! uses: [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Each
//! benchmark is timed with `std::time::Instant` over several
//! adaptively-sized batches and reported as ns/iter with per-benchmark
//! statistics (min / median / stddev over the batch samples) — enough
//! to tell walltime noise from a real regression, though still no
//! outlier rejection or plots.
//!
//! Two baseline features are supported:
//!
//! * `--save-baseline <name>` (as real criterion accepts) dumps every
//!   benchmark's statistics to `<target>/criterion-baselines/<name>.json`
//!   so CI can diff walltimes between runs:
//!
//!   ```json
//!   {"baseline":"pr","benchmarks":{"scheduler/10k_aaps_16banks":
//!    {"median":123.4,"min":119.9,"stddev":2.1}}}
//!   ```
//!
//!   (Legacy dumps that stored a bare ns/iter number still parse.)
//!
//! * `--baselines-diff <a> <b>` compares two previously saved dumps
//!   without running any benchmark, printing per-benchmark median
//!   ns/iter delta and percent plus each side's min and stddev
//!   (`cargo bench --bench criterion_benches -- --baselines-diff main
//!   pr`). With `--fail-threshold <pct>` the diff **exits with status
//!   1** when any benchmark's median regressed by more than `pct`
//!   percent of side `a` — the CI regression gate.
//!
//! The dump directory defaults to `<target>/criterion-baselines/` and
//! can be pointed anywhere with the `CRITERION_BASELINE_DIR`
//! environment variable — CI uses it to save and diff against the
//! `BENCH_*.json` baselines committed at the repository root.

pub use std::hint::black_box;

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-benchmark walltime statistics over the measured batch samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchStats {
    /// Median ns/iter over the batch samples — the headline number.
    pub median: f64,
    /// Fastest batch's ns/iter (the least-noise estimate).
    pub min: f64,
    /// Population standard deviation of the batch samples' ns/iter.
    pub stddev: f64,
}

impl BenchStats {
    /// Statistics of a set of per-iteration samples.
    ///
    /// Returns NaNs for an empty set.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return BenchStats {
                median: f64::NAN,
                min: f64::NAN,
                stddev: f64::NAN,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let mid = sorted.len() / 2;
        let median = if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        };
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let var = sorted.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / sorted.len() as f64;
        BenchStats {
            median,
            min: sorted[0],
            stddev: var.sqrt(),
        }
    }
}

/// Results accumulated across every group of the process, drained by
/// [`save_baseline_if_requested`] at the end of `criterion_main!`.
static RESULTS: Mutex<Vec<(String, BenchStats)>> = Mutex::new(Vec::new());

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as the benchmark `id` and prints its timing.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            stats: BenchStats::from_samples(&[]),
        };
        f(&mut bencher);
        let s = bencher.stats;
        println!(
            "{id:<44} {:>14} ns/iter (min {}, \u{b1}{})",
            format_ns(s.median),
            format_ns(s.min),
            format_ns(s.stddev)
        );
        RESULTS
            .lock()
            .expect("benchmark results poisoned")
            .push((id.to_string(), s));
        self
    }
}

/// Extracts the `--save-baseline <name>` argument, if present and sane
/// (a plain file-name component, to keep the dump inside the baselines
/// directory).
fn parse_save_baseline<I: Iterator<Item = String>>(mut args: I) -> Option<String> {
    while let Some(arg) = args.next() {
        let name = match arg.strip_prefix("--save-baseline=") {
            Some(rest) => Some(rest.to_string()),
            None if arg == "--save-baseline" => args.next(),
            None => None,
        };
        if let Some(name) = name {
            if !name.is_empty() && !name.contains(['/', '\\', '.']) {
                return Some(name);
            }
            eprintln!("criterion shim: ignoring invalid baseline name {name:?}");
            return None;
        }
    }
    None
}

/// Serialises the collected results as a single-line JSON document:
/// one `{"median":…,"min":…,"stddev":…}` object per benchmark.
/// Benchmark ids in this workspace are `group/case` slugs; escaping
/// covers quotes and backslashes for safety.
fn baseline_json(name: &str, results: &[(String, BenchStats)]) -> String {
    fn escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = format!("{{\"baseline\":\"{}\",\"benchmarks\":{{", escape(name));
    for (i, (id, s)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let value = if s.median.is_finite() {
            format!(
                "{{\"median\":{:.3},\"min\":{:.3},\"stddev\":{:.3}}}",
                s.median, s.min, s.stddev
            )
        } else {
            "null".to_string()
        };
        out.push_str(&format!("\"{}\":{}", escape(id), value));
    }
    out.push_str("}}");
    out
}

/// The build's `target` directory, derived from the running bench
/// executable (`<target>/<profile>/deps/<bench>-<hash>`): cargo runs
/// bench binaries with the *package* directory as cwd, so a relative
/// path would scatter dumps across workspace members.
fn target_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        let dir = std::path::PathBuf::from(dir);
        // A relative CARGO_TARGET_DIR is resolved by cargo against the
        // *invocation* cwd, which this process (running in the package
        // dir) cannot reconstruct — fall through to the executable's
        // path in that case, which is inside the real target dir either
        // way.
        if dir.is_absolute() {
            return dir;
        }
    }
    std::env::current_exe()
        .ok()
        .and_then(|exe| exe.ancestors().nth(3).map(std::path::Path::to_path_buf))
        .unwrap_or_else(|| "target".into())
}

/// The directory baseline dumps are written to and read from:
/// `CRITERION_BASELINE_DIR` when set (relative paths resolve against
/// the process cwd — for bench binaries, the package directory), else
/// `<target>/criterion-baselines`.
fn baselines_dir() -> std::path::PathBuf {
    match std::env::var("CRITERION_BASELINE_DIR") {
        Ok(dir) if !dir.is_empty() => std::path::PathBuf::from(dir),
        _ => target_dir().join("criterion-baselines"),
    }
}

/// Writes `<baselines-dir>/<name>.json` when the process was invoked
/// with `--save-baseline <name>` (e.g.
/// `cargo bench --bench criterion_benches -- --save-baseline pr`).
/// Called automatically at the end of [`criterion_main!`]; a no-op
/// otherwise.
pub fn save_baseline_if_requested() {
    let Some(name) = parse_save_baseline(std::env::args()) else {
        return;
    };
    let dir = baselines_dir();
    let results = RESULTS.lock().expect("benchmark results poisoned");
    let payload = baseline_json(&name, &results);
    let path = dir.join(format!("{name}.json"));
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, payload)) {
        Ok(()) => println!("saved baseline {name:?} -> {}", path.display()),
        Err(e) => eprintln!("criterion shim: could not save baseline: {e}"),
    }
}

/// Extracts `--baselines-diff <a> <b>` from the argument stream,
/// applying the same name hygiene as `--save-baseline`.
fn parse_baselines_diff<I: Iterator<Item = String>>(mut args: I) -> Option<(String, String)> {
    while let Some(arg) = args.next() {
        if arg != "--baselines-diff" {
            continue;
        }
        let (Some(a), Some(b)) = (args.next(), args.next()) else {
            eprintln!("criterion shim: --baselines-diff needs two baseline names");
            return None;
        };
        for name in [&a, &b] {
            if name.is_empty() || name.contains(['/', '\\', '.']) {
                eprintln!("criterion shim: ignoring invalid baseline name {name:?}");
                return None;
            }
        }
        return Some((a, b));
    }
    None
}

/// Parses one benchmark value: either the current
/// `{"median":…,"min":…,"stddev":…}` object or a legacy bare ns/iter
/// number (mapped to `median == min`, stddev 0 — a pre-statistics dump
/// recorded a single measurement).
fn parse_bench_value(raw: &str) -> Result<Option<BenchStats>, String> {
    let raw = raw.trim();
    if raw == "null" {
        return Ok(None);
    }
    if let Some(body) = raw.strip_prefix('{') {
        let body = body
            .strip_suffix('}')
            .ok_or_else(|| format!("unterminated stats object {raw:?}"))?;
        let mut median = None;
        let mut min = None;
        let mut stddev = None;
        for field in body.split(',') {
            let (key, value) = field
                .split_once(':')
                .ok_or_else(|| format!("bad stats field {field:?}"))?;
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|e| format!("bad stats value {value:?}: {e}"))?;
            match key.trim().trim_matches('"') {
                "median" => median = Some(value),
                "min" => min = Some(value),
                "stddev" => stddev = Some(value),
                other => return Err(format!("unknown stats field {other:?}")),
            }
        }
        let median = median.ok_or("stats object without median")?;
        return Ok(Some(BenchStats {
            median,
            min: min.unwrap_or(median),
            stddev: stddev.unwrap_or(0.0),
        }));
    }
    let ns: f64 = raw
        .parse()
        .map_err(|e| format!("bad ns/iter {raw:?}: {e}"))?;
    Ok(Some(BenchStats {
        median: ns,
        min: ns,
        stddev: 0.0,
    }))
}

/// Parses a dump produced by [`baseline_json`] back into
/// `(id, stats)` pairs (`None` for benchmarks recorded as
/// `null`). A tiny scanner is enough because the shim wrote the file:
/// the only string escapes are `\"` and `\\`, and values are flat
/// stats objects or legacy numbers.
fn parse_baseline_dump(text: &str) -> Result<Vec<(String, Option<BenchStats>)>, String> {
    let key = "\"benchmarks\":{";
    let start = text
        .find(key)
        .ok_or_else(|| "no \"benchmarks\" object".to_string())?
        + key.len();
    let mut out = Vec::new();
    let mut rest = text[start..].trim_start();
    while !rest.starts_with('}') {
        rest = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected a quoted id at {rest:.20?}"))?;
        let mut id = String::new();
        let mut chars = rest.char_indices();
        let value_from = loop {
            let (i, c) = chars.next().ok_or("unterminated id")?;
            match c {
                '\\' => {
                    let (_, esc) = chars.next().ok_or("dangling escape")?;
                    id.push(esc);
                }
                '"' => break i + 1,
                c => id.push(c),
            }
        };
        rest = rest[value_from..]
            .strip_prefix(':')
            .ok_or("missing value separator")?;
        // A stats object contains no nested braces, so the value ends
        // at the first ',' or '}' outside it.
        let end = if rest.starts_with('{') {
            rest.find('}').ok_or("unterminated stats object")? + 1
        } else {
            rest.find([',', '}'])
                .ok_or("unterminated benchmarks object")?
        };
        out.push((id, parse_bench_value(&rest[..end])?));
        rest = rest[end..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    Ok(out)
}

/// Renders the per-benchmark comparison of two parsed dumps: median
/// ns/iter of each side, delta and percent relative to `a`, then each
/// side's min and stddev so a delta inside the noise band is visible
/// as such. Benchmarks present on only one side are reported as `n/a`.
fn diff_lines(
    a: &[(String, Option<BenchStats>)],
    b: &[(String, Option<BenchStats>)],
) -> Vec<String> {
    let lookup = |set: &[(String, Option<BenchStats>)], id: &str| -> Option<BenchStats> {
        set.iter().find(|(i, _)| i == id).and_then(|(_, s)| *s)
    };
    let mut ids: Vec<&String> = a.iter().map(|(id, _)| id).collect();
    for (id, _) in b {
        if !a.iter().any(|(i, _)| i == id) {
            ids.push(id);
        }
    }
    ids.iter()
        .map(|id| {
            let (x, y) = (lookup(a, id), lookup(b, id));
            match (x, y) {
                (Some(x), Some(y)) => {
                    let delta = y.median - x.median;
                    let pct = if x.median == 0.0 {
                        0.0
                    } else {
                        delta / x.median * 100.0
                    };
                    format!(
                        "{id:<44} {:>14} {:>14} {:>14} {pct:>+9.2}% {:>14} {:>14} {:>10} {:>10}",
                        format_ns(x.median),
                        format_ns(y.median),
                        format_ns_signed(delta),
                        format_ns(x.min),
                        format_ns(y.min),
                        format_ns(x.stddev),
                        format_ns(y.stddev),
                    )
                }
                _ => format!(
                    "{id:<44} {:>14} {:>14} {:>14} {:>10} {:>14} {:>14} {:>10} {:>10}",
                    x.map_or_else(|| "n/a".into(), |s| format_ns(s.median)),
                    y.map_or_else(|| "n/a".into(), |s| format_ns(s.median)),
                    "n/a",
                    "n/a",
                    x.map_or_else(|| "n/a".into(), |s| format_ns(s.min)),
                    y.map_or_else(|| "n/a".into(), |s| format_ns(s.min)),
                    x.map_or_else(|| "n/a".into(), |s| format_ns(s.stddev)),
                    y.map_or_else(|| "n/a".into(), |s| format_ns(s.stddev)),
                ),
            }
        })
        .collect()
}

/// Extracts `--fail-threshold <pct>` from the argument stream. `Err`
/// marks a malformed invocation (missing, non-numeric, negative or
/// non-finite percentage).
fn parse_fail_threshold<I: Iterator<Item = String>>(mut args: I) -> Result<Option<f64>, String> {
    while let Some(arg) = args.next() {
        let raw = match arg.strip_prefix("--fail-threshold=") {
            Some(rest) => rest.to_string(),
            None if arg == "--fail-threshold" => args
                .next()
                .ok_or("--fail-threshold needs a percentage".to_string())?,
            None => continue,
        };
        return match raw.parse::<f64>() {
            Ok(pct) if pct.is_finite() && pct >= 0.0 => Ok(Some(pct)),
            _ => Err(format!("--fail-threshold needs a percentage, got {raw:?}")),
        };
    }
    Ok(None)
}

/// The benchmarks of `b` whose median regressed by more than `pct`
/// percent over side `a`, rendered one complaint per line. Benchmarks
/// on only one side never fail the gate — adding or retiring a
/// benchmark is not a regression.
fn regressions(
    a: &[(String, Option<BenchStats>)],
    b: &[(String, Option<BenchStats>)],
    pct: f64,
) -> Vec<String> {
    a.iter()
        .filter_map(|(id, x)| {
            let x = (*x)?;
            let y = b.iter().find(|(i, _)| i == id).and_then(|(_, s)| *s)?;
            if x.median > 0.0 && y.median > x.median * (1.0 + pct / 100.0) {
                Some(format!(
                    "{id}: {} -> {} ns/iter (+{:.2}% > {pct}%)",
                    format_ns(x.median),
                    format_ns(y.median),
                    (y.median - x.median) / x.median * 100.0
                ))
            } else {
                None
            }
        })
        .collect()
}

/// Handles `--baselines-diff <a> <b>` if present: loads both dumps from
/// the baselines directory, prints the per-benchmark ns/iter delta and
/// percent, and returns `true` so `criterion_main!` skips the
/// benchmark groups entirely. Returns `false` when the flag is absent.
/// A malformed invocation or an unreadable/corrupt dump **exits with
/// status 1** — a CI step invoking the diff must fail loudly rather
/// than succeed having compared nothing — and so does any median
/// regression beyond `--fail-threshold <pct>` when the gate was
/// requested.
pub fn baselines_diff_if_requested() -> bool {
    let Some((a, b)) = parse_baselines_diff(std::env::args()) else {
        if std::env::args().any(|arg| arg == "--baselines-diff") {
            // The flag was given but its arguments did not parse; the
            // specific complaint is on stderr already.
            std::process::exit(1);
        }
        return false;
    };
    let threshold = match parse_fail_threshold(std::env::args()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("criterion shim: {e}");
            std::process::exit(1);
        }
    };
    let dir = baselines_dir();
    let load = |name: &str| -> Vec<(String, Option<BenchStats>)> {
        let path = dir.join(format!("{name}.json"));
        match std::fs::read_to_string(&path) {
            Ok(text) => match parse_baseline_dump(&text) {
                Ok(rows) => rows,
                Err(e) => {
                    eprintln!("criterion shim: {} is corrupt: {e}", path.display());
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("criterion shim: cannot read {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    };
    let (rows_a, rows_b) = (load(&a), load(&b));
    println!(
        "{:<44} {:>14} {:>14} {:>14} {:>10} {:>14} {:>14} {:>10} {:>10}",
        "benchmark",
        format!("{a} med"),
        format!("{b} med"),
        "delta ns",
        "delta %",
        format!("{a} min"),
        format!("{b} min"),
        format!("{a} sd"),
        format!("{b} sd"),
    );
    for line in diff_lines(&rows_a, &rows_b) {
        println!("{line}");
    }
    if let Some(pct) = threshold {
        let bad = regressions(&rows_a, &rows_b, pct);
        if !bad.is_empty() {
            eprintln!("criterion shim: {} regression(s) beyond {pct}%:", bad.len());
            for line in &bad {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
        println!("no benchmark regressed beyond {pct}% of {a:?}");
    }
    true
}

fn format_ns_signed(ns: f64) -> String {
    if ns >= 0.0 {
        format!("+{}", format_ns(ns))
    } else {
        format!("-{}", format_ns(-ns))
    }
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

/// Per-benchmark timing handle passed to the closure.
#[derive(Debug)]
pub struct Bencher {
    stats: BenchStats,
}

impl Bencher {
    /// Times `routine`: grows the batch size until one measurement
    /// window is long enough to trust (~12 ms or 1M iterations), then
    /// takes several same-sized batches and records min / median /
    /// stddev over them — so a saved baseline carries the noise floor
    /// next to the headline number.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        const BATCHES: usize = 5;
        let target = Duration::from_millis(12);
        let mut iters: u64 = 1;
        let calibrated = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1_000_000 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            let grow = if elapsed.is_zero() {
                iters * 100
            } else {
                let scale = target.as_nanos() as f64 / elapsed.as_nanos() as f64;
                ((iters as f64 * scale * 1.2) as u64).max(iters + 1)
            };
            iters = grow.min(1_000_000);
        };
        // The calibration window is itself a full-size sample.
        let mut samples = vec![calibrated];
        for _ in 1..BATCHES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.stats = BenchStats::from_samples(&samples);
    }
}

/// Declares a group runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running every group, then saving a baseline dump if
/// `--save-baseline <name>` was passed. With `--baselines-diff <a> <b>`
/// the groups are skipped and the two saved dumps are compared instead.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if $crate::baselines_diff_if_requested() {
                return;
            }
            $( $group(); )+
            $crate::save_baseline_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> std::vec::IntoIter<String> {
        v.iter()
            .map(|s| (*s).to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_save_baseline_forms() {
        assert_eq!(
            parse_save_baseline(args(&["bench", "--save-baseline", "pr42"])),
            Some("pr42".to_string())
        );
        assert_eq!(
            parse_save_baseline(args(&["--save-baseline=main"])),
            Some("main".to_string())
        );
        assert_eq!(parse_save_baseline(args(&["bench", "--bench"])), None);
        // Missing or path-escaping names are rejected.
        assert_eq!(parse_save_baseline(args(&["--save-baseline"])), None);
        assert_eq!(
            parse_save_baseline(args(&["--save-baseline", "../evil"])),
            None
        );
    }

    #[test]
    fn parses_baselines_diff_form() {
        assert_eq!(
            parse_baselines_diff(args(&["bench", "--baselines-diff", "main", "pr"])),
            Some(("main".to_string(), "pr".to_string()))
        );
        assert_eq!(parse_baselines_diff(args(&["--baselines-diff", "a"])), None);
        assert_eq!(
            parse_baselines_diff(args(&["--baselines-diff", "../x", "b"])),
            None
        );
        assert_eq!(parse_baselines_diff(args(&["--save-baseline", "a"])), None);
    }

    fn stats(median: f64, min: f64, stddev: f64) -> BenchStats {
        BenchStats {
            median,
            min,
            stddev,
        }
    }

    #[test]
    fn baseline_dump_round_trips_through_the_parser() {
        let rows = vec![
            ("scheduler/10k".to_string(), stats(123.456, 120.5, 2.25)),
            (
                "iarm \"q\\z\"".to_string(),
                stats(f64::NAN, f64::NAN, f64::NAN),
            ),
            ("plain".to_string(), stats(7.0, 7.0, 0.0)),
        ];
        let parsed = parse_baseline_dump(&baseline_json("pr", &rows)).expect("parses");
        assert_eq!(
            parsed,
            vec![
                (
                    "scheduler/10k".to_string(),
                    Some(stats(123.456, 120.5, 2.25))
                ),
                ("iarm \"q\\z\"".to_string(), None),
                ("plain".to_string(), Some(stats(7.0, 7.0, 0.0))),
            ]
        );
        // Empty dumps parse to nothing.
        assert_eq!(
            parse_baseline_dump("{\"baseline\":\"x\",\"benchmarks\":{}}").expect("parses"),
            vec![]
        );
        assert!(parse_baseline_dump("{\"nope\":1}").is_err());
    }

    #[test]
    fn legacy_scalar_dumps_still_parse() {
        // Dumps saved before the statistics upgrade stored a bare
        // ns/iter number; they map to median == min with zero stddev.
        let parsed = parse_baseline_dump(
            "{\"baseline\":\"old\",\"benchmarks\":{\"a\":123.456,\"b\":null,\"c\":7.0}}",
        )
        .expect("parses");
        assert_eq!(
            parsed,
            vec![
                ("a".to_string(), Some(stats(123.456, 123.456, 0.0))),
                ("b".to_string(), None),
                ("c".to_string(), Some(stats(7.0, 7.0, 0.0))),
            ]
        );
    }

    #[test]
    fn parses_fail_threshold_forms() {
        assert_eq!(
            parse_fail_threshold(args(&["--fail-threshold", "25"])).unwrap(),
            Some(25.0)
        );
        assert_eq!(
            parse_fail_threshold(args(&["--fail-threshold=12.5"])).unwrap(),
            Some(12.5)
        );
        assert_eq!(parse_fail_threshold(args(&["bench"])).unwrap(), None);
        assert!(parse_fail_threshold(args(&["--fail-threshold"])).is_err());
        assert!(parse_fail_threshold(args(&["--fail-threshold", "x"])).is_err());
        assert!(parse_fail_threshold(args(&["--fail-threshold", "-3"])).is_err());
        assert!(parse_fail_threshold(args(&["--fail-threshold", "inf"])).is_err());
    }

    #[test]
    fn regression_gate_flags_only_real_regressions() {
        let a = vec![
            ("fast".to_string(), Some(stats(100.0, 100.0, 0.0))),
            ("slow".to_string(), Some(stats(100.0, 100.0, 0.0))),
            ("gone".to_string(), Some(stats(100.0, 100.0, 0.0))),
            ("skipped".to_string(), None),
        ];
        let b = vec![
            ("fast".to_string(), Some(stats(50.0, 50.0, 0.0))),
            ("slow".to_string(), Some(stats(140.0, 140.0, 0.0))),
            ("new".to_string(), Some(stats(9e9, 9e9, 0.0))),
            ("skipped".to_string(), Some(stats(1.0, 1.0, 0.0))),
        ];
        // 40% over on "slow" trips a 25% gate; improvements, one-sided
        // and null benchmarks never do.
        let bad = regressions(&a, &b, 25.0);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].starts_with("slow:"), "{}", bad[0]);
        // A 50% gate lets the same diff through.
        assert!(regressions(&a, &b, 50.0).is_empty());
    }

    #[test]
    fn baseline_dir_honours_the_environment_override() {
        // Serialised within this test: set, read, restore.
        std::env::set_var("CRITERION_BASELINE_DIR", "/tmp/bench-dumps");
        assert_eq!(
            baselines_dir(),
            std::path::PathBuf::from("/tmp/bench-dumps")
        );
        std::env::set_var("CRITERION_BASELINE_DIR", "");
        assert!(baselines_dir().ends_with("criterion-baselines"));
        std::env::remove_var("CRITERION_BASELINE_DIR");
        assert!(baselines_dir().ends_with("criterion-baselines"));
    }

    #[test]
    fn bench_stats_order_statistics() {
        let s = BenchStats::from_samples(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        // Population stddev of {1,3,5} = sqrt(8/3).
        assert!((s.stddev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        // Even-length median averages the middle pair.
        let e = BenchStats::from_samples(&[4.0, 2.0, 8.0, 6.0]);
        assert_eq!(e.median, 5.0);
        assert!(BenchStats::from_samples(&[]).median.is_nan());
    }

    #[test]
    fn diff_reports_delta_percent_and_noise_columns() {
        let a = vec![
            ("k".to_string(), Some(stats(100.0, 95.0, 3.0))),
            ("only_a".to_string(), Some(stats(1.0, 1.0, 0.0))),
        ];
        let b = vec![
            ("k".to_string(), Some(stats(150.0, 140.0, 4.5))),
            ("only_b".to_string(), Some(stats(2.0, 2.0, 0.0))),
        ];
        let lines = diff_lines(&a, &b);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("+50.00%"), "line: {}", lines[0]);
        assert!(lines[0].contains("+50.0"), "line: {}", lines[0]);
        // The min and stddev columns ride along.
        assert!(lines[0].contains("95.00"), "line: {}", lines[0]);
        assert!(lines[0].contains("140"), "line: {}", lines[0]);
        assert!(lines[0].contains("4.50"), "line: {}", lines[0]);
        assert!(lines[1].contains("n/a"), "line: {}", lines[1]);
        assert!(lines[2].contains("n/a"), "line: {}", lines[2]);
        // A regression and an improvement carry opposite signs.
        let down = diff_lines(
            &[("k".to_string(), Some(stats(200.0, 200.0, 0.0)))],
            &[("k".to_string(), Some(stats(100.0, 100.0, 0.0)))],
        );
        assert!(down[0].contains("-50.00%"), "line: {}", down[0]);
    }

    #[test]
    fn baseline_json_is_valid_and_ordered() {
        let rows = vec![
            ("scheduler/10k".to_string(), stats(123.456, 120.0, 2.5)),
            (
                "iarm \"q\"".to_string(),
                stats(f64::NAN, f64::NAN, f64::NAN),
            ),
        ];
        let json = baseline_json("pr", &rows);
        assert_eq!(
            json,
            "{\"baseline\":\"pr\",\"benchmarks\":{\"scheduler/10k\":\
             {\"median\":123.456,\"min\":120.000,\"stddev\":2.500},\
             \"iarm \\\"q\\\"\":null}}"
        );
    }
}
