//! Minimal offline stand-in for `criterion`.
//!
//! Implements the walltime-only subset the workspace's bench harness
//! uses: [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Each
//! benchmark is timed with `std::time::Instant` over an adaptively-sized
//! batch and reported as ns/iter — no statistics, plots or baselines.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as the benchmark `id` and prints its timing.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            ns_per_iter: f64::NAN,
        };
        f(&mut bencher);
        println!("{id:<44} {:>14} ns/iter", format_ns(bencher.ns_per_iter));
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

/// Per-benchmark timing handle passed to the closure.
#[derive(Debug)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, growing the batch size until the measurement
    /// window is long enough to trust (~50 ms or 1M iterations).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        let target = Duration::from_millis(50);
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1_000_000 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            let grow = if elapsed.is_zero() {
                iters * 100
            } else {
                let scale = target.as_nanos() as f64 / elapsed.as_nanos() as f64;
                ((iters as f64 * scale * 1.2) as u64).max(iters + 1)
            };
            iters = grow.min(1_000_000);
        }
    }
}

/// Declares a group runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
