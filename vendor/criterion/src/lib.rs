//! Minimal offline stand-in for `criterion`.
//!
//! Implements the walltime-only subset the workspace's bench harness
//! uses: [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Each
//! benchmark is timed with `std::time::Instant` over an adaptively-sized
//! batch and reported as ns/iter — no statistics or plots.
//!
//! One baseline feature is supported: passing
//! `--save-baseline <name>` (as real criterion accepts) dumps every
//! benchmark's ns/iter to `<target>/criterion-baselines/<name>.json`
//! so CI can diff walltimes between runs:
//!
//! ```json
//! {"baseline":"pr","benchmarks":{"scheduler/10k_aaps_16banks":123.4}}
//! ```

pub use std::hint::black_box;

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Results accumulated across every group of the process, drained by
/// [`save_baseline_if_requested`] at the end of `criterion_main!`.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as the benchmark `id` and prints its timing.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            ns_per_iter: f64::NAN,
        };
        f(&mut bencher);
        println!("{id:<44} {:>14} ns/iter", format_ns(bencher.ns_per_iter));
        RESULTS
            .lock()
            .expect("benchmark results poisoned")
            .push((id.to_string(), bencher.ns_per_iter));
        self
    }
}

/// Extracts the `--save-baseline <name>` argument, if present and sane
/// (a plain file-name component, to keep the dump inside the baselines
/// directory).
fn parse_save_baseline<I: Iterator<Item = String>>(mut args: I) -> Option<String> {
    while let Some(arg) = args.next() {
        let name = match arg.strip_prefix("--save-baseline=") {
            Some(rest) => Some(rest.to_string()),
            None if arg == "--save-baseline" => args.next(),
            None => None,
        };
        if let Some(name) = name {
            if !name.is_empty() && !name.contains(['/', '\\', '.']) {
                return Some(name);
            }
            eprintln!("criterion shim: ignoring invalid baseline name {name:?}");
            return None;
        }
    }
    None
}

/// Serialises the collected results as a single-line JSON document.
/// Benchmark ids in this workspace are `group/case` slugs; escaping
/// covers quotes and backslashes for safety.
fn baseline_json(name: &str, results: &[(String, f64)]) -> String {
    fn escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = format!("{{\"baseline\":\"{}\",\"benchmarks\":{{", escape(name));
    for (i, (id, ns)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let value = if ns.is_finite() {
            format!("{ns:.3}")
        } else {
            "null".to_string()
        };
        out.push_str(&format!("\"{}\":{}", escape(id), value));
    }
    out.push_str("}}");
    out
}

/// The build's `target` directory, derived from the running bench
/// executable (`<target>/<profile>/deps/<bench>-<hash>`): cargo runs
/// bench binaries with the *package* directory as cwd, so a relative
/// path would scatter dumps across workspace members.
fn target_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        let dir = std::path::PathBuf::from(dir);
        // A relative CARGO_TARGET_DIR is resolved by cargo against the
        // *invocation* cwd, which this process (running in the package
        // dir) cannot reconstruct — fall through to the executable's
        // path in that case, which is inside the real target dir either
        // way.
        if dir.is_absolute() {
            return dir;
        }
    }
    std::env::current_exe()
        .ok()
        .and_then(|exe| exe.ancestors().nth(3).map(std::path::Path::to_path_buf))
        .unwrap_or_else(|| "target".into())
}

/// Writes `<target>/criterion-baselines/<name>.json` when the process
/// was invoked with `--save-baseline <name>` (e.g.
/// `cargo bench --bench criterion_benches -- --save-baseline pr`).
/// Called automatically at the end of [`criterion_main!`]; a no-op
/// otherwise.
pub fn save_baseline_if_requested() {
    let Some(name) = parse_save_baseline(std::env::args()) else {
        return;
    };
    let dir = target_dir().join("criterion-baselines");
    let results = RESULTS.lock().expect("benchmark results poisoned");
    let payload = baseline_json(&name, &results);
    let path = dir.join(format!("{name}.json"));
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, payload)) {
        Ok(()) => println!("saved baseline {name:?} -> {}", path.display()),
        Err(e) => eprintln!("criterion shim: could not save baseline: {e}"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

/// Per-benchmark timing handle passed to the closure.
#[derive(Debug)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, growing the batch size until the measurement
    /// window is long enough to trust (~50 ms or 1M iterations).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        let target = Duration::from_millis(50);
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1_000_000 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            let grow = if elapsed.is_zero() {
                iters * 100
            } else {
                let scale = target.as_nanos() as f64 / elapsed.as_nanos() as f64;
                ((iters as f64 * scale * 1.2) as u64).max(iters + 1)
            };
            iters = grow.min(1_000_000);
        }
    }
}

/// Declares a group runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running every group, then saving a baseline dump if
/// `--save-baseline <name>` was passed.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::save_baseline_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> std::vec::IntoIter<String> {
        v.iter()
            .map(|s| (*s).to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_save_baseline_forms() {
        assert_eq!(
            parse_save_baseline(args(&["bench", "--save-baseline", "pr42"])),
            Some("pr42".to_string())
        );
        assert_eq!(
            parse_save_baseline(args(&["--save-baseline=main"])),
            Some("main".to_string())
        );
        assert_eq!(parse_save_baseline(args(&["bench", "--bench"])), None);
        // Missing or path-escaping names are rejected.
        assert_eq!(parse_save_baseline(args(&["--save-baseline"])), None);
        assert_eq!(
            parse_save_baseline(args(&["--save-baseline", "../evil"])),
            None
        );
    }

    #[test]
    fn baseline_json_is_valid_and_ordered() {
        let rows = vec![
            ("scheduler/10k".to_string(), 123.456),
            ("iarm \"q\"".to_string(), f64::NAN),
        ];
        let json = baseline_json("pr", &rows);
        assert_eq!(
            json,
            "{\"baseline\":\"pr\",\"benchmarks\":{\"scheduler/10k\":123.456,\"iarm \\\"q\\\"\":null}}"
        );
    }
}
