//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline `serde` shim.
//!
//! The real `serde_derive` (and its `syn`/`quote` dependency tree) is not
//! available in this sandbox, so this crate parses the derive input with
//! nothing but the built-in `proc_macro` token API. It supports exactly
//! the shapes that appear in this workspace:
//!
//! * structs with named fields, tuple structs (newtype-transparent for a
//!   single field), and unit structs;
//! * enums with unit, tuple and struct variants, serialised with serde's
//!   external tagging (`"Variant"` / `{"Variant": ...}`).
//!
//! Generic types are not supported — no serialised type in the workspace
//! is generic. `#[derive(Deserialize)]` expands to nothing: the workspace
//! only ever serialises.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by lowering the type into a `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand_serialize(input) {
        Ok(out) => out.parse().expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Accepted for source compatibility; expands to nothing (the workspace
/// never deserialises).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

fn expand_serialize(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Skip attributes and visibility to find `struct` / `enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(_) => i += 1,
            None => return Err("no struct or enum in derive input".into()),
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("missing type name in derive input".into()),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim: generic type `{name}` cannot derive Serialize"
            ));
        }
    }

    let body = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                struct_body(&name, &Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                struct_body(&name, &Fields::Tuple(count_top_level_fields(g.stream())))
            }
            _ => struct_body(&name, &Fields::Unit),
        }
    } else {
        let group = loop {
            match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
                Some(_) => i += 1,
                None => return Err(format!("enum `{name}` has no body")),
            }
        };
        enum_body(&name, &parse_variants(group.stream())?)
    };

    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    ))
}

fn struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Unit => {
            let _ = name;
            "::serde::Value::Null".to_string()
        }
    }
}

fn enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = Vec::new();
    for (vname, fields) in variants {
        let arm = match fields {
            Fields::Unit => {
                format!("{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),")
            }
            Fields::Tuple(1) => format!(
                "{name}::{vname}(f0) => ::serde::Value::Object(vec![({vname:?}.to_string(), \
                 ::serde::Serialize::to_value(f0))]),"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!(
                    "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), \
                     ::serde::Value::Array(vec![{}]))]),",
                    binds.join(", "),
                    items.join(", ")
                )
            }
            Fields::Named(fnames) => {
                let binds = fnames.join(", ");
                let entries: Vec<String> = fnames
                    .iter()
                    .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))"))
                    .collect();
                format!(
                    "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![({vname:?}\
                     .to_string(), ::serde::Value::Object(vec![{}]))]),",
                    entries.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

/// Parses `name: Type, ...` out of a brace group, skipping attributes and
/// visibility, tracking `<...>` depth so commas inside generics don't
/// split fields.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "expected `:` after field `{}`",
                    fields.last().unwrap()
                ))
            }
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        let mut prev_dash = false;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                let c = p.as_char();
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' && !prev_dash {
                    angle_depth -= 1;
                } else if c == ',' && angle_depth == 0 {
                    i += 1;
                    break;
                }
                prev_dash = c == '-';
            } else {
                prev_dash = false;
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Counts tuple-struct fields: top-level commas + 1 (angle-depth aware).
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    let mut trailing_comma = false;
    for tok in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = tok {
            let c = p.as_char();
            if c == '<' {
                angle_depth += 1;
            } else if c == '>' && !prev_dash {
                angle_depth -= 1;
            } else if c == ',' && angle_depth == 0 {
                count += 1;
                trailing_comma = true;
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// Parses enum variants: `Name`, `Name(T, ...)`, `Name { f: T, ... }`,
/// optionally with discriminants, separated by top-level commas.
fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip attributes on the variant.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let vname = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        variants.push((vname, fields));
        // Skip any discriminant up to the separating comma.
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    Ok(variants)
}
