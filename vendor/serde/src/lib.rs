//! Minimal, self-contained stand-in for the `serde` crate.
//!
//! The build environment for this workspace is fully offline, so the real
//! crates.io `serde` cannot be fetched. This shim provides the subset the
//! workspace actually uses: a `Serialize` trait that lowers values into an
//! in-memory JSON [`Value`] tree (consumed by the sibling `serde_json`
//! shim), plus the `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! macros re-exported from `serde_derive`.
//!
//! The data model follows serde's JSON mapping: structs become objects,
//! newtype structs are transparent, unit enum variants become strings and
//! payload-carrying variants become externally-tagged single-key objects.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// An owned, ordered JSON value tree produced by [`Serialize::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (covers every integer the workspace serialises).
    Int(i128),
    /// Unsigned integer wider than `i128::MAX` (e.g. big `u128` counts).
    UInt(u128),
    /// Floating point number; non-finite values render as `null`.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves into a JSON [`Value`].
///
/// This replaces serde's `Serialize`/`Serializer` pair with a single
/// concrete method, which is all the offline workspace needs.
pub trait Serialize {
    /// Convert `self` into an owned JSON value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        if *self <= i128::MAX as u128 {
            Value::Int(*self as i128)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
