//! Offline shim for the `rayon` crate: the exact API subset the
//! workspace uses, implemented with `std::thread::scope`.
//!
//! The real rayon is a work-stealing deque runtime; the engine only
//! needs order-preserving `par_iter().map(..).collect()` over slices
//! (per-shard pricing, per-config figure sweeps), so this shim splits
//! the slice into one contiguous chunk per worker thread and joins them
//! in index order. Guarantees relied upon by the engine:
//!
//! - **Order preservation**: `collect()` yields results in input order,
//!   regardless of which thread computed them — parallel pricing must
//!   fold channel costs in the same order as the serial path so figure
//!   JSON stays bit-for-bit identical.
//! - **Panic propagation**: a panicking closure panics the caller (as
//!   rayon does), so assertion failures inside shard pricing surface.
//! - **`RAYON_NUM_THREADS`**: honoured like the real crate; `1` forces
//!   the serial path (no threads spawned), which tests use to compare
//!   serial and parallel pricing bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Everything a `use rayon::prelude::*;` caller expects.
pub mod prelude {
    pub use crate::{ParIter, ParMap, ParallelSlice};
}

/// Number of worker threads the pool would use: `RAYON_NUM_THREADS` if
/// set and positive, else [`std::thread::available_parallelism`].
#[must_use]
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Extension trait adding `par_iter` to slices (the only entry point
/// the workspace uses; the real crate derives it from `IntoParallelRefIterator`).
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over `&T` items, in order.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over a slice. Only `map` is provided — the engine
/// prices shards by mapping each shard to its projected cost.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `f`, to be materialised by
    /// [`ParMap::collect`].
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
            min_len: 1,
        }
    }
}

/// A mapped parallel iterator; terminal operation is [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
    min_len: usize,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Sets the minimum number of items a worker must receive before an
    /// extra thread is spawned (rayon's `with_min_len`): callers use it
    /// to keep tiny shard lists on the calling thread.
    #[must_use]
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Runs the map and gathers results **in input order**.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }

    fn run(self) -> Vec<R> {
        let n = self.items.len();
        let workers = current_num_threads().min(n / self.min_len.max(1)).max(1);
        if workers <= 1 || n <= 1 {
            return self.items.iter().map(self.f).collect();
        }
        // One contiguous chunk per worker, sized by largest remainder so
        // chunk lengths differ by at most one.
        let base = n / workers;
        let extra = n % workers;
        let f = &self.f;
        let mut chunks: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            let mut start = 0usize;
            for w in 0..workers {
                let len = base + usize::from(w < extra);
                let part = &self.items[start..start + len];
                start += len;
                handles.push(scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()));
            }
            for h in handles {
                match h.join() {
                    Ok(v) => chunks.push(v),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        let mut out = Vec::with_capacity(n);
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = items.par_iter().map(|v| v * 2).collect();
        assert_eq!(out, (0..1000).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<i32> = Vec::new();
        let out: Vec<i32> = none.par_iter().map(|v| *v).collect();
        assert!(out.is_empty());
        let one = [7];
        let out: Vec<i32> = one.par_iter().map(|v| v + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn borrows_non_static_data() {
        let base = vec![1.5f64, 2.5, 3.5];
        let scale = 2.0;
        let out: Vec<f64> = base.par_iter().map(|v| v * scale).collect();
        assert_eq!(out, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn min_len_keeps_small_inputs_serial() {
        let items = [1, 2, 3];
        let out: Vec<i32> = items.par_iter().map(|v| v * 10).with_min_len(64).collect();
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        let _: Vec<usize> = items
            .par_iter()
            .map(|v| {
                assert!(*v != 63, "boom");
                *v
            })
            .collect();
    }

    #[test]
    fn matches_serial_fold_bit_for_bit() {
        // The engine folds f64 costs computed per shard; parallel
        // pricing must produce the identical Vec so downstream folds
        // are unchanged.
        let items: Vec<f64> = (0..257).map(|i| f64::from(i) * 0.3).collect();
        let par: Vec<f64> = items.par_iter().map(|v| v.sin() * v).collect();
        let ser: Vec<f64> = items.iter().map(|v| v.sin() * v).collect();
        assert_eq!(
            par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            ser.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
