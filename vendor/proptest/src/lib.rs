//! Minimal offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), [`Strategy`]
//! implementations for numeric ranges and tuples, [`any`] over common
//! `Arbitrary` types, `prop::collection::vec`, `prop::sample::select`,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Shrinking is the simple halving kind: when a case fails, each
//! integer input is repeatedly halved toward its range's lower bound
//! (tuples shrink component-wise, left to right) while the failure
//! reproduces, and the test re-panics with the minimised input's debug
//! representation. `vec(...)` strategies shrink too — the *length*
//! halves toward its lower bound first (dropping trailing elements),
//! then the surviving elements shrink left to right with their element
//! strategy. Float range strategies shrink by halving toward 0.0 (or
//! toward the range's boundary nearest zero when the range excludes
//! it), stopping at the range edge or once halving no longer moves the
//! value. Only `any` still reports the originally generated value.
//! Generation is deterministic — case `i` of test `f` always sees the
//! same inputs, so CI failures reproduce locally.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = ChaCha12Rng;

/// Runner configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure modes a property body can signal without panicking.
pub mod test_runner {
    /// Why a generated case did not count as a pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; the runner draws a
        /// replacement case.
        Reject,
    }

    pub use crate::ProptestConfig as Config;
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes one smaller value to retry a failing case with, or
    /// `None` when `v` is already minimal for this strategy. The default
    /// (no shrinking) suits strategies without a natural order.
    fn shrink(&self, v: &Self::Value) -> Option<Self::Value> {
        let _ = v;
        None
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, v: &Self::Value) -> Option<Self::Value> {
        (**self).shrink(v)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, v: &$t) -> Option<$t> {
                shrink_toward(*v, self.start)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, v: &$t) -> Option<$t> {
                shrink_toward(*v, *self.start())
            }
        }

        impl Shrinkable for $t {
            fn halve_toward(self, lo: Self) -> Option<Self> {
                if self == lo {
                    return None;
                }
                // Halve the distance to the lower bound; if the
                // distance overflows the type, jump straight to it.
                match self.checked_sub(lo) {
                    Some(d) => Some(lo + d / 2),
                    None => Some(lo),
                }
            }
        }
    )*};
}

/// Integer types that can halve toward a lower bound (the shim's only
/// shrinking primitive).
trait Shrinkable: Sized {
    fn halve_toward(self, lo: Self) -> Option<Self>;
}

/// One halving step of `v` toward `lo`; `None` once `v == lo`.
fn shrink_toward<T: Shrinkable>(v: T, lo: T) -> Option<T> {
    v.halve_toward(lo)
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, v: &$t) -> Option<$t> {
                // Halve toward 0.0 — or toward the range boundary
                // nearest zero when the range excludes zero — so a
                // failing float reports a small reproducer instead of
                // the raw generated value. The chain stops once a step
                // would leave the range or no longer moves the value
                // (the runner bounds the chain length anyway).
                let target: $t = if self.start > 0.0 {
                    self.start
                } else if self.end <= 0.0 {
                    // end is exclusive, so aim just inside it.
                    self.end
                } else {
                    0.0
                };
                let next = target + (*v - target) / 2.0;
                if next == *v || !(self.start..self.end).contains(&next) {
                    return None;
                }
                Some(next)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Option<Self::Value> {
                // Component-wise, left to right: the first component
                // that can still shrink produces the candidate.
                $(
                    if let Some(smaller) = self.$n.shrink(&v.$n) {
                        let mut out = v.clone();
                        out.$n = smaller;
                        return Some(out);
                    }
                )+
                None
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical "anything goes" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(-1.0e9f64..1.0e9)
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Arbitrary),+> Arbitrary for ($($s,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($s::arbitrary(rng),)+)
            }
        }
    )*};
}

impl_arbitrary_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy adapter produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Inclusive bounds on generated collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "vec strategy: empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// lengths are drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, v: &Self::Value) -> Option<Self::Value> {
            // Length first: halve toward the minimum size, dropping
            // trailing elements — a shorter failing vector localises
            // the problem faster than smaller elements do.
            if v.len() > self.size.lo {
                let target = self.size.lo + (v.len() - self.size.lo) / 2;
                return Some(v[..target].to_vec());
            }
            // Then elements, left to right: the first element that can
            // still shrink produces the candidate.
            for (i, x) in v.iter().enumerate() {
                if let Some(smaller) = self.element.shrink(x) {
                    let mut out = v.clone();
                    out[i] = smaller;
                    return Some(out);
                }
            }
            None
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy choosing uniformly among a fixed set of options.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Generates one of `options`, uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: no options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Builds the deterministic RNG for case `case` of test `name`.
#[doc(hidden)]
#[must_use]
pub fn __new_rng(case: u64, name: &str) -> TestRng {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// What happened when one generated case ran.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum __CaseOutcome {
    /// The body returned `Ok(())`.
    Pass,
    /// `prop_assume!` rejected the inputs.
    Reject,
    /// The body panicked (an assertion failed).
    Fail,
}

/// Runs the case body over `vals`, converting panics into
/// [`__CaseOutcome::Fail`] so the runner can shrink before re-raising.
#[doc(hidden)]
pub fn __run_case<V, F>(vals: &V, case: &F) -> __CaseOutcome
where
    F: Fn(&V) -> Result<(), test_runner::TestCaseError>,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(vals))) {
        Ok(Ok(())) => __CaseOutcome::Pass,
        Ok(Err(test_runner::TestCaseError::Reject)) => __CaseOutcome::Reject,
        Err(_) => __CaseOutcome::Fail,
    }
}

/// The [`proptest!`] runner: draws cases deterministically until
/// `config.cases` accepted cases pass, shrinking and re-panicking on
/// the first failure. Lives here (not in the macro body) so the case
/// closure's parameter type is pinned by `F`'s bound.
#[doc(hidden)]
pub fn __run_property<S, F>(name: &str, config: &ProptestConfig, strategy: &S, case: &F)
where
    S: Strategy,
    S::Value: core::fmt::Debug,
    F: Fn(&S::Value) -> Result<(), test_runner::TestCaseError>,
{
    let mut accepted: u32 = 0;
    let mut case_idx: u64 = 0;
    let budget: u64 = u64::from(config.cases) * 20 + 1000;
    while accepted < config.cases {
        assert!(
            case_idx < budget,
            "proptest shim: `{name}` rejected too many cases (prop_assume too strict?)",
        );
        let mut rng = __new_rng(case_idx, name);
        case_idx += 1;
        let vals = strategy.generate(&mut rng);
        match __run_case(&vals, case) {
            __CaseOutcome::Pass => accepted += 1,
            __CaseOutcome::Reject => {}
            __CaseOutcome::Fail => __shrink_and_fail(name, strategy, vals, case),
        }
    }
}

/// Shrinks a failing input: follows the strategy's halving chain while
/// the failure keeps reproducing (bounded, in case shrinking thrashes),
/// then panics with the minimised input. The original assertion's
/// message is on stderr above, printed by the panic hook when the case
/// first failed.
#[doc(hidden)]
pub fn __shrink_and_fail<S, F>(name: &str, strategy: &S, first_failure: S::Value, case: &F) -> !
where
    S: Strategy,
    S::Value: core::fmt::Debug,
    F: Fn(&S::Value) -> Result<(), test_runner::TestCaseError>,
{
    // Silence the panic hook while probing shrunk candidates — every
    // still-failing probe would otherwise print a full panic trace,
    // burying the original assertion message printed above.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut best = first_failure;
    for _ in 0..64 {
        let Some(candidate) = strategy.shrink(&best) else {
            break;
        };
        if __run_case(&candidate, case) == __CaseOutcome::Fail {
            best = candidate;
        } else {
            // The halving chain lost the failure; stop at the last
            // reproducing input.
            break;
        }
    }
    std::panic::set_hook(prev_hook);
    panic!("proptest shim: property `{name}` failed; minimal failing input: {best:?}");
}

/// Defines property tests. Mirrors `proptest::proptest!` for the forms
/// used in this workspace.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::__run_property(
                stringify!($name),
                &config,
                &($($strat,)+),
                &|__vals| {
                    let ($($pat,)+) = ::std::clone::Clone::clone(__vals);
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond, "prop_assert failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Rejects the current case unless the condition holds; the runner draws
/// a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection`, `prop::sample`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(
            a in 1usize..=8,
            b in 0u32..100,
            f in 0.25f64..0.75,
            items in prop::collection::vec((0u64..10, any::<bool>()), 2..5),
            pick in prop::sample::select(vec![16u32, 32, 64]),
        ) {
            prop_assert!((1..=8).contains(&a));
            prop_assert!(b < 100, "b = {}", b);
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((2..5).contains(&items.len()));
            for (v, _) in &items {
                prop_assert!(*v < 10);
            }
            prop_assert!([16u32, 32, 64].contains(&pick));
        }

        #[test]
        fn assume_rejects((x, y) in (0u32..10, 0u32..10)) {
            prop_assume!(x != y);
            prop_assert!(x != y);
        }
    }

    #[test]
    fn integer_ranges_shrink_toward_lower_bound() {
        let s = 5i64..100;
        let mut v = 99i64;
        let mut steps = 0;
        while let Some(n) = Strategy::shrink(&s, &v) {
            assert!(n < v, "shrink must make progress: {n} from {v}");
            assert!(n >= 5, "shrink must stay in range: {n}");
            v = n;
            steps += 1;
        }
        assert_eq!(v, 5, "chain bottoms out at the lower bound");
        assert!(steps <= 8, "halving converges in log steps: {steps}");
        // Inclusive ranges shrink the same way.
        let inc = 2u32..=64;
        assert_eq!(Strategy::shrink(&inc, &64), Some(33));
        assert_eq!(Strategy::shrink(&inc, &2), None);
    }

    #[test]
    fn float_ranges_shrink_toward_zero_by_halving() {
        // A zero-spanning range halves straight toward 0.0.
        let s = -1.0e9f64..1.0e9;
        assert_eq!(Strategy::shrink(&s, &800.0), Some(400.0));
        assert_eq!(Strategy::shrink(&s, &-800.0), Some(-400.0));
        let mut v = 6.4e8f64;
        let mut steps = 0;
        while let Some(n) = Strategy::shrink(&s, &v) {
            assert!(n.abs() < v.abs(), "progress: {n} from {v}");
            assert!((-1.0e9..1.0e9).contains(&n), "stays in range: {n}");
            v = n;
            steps += 1;
            if steps >= 200 {
                break;
            }
        }
        assert!(v.abs() < 1.0, "chain approaches zero, got {v}");

        // A positive range halves toward its lower bound instead.
        let pos = 5.0f64..100.0;
        assert_eq!(Strategy::shrink(&pos, &85.0), Some(45.0));
        assert_eq!(Strategy::shrink(&pos, &5.0), None);
        // A negative range halves toward its upper (nearest-zero) edge
        // and never leaves the exclusive bound.
        let neg = -100.0f64..-10.0;
        let n = Strategy::shrink(&neg, &-80.0).expect("shrinks");
        assert!((-80.0..-10.0).contains(&n), "moved toward -10: {n}");
        // f32 shrinks the same way.
        assert_eq!(Strategy::shrink(&(0.0f32..8.0), &4.0f32), Some(2.0f32));
    }

    #[test]
    fn failing_float_case_reports_minimised_input() {
        // Property "|x| < 10" over the full range: the halving chain
        // from any failing seed lands just at/above the boundary
        // instead of reporting the raw 8-digit seed.
        let strategy = (-1.0e9f64..1.0e9,);
        let case = |vals: &(f64,)| -> Result<(), TestCaseError> {
            assert!(vals.0.abs() < 10.0, "too big: {}", vals.0);
            Ok(())
        };
        let payload = std::panic::catch_unwind(|| {
            crate::__shrink_and_fail("float_demo", &strategy, (5.12e8,), &case)
        })
        .expect_err("must re-panic after shrinking");
        let msg = payload
            .downcast_ref::<String>()
            .expect("shim panics with a formatted String");
        let v: f64 = msg
            .split("minimal failing input: (")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .expect("payload carries the input")
            .parse()
            .expect("a float");
        assert!(
            (10.0..20.0).contains(&v),
            "minimised to the boundary decade, got {v} in {msg}"
        );
    }

    #[test]
    fn tuples_shrink_component_wise_left_to_right() {
        let s = (0u32..100, 0u32..100);
        // First component shrinks first...
        assert_eq!(Strategy::shrink(&s, &(40, 7)), Some((20, 7)));
        // ...and once it is minimal, the second takes over.
        assert_eq!(Strategy::shrink(&s, &(0, 7)), Some((0, 3)));
        assert_eq!(Strategy::shrink(&s, &(0, 0)), None);
        // Vector components shrink their elements once the (fixed)
        // length is minimal, before later tuple components get a turn.
        let vs = (prop::collection::vec(0u8..10, 3), 0u32..100);
        assert_eq!(
            Strategy::shrink(&vs, &(vec![9, 9, 9], 8)),
            Some((vec![4, 9, 9], 8))
        );
        assert_eq!(
            Strategy::shrink(&vs, &(vec![0, 0, 0], 8)),
            Some((vec![0, 0, 0], 4))
        );
    }

    #[test]
    fn vectors_shrink_length_first_then_elements() {
        let s = prop::collection::vec(1u32..100, 1..=8);
        // Length halves toward the lower bound, dropping the tail...
        assert_eq!(
            Strategy::shrink(&s, &vec![7, 8, 9, 10, 11]),
            Some(vec![7, 8, 9])
        );
        assert_eq!(Strategy::shrink(&s, &vec![7, 8]), Some(vec![7]));
        // ...then elements halve toward their own lower bound.
        assert_eq!(Strategy::shrink(&s, &vec![9]), Some(vec![5]));
        assert_eq!(Strategy::shrink(&s, &vec![1]), None);
        // The full chain from any failing input bottoms out at the
        // minimal vector.
        let mut v = vec![63u32, 17, 4, 99];
        let mut steps = 0;
        while let Some(next) = Strategy::shrink(&s, &v) {
            v = next;
            steps += 1;
            assert!(steps < 64, "chain must terminate");
        }
        assert_eq!(v, vec![1]);
    }

    #[test]
    fn failing_vector_case_reports_minimised_input() {
        // Property "all elements < 10" over vec(0..1000, 1..=6): the
        // halving chain first drops the vector to one element, then
        // halves that element down to the boundary value 10.
        let strategy = (prop::collection::vec(0u32..1000, 1usize..=6),);
        let case = |vals: &(Vec<u32>,)| -> Result<(), TestCaseError> {
            assert!(vals.0.iter().all(|&x| x < 10), "too big: {:?}", vals.0);
            Ok(())
        };
        let payload = std::panic::catch_unwind(|| {
            crate::__shrink_and_fail("vec_demo", &strategy, (vec![700, 1, 2, 3, 900, 12],), &case)
        })
        .expect_err("must re-panic after shrinking");
        let msg = payload
            .downcast_ref::<String>()
            .expect("shim panics with a formatted String");
        assert!(
            msg.contains("minimal failing input: ([10],)"),
            "unexpected message: {msg}"
        );
    }

    #[test]
    fn failing_case_reports_minimised_input() {
        // Property "x < 10" over 0..1000: the halving chain from any
        // failing seed must land on exactly 10.
        let strategy = (0u32..1000,);
        let case = |vals: &(u32,)| -> Result<(), TestCaseError> {
            assert!(vals.0 < 10, "too big: {}", vals.0);
            Ok(())
        };
        let payload =
            std::panic::catch_unwind(|| crate::__shrink_and_fail("demo", &strategy, (700,), &case))
                .expect_err("must re-panic after shrinking");
        let msg = payload
            .downcast_ref::<String>()
            .expect("shim panics with a formatted String");
        assert!(
            msg.contains("minimal failing input: (10,)"),
            "unexpected message: {msg}"
        );
    }
}
