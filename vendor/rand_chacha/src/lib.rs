//! Minimal offline stand-in for `rand_chacha`: a genuine ChaCha block
//! function driving [`rand::RngCore`], with 8-, 12- and 20-round
//! variants. Deterministic for a given seed, which is all the workspace
//! relies on (it never compares against the reference crate's streams).

use rand::{RngCore, SeedableRng};

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buf: [u32; 16],
            idx: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buf = chacha_block::<{ $rounds }>(&self.key, self.counter);
                self.counter = self.counter.wrapping_add(1);
                self.idx = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, chunk) in seed.chunks(4).enumerate() {
                    let mut word = [0u8; 4];
                    word.copy_from_slice(chunk);
                    key[i] = u32::from_le_bytes(word);
                }
                let mut rng = $name {
                    key,
                    counter: 0,
                    buf: [0; 16],
                    idx: 16,
                };
                rng.refill();
                rng.idx = 0;
                rng
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.idx >= 16 {
                    self.refill();
                }
                let word = self.buf[self.idx];
                self.idx += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = u64::from(self.next_u32());
                let hi = u64::from(self.next_u32());
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 double... rounds (8-round variant)."
);
chacha_rng!(
    ChaCha12Rng,
    12,
    "ChaCha with 12 rounds (rand's default generator)."
);
chacha_rng!(
    ChaCha20Rng,
    20,
    "ChaCha with 20 rounds (the IETF cipher core)."
);

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block<const ROUNDS: usize>(key: &[u32; 8], counter: u64) -> [u32; 16] {
    let mut state = [0u32; 16];
    // "expand 32-byte k" constants.
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646E;
    state[2] = 0x7962_2D32;
    state[3] = 0x6B20_6574;
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = 0;
    state[15] = 0;

    let initial = state;
    for _ in 0..ROUNDS / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial.iter()) {
        *word = word.wrapping_add(*init);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_streams() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let mut c = ChaCha12Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn works_with_rng_trait() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        for _ in 0..100 {
            let v = rng.gen_range(0i64..256);
            assert!((0..256).contains(&v));
        }
    }

    #[test]
    fn chacha20_known_answer() {
        // RFC 8439 §2.3.2 test vector: key 00 01 .. 1f, counter 1 would
        // need the nonce plumbed; with an all-zero nonce and counter 0 we
        // at least pin the block function against regressions.
        let key = [0u32; 8];
        let block = chacha_block::<20>(&key, 0);
        // First word of ChaCha20 keystream for zero key/nonce/counter.
        assert_eq!(block[0], 0xADE0_B876);
    }
}
