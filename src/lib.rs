//! # Count2Multiply — reliable in-memory high-radix counting
//!
//! A complete, from-scratch Rust reproduction of *Count2Multiply: Reliable
//! In-Memory High-Radix Counting* (HPCA 2026). This umbrella crate
//! re-exports the workspace's public API:
//!
//! * [`dram`] — command-level DDR5 substrate (geometry, timing, scheduler,
//!   energy/area models).
//! * [`cim`] — bulk-bitwise compute-in-memory substrate with Ambit, FCDRAM,
//!   Pinatubo and MAGIC backends, μProgram IR and fault injection.
//! * [`ecc`] — Hamming/SECDED/BCH codes and the XOR-embedding CIM fault
//!   protection scheme (plus the TMR baseline).
//! * [`jc`] — Johnson-counter theory: k-ary increments, multi-digit
//!   counters, IARM, counter-to-counter addition.
//! * [`mig`] — Majority-Inverter Graph synthesis: the §4.2 pipeline that
//!   turns counting logic into optimised, schedulable Ambit μPrograms.
//! * [`arch`] — the Count2Multiply architecture itself: host-side routine,
//!   broadcast-and-accumulate engine, GEMV/GEMM/ternary kernels.
//! * [`baselines`] — SIMDRAM-style ripple-carry CIM baseline and the GPU
//!   analytical model.
//! * [`workloads`] — LLaMA/BERT/DNA/TWN/GCN workload generators.
//! * [`serve`] — batched, async, heterogeneity-aware request-serving
//!   runtime: multi-tenant traffic, FR-FCFS batched host queue,
//!   double-buffered planner, latency-percentile reports.
//! * [`trace`] — zero-cost structured tracing and metrics threaded
//!   through all three execution layers (DRAM command lanes → engine
//!   launches → serving pipeline), with a Chrome-trace/Perfetto JSON
//!   exporter and log-bucketed latency histograms.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and experiment index.

#![forbid(unsafe_code)]

pub use c2m_baselines as baselines;
pub use c2m_cim as cim;
pub use c2m_core as arch;
pub use c2m_dram as dram;
pub use c2m_ecc as ecc;
pub use c2m_jc as jc;
pub use c2m_mig as mig;
pub use c2m_serve as serve;
pub use c2m_trace as trace;
pub use c2m_workloads as workloads;
