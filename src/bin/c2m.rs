//! `c2m` — command-line front end to the Count2Multiply simulator.
//!
//! ```text
//! c2m plan   [--radix R] [--capacity BITS] [--k K] [--n N] [--subarrays S]
//!            [--encoding binary|ternary|csd8]
//! c2m gemv   [--k K] [--n N] [--sparsity S] [--radix R] [--seed SEED]
//! c2m radix-sweep [--max-radix R]
//! c2m trace  --out FILE [--metrics FILE] [--requests N] [--tenants T]
//! c2m trace  --check FILE [--expect dram,core,serve]
//! c2m lint   [--json] [--deny] [--root DIR]
//! c2m experiments
//! ```
//!
//! `plan` sizes a kernel against the Table 2 DRAM geometry, `gemv` runs
//! a bit-accurate ternary GEMV and reports command counts and projected
//! latency, `radix-sweep` reproduces the Fig. 8 cost curves at small
//! scale, `trace` records a small serving workload into a
//! Chrome-trace/Perfetto JSON (or validates an existing one), and
//! `experiments` lists the paper-artefact bench binaries. `lint` runs
//! the `c2m_analyze` determinism lint engine over the workspace.

use count2multiply::arch::engine::{C2mEngine, EngineConfig};
use count2multiply::arch::kernels::{ternary_gemv, KernelConfig};
use count2multiply::arch::matrix::TernaryMatrix;
use count2multiply::arch::placement::{self, CounterSpec, KernelShape, MaskEncoding};
use count2multiply::dram::DramConfig;
use count2multiply::jc::cost;
use count2multiply::serve::{open_loop, OpenLoopConfig, ServeConfig, TenantSpec};
use count2multiply::trace::{validate_chrome_trace, RecordingSink, TraceSink};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{}`", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &BTreeMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse `{v}`")),
    }
}

fn cmd_plan(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let radix: usize = get(flags, "radix", 4)?;
    let capacity: u32 = get(flags, "capacity", 64)?;
    let k: usize = get(flags, "k", 512)?;
    let n: usize = get(flags, "n", 8192)?;
    let subarrays: usize = get(flags, "subarrays", 1)?;
    let encoding = match flags.get("encoding").map(String::as_str) {
        None | Some("ternary") => MaskEncoding::Ternary,
        Some("binary") => MaskEncoding::Binary,
        Some("csd8") => MaskEncoding::csd_for_precision(8),
        Some(other) => return Err(format!("unknown encoding `{other}`")),
    };
    let cfg = DramConfig::ddr5_4400();
    let spec = CounterSpec {
        radix,
        capacity_bits: capacity,
        ..CounterSpec::paper_default()
    };
    let shape = KernelShape {
        k,
        n_out: n,
        encoding,
    };
    println!("placement for K={k}, N={n}, radix {radix}, {capacity}-bit capacity:");
    match placement::plan(&cfg, &spec, &shape) {
        Ok(p) => {
            println!("  counter rows / column : {}", spec.counter_rows());
            println!("  scratch rows          : {}", spec.scratch_rows());
            println!(
                "  D-group rows used     : {} / {}",
                p.rows_used, p.rows_available
            );
            println!(
                "  row utilisation       : {:.1}%",
                p.row_utilisation() * 100.0
            );
            println!("  columns per subarray  : {}", p.columns_per_subarray);
            println!("  subarrays needed      : {}", p.subarrays_needed);
            // "Concurrent subarrays" comes from the engine's real shard
            // plan (channels x ranks x granted SALP streams), not from
            // the placement heuristic: the engine clamps the request to
            // the channel-gate stream cap before any shard exists.
            let mut ecfg = EngineConfig::c2m(16);
            ecfg.subarrays = subarrays;
            let engine = C2mEngine::builder(ecfg)
                .try_build()
                .map_err(|e| e.to_string())?;
            let topo = engine.topology();
            let shard_plan = engine.planner().plan_inner(k);
            println!(
                "  SALP streams / bank   : {} (requested {subarrays}, cap {})",
                engine.salp_streams(),
                engine.salp_stream_limit()
            );
            println!(
                "  shard slots           : {} ({}ch x {}rk x {} streams)",
                topo.shard_slots(),
                topo.channels,
                topo.ranks,
                topo.subarrays
            );
            println!(
                "  concurrent subarrays  : {}",
                shard_plan.units_used() * topo.banks
            );
        }
        Err(deficit) => {
            let max_k = placement::max_k_per_subarray(&cfg, &spec, encoding);
            println!("  DOES NOT FIT: {deficit} rows over budget");
            println!("  split K: at most {max_k} reduction rows per subarray");
        }
    }
    Ok(())
}

fn cmd_gemv(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let k: usize = get(flags, "k", 128)?;
    let n: usize = get(flags, "n", 64)?;
    let sparsity: f64 = get(flags, "sparsity", 0.0)?;
    let radix: usize = get(flags, "radix", 4)?;
    let seed: u64 = get(flags, "seed", 42)?;
    if !(0.0..=1.0).contains(&sparsity) {
        return Err("--sparsity must be in [0, 1]".into());
    }
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let z = TernaryMatrix::random(k, n, 0.7, &mut rng);
    let x: Vec<i64> = (0..k)
        .map(|_| {
            if rng.gen_bool(sparsity) {
                0
            } else {
                rng.gen_range(-128i64..128)
            }
        })
        .collect();
    let cfg = KernelConfig {
        radix,
        ..KernelConfig::compact()
    };
    let result = ternary_gemv(&cfg, &x, &z);
    let reference = z.reference_gemv(&x);
    let exact = result
        .y
        .iter()
        .zip(&reference)
        .all(|(g, w)| *g == i128::from(*w));
    println!("ternary GEMV K={k} N={n} radix {radix} sparsity {sparsity:.2}:");
    println!("  bit-exact vs reference : {exact}");
    println!("  increment sequences    : {}", result.stats.increments);
    println!("  Ambit macro commands   : {}", result.stats.ambit_ops);

    // Project at module scale: 16 banks, one subarray each.
    let engine = C2mEngine::builder(EngineConfig::c2m(16)).build();
    let report = engine.ternary_gemv(&x, n);
    println!(
        "  projected on Table 2   : {:.3} ms, {:.1} GOPS, {:.2} GOPS/W",
        report.elapsed_ms(),
        report.gops(),
        report.gops_per_watt()
    );
    Ok(())
}

fn cmd_radix_sweep(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let max_radix: usize = get(flags, "max-radix", 20)?;
    println!("average AAP commands to accumulate one uniform 8-bit input");
    println!("(64-bit capacity, k-ary increments + full rippling — Fig. 8a):\n");
    println!("{:>6} | {:>10}", "radix", "AAP/input");
    for radix in (2..=max_radix).step_by(2) {
        let digits = cost::digits_for_capacity(radix, 64);
        let ops = cost::average_over_uniform_u8(|v| cost::kary_full_ripple_ops(v, radix, digits));
        println!("{radix:>6} | {ops:>10.1}");
    }
    println!(
        "\nRCA reference: {} AAP/input (64-bit)",
        cost::rca_add_ops(64)
    );
    Ok(())
}

/// `c2m trace --check FILE [--expect dram,core,serve]`: validate an
/// existing Chrome-trace JSON (the CI smoke path).
fn cmd_trace_check(flags: &BTreeMap<String, String>, path: &str) -> Result<(), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("--check {path}: {e}"))?;
    let check = validate_chrome_trace(&json)?;
    if let Some(expect) = flags.get("expect") {
        for want in expect.split(',').filter(|w| !w.is_empty()) {
            if !check.cats.iter().any(|c| c == want) {
                return Err(format!(
                    "trace has no `{want}` events (categories present: {})",
                    check.cats.join(", ")
                ));
            }
        }
    }
    println!(
        "{path}: valid Chrome trace — {} events, {} spans, {} tracks, categories [{}]",
        check.events,
        check.spans,
        check.tracks,
        check.cats.join(", ")
    );
    Ok(())
}

/// `c2m trace --out FILE`: serve a small open-loop workload with a
/// recording sink attached to every layer, export the Perfetto JSON
/// (and optionally the flat metrics JSON), and print the per-class
/// latency breakdown the trace explains.
fn cmd_trace(flags: &BTreeMap<String, String>) -> Result<(), String> {
    if let Some(path) = flags.get("check") {
        return cmd_trace_check(flags, path);
    }
    let out = flags
        .get("out")
        .ok_or("trace needs --out FILE (record) or --check FILE (validate)")?;
    let requests: usize = get(flags, "requests", 24)?;
    let tenants: usize = get(flags, "tenants", 2)?;
    if requests == 0 || tenants == 0 {
        return Err("--requests and --tenants must be positive".into());
    }

    let sink = std::sync::Arc::new(RecordingSink::default());
    let engine = C2mEngine::builder(EngineConfig::c2m(16)).build();
    let runtime = ServeConfig::builder()
        .max_batch(4)
        .window_ns(1e6)
        .trace(sink.clone() as std::sync::Arc<dyn TraceSink>)
        .build_runtime(engine);
    let reqs = open_loop(&OpenLoopConfig {
        tenants: vec![TenantSpec::new(512, 256); tenants],
        requests,
        mean_interarrival_ns: 2_000.0,
        seed: 7,
    });
    let report = runtime.run(&reqs);

    let json = sink.chrome_trace_json();
    let check = validate_chrome_trace(&json)?;
    std::fs::write(out, &json).map_err(|e| format!("--out {out}: {e}"))?;
    println!(
        "{out}: {} events, {} spans, {} tracks, categories [{}] ({} ring-evicted)",
        check.events,
        check.spans,
        check.tracks,
        check.cats.join(", "),
        sink.dropped()
    );
    if let Some(mpath) = flags.get("metrics") {
        std::fs::write(mpath, sink.metrics_json())
            .map_err(|e| format!("--metrics {mpath}: {e}"))?;
        println!("{mpath}: flat metrics JSON");
    }

    println!(
        "{requests} requests over {tenants} tenants: {} batches, p99 {:.1} us",
        report.batches.len(),
        report.p99_ns() / 1e3
    );
    println!("latency breakdown (mean queue + plan + reload + exec = total, us):");
    for row in report.latency_breakdown() {
        let m = row.mean;
        println!(
            "  class {}: {:>3} reqs | {:.1} + {:.1} + {:.1} + {:.1} = {:.1} | p99 total {:.1}",
            row.priority,
            row.count,
            m.queue_ns / 1e3,
            m.plan_ns / 1e3,
            m.reload_ns / 1e3,
            m.exec_ns / 1e3,
            m.total_ns / 1e3,
            row.p99.total_ns / 1e3
        );
    }
    Ok(())
}

fn cmd_experiments() {
    println!("paper-artefact bench binaries (cargo run -p c2m-bench --bin <id>):\n");
    for (id, what) in [
        ("fig3", "input value distributions (DNA, BERT embeddings)"),
        ("fig4", "fault-rate motivation: RMSE + DNA filter F1"),
        ("fig8", "unit vs k-ary vs IARM AAP cost curves"),
        ("table1", "FR-check error/detect rates + op counts"),
        ("fig14", "GEMV/GEMM throughput vs GPU (Tab. 3 shapes)"),
        ("fig15", "bank scaling: SIMDRAM vs C2M, 1/4/16 banks"),
        ("fig16", "sparsity sweep on V0/M0"),
        ("fig17", "accuracy under CIM faults (DNA, BERT proxy)"),
        ("fig18", "full workloads incl. protection overhead"),
        ("fig19", "counter storage capacity vs radix"),
        ("backends", "counting cost per CIM technology (§4.6)"),
        ("mig", "MIG synthesis sizes and lowering costs (§4.2)"),
        (
            "hostpath",
            "FR-FCFS host read path vs CIM issue rate (§5.1)",
        ),
        (
            "fig_scaling",
            "channel/rank scaling, Ambit vs FCDRAM dispatch",
        ),
        (
            "fig_serve",
            "serving runtime: batch window x topology x mix",
        ),
    ] {
        println!("  {id:<9} {what}");
    }
}

/// `c2m lint [--json] [--deny] [--root DIR]`: the determinism lint
/// engine (`c2m_analyze`) over the workspace, configured by the
/// committed `lint.toml`. Takes bare switches, so it parses its own
/// arguments instead of going through `parse_flags`.
fn cmd_lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut deny = false;
    let mut root = std::path::PathBuf::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--deny" => deny = true,
            "--root" => {
                let Some(dir) = args.get(i + 1) else {
                    eprintln!("error: --root needs a directory");
                    return ExitCode::FAILURE;
                };
                root = std::path::PathBuf::from(dir);
                i += 1;
            }
            other => {
                eprintln!("error: unknown lint flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let config_path = root.join("lint.toml");
    let cfg = if config_path.is_file() {
        let src = match std::fs::read_to_string(&config_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", config_path.display());
                return ExitCode::FAILURE;
            }
        };
        match c2m_analyze::config::Config::parse(&src) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {}: {e}", config_path.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        c2m_analyze::config::Config::default()
    };
    let report = match c2m_analyze::run_root(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.fails(deny) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage() -> &'static str {
    "usage: c2m <plan|gemv|radix-sweep|trace|lint|experiments> [--flag value]...\n\
     try `c2m experiments` for the paper-artefact harness"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    // `lint` takes bare switches, which `parse_flags` rejects.
    if cmd == "lint" {
        return cmd_lint(&args[1..]);
    }
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "plan" => cmd_plan(&flags),
        "gemv" => cmd_gemv(&flags),
        "radix-sweep" => cmd_radix_sweep(&flags),
        "trace" => cmd_trace(&flags),
        "experiments" => {
            cmd_experiments();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn parse_flags_accepts_pairs() {
        let args: Vec<String> = ["--k", "64", "--sparsity", "0.5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f["k"], "64");
        assert_eq!(f["sparsity"], "0.5");
    }

    #[test]
    fn parse_flags_rejects_bare_values() {
        let args = vec!["64".to_string()];
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn parse_flags_rejects_missing_value() {
        let args = vec!["--k".to_string()];
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn get_applies_defaults_and_parses() {
        let f = flags(&[("k", "12")]);
        assert_eq!(get(&f, "k", 5usize).unwrap(), 12);
        assert_eq!(get(&f, "n", 7usize).unwrap(), 7);
        assert!(get(&f, "k", 0.0f64).is_ok());
    }

    #[test]
    fn get_reports_parse_failures() {
        let f = flags(&[("k", "banana")]);
        assert!(get(&f, "k", 5usize).is_err());
    }

    #[test]
    fn gemv_rejects_bad_sparsity() {
        let f = flags(&[("sparsity", "1.5")]);
        assert!(cmd_gemv(&f).is_err());
    }

    #[test]
    fn plan_and_sweep_run_on_defaults() {
        assert!(cmd_plan(&flags(&[("k", "64"), ("n", "128")])).is_ok());
        assert!(cmd_radix_sweep(&flags(&[("max-radix", "6")])).is_ok());
    }

    #[test]
    fn trace_records_and_validates_round_trip() {
        let out = std::env::temp_dir().join("c2m_trace_cli_test.json");
        let out_s = out.to_string_lossy().into_owned();
        let record = flags(&[("out", out_s.as_str()), ("requests", "8")]);
        assert!(cmd_trace(&record).is_ok());
        let check = flags(&[("check", out_s.as_str()), ("expect", "dram,core,serve")]);
        assert!(cmd_trace(&check).is_ok());
        let absent = flags(&[("check", out_s.as_str()), ("expect", "gpu")]);
        assert!(cmd_trace(&absent).is_err());
        let _ = std::fs::remove_file(out);
        assert!(
            cmd_trace(&flags(&[("requests", "8")])).is_err(),
            "no --out/--check"
        );
    }

    #[test]
    fn plan_accepts_salp_requests_and_rejects_bad_geometry() {
        assert!(cmd_plan(&flags(&[("k", "64"), ("n", "128"), ("subarrays", "8")])).is_ok());
        assert!(cmd_plan(&flags(&[("k", "64"), ("n", "128"), ("subarrays", "0")])).is_err());
        assert!(cmd_plan(&flags(&[("k", "64"), ("n", "128"), ("subarrays", "1000")])).is_err());
    }
}
