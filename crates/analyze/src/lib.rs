//! `c2m_analyze` — the determinism lint engine.
//!
//! Count2Multiply's headline reproducibility claim is *bit-for-bit*:
//! the figure JSON, the trace aggregates and every cached plan must be
//! a pure function of the configuration. PRs 1–8 defended that contract
//! dynamically — equality-gated caches, order-preserving parallel
//! folds, a `NullSink` invariance test. This crate defends it
//! *statically*: a hand-rolled, comment- and string-aware Rust lexer
//! (the build environment is offline, so no `syn`), a registry of
//! token-level lints tuned to this repository's invariants, inline
//! suppression pragmas with mandatory reasons, and a committed
//! `lint.toml` for severity and scope.
//!
//! Entry points: [`run_root`] scans a workspace directory;
//! [`run_files`] lints pre-loaded `(path, source)` pairs (the fixture
//! tests use this).

pub mod config;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod pragma;
pub mod workspace;

use config::Config;
use diag::{Finding, Report, Severity};
use std::path::Path;
use workspace::SourceFile;

/// Lints every workspace source under `root`, configured by `cfg`.
///
/// # Errors
///
/// Returns a description if the tree cannot be read or the
/// configuration maps a lint to an invalid severity.
pub fn run_root(root: &Path, cfg: &Config) -> Result<Report, String> {
    let sources = workspace::discover(root)?;
    run_files(&sources, cfg)
}

/// Lints pre-loaded `(workspace-relative path, source)` pairs.
///
/// # Errors
///
/// Returns a description if the configuration maps a lint to an
/// invalid severity.
pub fn run_files(sources: &[(String, String)], cfg: &Config) -> Result<Report, String> {
    let known = lints::known_names();
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(rel, src)| SourceFile::from_source(rel, src, &known))
        .collect();

    let raw = lints::run_all(&files, cfg);

    // Pragma suppression: a finding is covered when a pragma in the
    // same file names its lint on the same line or the line directly
    // above. Track which pragmas fired so unused ones can be reported.
    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed = 0usize;
    let mut used: Vec<(String, u32)> = Vec::new(); // (file, pragma line)
    for r in raw {
        let severity = cfg.severity(r.lint, default_severity(r.lint))?;
        let file = files.iter().find(|f| f.rel == r.file);
        // A pragma covers its own line, or — when the pragma stands
        // alone on a comment-only line — the line directly below it. A
        // trailing pragma never leaks onto the next statement.
        let pragma = file.and_then(|f| {
            f.pragmas.iter().find(|p| {
                p.lints.iter().any(|l| l == r.lint)
                    && (p.line == r.line
                        || (p.line + 1 == r.line && f.snippet(p.line).starts_with("//")))
            })
        });
        if let Some(p) = pragma {
            suppressed += 1;
            used.push((r.file.clone(), p.line));
            continue;
        }
        findings.push(Finding {
            lint: r.lint.to_string(),
            severity,
            file: r.file.clone(),
            line: r.line,
            message: r.message,
            snippet: file.map(|f| f.snippet(r.line)).unwrap_or_default(),
        });
    }

    // Meta-lints: pragmas that do not parse, and pragmas that
    // suppressed nothing.
    let malformed_sev = cfg.severity("malformed-pragma", default_severity("malformed-pragma"))?;
    let unused_sev = cfg.severity("unused-pragma", default_severity("unused-pragma"))?;
    for f in &files {
        for m in &f.malformed {
            findings.push(Finding {
                lint: "malformed-pragma".to_string(),
                severity: malformed_sev,
                file: f.rel.clone(),
                line: m.line,
                message: format!("malformed c2m-lint pragma: {}", m.message),
                snippet: f.snippet(m.line),
            });
        }
        for p in &f.pragmas {
            if !used
                .iter()
                .any(|(rel, line)| rel == &f.rel && *line == p.line)
            {
                findings.push(Finding {
                    lint: "unused-pragma".to_string(),
                    severity: unused_sev,
                    file: f.rel.clone(),
                    line: p.line,
                    message: format!(
                        "pragma for `{}` suppressed nothing: remove it or move it to \
                         the offending line",
                        p.lints.join(", ")
                    ),
                    snippet: f.snippet(p.line),
                });
            }
        }
    }

    let mut report = Report {
        findings,
        files_scanned: files.len(),
        suppressed,
    };
    report.sort();
    Ok(report)
}

/// The registry default for `lint`; unknown names fail loud as `Deny`.
fn default_severity(lint: &str) -> Severity {
    lints::info(lint).map_or(Severity::Deny, |l| l.default_severity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one(rel: &str, src: &str) -> Report {
        let cfg = Config::default();
        run_files(&[(rel.to_string(), src.to_string())], &cfg).expect("lint run succeeds")
    }

    #[test]
    fn pragma_on_same_line_and_line_above_suppresses() {
        let src = "\
pub fn f() {
    let a: Option<u32> = None;
    // c2m-lint: allow(unwrap-in-lib, reason = \"test invariant\")
    a.unwrap();
    a.unwrap(); // c2m-lint: allow(unwrap-in-lib, reason = \"same line\")
    a.unwrap();
}
";
        let r = run_one("crates/x/src/lib.rs", src);
        assert_eq!(r.suppressed, 2);
        let unwraps: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.lint == "unwrap-in-lib")
            .collect();
        assert_eq!(unwraps.len(), 1);
        assert_eq!(unwraps[0].line, 6);
    }

    #[test]
    fn unused_pragma_is_reported_as_warn() {
        let src = "// c2m-lint: allow(unwrap-in-lib, reason = \"nothing here\")\npub fn f() {}\n";
        let r = run_one("crates/x/src/lib.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].lint, "unused-pragma");
        assert_eq!(r.findings[0].severity, Severity::Warn);
        assert!(!r.fails(false));
        assert!(r.fails(true));
    }

    #[test]
    fn malformed_pragma_is_deny() {
        let src = "// c2m-lint: allow(unwrap-in-lib)\npub fn f() {}\n";
        let r = run_one("crates/x/src/lib.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].lint, "malformed-pragma");
        assert!(r.fails(false));
    }

    #[test]
    fn severity_override_downgrades_a_lint() {
        let cfg = Config::parse("[severity]\nunwrap-in-lib = \"warn\"\n").expect("valid");
        let src = "pub fn f(a: Option<u32>) -> u32 { a.unwrap() }\n";
        let r = run_files(
            &[("crates/x/src/lib.rs".to_string(), src.to_string())],
            &cfg,
        )
        .expect("runs");
        assert_eq!(r.findings[0].severity, Severity::Warn);
        assert!(!r.fails(false));
    }

    #[test]
    fn clean_source_produces_empty_report() {
        let src = "pub fn f(a: Option<u32>) -> Option<u32> { a.map(|x| x + 1) }\n";
        let r = run_one("crates/x/src/lib.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(!r.fails(true));
    }
}
