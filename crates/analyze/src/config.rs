//! `lint.toml` — the committed lint configuration.
//!
//! The build environment is offline (no `toml` crate), so this is a
//! minimal hand-rolled parser covering exactly the schema the engine
//! uses:
//!
//! ```toml
//! [severity]
//! unordered-map-iter = "deny"
//!
//! [unordered-map-iter]
//! paths = [
//!     "crates/core/src",
//!     "crates/serve/src",
//! ]
//!
//! [cache-key-completeness.fields]
//! radix = "covered:cached_sequences_for_stream"
//! ```
//!
//! Sections (dotted names allowed), `key = "string"`, and
//! `key = ["array", "of", "strings"]` (single- or multi-line) — plus
//! `#` comments. Anything else is a configuration error, reported with
//! its line number.

use crate::diag::Severity;
use std::collections::BTreeMap;

/// A parsed configuration value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `key = "s"`.
    Str(String),
    /// `key = ["a", "b"]`.
    List(Vec<String>),
}

/// The parsed `lint.toml`.
#[derive(Debug, Default)]
pub struct Config {
    /// `section name → key → value`; dotted section headers keep their
    /// full dotted name.
    sections: BTreeMap<String, BTreeMap<String, Value>>,
}

impl Config {
    /// Parses a `lint.toml` document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on any construct
    /// outside the supported schema.
    pub fn parse(src: &str) -> Result<Self, String> {
        let mut sections: BTreeMap<String, BTreeMap<String, Value>> = BTreeMap::new();
        let mut current = String::new();
        let mut lines = src.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let line = strip_comment(raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {}: unclosed section header", i + 1))?;
                current = name.trim().to_string();
                sections.entry(current.clone()).or_default();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", i + 1))?;
            let key = key.trim().to_string();
            let mut value = value.trim().to_string();
            if value.starts_with('[') {
                // Multi-line array: keep consuming until the closing
                // bracket (comments stripped per line).
                while !value.ends_with(']') {
                    let (_, raw) = lines
                        .next()
                        .ok_or_else(|| format!("line {}: unterminated array", i + 1))?;
                    value.push(' ');
                    value.push_str(strip_comment(raw).trim());
                }
            }
            let parsed = parse_value(&value).map_err(|e| format!("line {}: {e}", i + 1))?;
            sections
                .entry(current.clone())
                .or_default()
                .insert(key, parsed);
        }
        Ok(Self { sections })
    }

    /// The string value at `[section] key`, if present.
    #[must_use]
    pub fn str(&self, section: &str, key: &str) -> Option<&str> {
        match self.sections.get(section)?.get(key)? {
            Value::Str(s) => Some(s),
            Value::List(_) => None,
        }
    }

    /// The list value at `[section] key`; a bare string reads as a
    /// one-element list. Missing key → empty.
    #[must_use]
    pub fn list(&self, section: &str, key: &str) -> Vec<String> {
        match self.sections.get(section).and_then(|s| s.get(key)) {
            Some(Value::List(v)) => v.clone(),
            Some(Value::Str(s)) => vec![s.clone()],
            None => Vec::new(),
        }
    }

    /// All `key = "value"` string entries of a section, in key order.
    #[must_use]
    pub fn entries(&self, section: &str) -> Vec<(String, String)> {
        self.sections
            .get(section)
            .map(|s| {
                s.iter()
                    .filter_map(|(k, v)| match v {
                        Value::Str(s) => Some((k.clone(), s.clone())),
                        Value::List(_) => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Effective severity of `lint`: the `[severity]` table entry, or
    /// the lint's default.
    ///
    /// # Errors
    ///
    /// Returns a message if the configured value is not a valid
    /// severity name.
    pub fn severity(&self, lint: &str, default: Severity) -> Result<Severity, String> {
        match self.str("severity", lint) {
            Some(s) => Severity::parse(s).map_err(|e| format!("[severity] {lint}: {e}")),
            None => Ok(default),
        }
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in line.char_indices() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> Result<Value, String> {
    if let Some(inner) = v.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_bare_string(part)?);
        }
        return Ok(Value::List(items));
    }
    Ok(Value::Str(parse_bare_string(v)?))
}

/// Splits on commas outside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escape = false;
    for c in s.chars() {
        if escape {
            cur.push(c);
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => {
                cur.push(c);
                escape = true;
            }
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

fn parse_bare_string(s: &str) -> Result<String, String> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a double-quoted string, got `{s}`"))?;
    // Unescape the two sequences the schema needs.
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_strings_and_arrays() {
        let cfg = Config::parse(
            r#"
# top comment
[severity]
unwrap-in-lib = "deny" # trailing comment

[unordered-map-iter]
paths = [
    "crates/core/src",   # per-line comment
    "crates/serve/src",
]
one = ["solo"]

[cache-key-completeness.fields]
radix = "covered:f"
"#,
        )
        .expect("valid config");
        assert_eq!(cfg.str("severity", "unwrap-in-lib"), Some("deny"));
        assert_eq!(
            cfg.list("unordered-map-iter", "paths"),
            ["crates/core/src", "crates/serve/src"]
        );
        assert_eq!(cfg.list("unordered-map-iter", "one"), ["solo"]);
        assert_eq!(
            cfg.entries("cache-key-completeness.fields"),
            [("radix".to_string(), "covered:f".to_string())]
        );
    }

    #[test]
    fn severity_falls_back_to_default() {
        let cfg = Config::parse("[severity]\nx = \"warn\"\n").expect("valid");
        assert_eq!(
            cfg.severity("x", Severity::Deny).expect("parses"),
            Severity::Warn
        );
        assert_eq!(
            cfg.severity("y", Severity::Deny).expect("parses"),
            Severity::Deny
        );
        let bad = Config::parse("[severity]\nx = \"fatal\"\n").expect("valid toml");
        assert!(bad.severity("x", Severity::Deny).is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Config::parse("[unclosed\n").is_err());
        assert!(Config::parse("[s]\nbare-token\n").is_err());
        assert!(Config::parse("[s]\nk = unquoted\n").is_err());
        assert!(Config::parse("[s]\nk = [\"a\"\n").is_err());
    }

    #[test]
    fn hash_inside_quotes_is_not_a_comment() {
        let cfg = Config::parse("[s]\nk = \"a # b\"\n").expect("valid");
        assert_eq!(cfg.str("s", "k"), Some("a # b"));
    }
}
