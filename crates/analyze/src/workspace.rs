//! Workspace discovery and per-file context.
//!
//! Walks the repository for Rust sources (skipping `vendor/`, `target/`
//! and the lint engine's own seeded-violation fixtures), lexes each
//! file once, extracts pragmas, and computes the `#[cfg(test)]` line
//! regions every lint must ignore.

use crate::lexer::{self, Token};
use crate::pragma::{self, MalformedPragma, Pragma};
use std::fs;
use std::path::Path;

/// What kind of target a file belongs to — lints scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code: `crates/*/src/**` or the root `src/lib.rs` tree,
    /// excluding `src/bin/` and `src/main.rs`.
    Lib,
    /// Binary targets (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Integration tests (`tests/**`).
    Test,
    /// Examples (`examples/**`).
    Example,
    /// Benches (`benches/**`).
    Bench,
}

/// One lexed source file plus everything the lints need to know about
/// it.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Target class (see [`FileClass`]).
    pub class: FileClass,
    /// Source lines, for snippets.
    pub lines: Vec<String>,
    /// Code tokens (comments stripped).
    pub tokens: Vec<Token>,
    /// Suppression pragmas found in comments.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragmas, reported as findings.
    pub malformed: Vec<MalformedPragma>,
    /// Inclusive 1-based line ranges under `#[cfg(test)]`.
    pub test_regions: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Builds the per-file context from raw source. `known_lints`
    /// validates pragma lint names.
    #[must_use]
    pub fn from_source(rel: &str, src: &str, known_lints: &[&str]) -> Self {
        let all = lexer::lex(src);
        let (pragmas, malformed) = pragma::extract(&all, known_lints);
        let tokens = lexer::strip_comments(&all);
        let test_regions = test_regions(&tokens);
        Self {
            rel: rel.to_string(),
            class: classify(rel),
            lines: src.lines().map(str::to_string).collect(),
            tokens,
            pragmas,
            malformed,
            test_regions,
        }
    }

    /// The trimmed source text of a 1-based line.
    #[must_use]
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// True if `line` falls inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| line >= lo && line <= hi)
    }
}

/// Classifies a workspace-relative path into its target class.
#[must_use]
pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.contains(&"tests") {
        return FileClass::Test;
    }
    if parts.contains(&"benches") {
        return FileClass::Bench;
    }
    if parts.contains(&"examples") {
        return FileClass::Example;
    }
    if parts.contains(&"bin") || rel.ends_with("src/main.rs") {
        return FileClass::Bin;
    }
    FileClass::Lib
}

/// Walks `root` for the workspace's own Rust sources. Vendored shims,
/// build output and the lint fixtures are not ours to lint.
///
/// # Errors
///
/// Returns an I/O description if the tree cannot be read.
pub fn discover(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "vendor" || name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("path outside root: {e}"))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            let src = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            out.push((rel, src));
        }
    }
    Ok(())
}

/// Finds the line extents of items annotated `#[cfg(test)]`: from the
/// attribute to the closing brace of the item (or its terminating
/// semicolon).
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip to the item body: the first `{` at attribute level ends
        // the search (brace-match it); a `;` first means a braceless
        // item (e.g. `#[cfg(test)] mod tests;`).
        let mut j = i + 7;
        let mut end_line = start_line;
        while j < tokens.len() {
            if tokens[j].is_punct('{') {
                let mut depth = 0usize;
                while j < tokens.len() {
                    if tokens[j].is_punct('{') {
                        depth += 1;
                    } else if tokens[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                end_line = tokens.get(j).map_or(end_line, |t| t.line);
                break;
            }
            if tokens[j].is_punct(';') {
                end_line = tokens[j].line;
                break;
            }
            end_line = tokens[j].line;
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        assert_eq!(classify("crates/core/src/engine.rs"), FileClass::Lib);
        assert_eq!(classify("src/lib.rs"), FileClass::Lib);
        assert_eq!(classify("src/bin/c2m.rs"), FileClass::Bin);
        assert_eq!(classify("crates/bench/src/bin/fig8.rs"), FileClass::Bin);
        assert_eq!(
            classify("crates/core/tests/shard_properties.rs"),
            FileClass::Test
        );
        assert_eq!(classify("tests/end_to_end.rs"), FileClass::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Example);
        assert_eq!(
            classify("crates/bench/benches/bench_core.rs"),
            FileClass::Bench
        );
    }

    #[test]
    fn cfg_test_regions_are_brace_matched() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn helper() { let x = vec![1]; x.len(); }
}
fn also_live() {}
";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src, &[]);
        assert_eq!(f.test_regions, vec![(2, 5)]);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(4));
        assert!(!f.in_test_region(6));
    }

    #[test]
    fn cfg_test_on_single_fn_and_braceless_items() {
        let src = "\
#[cfg(test)]
fn probe() {
    body();
}
#[cfg(test)]
mod shadow;
fn live() {}
";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src, &[]);
        assert_eq!(f.test_regions, vec![(1, 4), (5, 6)]);
        assert!(!f.in_test_region(7));
    }
}
