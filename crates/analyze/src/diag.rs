//! Findings, severities and report rendering (human and JSON).

use serde::Serialize;

/// How a lint's findings are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported in JSON but never printed or counted against the exit
    /// code. (Suppression with a pragma is preferred — it carries a
    /// reason — but `allow` in `lint.toml` turns a whole lint off.)
    Allow,
    /// Printed; fails the run only under `--deny`.
    Warn,
    /// Printed; always fails the run.
    Deny,
}

impl Severity {
    /// Parses a `lint.toml` severity value.
    ///
    /// # Errors
    ///
    /// Returns the offending string if it is not one of
    /// `allow`/`warn`/`deny`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "allow" => Ok(Severity::Allow),
            "warn" => Ok(Severity::Warn),
            "deny" => Ok(Severity::Deny),
            other => Err(format!("unknown severity `{other}`")),
        }
    }

    /// Lowercase name, as written in `lint.toml`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One lint hit, anchored to a file and line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint that produced this finding.
    pub lint: String,
    /// Effective severity (after `lint.toml`).
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The trimmed source line.
    pub snippet: String,
}

/// Result of one analysis run.
#[derive(Debug)]
pub struct Report {
    /// Findings that survived pragma suppression, ordered by
    /// (file, line, lint).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by `c2m-lint: allow` pragmas.
    pub suppressed: usize,
}

/// JSON mirror of [`Finding`] (severity flattened to its name).
#[derive(Debug, Serialize)]
struct JsonFinding {
    lint: String,
    severity: String,
    file: String,
    line: u64,
    message: String,
    snippet: String,
}

/// JSON mirror of [`Report`].
#[derive(Debug, Serialize)]
struct JsonReport {
    version: u64,
    files_scanned: u64,
    suppressed: u64,
    findings: Vec<JsonFinding>,
}

impl Report {
    /// Sorts findings into the canonical (file, line, lint) order —
    /// the report itself must be deterministic.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    }

    /// Findings at or above `Warn`, i.e. everything a human should see.
    pub fn visible(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity >= Severity::Warn)
    }

    /// True when the run should exit non-zero: any `Deny` finding, or
    /// any `Warn` finding when `deny_warnings` is set.
    #[must_use]
    pub fn fails(&self, deny_warnings: bool) -> bool {
        let gate = if deny_warnings {
            Severity::Warn
        } else {
            Severity::Deny
        };
        self.findings.iter().any(|f| f.severity >= gate)
    }

    /// Human-readable rendering, one block per finding.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in self.visible() {
            out.push_str(&format!(
                "{}: [{}] {}: {}\n    {}:{}: {}\n",
                f.file,
                f.severity.name(),
                f.lint,
                f.message,
                f.file,
                f.line,
                f.snippet
            ));
        }
        let shown = self.visible().count();
        out.push_str(&format!(
            "{} finding(s) in {} file(s); {} suppressed by pragma\n",
            shown, self.files_scanned, self.suppressed
        ));
        out
    }

    /// Machine-readable rendering: a single JSON document.
    #[must_use]
    pub fn render_json(&self) -> String {
        let doc = JsonReport {
            version: 1,
            files_scanned: self.files_scanned as u64,
            suppressed: self.suppressed as u64,
            findings: self
                .findings
                .iter()
                .filter(|f| f.severity >= Severity::Warn)
                .map(|f| JsonFinding {
                    lint: f.lint.clone(),
                    severity: f.severity.name().to_string(),
                    file: f.file.clone(),
                    line: u64::from(f.line),
                    message: f.message.clone(),
                    snippet: f.snippet.clone(),
                })
                .collect(),
        };
        serde_json::to_string_pretty(&doc).expect("lint report serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &str, severity: Severity, line: u32) -> Finding {
        Finding {
            lint: lint.to_string(),
            severity,
            file: "crates/x/src/lib.rs".to_string(),
            line,
            message: "m".to_string(),
            snippet: "s".to_string(),
        }
    }

    #[test]
    fn fails_gates_on_severity() {
        let r = Report {
            findings: vec![finding("a", Severity::Warn, 1)],
            files_scanned: 1,
            suppressed: 0,
        };
        assert!(!r.fails(false));
        assert!(r.fails(true));
        let r = Report {
            findings: vec![finding("a", Severity::Deny, 1)],
            files_scanned: 1,
            suppressed: 0,
        };
        assert!(r.fails(false));
    }

    #[test]
    fn allow_findings_are_invisible() {
        let r = Report {
            findings: vec![finding("a", Severity::Allow, 1)],
            files_scanned: 1,
            suppressed: 0,
        };
        assert_eq!(r.visible().count(), 0);
        assert!(!r.fails(true));
        let json = r.render_json();
        assert!(json.contains("\"findings\""));
        assert!(!json.contains("\"lint\": \"a\""));
    }

    #[test]
    fn json_is_parseable_and_sorted_order_is_stable() {
        let mut r = Report {
            findings: vec![
                finding("b", Severity::Deny, 9),
                finding("a", Severity::Deny, 9),
                finding("a", Severity::Deny, 2),
            ],
            files_scanned: 3,
            suppressed: 1,
        };
        r.sort();
        assert_eq!(
            r.findings.iter().map(|f| f.line).collect::<Vec<_>>(),
            [2, 9, 9]
        );
        assert_eq!(r.findings[1].lint, "a");
        let v = serde_json::from_str(&r.render_json()).expect("valid JSON");
        drop(v);
    }
}
