//! `c2m_analyze` CLI.
//!
//! ```text
//! cargo run -p c2m_analyze -- [--root <dir>] [--config <lint.toml>]
//!                             [--json] [--deny] [--list]
//! ```
//!
//! Exit codes: `0` clean, `1` findings fail the gate (`Deny`, or `Warn`
//! under `--deny`), `2` usage or configuration error.

use c2m_analyze::config::Config;
use c2m_analyze::lints;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    deny: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: false,
        deny: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a path")?));
            }
            "--json" => args.json = true,
            "--deny" => args.deny = true,
            "--list" => args.list = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("c2m_analyze: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        for l in lints::LINTS {
            println!(
                "{} [{}]\n    {}",
                l.name,
                l.default_severity.name(),
                l.description
            );
        }
        return ExitCode::SUCCESS;
    }
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let cfg = if config_path.is_file() {
        let src = match std::fs::read_to_string(&config_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("c2m_analyze: cannot read {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        };
        match Config::parse(&src) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("c2m_analyze: {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        }
    } else if args.config.is_some() {
        eprintln!("c2m_analyze: config {} not found", config_path.display());
        return ExitCode::from(2);
    } else {
        Config::default()
    };
    let report = match c2m_analyze::run_root(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("c2m_analyze: {e}");
            return ExitCode::from(2);
        }
    };
    if args.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.fails(args.deny) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
