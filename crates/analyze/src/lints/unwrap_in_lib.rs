//! `unwrap-in-lib`: unauditable panic sites in library code.
//!
//! Library crates feed long-running serving sweeps; a panic with no
//! invariant message (`.unwrap()`), a computed message
//! (`.expect(format!(...))` — unauditable statically) or a bare
//! `panic!` turns a recoverable condition into an opaque abort. The
//! sanctioned forms are `Result` propagation and
//! `.expect("<invariant message>")` with a **string-literal** message
//! stating why the failure is structurally impossible. A panic that is
//! genuinely part of a documented contract (e.g. a builder's `build()`)
//! carries an allow-pragma with its reason.

use super::RawFinding;
use crate::lexer::TokenKind;
use crate::workspace::{FileClass, SourceFile};

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<RawFinding>) {
    if file.class != FileClass::Lib {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test_region(toks[i].line) {
            continue;
        }
        // `.unwrap()`
        if toks[i].is_ident("unwrap")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            out.push(raw(
                file,
                toks[i].line,
                "`.unwrap()` in library code: propagate the error or use \
                 `.expect(\"<invariant message>\")`",
            ));
        }
        // `.expect(<non-literal>)`
        if toks[i].is_ident("expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks
                .get(i + 2)
                .is_some_and(|t| !matches!(t.kind, TokenKind::Str | TokenKind::RawStr))
        {
            out.push(raw(
                file,
                toks[i].line,
                "`.expect(...)` with a non-literal message: the invariant cannot be \
                 audited statically; use a string-literal message",
            ));
        }
        // `panic!(...)`
        if toks[i].is_ident("panic")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            out.push(raw(
                file,
                toks[i].line,
                "`panic!` in library code: return a `Result`, or document the panic \
                 contract and carry an allow-pragma with the reason",
            ));
        }
    }
}

fn raw(file: &SourceFile, line: u32, message: &str) -> RawFinding {
    RawFinding {
        lint: "unwrap-in-lib",
        file: file.rel.clone(),
        line,
        message: message.to_string(),
    }
}
