//! `deprecated-shim-call`: in-repo use of `#[deprecated]` constructors.
//!
//! PR 6 moved engine and serve-config construction to builders and left
//! the old constructors as `#[deprecated]` shims. rustc warns on those,
//! but a warning inside an `#[allow(deprecated)]` span or a doc example
//! can linger; this lint makes the policy a first-class CI failure with
//! the same reporting pipeline as every other determinism rule.
//!
//! Two passes: first collect every `#[deprecated]` function in the
//! workspace (with its `impl` type and whether it takes `self`), then
//! flag call shapes — `Type::name(...)` for associated functions,
//! `.name(...)` for methods — outside `#[cfg(test)]` code. Method
//! matching is name-based (no type inference at token level); shim
//! names are distinctive enough that collisions are not expected, and a
//! false positive can carry a pragma.

use super::RawFinding;
use crate::lexer::Token;
use crate::workspace::{FileClass, SourceFile};

#[derive(Debug)]
struct DeprecatedFn {
    type_name: String,
    fn_name: String,
    has_self: bool,
}

/// Runs the lint over the whole workspace.
pub fn check(files: &[SourceFile], out: &mut Vec<RawFinding>) {
    let mut fns = Vec::new();
    for file in files {
        collect(&file.tokens, &mut fns);
    }
    if fns.is_empty() {
        return;
    }
    for file in files {
        if file.class == FileClass::Test {
            continue;
        }
        flag_calls(file, &fns, out);
    }
}

/// Extents of `impl` blocks as token-index ranges with their type name.
fn impl_extents(toks: &[Token]) -> Vec<(String, usize, usize)> {
    let mut extents = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Skip generic parameters directly after `impl`.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut depth = 0usize;
            while j < toks.len() {
                if toks[j].is_punct('<') {
                    depth += 1;
                } else if toks[j].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // The implemented type: the ident after `for` if this is a
        // trait impl, else the first ident.
        let mut type_name = String::new();
        let mut k = j;
        while k < toks.len() && !toks[k].is_punct('{') {
            if toks[k].is_ident("for") {
                type_name.clear();
            } else if type_name.is_empty() && toks[k].kind == crate::lexer::TokenKind::Ident {
                type_name = toks[k].text.clone();
            }
            k += 1;
        }
        // Brace-match the impl body.
        let start = k;
        let mut depth = 0usize;
        while k < toks.len() {
            if toks[k].is_punct('{') {
                depth += 1;
            } else if toks[k].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        if !type_name.is_empty() {
            extents.push((type_name, start, k));
        }
        i = start.max(i + 1);
    }
    extents
}

/// Collects `#[deprecated]` functions with their impl type.
fn collect(toks: &[Token], fns: &mut Vec<DeprecatedFn>) {
    let extents = impl_extents(toks);
    let mut i = 0;
    while i + 2 < toks.len() {
        let is_attr = toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("deprecated");
        if !is_attr {
            i += 1;
            continue;
        }
        // Skip to the end of this attribute, then past any further
        // attributes, to the `fn` keyword (if the item is a function).
        let mut j = i + 2;
        let mut depth = 1usize; // inside the `[`
        while j < toks.len() && depth > 0 {
            j += 1;
            if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                depth += 1;
            } else if toks.get(j).is_some_and(|t| t.is_punct(']')) {
                depth -= 1;
            }
        }
        j += 1;
        while toks.get(j).is_some_and(|t| t.is_punct('#')) {
            let mut d = 0usize;
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    d += 1;
                } else if toks[j].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j += 1;
        }
        // Visibility and qualifiers before `fn`.
        while toks.get(j).is_some_and(|t| {
            t.is_ident("pub")
                || t.is_ident("const")
                || t.is_ident("unsafe")
                || t.is_ident("crate")
                || t.is_punct('(')
                || t.is_punct(')')
        }) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident("fn")) {
            i = j;
            continue; // deprecated struct/enum/etc.: call lint not applicable
        }
        let Some(name_tok) = toks.get(j + 1) else {
            break;
        };
        let fn_name = name_tok.text.clone();
        // `self` in the first parameter position?
        let mut k = j + 2;
        while k < toks.len() && !toks[k].is_punct('(') {
            k += 1;
        }
        let mut has_self = false;
        let mut depth = 0usize;
        while k < toks.len() {
            if toks[k].is_punct('(') {
                depth += 1;
            } else if toks[k].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1 && toks[k].is_punct(',') {
                break; // only the first parameter can be self
            } else if depth == 1 && toks[k].is_ident("self") {
                has_self = true;
            }
            k += 1;
        }
        let type_name = extents
            .iter()
            .find(|(_, lo, hi)| j > *lo && j < *hi)
            .map(|(name, _, _)| name.clone())
            .unwrap_or_default();
        fns.push(DeprecatedFn {
            type_name,
            fn_name,
            has_self,
        });
        i = j + 1;
    }
}

/// Flags call shapes of the collected deprecated functions.
fn flag_calls(file: &SourceFile, fns: &[DeprecatedFn], out: &mut Vec<RawFinding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test_region(toks[i].line) {
            continue;
        }
        for f in fns {
            if f.has_self {
                // `.name(` — method call.
                let hit = toks[i].is_ident(&f.fn_name)
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                if hit {
                    out.push(finding(file, toks[i].line, f));
                }
            } else if !f.type_name.is_empty() {
                // `Type::name(` — associated call.
                let hit = toks[i].is_ident(&f.type_name)
                    && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|t| t.is_ident(&f.fn_name))
                    && toks.get(i + 4).is_some_and(|t| t.is_punct('('));
                if hit {
                    out.push(finding(file, toks[i].line, f));
                }
            }
        }
    }
}

fn finding(file: &SourceFile, line: u32, f: &DeprecatedFn) -> RawFinding {
    let qualified = if f.type_name.is_empty() {
        f.fn_name.clone()
    } else {
        format!("{}::{}", f.type_name, f.fn_name)
    };
    RawFinding {
        lint: "deprecated-shim-call",
        file: file.rel.clone(),
        line,
        message: format!(
            "call to `#[deprecated]` shim `{qualified}`: use the builder API it \
             forwards to"
        ),
    }
}
