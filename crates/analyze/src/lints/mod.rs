//! The lint registry.
//!
//! Each lint is a token-level (or, for `cache-key-completeness`,
//! workspace-level) pass tuned to one of this repository's determinism
//! invariants. Severities default to the values below and can be
//! overridden per lint in `lint.toml`'s `[severity]` table; two
//! meta-lints police the suppression machinery itself.

use crate::config::Config;
use crate::diag::Severity;
use crate::workspace::SourceFile;

pub mod cache_key_completeness;
pub mod deprecated_shim_call;
pub mod unordered_map_iter;
pub mod unordered_par_fold;
pub mod unwrap_in_lib;
pub mod wallclock_in_sim;

/// Static description of one registered lint.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Kebab-case name, as used in `lint.toml` and pragmas.
    pub name: &'static str,
    /// Severity when `lint.toml` does not override it.
    pub default_severity: Severity,
    /// One-line description for `--list` and the README catalogue.
    pub description: &'static str,
}

/// Every lint the engine knows, meta-lints included.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        name: "unordered-map-iter",
        default_severity: Severity::Deny,
        description: "HashMap/HashSet on determinism-critical paths: iteration order is \
                      nondeterministic; use BTreeMap/BTreeSet or an explicit sorted collect",
    },
    LintInfo {
        name: "wallclock-in-sim",
        default_severity: Severity::Deny,
        description: "Instant/SystemTime in simulator code: wall-clock reads break \
                      reproducibility; simulated time only",
    },
    LintInfo {
        name: "unwrap-in-lib",
        default_severity: Severity::Deny,
        description: "unwrap()/panic!/non-literal expect() in library code outside \
                      #[cfg(test)]; propagate a Result or expect(\"<invariant>\")",
    },
    LintInfo {
        name: "deprecated-shim-call",
        default_severity: Severity::Deny,
        description: "in-repo call to a #[deprecated] constructor shim; use the builder API",
    },
    LintInfo {
        name: "unordered-par-fold",
        default_severity: Severity::Deny,
        description: "par_iter() chained into sum/fold/reduce: reduction order depends on \
                      thread scheduling; collect() in order, then fold serially",
    },
    LintInfo {
        name: "cache-key-completeness",
        default_severity: Severity::Deny,
        description: "every planning-relevant EngineConfig/Topology field must be covered \
                      by PlanKey/fingerprint or exempted with a reason in lint.toml",
    },
    LintInfo {
        name: "malformed-pragma",
        default_severity: Severity::Deny,
        description: "c2m-lint pragma that does not parse, names an unknown lint, or lacks \
                      the mandatory reason",
    },
    LintInfo {
        name: "unused-pragma",
        default_severity: Severity::Warn,
        description: "c2m-lint allow pragma that suppressed nothing",
    },
];

/// The registered lint names (pragma validation reads this).
#[must_use]
pub fn known_names() -> Vec<&'static str> {
    LINTS.iter().map(|l| l.name).collect()
}

/// Registry metadata for `name`.
#[must_use]
pub fn info(name: &str) -> Option<&'static LintInfo> {
    LINTS.iter().find(|l| l.name == name)
}

/// A raw lint hit before severity/snippet decoration.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Lint name (must be in [`LINTS`]).
    pub lint: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Message.
    pub message: String,
}

/// Runs every per-file and workspace-level lint over `files`.
#[must_use]
pub fn run_all(files: &[SourceFile], cfg: &Config) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for file in files {
        unordered_map_iter::check(file, cfg, &mut out);
        wallclock_in_sim::check(file, cfg, &mut out);
        unwrap_in_lib::check(file, &mut out);
        unordered_par_fold::check(file, &mut out);
    }
    deprecated_shim_call::check(files, &mut out);
    cache_key_completeness::check(files, cfg, &mut out);
    out
}

/// True when `file.rel` sits under any of the path prefixes.
#[must_use]
pub fn in_scope(rel: &str, prefixes: &[String]) -> bool {
    prefixes
        .iter()
        .any(|p| rel == p || rel.starts_with(&format!("{p}/")))
}
