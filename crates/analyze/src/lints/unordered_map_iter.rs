//! `unordered-map-iter`: hash collections on determinism-critical
//! paths.
//!
//! `HashMap`/`HashSet` iteration order varies per process (the default
//! hasher is randomly seeded), so any map that is ever iterated on a
//! pricing, report or export path can silently break the bit-for-bit
//! contract. Whether a given map is *iterated* is not decidable at
//! token level, so on the configured paths the lint takes the
//! conservative position: no hash collections at all. `BTreeMap`/
//! `BTreeSet` iterate in key order at equivalent cost for these
//! workloads; a map whose order provably never escapes can carry an
//! allow-pragma saying why.

use super::{in_scope, RawFinding};
use crate::config::Config;
use crate::workspace::{FileClass, SourceFile};

/// Paths linted when `lint.toml` has no `[unordered-map-iter] paths`.
const DEFAULT_PATHS: &[&str] = &[
    "crates/core/src",
    "crates/dram/src",
    "crates/serve/src",
    "crates/trace/src",
    "crates/workloads/src",
    "crates/bench/src",
    "src",
];

const BANNED: &[&str] = &["HashMap", "HashSet"];

/// Runs the lint over one file.
pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<RawFinding>) {
    if file.class == FileClass::Test {
        return;
    }
    let mut paths = cfg.list("unordered-map-iter", "paths");
    if paths.is_empty() {
        paths = DEFAULT_PATHS.iter().map(|s| (*s).to_string()).collect();
    }
    if !in_scope(&file.rel, &paths) {
        return;
    }
    for tok in &file.tokens {
        if BANNED.iter().any(|b| tok.is_ident(b)) && !file.in_test_region(tok.line) {
            out.push(RawFinding {
                lint: "unordered-map-iter",
                file: file.rel.clone(),
                line: tok.line,
                message: format!(
                    "`{}` on a determinism-critical path: iteration order is \
                     nondeterministic; use `BTree{}` or collect-and-sort",
                    tok.text,
                    tok.text.trim_start_matches("Hash")
                ),
            });
        }
    }
}
