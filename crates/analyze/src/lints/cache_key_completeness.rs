//! `cache-key-completeness`: the semantic pass.
//!
//! PR 6's caches are equality-gated, so a cached result is bit-for-bit
//! correct **if and only if the key covers everything the computation
//! reads**. PR 7 nearly shipped the counterexample: `Topology` grew a
//! `subarrays` field, and had it not been folded into
//! `Topology::fingerprint`, two engines differing only in subarray
//! count would have shared shard plans (the regression the "configs
//! differing only in `subarrays` must plan-MISS" test now guards
//! dynamically). This lint enforces the same property statically, at
//! the source level, for the next field someone adds:
//!
//! * every field of `Topology` must be read (`self.<field>`) inside
//!   `Topology::fingerprint`;
//! * every field of `EngineConfig` must carry an entry in
//!   `lint.toml`'s `[cache-key-completeness.fields]` table — either
//!   `"covered:<fn>"` (the lint then verifies the field is actually
//!   read in that function's body, so coverage claims cannot go stale)
//!   or `"exempt:<reason>"` (a conscious, reviewable decision that the
//!   field cannot reach any memoised value).
//!
//! Adding a field without touching `lint.toml` fails CI; deleting a
//! field leaves a stale entry, which also fails.

use super::RawFinding;
use crate::config::Config;
use crate::lexer::{Token, TokenKind};
use crate::workspace::SourceFile;

const LINT: &str = "cache-key-completeness";
const FIELDS_SECTION: &str = "cache-key-completeness.fields";

/// Runs the pass over the workspace. Inactive unless `lint.toml` has a
/// `[cache-key-completeness]` section naming the files.
pub fn check(files: &[SourceFile], cfg: &Config, out: &mut Vec<RawFinding>) {
    let Some(topo_file) = cfg.str(LINT, "topology-file") else {
        return;
    };
    let topo_struct = cfg.str(LINT, "topology-struct").unwrap_or("Topology");
    let topo_key_fn = cfg.str(LINT, "topology-key-fn").unwrap_or("fingerprint");
    check_topology(files, topo_file, topo_struct, topo_key_fn, out);

    let Some(engine_file) = cfg.str(LINT, "engine-file") else {
        return;
    };
    let engine_struct = cfg.str(LINT, "engine-struct").unwrap_or("EngineConfig");
    check_engine_config(files, cfg, engine_file, engine_struct, topo_file, out);
}

/// Rule T: every `Topology` field appears as `self.<field>` in the key
/// function's body.
fn check_topology(
    files: &[SourceFile],
    rel: &str,
    struct_name: &str,
    key_fn: &str,
    out: &mut Vec<RawFinding>,
) {
    let Some(file) = files.iter().find(|f| f.rel == rel) else {
        out.push(config_error(format!(
            "[{LINT}] topology-file `{rel}` is not in the scanned workspace"
        )));
        return;
    };
    let fields = struct_fields(&file.tokens, struct_name);
    if fields.is_empty() {
        out.push(config_error(format!(
            "[{LINT}] struct `{struct_name}` not found (or has no fields) in `{rel}`"
        )));
        return;
    }
    let bodies = fn_bodies(&file.tokens, key_fn);
    if bodies.is_empty() {
        out.push(config_error(format!(
            "[{LINT}] key fn `{key_fn}` not found in `{rel}`"
        )));
        return;
    }
    for (field, line) in fields {
        let covered = bodies.iter().any(|b| reads_self_field(b, &field));
        if !covered {
            out.push(RawFinding {
                lint: LINT,
                file: rel.to_string(),
                line,
                message: format!(
                    "field `{field}` of `{struct_name}` is not read by \
                     `{key_fn}()`: a cache keyed on the fingerprint would serve \
                     stale results across values of `{field}`"
                ),
            });
        }
    }
}

/// Rule E: every `EngineConfig` field has a verified-or-exempt entry.
fn check_engine_config(
    files: &[SourceFile],
    cfg: &Config,
    rel: &str,
    struct_name: &str,
    topo_rel: &str,
    out: &mut Vec<RawFinding>,
) {
    let Some(file) = files.iter().find(|f| f.rel == rel) else {
        out.push(config_error(format!(
            "[{LINT}] engine-file `{rel}` is not in the scanned workspace"
        )));
        return;
    };
    let fields = struct_fields(&file.tokens, struct_name);
    if fields.is_empty() {
        out.push(config_error(format!(
            "[{LINT}] struct `{struct_name}` not found (or has no fields) in `{rel}`"
        )));
        return;
    }
    let entries = cfg.entries(FIELDS_SECTION);
    let topo_file = files.iter().find(|f| f.rel == topo_rel);
    for (field, line) in &fields {
        let Some((_, value)) = entries.iter().find(|(k, _)| k == field) else {
            out.push(RawFinding {
                lint: LINT,
                file: rel.to_string(),
                line: *line,
                message: format!(
                    "field `{field}` of `{struct_name}` has no entry in \
                     `[{FIELDS_SECTION}]`: decide whether it reaches a cache key \
                     (`covered:<fn>`) or cannot affect any memoised value \
                     (`exempt:<reason>`)"
                ),
            });
            continue;
        };
        if let Some(fn_name) = value.strip_prefix("covered:") {
            let mut bodies = fn_bodies(&file.tokens, fn_name);
            if let Some(tf) = topo_file {
                bodies.extend(fn_bodies(&tf.tokens, fn_name));
            }
            if bodies.is_empty() {
                out.push(RawFinding {
                    lint: LINT,
                    file: rel.to_string(),
                    line: *line,
                    message: format!("field `{field}`: coverage fn `{fn_name}` does not exist"),
                });
            } else if !bodies.iter().any(|b| mentions_ident(b, field)) {
                out.push(RawFinding {
                    lint: LINT,
                    file: rel.to_string(),
                    line: *line,
                    message: format!(
                        "field `{field}`: declared covered by `{fn_name}()`, but \
                         that function never reads it — the coverage claim is stale"
                    ),
                });
            }
        } else if let Some(reason) = value.strip_prefix("exempt:") {
            if reason.trim().is_empty() {
                out.push(RawFinding {
                    lint: LINT,
                    file: rel.to_string(),
                    line: *line,
                    message: format!("field `{field}`: exempt entries need a reason"),
                });
            }
        } else {
            out.push(RawFinding {
                lint: LINT,
                file: rel.to_string(),
                line: *line,
                message: format!(
                    "field `{field}`: entry must be `covered:<fn>` or \
                     `exempt:<reason>`, got `{value}`"
                ),
            });
        }
    }
    // Stale entries: config rows for fields the struct no longer has.
    for (key, _) in &entries {
        if !fields.iter().any(|(f, _)| f == key) {
            out.push(config_error(format!(
                "[{FIELDS_SECTION}] `{key}` does not name a field of `{struct_name}`"
            )));
        }
    }
}

fn config_error(message: String) -> RawFinding {
    RawFinding {
        lint: LINT,
        file: "lint.toml".to_string(),
        line: 1,
        message,
    }
}

/// `(name, line)` of each named field of `struct struct_name { ... }`.
fn struct_fields(toks: &[Token], struct_name: &str) -> Vec<(String, u32)> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if !(toks[i].is_ident("struct") && toks[i + 1].is_ident(struct_name)) {
            i += 1;
            continue;
        }
        // Skip to the struct body (a `;` first means a unit/tuple-ish
        // struct with no named fields to check).
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') {
            if toks[j].is_punct(';') {
                return fields;
            }
            j += 1;
        }
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                depth += 1;
            } else if toks[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1
                && toks[j].kind == TokenKind::Ident
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && !toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                && (toks[j - 1].is_punct('{')
                    || toks[j - 1].is_punct(',')
                    || is_field_lead(&toks[j - 1]))
            {
                fields.push((toks[j].text.clone(), toks[j].line));
            }
            j += 1;
        }
        return fields;
    }
    fields
}

/// Tokens that can directly precede a field name: visibility or the
/// closing bracket of an attribute.
fn is_field_lead(t: &Token) -> bool {
    t.is_ident("pub") || t.is_punct(']') || t.is_punct(')')
}

/// Bodies (token slices) of every `fn name` in the file.
fn fn_bodies(toks: &[Token], name: &str) -> Vec<Vec<Token>> {
    let mut bodies = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].is_ident("fn") && toks[i + 1].is_ident(name)) {
            i += 1;
            continue;
        }
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') {
            if toks[j].is_punct(';') {
                break; // trait method declaration without a body
            }
            j += 1;
        }
        let start = j;
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                depth += 1;
            } else if toks[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        if j > start {
            bodies.push(toks[start..=j.min(toks.len() - 1)].to_vec());
        }
        i = j.max(i + 2);
    }
    bodies
}

/// True if the body contains `self.<field>`.
fn reads_self_field(body: &[Token], field: &str) -> bool {
    body.windows(3)
        .any(|w| w[0].is_ident("self") && w[1].is_punct('.') && w[2].is_ident(field))
}

/// True if the body mentions the ident at all (used for `covered:`
/// verification, where the read may be `cfg.<field>` or a bare local).
fn mentions_ident(body: &[Token], ident: &str) -> bool {
    body.iter().any(|t| t.is_ident(ident))
}
