//! `wallclock-in-sim`: wall-clock reads inside the simulator.
//!
//! Everything in this workspace is a discrete-event model: time is
//! `t_ns` advanced by the schedulers, never the host clock. An
//! `Instant::now()` or `SystemTime` read makes output depend on the
//! machine running it — the exact failure the trace-invariance and
//! figure-JSON contracts exist to rule out. Benches measure wall time
//! through the vendored criterion shim (not linted); simulator crates
//! get no wall clock at all.

use super::{in_scope, RawFinding};
use crate::config::Config;
use crate::workspace::{FileClass, SourceFile};

/// Scope when `lint.toml` has no `[wallclock-in-sim] paths`: the whole
/// workspace except benches (criterion owns timing there).
const DEFAULT_PATHS: &[&str] = &["crates", "src", "examples", "tests"];

const BANNED: &[&str] = &["Instant", "SystemTime"];

/// Runs the lint over one file.
pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<RawFinding>) {
    if file.class == FileClass::Bench {
        return;
    }
    let mut paths = cfg.list("wallclock-in-sim", "paths");
    if paths.is_empty() {
        paths = DEFAULT_PATHS.iter().map(|s| (*s).to_string()).collect();
    }
    if !in_scope(&file.rel, &paths) {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !BANNED.iter().any(|b| toks[i].is_ident(b)) || file.in_test_region(toks[i].line) {
            continue;
        }
        // Only the std::time types count; this workspace has its own
        // `TraceEvent::Instant` variant. A wall-clock use is either a
        // `time::Instant`/`time::SystemTime` path segment (including
        // `use std::time::...`) or a `::now(` call on the bare name.
        let after_time_path = i >= 3
            && toks[i - 3].is_ident("time")
            && toks[i - 2].is_punct(':')
            && toks[i - 1].is_punct(':');
        let calls_now = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"));
        if after_time_path || calls_now {
            out.push(RawFinding {
                lint: "wallclock-in-sim",
                file: file.rel.clone(),
                line: toks[i].line,
                message: format!(
                    "`{}` reads the wall clock: simulator output must be a function \
                     of its inputs alone; use simulated time (`t_ns`)",
                    toks[i].text
                ),
            });
        }
    }
}
