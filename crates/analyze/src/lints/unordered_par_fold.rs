//! `unordered-par-fold`: reduction order leaking thread scheduling.
//!
//! Floating-point addition does not associate, so folding parallel
//! results in completion order makes output depend on thread timing.
//! The vendored rayon shim is deliberately order-preserving: its only
//! terminal operation is `collect()`, which returns results in input
//! order so the caller folds serially and deterministically (the PR 6
//! idiom — see `vendor/rayon`). Chaining `par_iter()` into `sum`,
//! `fold` or `reduce` is therefore either a compile error waiting to
//! happen (shim) or, against real rayon, a determinism bug. The lint
//! flags the chain shape; calls inside closure bodies at deeper paren
//! nesting are not part of the chain and are ignored.

use super::RawFinding;
use crate::workspace::{FileClass, SourceFile};

const PAR_SOURCES: &[&str] = &["par_iter", "into_par_iter", "par_iter_mut"];
const UNORDERED_SINKS: &[&str] = &["sum", "fold", "reduce"];

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<RawFinding>) {
    if file.class == FileClass::Test {
        return;
    }
    let toks = &file.tokens;
    // Paren/bracket depth *before* each token.
    let mut depth_before = Vec::with_capacity(toks.len());
    let mut d = 0i32;
    for t in toks {
        depth_before.push(d);
        if t.is_punct('(') || t.is_punct('[') {
            d += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            d -= 1;
        }
    }
    for i in 0..toks.len() {
        let starts_chain = PAR_SOURCES.iter().any(|p| toks[i].is_ident(p))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !starts_chain || file.in_test_region(toks[i].line) {
            continue;
        }
        let chain_depth = depth_before[i];
        // Walk the rest of the statement: a `;` or `}` at (or below)
        // chain depth ends it, as does the enclosing expression closing.
        for j in (i + 1)..toks.len() {
            let dj = depth_before[j];
            if dj < chain_depth
                || (dj == chain_depth && (toks[j].is_punct(';') || toks[j].is_punct('}')))
            {
                break;
            }
            let is_sink = dj == chain_depth
                && UNORDERED_SINKS.iter().any(|s| toks[j].is_ident(s))
                && toks[j - 1].is_punct('.');
            if is_sink {
                out.push(RawFinding {
                    lint: "unordered-par-fold",
                    file: file.rel.clone(),
                    line: toks[j].line,
                    message: format!(
                        "`{}()` directly on a `{}()` chain: reduction order depends on \
                         thread scheduling; `collect()` in input order, then fold \
                         serially (the order-preserving vendor/rayon idiom)",
                        toks[j].text, toks[i].text
                    ),
                });
                break;
            }
        }
    }
}
