//! A hand-rolled, comment/string-aware Rust lexer.
//!
//! The lint engine needs exactly one guarantee from its front end: a
//! pattern like `.unwrap()` or `HashMap` inside a string literal, raw
//! string, character literal or comment must never reach a lint. Full
//! parsing is unnecessary — every lint in the registry works on token
//! shapes — so this lexer produces a flat token stream with line
//! numbers and leaves grammar to the individual passes. It handles the
//! constructs that defeat regex-grade scanners:
//!
//! * line comments and **nested** block comments,
//! * string literals with escapes (`"a \" b"`),
//! * raw strings with arbitrary hash fences (`r#"..."#`, `br##"…"##`),
//! * byte strings and byte/char literals,
//! * lifetimes vs char literals (`'a` vs `'a'`).
//!
//! Comments are emitted as [`TokenKind::Comment`] tokens (the pragma
//! scanner reads them); [`strip_comments`] yields the code-only stream
//! the lints consume.

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String or byte-string literal, escapes resolved past.
    Str,
    /// Raw (byte-)string literal, any fence width.
    RawStr,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`), including the quote.
    Lifetime,
    /// Numeric literal (integer or float, suffix included).
    Number,
    /// Line or block comment, full text included.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }
}

/// Lexes `src` into a token stream, comments included.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

/// Drops [`TokenKind::Comment`] tokens: the stream the lints consume.
#[must_use]
pub fn strip_comments(tokens: &[Token]) -> Vec<Token> {
    tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .cloned()
        .collect()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, String::new()),
                '\'' => self.quote(line),
                'r' | 'b' => self.maybe_prefixed_literal(line),
                c if is_ident_start(c) => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    let c = self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(self.bump());
        }
        self.push(TokenKind::Comment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push(self.bump());
                text.push(self.bump());
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push(self.bump());
                text.push(self.bump());
                if depth == 0 {
                    break;
                }
            } else {
                text.push(self.bump());
            }
        }
        self.push(TokenKind::Comment, text, line);
    }

    /// A `"`-delimited (byte-)string; `prefix` holds any `b` already
    /// consumed.
    fn string(&mut self, line: u32, prefix: String) {
        let mut text = prefix;
        text.push(self.bump()); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(self.bump());
                if self.peek(0).is_some() {
                    text.push(self.bump());
                }
            } else if c == '"' {
                text.push(self.bump());
                break;
            } else {
                text.push(self.bump());
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// A raw (byte-)string starting at `r`; `prefix` holds any `b`
    /// already consumed.
    fn raw_string(&mut self, line: u32, prefix: String) {
        let mut text = prefix;
        text.push(self.bump()); // the `r`
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            fence += 1;
            text.push(self.bump());
        }
        if self.peek(0) != Some('"') {
            // Not actually a raw string (e.g. `r#foo` raw identifier):
            // treat what we consumed as an identifier start.
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    text.push(self.bump());
                } else {
                    break;
                }
            }
            self.push(TokenKind::Ident, text, line);
            return;
        }
        text.push(self.bump()); // opening quote
        'body: while let Some(c) = self.peek(0) {
            if c == '"' {
                // A close needs `"` followed by exactly `fence` hashes.
                let mut ok = true;
                for i in 0..fence {
                    if self.peek(1 + i) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    text.push(self.bump());
                    for _ in 0..fence {
                        text.push(self.bump());
                    }
                    break 'body;
                }
            }
            text.push(self.bump());
        }
        self.push(TokenKind::RawStr, text, line);
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime).
    fn quote(&mut self, line: u32) {
        if self.peek(1) == Some('\\') {
            // Escaped char literal: consume to the closing quote. The
            // character after the backslash is content even when it is
            // a quote (`'\''`), so take it before scanning for the
            // close.
            let mut text = String::new();
            text.push(self.bump()); // '
            text.push(self.bump()); // backslash
            if self.peek(0).is_some() {
                text.push(self.bump()); // the escaped character
            }
            while let Some(c) = self.peek(0) {
                let done = c == '\'';
                text.push(self.bump());
                if done {
                    break;
                }
            }
            self.push(TokenKind::Char, text, line);
        } else if self
            .peek(1)
            .is_some_and(|c| is_ident_start(c) || c.is_ascii_digit())
            && self.peek(2) != Some('\'')
        {
            // Lifetime: quote + ident, no closing quote.
            let mut text = String::new();
            text.push(self.bump());
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    text.push(self.bump());
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line);
        } else {
            // Plain char literal like 'a' or '"'.
            let mut text = String::new();
            text.push(self.bump());
            while let Some(c) = self.peek(0) {
                let done = c == '\'';
                text.push(self.bump());
                if done {
                    break;
                }
            }
            self.push(TokenKind::Char, text, line);
        }
    }

    /// `r`/`b` may open a raw string, byte string, byte literal — or
    /// just an identifier.
    fn maybe_prefixed_literal(&mut self, line: u32) {
        let c = self.peek(0).unwrap_or(' ');
        match (c, self.peek(1)) {
            ('r', Some('"' | '#')) => self.raw_string(line, String::new()),
            ('b', Some('"')) => {
                let b = self.bump();
                self.string(line, b.to_string());
            }
            ('b', Some('r')) if matches!(self.peek(2), Some('"' | '#')) => {
                let b = self.bump();
                self.raw_string(line, b.to_string());
            }
            ('b', Some('\'')) => {
                let mut text = String::new();
                text.push(self.bump()); // b
                text.push(self.bump()); // '
                if self.peek(0) == Some('\\') {
                    text.push(self.bump());
                    if self.peek(0).is_some() {
                        text.push(self.bump()); // escaped char (may be `'`)
                    }
                }
                while let Some(c) = self.peek(0) {
                    let done = c == '\'';
                    text.push(self.bump());
                    if done {
                        break;
                    }
                }
                self.push(TokenKind::Char, text, line);
            }
            _ => self.ident(line),
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(self.bump());
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            // Good enough for lint purposes: digits, underscores, type
            // suffixes, hex letters, and a decimal point glued to a
            // digit (so `1..4` stays a number and two dots).
            let take = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if take {
                text.push(self.bump());
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_swallow_escapes_and_quotes() {
        let toks = kinds(r#"let s = "a \" .unwrap() b";"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("unwrap"));
        assert!(!toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "unwrap"));
    }

    #[test]
    fn raw_strings_respect_hash_fences() {
        let src = "let s = r##\"has \"# inner HashMap\"##; let t = 1;";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::RawStr && t.1.contains("HashMap")));
        assert!(!toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "HashMap"));
        assert!(toks.iter().any(|t| t.0 == TokenKind::Ident && t.1 == "t"));
    }

    #[test]
    fn block_comments_nest() {
        let toks = kinds("a /* outer /* inner */ still */ b");
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::Ident)
            .map(|t| t.1.clone())
            .collect();
        assert_eq!(idents, ["a", "b"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokenKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Char).count(), 2);
    }

    #[test]
    fn lines_advance_through_multiline_tokens() {
        let src = "/* one\ntwo */\nlet x = \"a\nb\";\nfn y() {}";
        let toks = lex(src);
        let x = toks.iter().find(|t| t.is_ident("x")).expect("x lexed");
        assert_eq!(x.line, 3);
        let y = toks.iter().find(|t| t.is_ident("y")).expect("y lexed");
        assert_eq!(y.line, 5);
    }

    #[test]
    fn byte_and_raw_byte_strings_lex() {
        let toks =
            kinds(r##"let a = b"bytes"; let c = br#"raw panic!("x") bytes"#; let d = b'x';"##);
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::Str && t.1.starts_with("b\"")));
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::RawStr && t.1.starts_with("br#")));
        assert!(!toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "panic"));
        assert!(toks.iter().any(|t| t.0 == TokenKind::Char && t.1 == "b'x'"));
    }
}
