//! Inline suppression pragmas.
//!
//! A finding is suppressed by a comment on the same line or the line
//! directly above it:
//!
//! ```text
//! // c2m-lint: allow(unwrap-in-lib, reason = "documented panic contract")
//! Err(e) => panic!("invalid engine configuration: {e}"),
//! ```
//!
//! The `reason` is **mandatory** — a pragma without one (or naming an
//! unknown lint) is itself reported as `malformed-pragma`, and a pragma
//! that suppresses nothing is reported as `unused-pragma`, so stale
//! suppressions cannot accumulate silently.

use crate::lexer::{Token, TokenKind};

/// One parsed `c2m-lint: allow(...)` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Lints this pragma suppresses.
    pub lints: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
    /// 1-based line the pragma comment starts on.
    pub line: u32,
}

/// A pragma that could not be parsed, with what went wrong.
#[derive(Debug, Clone)]
pub struct MalformedPragma {
    /// 1-based line of the offending comment.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// Scans comment tokens for pragmas. `known_lints` validates the lint
/// names (an unknown name would otherwise suppress nothing, silently).
#[must_use]
pub fn extract(tokens: &[Token], known_lints: &[&str]) -> (Vec<Pragma>, Vec<MalformedPragma>) {
    let mut pragmas = Vec::new();
    let mut malformed = Vec::new();
    for tok in tokens {
        if tok.kind != TokenKind::Comment {
            continue;
        }
        // Doc comments are prose — mentioning the pragma syntax there
        // (as this crate's own docs do) must not create a pragma. Only
        // plain `//` / `/*` comments carry suppressions.
        if tok.text.starts_with("///")
            || tok.text.starts_with("//!")
            || tok.text.starts_with("/**")
            || tok.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = tok.text.find("c2m-lint:") else {
            continue;
        };
        let rest = tok.text[at + "c2m-lint:".len()..].trim();
        match parse_body(rest, known_lints) {
            Ok((lints, reason)) => pragmas.push(Pragma {
                lints,
                reason,
                line: tok.line,
            }),
            Err(message) => malformed.push(MalformedPragma {
                line: tok.line,
                message,
            }),
        }
    }
    (pragmas, malformed)
}

/// Parses `allow(<lint>[, <lint>]*, reason = "...")`.
fn parse_body(rest: &str, known_lints: &[&str]) -> Result<(Vec<String>, String), String> {
    let body = rest
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|s| s.strip_prefix('('))
        .ok_or_else(|| "expected `allow(<lint>, reason = \"...\")`".to_string())?;
    let body = body
        .rfind(')')
        .map(|i| &body[..i])
        .ok_or_else(|| "unclosed `allow(`".to_string())?;
    let mut lints = Vec::new();
    let mut reason: Option<String> = None;
    for part in split_args(body) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some(value) = part.strip_prefix("reason") {
            let value = value
                .trim_start()
                .strip_prefix('=')
                .map(str::trim)
                .ok_or_else(|| "expected `reason = \"...\"`".to_string())?;
            let inner = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| "reason must be a double-quoted string".to_string())?;
            if inner.trim().is_empty() {
                return Err("reason must not be empty".to_string());
            }
            reason = Some(inner.to_string());
        } else {
            if !known_lints.contains(&part) {
                return Err(format!("unknown lint `{part}`"));
            }
            lints.push(part.to_string());
        }
    }
    if lints.is_empty() {
        return Err("pragma names no lint".to_string());
    }
    let reason = reason.ok_or_else(|| "missing mandatory `reason = \"...\"`".to_string())?;
    Ok((lints, reason))
}

/// Splits pragma arguments on commas outside the reason's quotes.
fn split_args(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => parts.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const KNOWN: &[&str] = &["unwrap-in-lib", "unordered-map-iter"];

    #[test]
    fn parses_a_full_pragma() {
        let toks = lex("// c2m-lint: allow(unwrap-in-lib, reason = \"builder contract\")\n");
        let (pragmas, bad) = extract(&toks, KNOWN);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(pragmas.len(), 1);
        assert_eq!(pragmas[0].lints, ["unwrap-in-lib"]);
        assert_eq!(pragmas[0].reason, "builder contract");
        assert_eq!(pragmas[0].line, 1);
    }

    #[test]
    fn reason_is_mandatory() {
        let toks = lex("// c2m-lint: allow(unwrap-in-lib)\n");
        let (pragmas, bad) = extract(&toks, KNOWN);
        assert!(pragmas.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("reason"), "{}", bad[0].message);
    }

    #[test]
    fn empty_reason_and_unknown_lint_are_malformed() {
        let toks = lex("// c2m-lint: allow(unwrap-in-lib, reason = \"  \")\n\
             // c2m-lint: allow(no-such-lint, reason = \"x\")\n\
             // c2m-lint: allow(reason = \"x\")\n");
        let (pragmas, bad) = extract(&toks, KNOWN);
        assert!(pragmas.is_empty());
        assert_eq!(bad.len(), 3);
    }

    #[test]
    fn multi_lint_pragmas_and_commas_in_reason() {
        let toks = lex(
            "// c2m-lint: allow(unwrap-in-lib, unordered-map-iter, reason = \"a, b, and c\")\n",
        );
        let (pragmas, bad) = extract(&toks, KNOWN);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(pragmas[0].lints, ["unwrap-in-lib", "unordered-map-iter"]);
        assert_eq!(pragmas[0].reason, "a, b, and c");
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let toks = lex("// nothing to see\n/* c2m unrelated */\n");
        let (pragmas, bad) = extract(&toks, KNOWN);
        assert!(pragmas.is_empty() && bad.is_empty());
    }
}
