//! Fixture-based self-tests: every lint must detect its seeded
//! violation at the right line, honour pragma suppression, and stay
//! quiet on the sanctioned idioms sitting alongside.
//!
//! Fixtures live in `tests/fixtures/` — a directory name the workspace
//! walker skips — and are mapped to determinism-critical paths here so
//! the scope rules apply to them.

use c2m_analyze::config::Config;
use c2m_analyze::diag::{Finding, Report};
use c2m_analyze::run_files;

/// Runs one fixture as if it lived at `rel`.
fn lint_fixture(rel: &str, src: &str) -> Report {
    lint_fixture_with(rel, src, &Config::default())
}

fn lint_fixture_with(rel: &str, src: &str, cfg: &Config) -> Report {
    run_files(&[(rel.to_string(), src.to_string())], cfg).expect("lint run succeeds")
}

/// 1-based line of the first source line containing `needle`.
fn line_of(src: &str, needle: &str) -> u32 {
    u32::try_from(
        src.lines()
            .position(|l| l.contains(needle))
            .unwrap_or_else(|| panic!("fixture is missing `{needle}`"))
            + 1,
    )
    .expect("fixture fits in u32 lines")
}

fn of_lint<'a>(report: &'a Report, lint: &str) -> Vec<&'a Finding> {
    report.findings.iter().filter(|f| f.lint == lint).collect()
}

#[test]
fn unordered_map_iter_fixture() {
    let src = include_str!("fixtures/unordered_map_iter.rs");
    let report = lint_fixture("crates/core/src/fixture.rs", src);
    let hits = of_lint(&report, "unordered-map-iter");
    let expected = [
        line_of(src, "use std::collections::HashMap;"),
        line_of(src, "map: HashMap<String, u64>,"),
        line_of(src, "std::collections::HashMap::new() // line 15"),
    ];
    let lines: Vec<u32> = hits.iter().map(|f| f.line).collect();
    assert_eq!(lines, expected, "{hits:?}");
    // The pragma'd fn signature and the #[cfg(test)] body are exempt.
    assert_eq!(report.suppressed, 1);
    // Out of scope, the lint stays quiet entirely.
    let quiet = lint_fixture("crates/mig/src/fixture.rs", src);
    assert!(of_lint(&quiet, "unordered-map-iter").is_empty());
}

#[test]
fn wallclock_in_sim_fixture() {
    let src = include_str!("fixtures/wallclock_in_sim.rs");
    let report = lint_fixture("crates/dram/src/fixture.rs", src);
    let hits = of_lint(&report, "wallclock-in-sim");
    let expected = [
        line_of(src, "use std::time::Instant;"),
        line_of(src, "Instant::now(); // line 6"),
    ];
    let lines: Vec<u32> = hits.iter().map(|f| f.line).collect();
    assert_eq!(lines, expected, "{hits:?}");
    assert_eq!(report.suppressed, 1, "SystemTime::now under pragma");
    // The repo's own `Event::Instant` variant must not trip the lint —
    // asserted by the exact-lines check above (no extra findings).
}

#[test]
fn unwrap_in_lib_fixture() {
    let src = include_str!("fixtures/unwrap_in_lib.rs");
    let report = lint_fixture("crates/serve/src/fixture.rs", src);
    let hits = of_lint(&report, "unwrap-in-lib");
    let expected = [
        line_of(src, "v.unwrap() // line 4"),
        line_of(src, "v.expect(&format!"),
    ];
    let lines: Vec<u32> = hits.iter().map(|f| f.line).collect();
    assert_eq!(lines, expected, "{hits:?}");
    assert_eq!(report.suppressed, 1, "contract panic under pragma");
    // Bin targets are out of this lint's scope.
    let bin = lint_fixture("src/bin/fixture.rs", src);
    assert!(of_lint(&bin, "unwrap-in-lib").is_empty());
}

#[test]
fn deprecated_shim_call_fixture() {
    let src = include_str!("fixtures/deprecated_shim_call.rs");
    let report = lint_fixture("crates/core/src/fixture.rs", src);
    let hits = of_lint(&report, "deprecated-shim-call");
    let expected = [
        line_of(src, "Widget::legacy_new(3); // line 27"),
        line_of(src, "w.legacy_resize(5);"),
    ];
    let lines: Vec<u32> = hits.iter().map(|f| f.line).collect();
    assert_eq!(lines, expected, "{hits:?}");
    assert_eq!(report.suppressed, 1, "pragma'd legacy_new call");
}

#[test]
fn unordered_par_fold_fixture() {
    let src = include_str!("fixtures/unordered_par_fold.rs");
    let report = lint_fixture("crates/core/src/fixture.rs", src);
    let hits = of_lint(&report, "unordered-par-fold");
    let expected = [line_of(src, ".sum() // line 6")];
    let lines: Vec<u32> = hits.iter().map(|f| f.line).collect();
    assert_eq!(lines, expected, "{hits:?}");
    assert_eq!(report.suppressed, 1, "pragma'd reduce chain");
}

#[test]
fn cache_key_completeness_fixture() {
    let src = include_str!("fixtures/cache_key_completeness.rs");
    let cfg = Config::parse(
        r#"
[cache-key-completeness]
topology-file = "crates/dram/src/fixture.rs"
topology-struct = "Topology"
topology-key-fn = "fingerprint"
engine-file = "crates/dram/src/fixture.rs"
engine-struct = "EngineConfig"

[cache-key-completeness.fields]
radix = "covered:plan"
stale_claim = "covered:plan"
exempted = "exempt:fixture: never reaches a memoised value"
"#,
    )
    .expect("valid fixture config");
    let report = lint_fixture_with("crates/dram/src/fixture.rs", src, &cfg);
    let hits = of_lint(&report, "cache-key-completeness");
    let expected = [
        line_of(src, "pub subarrays: usize,"),
        line_of(src, "pub capacity: u32,"),
        line_of(src, "pub stale_claim: usize,"),
    ];
    let lines: Vec<u32> = hits.iter().map(|f| f.line).collect();
    assert_eq!(lines, expected, "{hits:?}");
    assert!(
        hits[0].message.contains("subarrays"),
        "fingerprint gap names the field: {}",
        hits[0].message
    );
    assert!(hits[1].message.contains("no entry"), "{}", hits[1].message);
    assert!(hits[2].message.contains("stale"), "{}", hits[2].message);
}

#[test]
fn cache_key_completeness_accepts_the_complete_shape() {
    // Same fixture, but with the fingerprint gap closed and every
    // field accounted for: zero findings.
    let src = include_str!("fixtures/cache_key_completeness.rs").replace(
        "((self.channels as u64) << 32)",
        "((self.subarrays as u64) << 48) | ((self.channels as u64) << 32)",
    );
    let cfg = Config::parse(
        r#"
[cache-key-completeness]
topology-file = "crates/dram/src/fixture.rs"
engine-file = "crates/dram/src/fixture.rs"
engine-struct = "EngineConfig"

[cache-key-completeness.fields]
radix = "covered:plan"
capacity = "exempt:fixture: pricing-only"
stale_claim = "exempt:fixture: pricing-only"
exempted = "exempt:fixture: never reaches a memoised value"
"#,
    )
    .expect("valid fixture config");
    let report = lint_fixture_with("crates/dram/src/fixture.rs", &src, &cfg);
    assert!(
        of_lint(&report, "cache-key-completeness").is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn real_workspace_is_clean_under_committed_config() {
    // The acceptance gate, as a test: the shipped lint.toml over the
    // real workspace yields zero visible findings. CARGO_MANIFEST_DIR
    // is crates/analyze; the workspace root is two levels up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml is committed");
    let cfg = Config::parse(&toml).expect("committed lint.toml parses");
    let report = c2m_analyze::run_root(&root, &cfg).expect("workspace scan succeeds");
    assert!(
        !report.fails(true),
        "workspace must be lint-clean under --deny:\n{}",
        report.render_human()
    );
}
