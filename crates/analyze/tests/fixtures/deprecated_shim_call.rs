// Seeded violations for the `deprecated-shim-call` lint: a deprecated
// associated constructor and a deprecated method, each called once in
// live code (findings), once under a pragma (suppressed), and once in
// a #[cfg(test)] region (exempt).

pub struct Widget {
    size: usize,
}

impl Widget {
    #[deprecated(note = "use WidgetBuilder")]
    pub fn legacy_new(size: usize) -> Self {
        Self { size }
    }

    #[deprecated(note = "use WidgetBuilder::resize")]
    pub fn legacy_resize(&mut self, size: usize) {
        self.size = size;
    }

    pub fn size(&self) -> usize {
        self.size
    }
}

pub fn live_callers() -> usize {
    let mut w = Widget::legacy_new(3); // line 27: finding (associated call)
    w.legacy_resize(5); // line 28: finding (method call)
    w.size()
}

pub fn suppressed_callers() -> usize {
    // c2m-lint: allow(deprecated-shim-call, reason = "fixture: suppressed seeded violation")
    let w = Widget::legacy_new(3); // line 34: suppressed
    w.size()
}

#[cfg(test)]
mod tests {
    use super::Widget;

    #[test]
    fn shims_stay_testable() {
        let w = Widget::legacy_new(1);
        assert_eq!(w.size(), 1);
    }
}
