// Seeded violations for the `cache-key-completeness` semantic pass.
// The test maps this file in as both the topology-file and the
// engine-file of a miniature workspace.

/// A topology whose fingerprint forgot one field — the exact bug class
/// the lint exists for (PR 7's `subarrays` near-miss).
pub struct Topology {
    pub channels: usize,
    pub ranks: usize,
    pub banks: usize,
    pub subarrays: usize, // finding: not read by fingerprint
}

impl Topology {
    pub fn fingerprint(&self) -> u64 {
        // `subarrays` is missing: two topologies differing only there
        // would collide.
        ((self.channels as u64) << 32) | ((self.ranks as u64) << 16) | (self.banks as u64)
    }
}

pub struct EngineConfig {
    pub radix: usize,       // covered:plan (verified below)
    pub capacity: u32,      // finding: no lint.toml entry
    pub stale_claim: usize, // finding: covered:plan, but plan never reads it
    pub exempted: f64,      // exempt with a reason: clean
}

pub fn plan(cfg: &EngineConfig) -> u64 {
    cfg.radix as u64
}
