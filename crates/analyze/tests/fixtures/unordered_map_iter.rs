// Seeded violations for the `unordered-map-iter` lint. This file is
// linted as `crates/core/src/fixture.rs` (a determinism-critical path);
// the walker never scans `fixtures/` directories, so these violations
// cannot leak into a real run.

use std::collections::HashMap; // line 6: finding

pub struct Table {
    map: HashMap<String, u64>, // line 9: finding
}

// c2m-lint: allow(unordered-map-iter, reason = "fixture: suppressed seeded violation")
pub fn suppressed() -> HashMap<u32, u32> {
    // line 13 above: suppressed by the pragma on line 12
    std::collections::HashMap::new() // line 15: finding
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_region_is_exempt() {
        let m: std::collections::HashMap<u8, u8> = std::collections::HashMap::new();
        assert!(m.is_empty());
    }
}
