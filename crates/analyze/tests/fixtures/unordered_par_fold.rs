// Seeded violations for the `unordered-par-fold` lint.

use rayon::prelude::*;

pub fn unordered_sum(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum() // line 6: finding
}

pub fn unordered_reduce(xs: &[f64]) -> f64 {
    // c2m-lint: allow(unordered-par-fold, reason = "fixture: suppressed seeded violation")
    xs.par_iter().cloned().reduce(|| 0.0, |a, b| a + b) // line 11: suppressed
}

pub fn ordered_idiom(xs: &[f64]) -> f64 {
    // Clean: collect in input order, then fold serially.
    let doubled: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
    doubled.iter().fold(0.0, |a, b| a + b)
}

pub fn closure_body_fold_is_not_the_chain(xs: &[Vec<f64>]) -> Vec<f64> {
    // Clean: the fold happens *inside* the closure (deeper nesting),
    // the chain itself terminates in an order-preserving collect().
    xs.par_iter()
        .map(|row| row.iter().fold(0.0, |a, b| a + b))
        .collect()
}
