// Seeded violations for the `wallclock-in-sim` lint.

use std::time::Instant; // line 3: finding (time:: path segment)

pub fn naive_latency() -> u128 {
    let t0 = Instant::now(); // line 6: finding (::now call)
    t0.elapsed().as_nanos()
}

pub fn epoch() -> u64 {
    // c2m-lint: allow(wallclock-in-sim, reason = "fixture: suppressed seeded violation")
    let t = std::time::SystemTime::now(); // line 12: suppressed
    drop(t);
    0
}

/// A same-named enum variant must NOT be flagged — the workspace has
/// its own `TraceEvent::Instant`.
pub enum Event {
    Instant { t_ns: f64 },
}

pub fn record(e: Event) -> f64 {
    match e {
        Event::Instant { t_ns } => t_ns,
    }
}
