// Seeded violations for the `unwrap-in-lib` lint.

pub fn takes_the_shortcut(v: Option<u32>) -> u32 {
    v.unwrap() // line 4: finding
}

pub fn computed_message(v: Option<u32>) -> u32 {
    v.expect(&format!("missing {}", 7)) // line 8: finding (non-literal message)
}

pub fn sanctioned(v: Option<u32>) -> u32 {
    v.expect("fixture invariant: caller checked is_some") // literal message: clean
}

pub fn contract_panic(x: u32) -> u32 {
    if x == 0 {
        // c2m-lint: allow(unwrap-in-lib, reason = "fixture: documented panic contract")
        panic!("x must be nonzero"); // line 18: suppressed
    }
    x - 1
}

pub fn string_is_not_code() -> &'static str {
    "call .unwrap() and panic!(now) inside a string" // clean: inside a literal
}
