//! Property test: lint-triggering patterns are inert inside string
//! literals, raw strings, byte strings and comments. This is the one
//! guarantee the hand-rolled lexer owes the lints — a regex-grade
//! scanner fails exactly here.

use c2m_analyze::config::Config;
use c2m_analyze::run_files;
use proptest::prelude::*;

/// Patterns that each trip at least one lint when they appear as code.
const BAIT: &[&str] = &[
    ".unwrap()",
    "HashMap::new()",
    "std::time::Instant::now()",
    "panic!(\"boom\")",
    ".par_iter().map(|x| x).sum()",
    ".expect(format!(\"x\"))",
];

/// Ways to quarantine a snippet so it is data, not code.
#[derive(Debug, Clone, Copy)]
enum Container {
    LineComment,
    BlockComment,
    Str,
    RawStr,
    ByteStr,
}

fn embed(container: Container, snippet: &str, pad: usize) -> String {
    let padding = "x".repeat(pad % 7 + 1);
    match container {
        Container::LineComment => {
            format!("pub fn f() -> u32 {{\n    // {padding} {snippet}\n    0\n}}\n")
        }
        Container::BlockComment => {
            format!("pub fn f() -> u32 {{\n    /* {padding}\n    {snippet}\n    */\n    0\n}}\n")
        }
        Container::Str => {
            let escaped = snippet.replace('\\', "\\\\").replace('"', "\\\"");
            format!("pub fn f() -> &'static str {{\n    \"{padding} {escaped}\"\n}}\n")
        }
        Container::RawStr => {
            format!("pub fn f() -> &'static str {{\n    r#\"{padding} {snippet}\"#\n}}\n")
        }
        Container::ByteStr => {
            let escaped = snippet.replace('\\', "\\\\").replace('"', "\\\"");
            format!("pub fn f() -> &'static [u8] {{\n    b\"{padding} {escaped}\"\n}}\n")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Quarantined bait produces zero findings; the same bait as live
    /// code produces at least one. Both halves matter: the second
    /// proves the bait actually baits, so the first is not vacuous.
    #[test]
    fn bait_is_inert_inside_literals_and_comments(
        bait_idx in 0usize..6,
        container in prop::sample::select(vec![
            Container::LineComment,
            Container::BlockComment,
            Container::Str,
            Container::RawStr,
            Container::ByteStr,
        ]),
        pad in 0usize..100,
    ) {
        let snippet = BAIT[bait_idx];
        let cfg = Config::default();
        let quarantined = embed(container, snippet, pad);
        let report = run_files(
            &[("crates/core/src/fixture.rs".to_string(), quarantined.clone())],
            &cfg,
        )
        .expect("lint run succeeds");
        prop_assert!(
            report.findings.is_empty(),
            "findings from quarantined bait:\n{quarantined}\n{:?}",
            report.findings
        );

        let live = format!(
            "pub fn f(v: Option<u32>) {{\n    let _ = v{snippet};\n}}\n"
        );
        let live_src = if snippet.starts_with('.') {
            live
        } else {
            format!("pub fn f() {{\n    let _ = {snippet};\n}}\n")
        };
        let report = run_files(
            &[("crates/core/src/fixture.rs".to_string(), live_src.clone())],
            &cfg,
        )
        .expect("lint run succeeds");
        prop_assert!(
            !report.findings.is_empty(),
            "live bait went undetected:\n{live_src}"
        );
    }
}
