//! Property tests for topology-aware sharded execution: sharded reports
//! must stay consistent with the single-channel model they generalise.

use c2m_core::engine::{C2mEngine, EngineConfig};
use c2m_core::shard::ShardPlanner;
use c2m_dram::{CommandKind, Topology};
use proptest::prelude::*;

fn engine(channels: usize, ranks: usize, banks: usize) -> C2mEngine {
    let mut cfg = EngineConfig::c2m(banks);
    cfg.dram.channels = channels;
    cfg.dram.ranks = ranks;
    C2mEngine::builder(cfg).build()
}

fn stream(k: usize, seed: u64) -> Vec<i64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
    (0..k).map(|_| rng.gen_range(-128i64..128)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// GEMM latency is monotonically non-increasing in the channel
    /// count: more channels never slow a kernel down.
    #[test]
    fn gemm_elapsed_non_increasing_in_channels(
        m in 8usize..64,
        k in 256usize..1024,
        n in 256usize..2048,
        seed in 0u64..1000,
    ) {
        let xs = stream(k, seed);
        let mut prev = f64::INFINITY;
        for channels in [1usize, 2, 4, 8] {
            let r = engine(channels, 1, 16).ternary_gemm(m, n, &xs);
            prop_assert!(
                r.elapsed_ns <= prev,
                "channels={} elapsed {} > prev {}", channels, r.elapsed_ns, prev
            );
            prev = r.elapsed_ns;
        }
    }

    /// The accumulation command count of a GEMM is invariant under
    /// sharding: distributing rows over channels moves work, it does
    /// not create or destroy it (only host RD gather traffic appears).
    #[test]
    fn gemm_macro_commands_invariant_under_sharding(
        m in 8usize..64,
        k in 256usize..1024,
        seed in 0u64..1000,
    ) {
        let xs = stream(k, seed);
        let base = engine(1, 1, 16).ternary_gemm(m, 1024, &xs);
        for channels in [2usize, 4, 8] {
            let r = engine(channels, 1, 16).ternary_gemm(m, 1024, &xs);
            prop_assert_eq!(
                r.stats.count(CommandKind::Aap),
                base.stats.count(CommandKind::Aap),
                "channels={}", channels
            );
        }
    }

    /// GEMV sharding over K always lands in (1/channels, 1] of the
    /// single-channel latency when K dwarfs the merge cost.
    #[test]
    fn gemv_speedup_is_sublinear_but_real(
        k in 4096usize..8192,
        seed in 0u64..1000,
    ) {
        let xs = stream(k, seed);
        let one = engine(1, 1, 16).ternary_gemv(&xs, 8192);
        for channels in [2usize, 4, 8] {
            let r = engine(channels, 1, 16).ternary_gemv(&xs, 8192);
            prop_assert!(r.elapsed_ns < one.elapsed_ns, "channels={}", channels);
            prop_assert!(
                r.elapsed_ns > one.elapsed_ns / channels as f64,
                "channels={}: {} not > {}", channels, r.elapsed_ns,
                one.elapsed_ns / channels as f64
            );
        }
    }

    /// Shard plans partition their axis exactly: contiguous, disjoint,
    /// complete, balanced to within one element, and confined to the
    /// topology's units.
    #[test]
    fn plans_partition_exactly(
        channels in 1usize..=8,
        ranks in 1usize..=4,
        total in 1usize..10_000,
    ) {
        let planner = ShardPlanner::new(Topology { channels, ranks, banks: 16 });
        for plan in [planner.plan_rows(total), planner.plan_inner(total), planner.plan_planes(total)] {
            let mut cursor = 0usize;
            let mut min_len = usize::MAX;
            let mut max_len = 0usize;
            for s in &plan.shards {
                prop_assert_eq!(s.start, cursor);
                cursor = s.end();
                min_len = min_len.min(s.len);
                max_len = max_len.max(s.len);
                prop_assert!(s.channel < channels);
                prop_assert!(s.rank < ranks);
            }
            prop_assert_eq!(cursor, total);
            prop_assert!(max_len - min_len <= 1, "balanced: {} vs {}", min_len, max_len);
            prop_assert!(plan.shards.len() <= channels * ranks);
        }
    }
}
