//! Property tests for topology-aware sharded execution: sharded reports
//! must stay consistent with the single-channel model they generalise.

use c2m_core::engine::{C2mEngine, EngineConfig};
use c2m_core::shard::ShardPlanner;
use c2m_dram::{CommandKind, Topology};
use proptest::prelude::*;

fn engine(channels: usize, ranks: usize, banks: usize) -> C2mEngine {
    let mut cfg = EngineConfig::c2m(banks);
    cfg.dram.channels = channels;
    cfg.dram.ranks = ranks;
    C2mEngine::builder(cfg).build()
}

fn stream(k: usize, seed: u64) -> Vec<i64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
    (0..k).map(|_| rng.gen_range(-128i64..128)).collect()
}

fn salp_engine(
    channels: usize,
    ranks: usize,
    banks: usize,
    subarrays: usize,
    iarm: bool,
) -> C2mEngine {
    let mut cfg = EngineConfig::c2m(banks);
    cfg.dram.channels = channels;
    cfg.dram.ranks = ranks;
    cfg.subarrays = subarrays;
    cfg.iarm = iarm;
    C2mEngine::builder(cfg).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// GEMM latency is monotonically non-increasing in the channel
    /// count: more channels never slow a kernel down.
    #[test]
    fn gemm_elapsed_non_increasing_in_channels(
        m in 8usize..64,
        k in 256usize..1024,
        n in 256usize..2048,
        seed in 0u64..1000,
    ) {
        let xs = stream(k, seed);
        let mut prev = f64::INFINITY;
        for channels in [1usize, 2, 4, 8] {
            let r = engine(channels, 1, 16).ternary_gemm(m, n, &xs);
            prop_assert!(
                r.elapsed_ns <= prev,
                "channels={} elapsed {} > prev {}", channels, r.elapsed_ns, prev
            );
            prev = r.elapsed_ns;
        }
    }

    /// The accumulation command count of a GEMM is invariant under
    /// sharding: distributing rows over channels moves work, it does
    /// not create or destroy it (only host RD gather traffic appears).
    #[test]
    fn gemm_macro_commands_invariant_under_sharding(
        m in 8usize..64,
        k in 256usize..1024,
        seed in 0u64..1000,
    ) {
        let xs = stream(k, seed);
        let base = engine(1, 1, 16).ternary_gemm(m, 1024, &xs);
        for channels in [2usize, 4, 8] {
            let r = engine(channels, 1, 16).ternary_gemm(m, 1024, &xs);
            prop_assert_eq!(
                r.stats.count(CommandKind::Aap),
                base.stats.count(CommandKind::Aap),
                "channels={}", channels
            );
        }
    }

    /// GEMV sharding over K always lands in (1/channels, 1] of the
    /// single-channel latency when K dwarfs the merge cost.
    #[test]
    fn gemv_speedup_is_sublinear_but_real(
        k in 4096usize..8192,
        seed in 0u64..1000,
    ) {
        let xs = stream(k, seed);
        let one = engine(1, 1, 16).ternary_gemv(&xs, 8192);
        for channels in [2usize, 4, 8] {
            let r = engine(channels, 1, 16).ternary_gemv(&xs, 8192);
            prop_assert!(r.elapsed_ns < one.elapsed_ns, "channels={}", channels);
            prop_assert!(
                r.elapsed_ns > one.elapsed_ns / channels as f64,
                "channels={}: {} not > {}", channels, r.elapsed_ns,
                one.elapsed_ns / channels as f64
            );
        }
    }

    /// One SALP stream per bank IS the pre-SALP model: an engine with
    /// `subarrays = 1` prices every kernel bit-for-bit like the default
    /// engine, and the four-level planner collapses to the three-level
    /// plan (every shard in subarray 0, same boundaries).
    #[test]
    fn one_stream_salp_is_bit_for_bit_the_flat_model(
        channels in 1usize..=4,
        ranks in 1usize..=2,
        k in 256usize..2048,
        n in 64usize..512,
        seed in 0u64..1000,
    ) {
        let xs = stream(k, seed);
        let flat = engine(channels, ranks, 16);
        let one = salp_engine(channels, ranks, 16, 1, true);
        for (a, b) in [
            (flat.ternary_gemv(&xs, n), one.ternary_gemv(&xs, n)),
            (flat.ternary_gemm(8, n, &xs), one.ternary_gemm(8, n, &xs)),
        ] {
            prop_assert_eq!(a.elapsed_ns.to_bits(), b.elapsed_ns.to_bits());
            prop_assert_eq!(a.energy_nj.to_bits(), b.energy_nj.to_bits());
            prop_assert_eq!(a.stats.count(CommandKind::Aap), b.stats.count(CommandKind::Aap));
        }
        let base = Topology { channels, ranks, banks: 16, subarrays: 1 };
        let three = ShardPlanner::new(base).plan_inner(k);
        let four = ShardPlanner::new(base.with_subarrays(1)).plan_inner(k);
        prop_assert_eq!(three.shards.len(), four.shards.len());
        for (a, b) in three.shards.iter().zip(&four.shards) {
            prop_assert_eq!((a.channel, a.rank, a.start, a.len), (b.channel, b.rank, b.start, b.len));
            prop_assert_eq!(b.subarray, 0);
        }
    }

    /// Subarray sharding moves accumulation work, it does not create or
    /// destroy it: with per-shard replanning disabled (`iarm = false`,
    /// so sequence counts are additive over any K split) the AAP count
    /// net of the deeper intra-unit merge tree is invariant in the
    /// stream count (±1 for the aggregate integer rounding).
    #[test]
    fn accumulation_aap_count_invariant_under_subarray_sharding(
        k in 512usize..4096,
        n in 64usize..512,
        seed in 0u64..1000,
    ) {
        let xs = stream(k, seed);
        let flat = salp_engine(1, 1, 16, 1, false);
        let base = flat.ternary_gemv(&xs, n);
        let base_accum = base.stats.count(CommandKind::Aap) as f64 - flat.reduction_ops_salp(1);
        for subarrays in [2usize, 4, 8, 32] {
            let eng = salp_engine(1, 1, 16, subarrays, false);
            let r = eng.ternary_gemv(&xs, n);
            let accum = r.stats.count(CommandKind::Aap) as f64
                - eng.reduction_ops_salp(eng.salp_streams());
            prop_assert!(
                (accum - base_accum).abs() <= 1.0,
                "subarrays={}: accumulation AAPs {} vs flat {}", subarrays, accum, base_accum
            );
        }
    }

    /// More SALP streams never slow a kernel down: elapsed time is
    /// monotonically non-increasing up the pow2 subarray ladder (the
    /// engine clamps requests past the channel-gate stream cap, so the
    /// tail of the ladder is flat, never rising).
    #[test]
    fn gemv_elapsed_non_increasing_in_subarrays(
        k in 1024usize..4096,
        n in 64usize..512,
        seed in 0u64..1000,
    ) {
        let xs = stream(k, seed);
        let mut prev = f64::INFINITY;
        for subarrays in [1usize, 2, 4, 8, 16, 32] {
            let r = salp_engine(1, 1, 16, subarrays, false).ternary_gemv(&xs, n);
            prop_assert!(
                r.elapsed_ns <= prev,
                "subarrays={} elapsed {} > prev {}", subarrays, r.elapsed_ns, prev
            );
            prev = r.elapsed_ns;
        }
    }

    /// The cache stays an index with the fourth tier: a SALP engine
    /// prices bit-for-bit identically with and without its plan cache,
    /// cold and warm.
    #[test]
    fn salp_cached_pricing_is_bit_for_bit_uncached(
        subarrays in 2usize..=32,
        k in 256usize..2048,
        n in 64usize..512,
        seed in 0u64..1000,
    ) {
        let xs = stream(k, seed);
        let mut cfg = EngineConfig::c2m(16);
        cfg.subarrays = subarrays;
        let cached = C2mEngine::builder(cfg.clone()).build();
        let uncached = C2mEngine::builder(cfg).no_cache().build();
        for round in 0..2 {
            let a = cached.ternary_gemv(&xs, n);
            let b = uncached.ternary_gemv(&xs, n);
            prop_assert_eq!(a.elapsed_ns.to_bits(), b.elapsed_ns.to_bits(), "round {}", round);
            prop_assert_eq!(a.energy_nj.to_bits(), b.energy_nj.to_bits(), "round {}", round);
            prop_assert_eq!(a.useful_ops, b.useful_ops, "round {}", round);
        }
    }

    /// Shard plans partition their axis exactly: contiguous, disjoint,
    /// complete, balanced to within one element, and confined to the
    /// topology's units.
    #[test]
    fn plans_partition_exactly(
        channels in 1usize..=8,
        ranks in 1usize..=4,
        total in 1usize..10_000,
    ) {
        let planner = ShardPlanner::new(Topology { channels, ranks, banks: 16, subarrays: 1 });
        for plan in [planner.plan_rows(total), planner.plan_inner(total), planner.plan_planes(total)] {
            let mut cursor = 0usize;
            let mut min_len = usize::MAX;
            let mut max_len = 0usize;
            for s in &plan.shards {
                prop_assert_eq!(s.start, cursor);
                cursor = s.end();
                min_len = min_len.min(s.len);
                max_len = max_len.max(s.len);
                prop_assert!(s.channel < channels);
                prop_assert!(s.rank < ranks);
            }
            prop_assert_eq!(cursor, total);
            prop_assert!(max_len - min_len <= 1, "balanced: {} vs {}", min_len, max_len);
            prop_assert!(plan.shards.len() <= channels * ranks);
        }
    }
}
