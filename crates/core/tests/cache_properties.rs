//! Property tests for the plan/pricing cache: caching is an index, not
//! an approximation, so a cached engine must price every kernel
//! bit-for-bit identically to an uncached one — across topologies,
//! backend policies, kernels and batch sizes — and the parallel shard
//! pricing must be deterministic in the worker count.

use c2m_core::engine::{C2mEngine, EngineConfig};
use c2m_core::shard::BackendPolicy;
use c2m_dram::ExecutionReport;
use proptest::prelude::*;

fn engines(channels: usize, ranks: usize, policy: &BackendPolicy) -> (C2mEngine, C2mEngine) {
    let mut cfg = EngineConfig::c2m(16);
    cfg.dram.channels = channels;
    cfg.dram.ranks = ranks;
    let cached = C2mEngine::builder(cfg.clone())
        .backends(policy.clone())
        .build();
    let uncached = C2mEngine::builder(cfg)
        .backends(policy.clone())
        .no_cache()
        .build();
    (cached, uncached)
}

fn stream(k: usize, seed: u64) -> Vec<i64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
    (0..k).map(|_| rng.gen_range(-128i64..128)).collect()
}

/// Bit-level equality on every numeric surface of a report (the cache
/// counters are observational and excluded by design).
fn assert_reports_identical(a: &ExecutionReport, b: &ExecutionReport, what: &str) {
    assert_eq!(
        a.elapsed_ns.to_bits(),
        b.elapsed_ns.to_bits(),
        "{what}: elapsed"
    );
    assert_eq!(
        a.energy_nj.to_bits(),
        b.energy_nj.to_bits(),
        "{what}: energy"
    );
    assert_eq!(a.useful_ops, b.useful_ops, "{what}: useful ops");
}

fn policies() -> Vec<BackendPolicy> {
    use c2m_cim::Backend;
    vec![
        BackendPolicy::Uniform(Backend::Ambit),
        BackendPolicy::Uniform(Backend::Fcdram),
        BackendPolicy::PerChannel(vec![Backend::Ambit, Backend::Fcdram]),
    ]
}

/// Two configs that differ ONLY in the SALP stream count must never
/// share a cache entry: `Topology::fingerprint` folds `subarrays` into
/// every `PlanKey`, so the second geometry's first lookup through a
/// shared cache is a plan MISS, and each cached price still equals its
/// uncached twin bit-for-bit.
#[test]
fn subarray_count_is_part_of_every_cache_key() {
    use c2m_core::cache::{CacheConfig, PlanCache};
    use std::sync::Arc;
    let shared = Arc::new(PlanCache::new(CacheConfig::default()));
    let build = |subarrays: usize, cache: Option<Arc<PlanCache>>| {
        let mut cfg = EngineConfig::c2m(16);
        cfg.subarrays = subarrays;
        let builder = C2mEngine::builder(cfg);
        match cache {
            Some(c) => builder.shared_cache(c).build(),
            None => builder.no_cache().build(),
        }
    };
    let xs = stream(512, 7);
    let flat = build(1, Some(shared.clone()));
    let salp = build(8, Some(shared.clone()));

    let flat_report = flat.ternary_gemv(&xs, 256);
    let after_flat = shared.counters();
    let salp_report = salp.ternary_gemv(&xs, 256);
    let after_salp = shared.counters();
    assert!(
        after_salp.plan_misses > after_flat.plan_misses,
        "a geometry differing only in subarrays must MISS the shared plan cache \
         ({} -> {} misses)",
        after_flat.plan_misses,
        after_salp.plan_misses
    );

    assert_reports_identical(
        &flat_report,
        &build(1, None).ternary_gemv(&xs, 256),
        "flat engine through shared cache",
    );
    assert_reports_identical(
        &salp_report,
        &build(8, None).ternary_gemv(&xs, 256),
        "SALP engine through shared cache",
    );
    assert!(
        salp_report.elapsed_ns < flat_report.elapsed_ns,
        "sharing a plan entry would have hidden the SALP speedup"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every kernel prices bit-for-bit identically with and without the
    /// cache, across topology × policy, on first use AND on warm
    /// re-use (a hit must return exactly what a recompute would).
    #[test]
    fn cached_pricing_is_bit_for_bit_uncached(
        k in 128usize..1024,
        m in 4usize..32,
        n in 64usize..512,
        seed in 0u64..1000,
    ) {
        let xs = stream(k, seed);
        for (channels, ranks) in [(1usize, 1usize), (2, 1), (4, 2)] {
            for policy in policies() {
                if let BackendPolicy::PerChannel(b) = &policy {
                    if channels % b.len() != 0 {
                        continue;
                    }
                }
                let (cached, uncached) = engines(channels, ranks, &policy);
                let tag = format!("ch={channels} rk={ranks} {policy:?}");
                for round in 0..2 {
                    let what = format!("{tag} round={round}");
                    assert_reports_identical(
                        &cached.ternary_gemv(&xs, n),
                        &uncached.ternary_gemv(&xs, n),
                        &format!("gemv {what}"),
                    );
                    assert_reports_identical(
                        &cached.ternary_gemm(m, n, &xs),
                        &uncached.ternary_gemm(m, n, &xs),
                        &format!("gemm {what}"),
                    );
                    assert_reports_identical(
                        &cached.binary_gemm(m, n, &xs),
                        &uncached.binary_gemm(m, n, &xs),
                        &format!("bgemm {what}"),
                    );
                    let planes = [(0u32, false), (2, true), (5, false)];
                    assert_reports_identical(
                        &cached.int_gemv(&xs, n, &planes),
                        &uncached.int_gemv(&xs, n, &planes),
                        &format!("int_gemv {what}"),
                    );
                }
                let stats = cached.cache_stats();
                prop_assert!(
                    stats.plan_hits + stats.stream_hits > 0,
                    "{tag}: warm round must hit the cache"
                );
            }
        }
    }

    /// Batched pricing is bit-for-bit cache-invariant at every batch
    /// size, including the size-1 batch that routes through the same
    /// path as the lone-request kernel.
    #[test]
    fn cached_batch_pricing_matches_uncached_at_every_size(
        k in 128usize..512,
        n in 64usize..256,
        batch in 1usize..9,
        seed in 0u64..1000,
    ) {
        let mates: Vec<Vec<i64>> = (0..batch)
            .map(|i| stream(k, seed.wrapping_add(i as u64)))
            .collect();
        for (channels, ranks) in [(1usize, 1usize), (4, 1)] {
            let (cached, uncached) = engines(
                channels,
                ranks,
                &BackendPolicy::Uniform(c2m_cim::Backend::Ambit),
            );
            for round in 0..2 {
                assert_reports_identical(
                    &cached.ternary_gemv_batch(&mates, n),
                    &uncached.ternary_gemv_batch(&mates, n),
                    &format!("batch={batch} ch={channels} round={round}"),
                );
            }
        }
    }

    /// Parallel shard pricing is deterministic in the worker count:
    /// forcing 1, 2 and 8 workers through `RAYON_NUM_THREADS` yields
    /// bit-identical reports (the fold preserves shard order).
    #[test]
    fn parallel_pricing_is_deterministic_in_thread_count(
        k in 256usize..1024,
        seed in 0u64..1000,
    ) {
        let xs = stream(k, seed);
        let (engine, _) = engines(4, 2, &BackendPolicy::Uniform(c2m_cim::Backend::Ambit));
        let price = || {
            let r = engine.ternary_gemv(&xs, 512);
            let g = engine.ternary_gemm(8, 256, &xs);
            (r.elapsed_ns.to_bits(), r.energy_nj.to_bits(), g.elapsed_ns.to_bits())
        };
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial = price();
        for workers in ["2", "8"] {
            std::env::set_var("RAYON_NUM_THREADS", workers);
            prop_assert_eq!(serial, price(), "workers={}", workers);
        }
        std::env::remove_var("RAYON_NUM_THREADS");
    }
}
