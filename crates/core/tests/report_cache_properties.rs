//! Property tests for the whole-report cache tier and its persistent
//! store: a stored report is an index entry, not an approximation, so a
//! report-cache hit must reproduce the uncached launch bit-for-bit —
//! across topologies, kernels and batch sizes — and a cache restored
//! from a store file must serve the same bytes a warm in-process cache
//! would. Counter snapshots (`report.cache`) are the one deliberately
//! observational field and are normalised out before comparison.

use c2m_core::cache::{CacheConfig, PlanCache};
use c2m_core::engine::{C2mEngine, EngineConfig};
use c2m_core::store::CacheStore;
use c2m_dram::{CacheCounters, ExecutionReport};
use proptest::prelude::*;
use std::sync::Arc;

fn stream(k: usize, seed: u64) -> Vec<i64> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
    (0..k).map(|_| rng.gen_range(-128i64..128)).collect()
}

fn build(channels: usize, subarrays: usize, cache: Option<Arc<PlanCache>>) -> C2mEngine {
    let mut cfg = EngineConfig::c2m(16);
    cfg.dram.channels = channels;
    cfg.subarrays = subarrays;
    let builder = C2mEngine::builder(cfg);
    match cache {
        Some(c) => builder.shared_cache(c).build(),
        None => builder.no_cache().build(),
    }
}

/// The full numeric surface of a report as JSON, with the
/// observational cache-counter snapshot zeroed — exactly the bytes a
/// figure binary would serialise.
fn report_json(report: &ExecutionReport) -> String {
    let mut normalised = report.clone();
    normalised.cache = CacheCounters::default();
    serde_json::to_string(&normalised).expect("report serialises")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cached ≡ uncached, bit-for-bit, for every kernel entry point: the
    /// first cached launch folds and stores, the second is a pure
    /// report-tier clone, and both must serialise byte-identically to
    /// the uncached engine's launch.
    #[test]
    fn report_hits_reproduce_uncached_launches_bit_for_bit(
        k in 64usize..512,
        n in 128usize..1024,
        batch in 1usize..5,
        seed in 0u64..1000,
    ) {
        for (channels, subarrays) in [(1usize, 1usize), (2, 1), (4, 8)] {
            let cached = build(channels, subarrays, Some(Arc::new(PlanCache::default())));
            let uncached = build(channels, subarrays, None);
            let xs = stream(k, seed);
            let mates: Vec<Vec<i64>> =
                (0..batch).map(|i| stream(k, seed ^ (i as u64 + 1))).collect();
            let planes = [(0u32, false), (3, true), (6, false)];

            let launches: [&dyn Fn(&C2mEngine) -> ExecutionReport; 5] = [
                &|e| e.ternary_gemv(&xs, n),
                &|e| e.ternary_gemv_batch(&mates, n),
                &|e| e.ternary_gemm(8, n, &xs),
                &|e| e.binary_gemm(8, n, &xs),
                &|e| e.int_gemv(&xs, n, &planes),
            ];
            for (i, launch) in launches.iter().enumerate() {
                let reference = report_json(&launch(&uncached));
                let miss = report_json(&launch(&cached));
                let hit = report_json(&launch(&cached));
                prop_assert_eq!(&miss, &reference, "kernel {} cold-path divergence", i);
                prop_assert_eq!(&hit, &reference, "kernel {} report-hit divergence", i);
            }
            // Every second launch above must actually have been a hit.
            prop_assert_eq!(cached.cache_stats().report_hits, launches.len() as u64);
        }
    }

    /// Persistence round trip: a warm cache saved to disk and loaded
    /// into a fresh cache (a simulated new process) serves reports that
    /// serialise byte-identically to the original run's.
    #[test]
    fn restored_store_serves_byte_identical_reports(
        k in 128usize..512,
        seed in 0u64..1000,
    ) {
        for channels in [1usize, 4] {
            let path = std::env::temp_dir().join(format!(
                "c2m_report_props_{}_{channels}_{seed:x}.json",
                std::process::id()
            ));
            let xs = stream(k, seed);
            let warm = Arc::new(PlanCache::default());
            let first = build(channels, 1, Some(Arc::clone(&warm))).ternary_gemv(&xs, 256);
            CacheStore::save(&path, &warm).expect("save");

            let restored = Arc::new(CacheStore::load(&path, CacheConfig::default()));
            std::fs::remove_file(&path).ok();
            let engine = build(channels, 1, Some(Arc::clone(&restored)));
            let replay = engine.ternary_gemv(&xs, 256);
            prop_assert_eq!(report_json(&replay), report_json(&first));
            prop_assert_eq!(engine.cache_stats().report_hits, 1);
            prop_assert_eq!(engine.cache_stats().report_misses, 0);
        }
    }
}

/// A corrupted or version-bumped store file must fall back to a cold
/// start without error — and the cold engine still produces the exact
/// same bytes, just via a fresh fold.
#[test]
fn corrupt_or_stale_store_degrades_to_cold_with_identical_output() {
    let path = std::env::temp_dir().join(format!(
        "c2m_report_props_stale_{}.json",
        std::process::id()
    ));
    let xs = stream(512, 0xFEED);
    let warm = Arc::new(PlanCache::default());
    let first = build(2, 1, Some(Arc::clone(&warm))).ternary_gemv(&xs, 512);
    CacheStore::save(&path, &warm).expect("save");
    let good = std::fs::read_to_string(&path).expect("store written");

    let mutations = [
        good.replace("\"format_version\":1", "\"format_version\":2"),
        good.replace("\"fingerprint_scheme\":1", "\"fingerprint_scheme\":2"),
        good[..good.len() / 2].to_string(),
        "{]".to_string(),
    ];
    for (i, bad) in mutations.iter().enumerate() {
        assert_ne!(bad, &good, "mutation {i} must change the file");
        std::fs::write(&path, bad).expect("rewrite store");
        let cache = PlanCache::default();
        assert!(
            !CacheStore::load_into(&path, &cache),
            "mutation {i} must be rejected as cold"
        );
        let engine = build(2, 1, Some(Arc::new(cache)));
        let replay = engine.ternary_gemv(&xs, 512);
        assert_eq!(
            report_json(&replay),
            report_json(&first),
            "mutation {i}: cold fold must still match"
        );
        assert_eq!(engine.cache_stats().report_hits, 0);
        assert_eq!(engine.cache_stats().report_misses, 1);
    }
    std::fs::remove_file(&path).ok();
}
