//! Mapping counters, masks and bit-slices onto DRAM geometry.
//!
//! The paper's Fig. 1b divides a subarray's D-group between the output
//! counters (Y, column-wise Johnson digits), the mask rows (Z, one row
//! per reduction index — more when Z is bit-sliced for integer
//! weights), and the scratch rows the μPrograms need. How many output
//! columns fit per subarray, and how many subarrays a given GEMV shape
//! occupies, determines the achievable parallelism of §7.2.1 and the
//! storage-overhead story of Fig. 19 / §7.3.3.
//!
//! [`PlacementPlan`] computes that budget for a kernel shape against a
//! [`DramConfig`]:
//!
//! * counter rows: `D · (n + 1)` for `D` digits of `n`-bit Johnson
//!   code, plus an `O_sign` row for signed kernels;
//! * mask rows: `K` for binary Z, `2K` for ternary, `K · slices` for
//!   CSD bit-sliced integer weights;
//! * scratch: the θ rows of the k-ary lowering (`n + 1`) plus the
//!   protection scheme's IR/FR rows when ECC is on.

use c2m_dram::DramConfig;
use c2m_ecc::protect::ProtectionKind;
use c2m_jc::codec::JohnsonCode;
use c2m_jc::cost::digits_for_capacity;
use serde::{Deserialize, Serialize};

/// How the in-memory operand matrix Z is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaskEncoding {
    /// One binary mask row per reduction index (integer × binary).
    Binary,
    /// A +1 plane and a −1 plane (ternary weights).
    Ternary,
    /// CSD bit-slicing with this many ±2^e planes (integer weights of
    /// `p` bits need at most `2(p − 1)` planes, §5.2.3).
    BitSliced(usize),
}

impl MaskEncoding {
    /// Mask rows required per reduction index.
    #[must_use]
    pub fn rows_per_index(self) -> usize {
        match self {
            MaskEncoding::Binary => 1,
            MaskEncoding::Ternary => 2,
            MaskEncoding::BitSliced(planes) => planes,
        }
    }

    /// The §5.2.3 plane count for signed `p`-bit integer weights.
    #[must_use]
    pub fn csd_for_precision(p: u32) -> Self {
        MaskEncoding::BitSliced(2 * (p as usize - 1))
    }
}

/// A kernel shape to place: reduction depth `k`, output width `n_out`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelShape {
    /// Reduction dimension (rows of Z).
    pub k: usize,
    /// Output elements (columns of Z / counters).
    pub n_out: usize,
    /// Mask encoding of Z.
    pub encoding: MaskEncoding,
}

/// Counter configuration to place.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterSpec {
    /// Johnson radix (2n states for n-bit digits).
    pub radix: usize,
    /// Binary capacity each counter must meet or exceed.
    pub capacity_bits: u32,
    /// Whether kernels need the `O_sign` row (signed accumulation).
    pub signed: bool,
    /// Fault-tolerance scheme (ECC needs IR/FR scratch rows).
    pub protection: ProtectionKind,
}

impl CounterSpec {
    /// The paper's evaluation configuration (radix 4, 64-bit, signed).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            radix: 4,
            capacity_bits: 64,
            signed: true,
            protection: ProtectionKind::None,
        }
    }

    /// Bits per Johnson digit.
    #[must_use]
    pub fn digit_bits(&self) -> usize {
        JohnsonCode::for_radix(self.radix).bits()
    }

    /// Digits needed for the capacity.
    #[must_use]
    pub fn digits(&self) -> usize {
        digits_for_capacity(self.radix, self.capacity_bits)
    }

    /// D-group rows per counter column: `D · (n + 1)` (+1 for O_sign).
    #[must_use]
    pub fn counter_rows(&self) -> usize {
        let n = self.digit_bits();
        let base = self.digits() * (n + 1);
        if self.signed {
            base + 1
        } else {
            base
        }
    }

    /// Scratch rows a μProgram needs next to the counters: θ saves
    /// (`n + 1`) plus the protection scheme's IR1/IR2/FR/T rows.
    #[must_use]
    pub fn scratch_rows(&self) -> usize {
        let n = self.digit_bits();
        let theta = n + 1;
        let protect = match self.protection {
            ProtectionKind::None => 0,
            ProtectionKind::Tmr => 2 * self.counter_rows(), // two replicas
            ProtectionKind::Ecc { .. } => 4,                // IR1, IR2, FR, temp
        };
        theta + protect
    }
}

/// The computed placement of one kernel on one DRAM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementPlan {
    /// D-group rows consumed per subarray (counters + masks + scratch).
    pub rows_used: usize,
    /// D-group rows available per subarray (total minus B/C groups).
    pub rows_available: usize,
    /// Output counters per subarray (bounded by the rank-wide row width).
    pub columns_per_subarray: usize,
    /// Subarrays needed to hold all `n_out` outputs.
    pub subarrays_needed: usize,
    /// Of which this many can compute concurrently (one per bank).
    pub parallel_subarrays: usize,
}

impl PlacementPlan {
    /// Fraction of the D-group the kernel occupies (storage overhead,
    /// the Fig. 19 axis).
    #[must_use]
    pub fn row_utilisation(&self) -> f64 {
        self.rows_used as f64 / self.rows_available as f64
    }

    /// True if the kernel fits a single subarray's row budget.
    #[must_use]
    pub fn fits(&self) -> bool {
        self.rows_used <= self.rows_available
    }
}

/// Plans the placement of `shape` with `spec` counters on `cfg`.
///
/// # Examples
///
/// ```
/// use c2m_core::placement::{plan, CounterSpec, KernelShape, MaskEncoding};
/// use c2m_dram::DramConfig;
///
/// let cfg = DramConfig::ddr5_4400();
/// let spec = CounterSpec::paper_default();
/// let shape = KernelShape { k: 256, n_out: 8192, encoding: MaskEncoding::Ternary };
/// let plan = plan(&cfg, &spec, &shape).expect("fits one subarray");
/// assert!(plan.fits());
/// ```
///
/// # Errors
///
/// Returns `Err` with the row deficit if the masks + counters exceed
/// the subarray's D-group (the kernel must then be split along K).
pub fn plan(
    cfg: &DramConfig,
    spec: &CounterSpec,
    shape: &KernelShape,
) -> Result<PlacementPlan, usize> {
    // Fig. 1b: 8 B-group + 2 C-group rows are reserved per subarray.
    let rows_available = cfg.rows_per_subarray.saturating_sub(10);
    let mask_rows = shape.k * shape.encoding.rows_per_index();
    let rows_used = spec.counter_rows() + spec.scratch_rows() + mask_rows;
    if rows_used > rows_available {
        return Err(rows_used - rows_available);
    }
    let columns_per_subarray = cfg.row_bits_per_rank().min(shape.n_out.max(1));
    let subarrays_needed = shape.n_out.div_ceil(cfg.row_bits_per_rank().max(1)).max(1);
    let parallel_subarrays = subarrays_needed.min(cfg.banks * cfg.ranks * cfg.channels);
    Ok(PlacementPlan {
        rows_used,
        rows_available,
        columns_per_subarray,
        subarrays_needed,
        parallel_subarrays,
    })
}

/// Plans every shard of a [`ShardPlan`](crate::shard::ShardPlan)
/// against the DRAM geometry.
///
/// A shard on the [`InnerDim`](crate::shard::ShardAxis::InnerDim) axis
/// only stores its K-slice's mask rows, so sharding K across the
/// topology is also how an over-deep kernel (one that
/// [`plan`] rejects) becomes placeable. Shards on other axes replicate
/// the full K mask set per unit.
///
/// # Errors
///
/// Returns the worst row deficit if any non-empty shard still exceeds
/// its subarray's D-group.
pub fn plan_sharded(
    cfg: &DramConfig,
    spec: &CounterSpec,
    shape: &KernelShape,
    shards: &crate::shard::ShardPlan,
) -> Result<Vec<PlacementPlan>, usize> {
    let mut plans = Vec::new();
    let mut worst_deficit = 0usize;
    for shard in shards.shards.iter().filter(|s| s.len > 0) {
        let k = match shards.axis {
            crate::shard::ShardAxis::InnerDim => shard.len,
            crate::shard::ShardAxis::OutputRows | crate::shard::ShardAxis::CsdPlanes => shape.k,
        };
        let shard_shape = KernelShape { k, ..*shape };
        match plan(cfg, spec, &shard_shape) {
            Ok(p) => plans.push(p),
            Err(deficit) => worst_deficit = worst_deficit.max(deficit),
        }
    }
    if worst_deficit > 0 {
        Err(worst_deficit)
    } else {
        Ok(plans)
    }
}

/// Maximum reduction depth K that fits one subarray for the given
/// counter spec and encoding (the split granularity for §5.2.2 GEMM).
#[must_use]
pub fn max_k_per_subarray(cfg: &DramConfig, spec: &CounterSpec, encoding: MaskEncoding) -> usize {
    let rows_available = cfg.rows_per_subarray.saturating_sub(10);
    let fixed = spec.counter_rows() + spec.scratch_rows();
    rows_available.saturating_sub(fixed) / encoding.rows_per_index()
}

/// PRADA-style row-address decomposition for subarray-level
/// parallelism: a bank's global row address splits into a *subarray id*
/// (the upper bits, selected by [`SubarrayMap::subarray_mask`]) and a
/// *local row* within that subarray's mat. The memory controller keys
/// its per-subarray row-buffer state — and the SALP scheduler its
/// per-stream windows — on the id field, so the split must be a pure
/// bitmask: both dimensions are required to be powers of two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubarrayMap {
    subarrays_per_bank: usize,
    rows_per_subarray: usize,
    local_bits: u32,
}

impl SubarrayMap {
    /// Builds the map for `subarrays_per_bank` subarrays of
    /// `rows_per_subarray` rows each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a power of two (the
    /// decomposition must be a bitmask, not a division).
    #[must_use]
    pub fn new(subarrays_per_bank: usize, rows_per_subarray: usize) -> Self {
        assert!(
            subarrays_per_bank.is_power_of_two(),
            "subarrays per bank must be a power of two, got {subarrays_per_bank}"
        );
        assert!(
            rows_per_subarray.is_power_of_two(),
            "rows per subarray must be a power of two, got {rows_per_subarray}"
        );
        Self {
            subarrays_per_bank,
            rows_per_subarray,
            local_bits: rows_per_subarray.trailing_zeros(),
        }
    }

    /// The map for a [`DramConfig`]'s bank organisation.
    #[must_use]
    pub fn from_config(cfg: &DramConfig) -> Self {
        Self::new(cfg.subarrays_per_bank, cfg.rows_per_subarray)
    }

    /// Total rows per bank the map addresses.
    #[must_use]
    pub fn rows_per_bank(&self) -> usize {
        self.subarrays_per_bank * self.rows_per_subarray
    }

    /// Bitmask selecting the subarray-id field of a global row address.
    #[must_use]
    pub fn subarray_mask(&self) -> usize {
        (self.subarrays_per_bank - 1) << self.local_bits
    }

    /// Bitmask selecting the local-row field of a global row address.
    #[must_use]
    pub fn local_mask(&self) -> usize {
        self.rows_per_subarray - 1
    }

    /// Splits a global row address into `(subarray id, local row)`.
    ///
    /// # Panics
    ///
    /// Panics if `global_row` is outside the bank.
    #[must_use]
    pub fn decompose(&self, global_row: usize) -> (usize, usize) {
        assert!(
            global_row < self.rows_per_bank(),
            "row {global_row} outside the {}-row bank",
            self.rows_per_bank()
        );
        (
            (global_row & self.subarray_mask()) >> self.local_bits,
            global_row & self.local_mask(),
        )
    }

    /// Rebuilds a global row address from `(subarray id, local row)` —
    /// the inverse of [`Self::decompose`].
    ///
    /// # Panics
    ///
    /// Panics if either field is out of range.
    #[must_use]
    pub fn compose(&self, subarray: usize, local_row: usize) -> usize {
        assert!(
            subarray < self.subarrays_per_bank,
            "subarray {subarray} outside the {}-subarray bank",
            self.subarrays_per_bank
        );
        assert!(
            local_row < self.rows_per_subarray,
            "local row {local_row} outside the {}-row subarray",
            self.rows_per_subarray
        );
        (subarray << self.local_bits) | local_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::ddr5_4400()
    }

    #[test]
    fn paper_default_counter_rows() {
        // Radix 4 -> 2-bit digits; 64-bit capacity -> 32 digits;
        // 32 * 3 + O_sign = 97 rows.
        let spec = CounterSpec::paper_default();
        assert_eq!(spec.digit_bits(), 2);
        assert_eq!(spec.digits(), 32);
        assert_eq!(spec.counter_rows(), 97);
    }

    #[test]
    fn binary_gemv_fits_table2_subarray() {
        let spec = CounterSpec::paper_default();
        let shape = KernelShape {
            k: 512,
            n_out: 8192,
            encoding: MaskEncoding::Binary,
        };
        let plan = plan(&cfg(), &spec, &shape).expect("must fit");
        assert!(plan.fits());
        assert!(plan.rows_used > 512);
        assert!(plan.subarrays_needed >= 1);
        assert!(plan.parallel_subarrays <= 32);
    }

    #[test]
    fn ternary_doubles_mask_rows() {
        let spec = CounterSpec::paper_default();
        let bin = KernelShape {
            k: 100,
            n_out: 64,
            encoding: MaskEncoding::Binary,
        };
        let ter = KernelShape {
            k: 100,
            n_out: 64,
            encoding: MaskEncoding::Ternary,
        };
        let pb = plan(&cfg(), &spec, &bin).unwrap();
        let pt = plan(&cfg(), &spec, &ter).unwrap();
        assert_eq!(pt.rows_used - pb.rows_used, 100);
    }

    #[test]
    fn oversized_k_reports_deficit() {
        let spec = CounterSpec::paper_default();
        let shape = KernelShape {
            k: 5000,
            n_out: 64,
            encoding: MaskEncoding::Binary,
        };
        let err = plan(&cfg(), &spec, &shape).unwrap_err();
        assert!(err > 0);
        // The deficit plus the budget must reconstruct the request.
        let max_k = max_k_per_subarray(&cfg(), &spec, MaskEncoding::Binary);
        assert!(max_k < 5000);
        let ok = KernelShape {
            k: max_k,
            n_out: 64,
            encoding: MaskEncoding::Binary,
        };
        assert!(plan(&cfg(), &spec, &ok).is_ok());
    }

    #[test]
    fn csd_planes_match_precision_rule() {
        assert_eq!(
            MaskEncoding::csd_for_precision(8).rows_per_index(),
            14 // 2(p-1)
        );
    }

    #[test]
    fn higher_radix_uses_fewer_digits_but_wider_rows() {
        // Fig. 19: radix-4 packs like binary; radix-10 needs 5-bit
        // digits and pays storage for speed.
        let r4 = CounterSpec {
            radix: 4,
            ..CounterSpec::paper_default()
        };
        let r10 = CounterSpec {
            radix: 10,
            ..CounterSpec::paper_default()
        };
        assert!(r10.digits() < r4.digits());
        let bits_r4 = r4.digits() * r4.digit_bits();
        let bits_r10 = r10.digits() * r10.digit_bits();
        assert!(bits_r10 >= bits_r4, "radix 10 stores more raw bits");
    }

    #[test]
    fn tmr_costs_two_extra_replicas() {
        let plain = CounterSpec::paper_default();
        let tmr = CounterSpec {
            protection: ProtectionKind::Tmr,
            ..plain
        };
        assert_eq!(
            tmr.scratch_rows() - plain.scratch_rows(),
            2 * plain.counter_rows()
        );
    }

    #[test]
    fn inner_dim_sharding_makes_oversized_k_placeable() {
        use crate::shard::ShardPlanner;
        use c2m_dram::Topology;

        let spec = CounterSpec::paper_default();
        let shape = KernelShape {
            k: 3000,
            n_out: 64,
            encoding: MaskEncoding::Binary,
        };
        // Whole kernel: too deep for one subarray.
        assert!(plan(&cfg(), &spec, &shape).is_err());
        // Split over 4 channels: each K-slice of 750 masks fits.
        let shards = ShardPlanner::new(Topology {
            channels: 4,
            ranks: 1,
            banks: 16,
            subarrays: 1,
        })
        .plan_inner(shape.k);
        let plans = plan_sharded(&cfg(), &spec, &shape, &shards).expect("shards fit");
        assert_eq!(plans.len(), 4);
        assert!(plans.iter().all(PlacementPlan::fits));
        // Row-axis sharding replicates the masks, so it does not help.
        let row_shards = ShardPlanner::new(Topology {
            channels: 4,
            ranks: 1,
            banks: 16,
            subarrays: 1,
        })
        .plan_rows(128);
        assert!(plan_sharded(&cfg(), &spec, &shape, &row_shards).is_err());
    }

    #[test]
    fn subarray_map_round_trips_every_row() {
        let map = SubarrayMap::from_config(&cfg());
        assert_eq!(map.rows_per_bank(), 32 * 1024);
        // PRADA decomposition: id field sits directly above the 10
        // local-row bits.
        assert_eq!(map.local_mask(), 0x3FF);
        assert_eq!(map.subarray_mask(), 0x1F << 10);
        for row in [0, 1, 1023, 1024, 4097, 32 * 1024 - 1] {
            let (sa, local) = map.decompose(row);
            assert_eq!(map.compose(sa, local), row);
            assert_eq!(sa, row >> 10);
            assert_eq!(local, row & 0x3FF);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn subarray_map_rejects_non_pow2_geometry() {
        let _ = SubarrayMap::new(12, 1024);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn subarray_map_rejects_out_of_bank_rows() {
        let _ = SubarrayMap::from_config(&cfg()).decompose(32 * 1024);
    }

    #[test]
    fn wide_outputs_split_over_subarrays() {
        let spec = CounterSpec::paper_default();
        let width = cfg().row_bits_per_rank();
        let shape = KernelShape {
            k: 16,
            n_out: width * 3 + 1,
            encoding: MaskEncoding::Binary,
        };
        let plan = plan(&cfg(), &spec, &shape).unwrap();
        assert_eq!(plan.subarrays_needed, 4);
    }
}
