//! Tenant weight residency: which tenants' mask planes fit in the CIM
//! subarrays, and what a tenant switch costs when they don't all fit.
//!
//! A tenant's ternary weight matrix lives in the compute subarrays as
//! per-row mask planes (§5.2: one +1 plane and one −1 plane, K rows
//! each, replicated across the column slices its N outputs span). The
//! subarrays also hold the Johnson counter rows, so the residency budget
//! is the CIM subarray capacity ([`c2m_dram::DramConfig::cim_subarray_rows`])
//! minus the counter footprint. When a module hosts more tenants than
//! fit, dispatching a non-resident tenant must first stream its mask
//! planes back in — the serving-layer analogue of a row-buffer conflict,
//! priced through
//! [`C2mEngine::mask_reload_ns`](crate::engine::C2mEngine::mask_reload_ns).
//!
//! [`ResidencyModel`] is the bookkeeping half: per-subarray LRU sets of
//! resident tenants, one per (channel, rank, SALP stream) *slot*, each
//! over its own row budget — reloads are priced per subarray, so a
//! tenant whose planes survive in most slots only restreams the missing
//! ones. With a single slot ([`ResidencyModel::new`]) it degenerates to
//! the flat module-wide budget of the pre-SALP model. It is
//! deliberately engine-agnostic — the serving runtime owns one per run
//! and asks the engine to price the reloads it reports.

use serde::Serialize;

/// Outcome of dispatching one tenant against the residency state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ResidencyOutcome {
    /// The tenant's mask planes were already resident (no reload).
    Hit,
    /// The tenant had to be (re)loaded: `rows` mask rows streamed into
    /// the CIM subarrays, after evicting least-recently-used tenants.
    /// On a multi-slot model this is the sum over the slots that
    /// actually missed.
    Reload {
        /// Mask rows written by the reload.
        rows: usize,
    },
}

/// One subarray slot's LRU set over its own row budget.
#[derive(Debug, Clone)]
struct SlotLru {
    capacity_rows: usize,
    /// Resident tenants in LRU order: front = coldest, back = hottest.
    resident: Vec<(usize, usize)>,
}

impl SlotLru {
    fn used_rows(&self) -> usize {
        self.resident.iter().map(|&(_, rows)| rows).sum()
    }

    fn touch(&mut self, tenant: usize, rows: usize) -> ResidencyOutcome {
        if let Some(pos) = self.resident.iter().position(|&(t, _)| t == tenant) {
            if self.resident[pos].1 == rows {
                let entry = self.resident.remove(pos);
                self.resident.push(entry);
                return ResidencyOutcome::Hit;
            }
            // Footprint changed: the old planes are stale, reload.
            self.resident.remove(pos);
        }
        while !self.resident.is_empty() && self.used_rows() + rows > self.capacity_rows {
            self.resident.remove(0);
        }
        if rows <= self.capacity_rows {
            self.resident.push((tenant, rows));
        }
        ResidencyOutcome::Reload { rows }
    }
}

/// LRU residency tracker for tenant mask planes: one independent LRU
/// set per subarray slot, reloads priced per slot.
///
/// # Examples
///
/// ```
/// use c2m_core::residency::{ResidencyModel, ResidencyOutcome};
///
/// let mut res = ResidencyModel::new(1000);
/// assert_eq!(res.touch(0, 600), ResidencyOutcome::Reload { rows: 600 });
/// assert_eq!(res.touch(0, 600), ResidencyOutcome::Hit);
/// // Tenant 1 doesn't fit alongside tenant 0: 0 is evicted.
/// assert_eq!(res.touch(1, 600), ResidencyOutcome::Reload { rows: 600 });
/// assert!(!res.is_resident(0));
/// ```
///
/// Per-subarray masks (the SALP serving path): a tenant that misses in
/// some slots only restreams those slots' rows.
///
/// ```
/// use c2m_core::residency::{ResidencyModel, ResidencyOutcome};
///
/// let mut res = ResidencyModel::with_slots(4, 100);
/// let all: Vec<(usize, usize)> = (0..4).map(|s| (s, 50)).collect();
/// assert_eq!(res.touch_slots(0, &all), ResidencyOutcome::Reload { rows: 200 });
/// assert_eq!(res.touch_slots(0, &all), ResidencyOutcome::Hit);
/// // Another tenant overwrites slot 2 only: tenant 0 restreams 50
/// // rows, not 200.
/// assert_eq!(res.touch_slots(7, &[(2, 80)]), ResidencyOutcome::Reload { rows: 80 });
/// assert_eq!(res.touch_slots(0, &all), ResidencyOutcome::Reload { rows: 50 });
/// ```
#[derive(Debug, Clone)]
pub struct ResidencyModel {
    slots: Vec<SlotLru>,
}

impl ResidencyModel {
    /// A single-slot model with `capacity_rows` mask-capable rows — the
    /// flat module-wide budget of the pre-SALP serving model.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity — a module with no mask rows cannot
    /// serve any tenant.
    #[must_use]
    pub fn new(capacity_rows: usize) -> Self {
        Self::with_slots(1, capacity_rows)
    }

    /// A model with `slots` independent subarray slots of
    /// `rows_per_slot` mask-capable rows each (one slot per (channel,
    /// rank, SALP stream); see
    /// [`C2mEngine::residency_slots`](crate::engine::C2mEngine::residency_slots)).
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `rows_per_slot` is zero.
    #[must_use]
    pub fn with_slots(slots: usize, rows_per_slot: usize) -> Self {
        assert!(slots > 0, "residency model needs at least one slot");
        assert!(rows_per_slot > 0, "residency capacity must be positive");
        Self {
            slots: (0..slots)
                .map(|_| SlotLru {
                    capacity_rows: rows_per_slot,
                    resident: Vec::new(),
                })
                .collect(),
        }
    }

    /// Number of independent subarray slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// The total row budget across all slots.
    #[must_use]
    pub fn capacity_rows(&self) -> usize {
        self.slots.iter().map(|s| s.capacity_rows).sum()
    }

    /// Mask rows currently occupied across all slots.
    #[must_use]
    pub fn used_rows(&self) -> usize {
        self.slots.iter().map(SlotLru::used_rows).sum()
    }

    /// Whether `tenant`'s mask planes are resident in at least one slot.
    #[must_use]
    pub fn is_resident(&self, tenant: usize) -> bool {
        self.slots
            .iter()
            .any(|s| s.resident.iter().any(|&(t, _)| t == tenant))
    }

    /// Resident tenants, coldest first (first occurrence across slots).
    #[must_use]
    pub fn resident_tenants(&self) -> Vec<usize> {
        let mut tenants = Vec::new();
        for slot in &self.slots {
            for &(t, _) in &slot.resident {
                if !tenants.contains(&t) {
                    tenants.push(t);
                }
            }
        }
        tenants
    }

    /// Dispatches `tenant` needing `rows` mask rows spread evenly over
    /// every slot (`⌈rows/slots⌉` each): a resident tenant with an
    /// unchanged footprint is refreshed to most-recently-used and hits;
    /// a non-resident one (or one whose footprint changed — its planes
    /// must be restreamed) evicts least-recently-used tenants until it
    /// fits and reports the reload. A tenant larger than the whole
    /// budget still runs — it evicts everything and reloads every
    /// dispatch (permanent thrashing), mirroring a row that can never
    /// stay open. On a single-slot model this is exactly the pre-SALP
    /// flat-budget behaviour.
    pub fn touch(&mut self, tenant: usize, rows: usize) -> ResidencyOutcome {
        if self.slots.len() == 1 {
            return self.slots[0].touch(tenant, rows);
        }
        let per_slot = rows.div_ceil(self.slots.len());
        let needs: Vec<(usize, usize)> = (0..self.slots.len()).map(|s| (s, per_slot)).collect();
        self.touch_slots(tenant, &needs)
    }

    /// Dispatches `tenant` against an explicit list of `(slot, rows)`
    /// needs — the per-subarray path: each listed slot runs its own LRU
    /// dispatch, the outcome is [`ResidencyOutcome::Hit`] only if
    /// *every* listed slot hit, and a reload's row count sums over the
    /// slots that missed (only those restream).
    ///
    /// # Panics
    ///
    /// Panics if a listed slot index is out of range.
    pub fn touch_slots(&mut self, tenant: usize, needs: &[(usize, usize)]) -> ResidencyOutcome {
        let mut reload_rows = 0usize;
        let mut missed = false;
        for &(slot, rows) in needs {
            assert!(
                slot < self.slots.len(),
                "slot {slot} outside the {}-slot residency model",
                self.slots.len()
            );
            match self.slots[slot].touch(tenant, rows) {
                ResidencyOutcome::Hit => {}
                ResidencyOutcome::Reload { rows } => {
                    missed = true;
                    reload_rows += rows;
                }
            }
        }
        if missed {
            ResidencyOutcome::Reload { rows: reload_rows }
        } else {
            ResidencyOutcome::Hit
        }
    }
}

/// Mask rows needed to keep one ternary tenant resident: 2 planes
/// (+1 and −1) × K weight rows × the column slices its N outputs span
/// on a `row_bits` wide logical row.
///
/// # Panics
///
/// Panics on a zero row width.
#[must_use]
pub fn ternary_mask_rows(n: usize, k: usize, row_bits: usize) -> usize {
    assert!(row_bits > 0, "row width must be positive");
    2 * k * n.div_ceil(row_bits).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_coldest_first() {
        let mut res = ResidencyModel::new(100);
        assert_eq!(res.touch(0, 40), ResidencyOutcome::Reload { rows: 40 });
        assert_eq!(res.touch(1, 40), ResidencyOutcome::Reload { rows: 40 });
        // Refresh tenant 0: tenant 1 becomes the LRU victim.
        assert_eq!(res.touch(0, 40), ResidencyOutcome::Hit);
        assert_eq!(res.touch(2, 40), ResidencyOutcome::Reload { rows: 40 });
        assert!(res.is_resident(0));
        assert!(!res.is_resident(1));
        assert!(res.is_resident(2));
        assert_eq!(res.used_rows(), 80);
    }

    #[test]
    fn fitting_tenants_never_reload_twice() {
        let mut res = ResidencyModel::new(1000);
        for round in 0..3 {
            for t in 0..4 {
                let out = res.touch(t, 200);
                if round == 0 {
                    assert_eq!(out, ResidencyOutcome::Reload { rows: 200 });
                } else {
                    assert_eq!(out, ResidencyOutcome::Hit, "tenant {t} round {round}");
                }
            }
        }
        assert_eq!(res.used_rows(), 800);
    }

    #[test]
    fn oversized_tenant_thrashes_but_runs() {
        let mut res = ResidencyModel::new(100);
        assert_eq!(res.touch(0, 40), ResidencyOutcome::Reload { rows: 40 });
        assert_eq!(res.touch(9, 500), ResidencyOutcome::Reload { rows: 500 });
        // Too big to retain: evicted everything, kept nothing.
        assert!(!res.is_resident(9));
        assert!(!res.is_resident(0));
        assert_eq!(res.touch(9, 500), ResidencyOutcome::Reload { rows: 500 });
    }

    #[test]
    fn changed_footprint_forces_a_reload() {
        let mut res = ResidencyModel::new(1000);
        assert_eq!(res.touch(0, 100), ResidencyOutcome::Reload { rows: 100 });
        // Same tenant, bigger working set: stale planes, re-stream and
        // re-fit against the budget.
        assert_eq!(res.touch(0, 600), ResidencyOutcome::Reload { rows: 600 });
        assert_eq!(res.used_rows(), 600);
        assert_eq!(res.touch(0, 600), ResidencyOutcome::Hit);
        // A growth past the whole budget evicts and cannot be retained.
        assert_eq!(res.touch(0, 2000), ResidencyOutcome::Reload { rows: 2000 });
        assert!(!res.is_resident(0));
    }

    #[test]
    fn mask_rows_count_planes_and_slices() {
        // 2 planes x K rows, one column slice.
        assert_eq!(ternary_mask_rows(1024, 512, 65_536), 2 * 512);
        // N spanning 3 slices triples the rows.
        assert_eq!(ternary_mask_rows(3 * 65_536, 512, 65_536), 6 * 512);
        // Degenerate shapes still cost at least one slice.
        assert_eq!(ternary_mask_rows(0, 16, 65_536), 32);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _ = ResidencyModel::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_are_rejected() {
        let _ = ResidencyModel::with_slots(0, 100);
    }

    #[test]
    fn one_slot_model_is_the_flat_model() {
        // The flat constructor and an explicit 1-slot model must agree
        // on every dispatch — the pre-SALP reduction of the slot model.
        let mut flat = ResidencyModel::new(100);
        let mut slotted = ResidencyModel::with_slots(1, 100);
        for (tenant, rows) in [(0, 40), (1, 40), (0, 40), (2, 40), (9, 500), (0, 40)] {
            assert_eq!(
                flat.touch(tenant, rows),
                slotted.touch_slots(tenant, &[(0, rows)]),
                "tenant {tenant} rows {rows}"
            );
        }
        assert_eq!(flat.used_rows(), slotted.used_rows());
        assert_eq!(flat.resident_tenants(), slotted.resident_tenants());
        assert_eq!(slotted.slots(), 1);
        assert_eq!(slotted.capacity_rows(), 100);
    }

    #[test]
    fn partial_slot_miss_reloads_only_the_missing_slots() {
        let mut res = ResidencyModel::with_slots(4, 100);
        let all: Vec<(usize, usize)> = (0..4).map(|s| (s, 50)).collect();
        assert_eq!(
            res.touch_slots(0, &all),
            ResidencyOutcome::Reload { rows: 200 }
        );
        assert_eq!(res.touch_slots(0, &all), ResidencyOutcome::Hit);
        // Evict tenant 0 from slots 1 and 3 only.
        assert_eq!(
            res.touch_slots(5, &[(1, 80), (3, 80)]),
            ResidencyOutcome::Reload { rows: 160 }
        );
        assert!(res.is_resident(0), "slots 0 and 2 still hold tenant 0");
        // The re-dispatch restreams exactly the two missing slots.
        assert_eq!(
            res.touch_slots(0, &all),
            ResidencyOutcome::Reload { rows: 100 }
        );
        assert_eq!(res.touch_slots(0, &all), ResidencyOutcome::Hit);
    }

    #[test]
    fn flat_touch_spreads_over_slots() {
        let mut res = ResidencyModel::with_slots(4, 100);
        assert_eq!(res.touch(0, 200), ResidencyOutcome::Reload { rows: 200 });
        assert_eq!(res.touch(0, 200), ResidencyOutcome::Hit);
        assert_eq!(res.used_rows(), 200);
        assert_eq!(res.capacity_rows(), 400);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_slot_is_rejected() {
        let mut res = ResidencyModel::with_slots(2, 100);
        let _ = res.touch_slots(0, &[(2, 10)]);
    }
}
