//! Tenant weight residency: which tenants' mask planes fit in the CIM
//! subarrays, and what a tenant switch costs when they don't all fit.
//!
//! A tenant's ternary weight matrix lives in the compute subarrays as
//! per-row mask planes (§5.2: one +1 plane and one −1 plane, K rows
//! each, replicated across the column slices its N outputs span). The
//! subarrays also hold the Johnson counter rows, so the residency budget
//! is the CIM subarray capacity ([`c2m_dram::DramConfig::cim_subarray_rows`])
//! minus the counter footprint. When a module hosts more tenants than
//! fit, dispatching a non-resident tenant must first stream its mask
//! planes back in — the serving-layer analogue of a row-buffer conflict,
//! priced through
//! [`C2mEngine::mask_reload_ns`](crate::engine::C2mEngine::mask_reload_ns).
//!
//! [`ResidencyModel`] is the bookkeeping half: an LRU set of resident
//! tenants over a fixed row budget. It is deliberately engine-agnostic —
//! the serving runtime owns one per run and asks the engine to price the
//! reloads it reports.

use serde::Serialize;

/// Outcome of dispatching one tenant against the residency state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ResidencyOutcome {
    /// The tenant's mask planes were already resident (no reload).
    Hit,
    /// The tenant had to be (re)loaded: `rows` mask rows streamed into
    /// the CIM subarrays, after evicting least-recently-used tenants.
    Reload {
        /// Mask rows written by the reload.
        rows: usize,
    },
}

/// LRU residency tracker for tenant mask planes over a row budget.
///
/// # Examples
///
/// ```
/// use c2m_core::residency::{ResidencyModel, ResidencyOutcome};
///
/// let mut res = ResidencyModel::new(1000);
/// assert_eq!(res.touch(0, 600), ResidencyOutcome::Reload { rows: 600 });
/// assert_eq!(res.touch(0, 600), ResidencyOutcome::Hit);
/// // Tenant 1 doesn't fit alongside tenant 0: 0 is evicted.
/// assert_eq!(res.touch(1, 600), ResidencyOutcome::Reload { rows: 600 });
/// assert!(!res.is_resident(0));
/// ```
#[derive(Debug, Clone)]
pub struct ResidencyModel {
    capacity_rows: usize,
    /// Resident tenants in LRU order: front = coldest, back = hottest.
    resident: Vec<(usize, usize)>,
}

impl ResidencyModel {
    /// A model with `capacity_rows` mask-capable rows.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity — a module with no mask rows cannot
    /// serve any tenant.
    #[must_use]
    pub fn new(capacity_rows: usize) -> Self {
        assert!(capacity_rows > 0, "residency capacity must be positive");
        Self {
            capacity_rows,
            resident: Vec::new(),
        }
    }

    /// The row budget.
    #[must_use]
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// Mask rows currently occupied.
    #[must_use]
    pub fn used_rows(&self) -> usize {
        self.resident.iter().map(|&(_, rows)| rows).sum()
    }

    /// Whether `tenant`'s mask planes are resident right now.
    #[must_use]
    pub fn is_resident(&self, tenant: usize) -> bool {
        self.resident.iter().any(|&(t, _)| t == tenant)
    }

    /// Resident tenants, coldest first.
    #[must_use]
    pub fn resident_tenants(&self) -> Vec<usize> {
        self.resident.iter().map(|&(t, _)| t).collect()
    }

    /// Dispatches `tenant` needing `rows` mask rows: a resident tenant
    /// with an unchanged footprint is refreshed to most-recently-used
    /// and hits; a non-resident one (or one whose footprint changed —
    /// its planes must be restreamed) evicts least-recently-used
    /// tenants until it fits and reports the reload. A tenant larger
    /// than the whole budget still runs — it evicts everything and
    /// reloads every dispatch (permanent thrashing), mirroring a row
    /// that can never stay open.
    pub fn touch(&mut self, tenant: usize, rows: usize) -> ResidencyOutcome {
        if let Some(pos) = self.resident.iter().position(|&(t, _)| t == tenant) {
            if self.resident[pos].1 == rows {
                let entry = self.resident.remove(pos);
                self.resident.push(entry);
                return ResidencyOutcome::Hit;
            }
            // Footprint changed: the old planes are stale, reload.
            self.resident.remove(pos);
        }
        while !self.resident.is_empty() && self.used_rows() + rows > self.capacity_rows {
            self.resident.remove(0);
        }
        if rows <= self.capacity_rows {
            self.resident.push((tenant, rows));
        }
        ResidencyOutcome::Reload { rows }
    }
}

/// Mask rows needed to keep one ternary tenant resident: 2 planes
/// (+1 and −1) × K weight rows × the column slices its N outputs span
/// on a `row_bits` wide logical row.
///
/// # Panics
///
/// Panics on a zero row width.
#[must_use]
pub fn ternary_mask_rows(n: usize, k: usize, row_bits: usize) -> usize {
    assert!(row_bits > 0, "row width must be positive");
    2 * k * n.div_ceil(row_bits).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_coldest_first() {
        let mut res = ResidencyModel::new(100);
        assert_eq!(res.touch(0, 40), ResidencyOutcome::Reload { rows: 40 });
        assert_eq!(res.touch(1, 40), ResidencyOutcome::Reload { rows: 40 });
        // Refresh tenant 0: tenant 1 becomes the LRU victim.
        assert_eq!(res.touch(0, 40), ResidencyOutcome::Hit);
        assert_eq!(res.touch(2, 40), ResidencyOutcome::Reload { rows: 40 });
        assert!(res.is_resident(0));
        assert!(!res.is_resident(1));
        assert!(res.is_resident(2));
        assert_eq!(res.used_rows(), 80);
    }

    #[test]
    fn fitting_tenants_never_reload_twice() {
        let mut res = ResidencyModel::new(1000);
        for round in 0..3 {
            for t in 0..4 {
                let out = res.touch(t, 200);
                if round == 0 {
                    assert_eq!(out, ResidencyOutcome::Reload { rows: 200 });
                } else {
                    assert_eq!(out, ResidencyOutcome::Hit, "tenant {t} round {round}");
                }
            }
        }
        assert_eq!(res.used_rows(), 800);
    }

    #[test]
    fn oversized_tenant_thrashes_but_runs() {
        let mut res = ResidencyModel::new(100);
        assert_eq!(res.touch(0, 40), ResidencyOutcome::Reload { rows: 40 });
        assert_eq!(res.touch(9, 500), ResidencyOutcome::Reload { rows: 500 });
        // Too big to retain: evicted everything, kept nothing.
        assert!(!res.is_resident(9));
        assert!(!res.is_resident(0));
        assert_eq!(res.touch(9, 500), ResidencyOutcome::Reload { rows: 500 });
    }

    #[test]
    fn changed_footprint_forces_a_reload() {
        let mut res = ResidencyModel::new(1000);
        assert_eq!(res.touch(0, 100), ResidencyOutcome::Reload { rows: 100 });
        // Same tenant, bigger working set: stale planes, re-stream and
        // re-fit against the budget.
        assert_eq!(res.touch(0, 600), ResidencyOutcome::Reload { rows: 600 });
        assert_eq!(res.used_rows(), 600);
        assert_eq!(res.touch(0, 600), ResidencyOutcome::Hit);
        // A growth past the whole budget evicts and cannot be retained.
        assert_eq!(res.touch(0, 2000), ResidencyOutcome::Reload { rows: 2000 });
        assert!(!res.is_resident(0));
    }

    #[test]
    fn mask_rows_count_planes_and_slices() {
        // 2 planes x K rows, one column slice.
        assert_eq!(ternary_mask_rows(1024, 512, 65_536), 2 * 512);
        // N spanning 3 slices triples the rows.
        assert_eq!(ternary_mask_rows(3 * 65_536, 512, 65_536), 6 * 512);
        // Degenerate shapes still cost at least one slice.
        assert_eq!(ternary_mask_rows(0, 16, 65_536), 32);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _ = ResidencyModel::new(0);
    }
}
