//! Co-simulation: bit-accurate execution with cycle-accurate timing.
//!
//! The paper evaluates Count2Multiply on a cycle-level NVMain extension
//! that models both *what* the DRAM computes and *when* each command
//! issues. This repository normally splits those concerns — functional
//! kernels (`crate::kernels`) for correctness, the analytic engine
//! (`crate::engine`) for paper-scale timing. [`CoSim`] joins them for
//! the scales where both are tractable: every macro command of a
//! μProgram is executed on a real [`AmbitSubarray`] *and* issued to the
//! [`ChannelScheduler`], so one run yields the result bits, the command
//! mix, the elapsed time and the energy, exactly like the authors'
//! simulator.
//!
//! [`BankedCoSim`] extends this to SIMD-style broadcast over several
//! banks (§5.1: the controller replicates a μProgram across CIM
//! subarrays): each bank holds its own subarray state; per-step
//! commands interleave across banks under `tRRD`/`tFAW`, reproducing
//! the §7.2.1 overlap on *functional* state.

use c2m_cim::ambit::{AmbitSubarray, MicroOp, MicroProgram};
use c2m_cim::{FaultModel, Row};
use c2m_dram::{
    AreaModel, ChannelScheduler, CommandKind, DramConfig, EnergyModel, ExecutionReport,
    TimingParams,
};

/// Functional + timing co-simulation of one CIM subarray on one bank.
#[derive(Debug, Clone)]
pub struct CoSim {
    sub: AmbitSubarray,
    sched: ChannelScheduler,
    bank: usize,
}

impl CoSim {
    /// Creates a co-simulator: a `width`-column subarray with
    /// `data_rows` D-group rows, living on `bank` of a channel with
    /// `banks` banks under Table 2 timing.
    ///
    /// # Panics
    ///
    /// Panics if `bank >= banks`.
    #[must_use]
    pub fn new(width: usize, data_rows: usize, banks: usize, bank: usize) -> Self {
        Self::with_faults(width, data_rows, banks, bank, FaultModel::fault_free())
    }

    /// Co-simulator with fault injection on TRA results.
    ///
    /// # Panics
    ///
    /// Panics if `bank >= banks`.
    #[must_use]
    pub fn with_faults(
        width: usize,
        data_rows: usize,
        banks: usize,
        bank: usize,
        faults: FaultModel,
    ) -> Self {
        assert!(bank < banks, "bank {bank} out of range ({banks} banks)");
        Self {
            sub: AmbitSubarray::with_faults(width, data_rows, faults),
            sched: ChannelScheduler::new(TimingParams::ddr5_4400(), banks),
            bank,
        }
    }

    /// The functional subarray (host read/write access).
    #[must_use]
    pub fn subarray(&self) -> &AmbitSubarray {
        &self.sub
    }

    /// Mutable access for seeding rows before execution.
    pub fn subarray_mut(&mut self) -> &mut AmbitSubarray {
        &mut self.sub
    }

    /// Elapsed simulated time so far, ns.
    #[must_use]
    pub fn elapsed_ns(&self) -> f64 {
        self.sched.elapsed_ns()
    }

    /// Executes a μProgram: every command updates the row state and
    /// advances the channel clock. Returns the elapsed time after the
    /// program completes.
    pub fn execute(&mut self, prog: &MicroProgram) -> f64 {
        for &op in prog.ops() {
            let kind = match op {
                MicroOp::Aap(..) => CommandKind::Aap,
                MicroOp::Ap(..) => CommandKind::Ap,
            };
            self.sub.execute_op(op);
            self.sched
                .issue(c2m_dram::DramCommand::new(self.bank, kind));
        }
        self.sched.elapsed_ns()
    }

    /// Builds the full execution report for the work done so far.
    #[must_use]
    pub fn report(&self, useful_ops: u64) -> ExecutionReport {
        let cfg = DramConfig::ddr5_4400();
        ExecutionReport::from_run(
            self.sched.elapsed_ns(),
            self.sched.stats().clone(),
            useful_ops,
            &EnergyModel::ddr5_4400(),
            &AreaModel::ddr5_4400(),
            &cfg,
        )
    }
}

/// SIMD broadcast co-simulation: the same μProgram stream replicated
/// over `banks` subarrays, commands interleaved step-by-step so the
/// scheduler sees the §7.2.1 overlap pattern.
#[derive(Debug, Clone)]
pub struct BankedCoSim {
    subs: Vec<AmbitSubarray>,
    sched: ChannelScheduler,
}

impl BankedCoSim {
    /// Creates `banks` identical subarrays on one channel.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    #[must_use]
    pub fn new(width: usize, data_rows: usize, banks: usize) -> Self {
        assert!(banks > 0, "need at least one bank");
        Self {
            subs: vec![AmbitSubarray::new(width, data_rows); banks],
            sched: ChannelScheduler::new(TimingParams::ddr5_4400(), banks),
        }
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.subs.len()
    }

    /// Seeds a data row on one bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range (row bounds checked by the
    /// subarray).
    pub fn write_data(&mut self, bank: usize, row: usize, value: &Row) {
        self.subs[bank].write_data(row, value);
    }

    /// Reads a data row on one bank.
    #[must_use]
    pub fn read_data(&self, bank: usize, row: usize) -> &Row {
        self.subs[bank].read_data(row)
    }

    /// Broadcasts a μProgram to every bank: for each program step, the
    /// controller issues the command to bank 0, 1, … in turn (the
    /// command-interleaving that lets `tRRD`-spaced activations
    /// overlap), and every bank's row state advances.
    pub fn broadcast(&mut self, prog: &MicroProgram) -> f64 {
        for &op in prog.ops() {
            let kind = match op {
                MicroOp::Aap(..) => CommandKind::Aap,
                MicroOp::Ap(..) => CommandKind::Ap,
            };
            for (bank, sub) in self.subs.iter_mut().enumerate() {
                sub.execute_op(op);
                self.sched.issue(c2m_dram::DramCommand::new(bank, kind));
            }
        }
        self.sched.elapsed_ns()
    }

    /// Elapsed simulated time, ns.
    #[must_use]
    pub fn elapsed_ns(&self) -> f64 {
        self.sched.elapsed_ns()
    }

    /// Execution report over everything broadcast so far.
    #[must_use]
    pub fn report(&self, useful_ops: u64) -> ExecutionReport {
        let cfg = DramConfig::ddr5_4400();
        ExecutionReport::from_run(
            self.sched.elapsed_ns(),
            self.sched.stats().clone(),
            useful_ops,
            &EnergyModel::ddr5_4400(),
            &AreaModel::ddr5_4400(),
            &cfg,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2m_dram::scheduler::steady_state_aap_interval;
    use c2m_jc::ambit_lower::{lower_step, CounterLayout};
    use c2m_jc::kary::TransitionPattern;
    use c2m_jc::JohnsonCode;

    fn seeded_unit_increment(n: usize, width: usize) -> (CoSim, CounterLayout) {
        let layout = CounterLayout::dense(n, 0);
        let mut sim = CoSim::new(width, CounterLayout::rows_needed(n), 16, 0);
        let code = JohnsonCode::new(n);
        sim.subarray_mut()
            .write_data(layout.mask_row, &Row::ones(width));
        for col in 0..width {
            for i in 0..n {
                let mut row = sim.subarray().read_data(layout.bit_rows[i]).clone();
                row.set(col, code.bit(col % (2 * n), i));
                sim.subarray_mut().write_data(layout.bit_rows[i], &row);
            }
        }
        (sim, layout)
    }

    #[test]
    fn cosim_computes_and_times_an_increment() {
        let n = 5;
        let width = 20;
        let (mut sim, layout) = seeded_unit_increment(n, width);
        let prog = lower_step(&layout, &TransitionPattern::increment(n, 1));
        let elapsed = sim.execute(&prog);
        assert!(elapsed > 0.0);
        // Functional: every column advanced by one Johnson state.
        let code = JohnsonCode::new(n);
        for col in 0..width {
            let mut bits = 0u64;
            for i in 0..n {
                if sim.subarray().read_data(layout.bit_rows[i]).get(col) {
                    bits |= 1 << i;
                }
            }
            let next = (col + 1) % (2 * n);
            assert_eq!(code.decode(bits), Some(next), "column {col}");
        }
        // Timing: single-bank occupancy bounds the elapsed time below.
        let t = TimingParams::ddr5_4400();
        let per = t.t_aap() + t.t_rrd;
        let lower = per * (prog.len() as f64 - 1.0);
        assert!(elapsed >= lower, "elapsed {elapsed} < {lower}");
    }

    #[test]
    fn cosim_report_has_consistent_metrics() {
        let n = 4;
        let (mut sim, layout) = seeded_unit_increment(n, 8);
        let prog = lower_step(&layout, &TransitionPattern::increment(n, 2));
        sim.execute(&prog);
        let report = sim.report(8 * 2);
        assert_eq!(report.stats.total(), prog.len() as u64);
        assert!(report.energy_nj > 0.0);
        assert!(report.gops() > 0.0);
        assert!(report.power_w() > 0.0);
    }

    #[test]
    fn broadcast_preserves_function_on_every_bank() {
        let n = 4;
        let width = 16;
        let banks = 4;
        let layout = CounterLayout::dense(n, 0);
        let mut sim = BankedCoSim::new(width, CounterLayout::rows_needed(n), banks);
        let code = JohnsonCode::new(n);
        for bank in 0..banks {
            sim.write_data(bank, layout.mask_row, &Row::ones(width));
            for col in 0..width {
                for i in 0..n {
                    let mut row = sim.read_data(bank, layout.bit_rows[i]).clone();
                    row.set(col, code.bit((col + bank) % (2 * n), i));
                    sim.write_data(bank, layout.bit_rows[i], &row);
                }
            }
        }
        let prog = lower_step(&layout, &TransitionPattern::increment(n, 1));
        sim.broadcast(&prog);
        for bank in 0..banks {
            for col in 0..width {
                let mut bits = 0u64;
                for i in 0..n {
                    if sim.read_data(bank, layout.bit_rows[i]).get(col) {
                        bits |= 1 << i;
                    }
                }
                let next = (col + bank + 1) % (2 * n);
                assert_eq!(code.decode(bits), Some(next), "bank {bank} col {col}");
            }
        }
    }

    #[test]
    fn broadcast_over_banks_approaches_scheduler_steady_state() {
        let n = 5;
        let layout = CounterLayout::dense(n, 0);
        let prog = lower_step(&layout, &TransitionPattern::increment(n, 1));
        let t = TimingParams::ddr5_4400();
        // Broadcasting the program to 16 banks issues 16x the commands
        // but takes far less than 16x one bank's time.
        let mut one = BankedCoSim::new(8, CounterLayout::rows_needed(n), 1);
        let t1 = one.broadcast(&prog);
        let mut many = BankedCoSim::new(8, CounterLayout::rows_needed(n), 16);
        let t16 = many.broadcast(&prog);
        assert!(t16 < t1 * 4.0, "16-bank {t16} vs 1-bank {t1}");
        // And the per-command interval approaches the analytic bound.
        let measured = t16 / (16.0 * prog.len() as f64);
        let analytic = steady_state_aap_interval(&t, 16);
        assert!(
            measured < analytic * 1.6,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn faulty_cosim_reports_injected_faults() {
        let n = 4;
        let layout = CounterLayout::dense(n, 0);
        let mut sim = CoSim::with_faults(
            256,
            CounterLayout::rows_needed(n),
            16,
            0,
            FaultModel::new(0.05, 7),
        );
        sim.subarray_mut()
            .write_data(layout.mask_row, &Row::ones(256));
        let prog = lower_step(&layout, &TransitionPattern::increment(n, 1));
        sim.execute(&prog);
        assert!(sim.subarray().faults_injected() > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_bank_panics() {
        let _ = CoSim::new(8, 4, 4, 9);
    }
}
