//! Sharding kernels across the memory-system topology.
//!
//! The paper executes every kernel on one channel of one rank (§7.2);
//! this module partitions work over the full
//! [`Topology`](c2m_dram::Topology) so the engine can drive every
//! channel's scheduler concurrently:
//!
//! * **GEMM output rows (M)** — rows are independent, so they split
//!   across channels → ranks with no partial-sum traffic; only the host
//!   gather of finished outputs is shared.
//! * **GEMV inner dimension (K)** — each (channel, rank) unit
//!   accumulates a K-slice into its own counters; the partial sums then
//!   merge in `⌈log₂(units)⌉` counter-to-counter addition rounds
//!   (Algorithm 2 lifted to the cross-channel case).
//! * **CSD planes** — integer×integer GEMV planes (§5.2.3) are
//!   independent accumulation passes, so they distribute like K-slices
//!   and merge the same way.
//!
//! Each [`Shard`] also carries the [`Backend`] that executes it, so a
//! single plan can dispatch shards to heterogeneous substrates (§4.6):
//! an Ambit channel next to an FCDRAM channel prices each shard with
//! its own cost model.

use c2m_cim::Backend;
use c2m_dram::Topology;
use serde::{Deserialize, Serialize};

/// Which axis of the kernel a plan partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardAxis {
    /// GEMM output rows (M): independent, no reduction needed.
    OutputRows,
    /// GEMV inner dimension (K): partial sums must be reduced.
    InnerDim,
    /// CSD bit-slice planes of an integer GEMV: partial sums must be
    /// reduced.
    CsdPlanes,
}

impl ShardAxis {
    /// True if shards hold partial sums that must merge after the
    /// parallel phase.
    #[must_use]
    pub fn needs_reduction(self) -> bool {
        matches!(self, ShardAxis::InnerDim | ShardAxis::CsdPlanes)
    }
}

/// One contiguous slice of the partitioned axis, pinned to a
/// (channel, rank) unit and a compute backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shard {
    /// Channel executing this shard.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// CIM technology pricing this shard's μPrograms.
    pub backend: Backend,
    /// First index of the slice on the partitioned axis.
    pub start: usize,
    /// Slice length (may be zero only in the degenerate all-empty plan).
    pub len: usize,
}

impl Shard {
    /// End of the slice (exclusive).
    #[must_use]
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// An explicit partition of one kernel axis over the topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// The partitioned axis.
    pub axis: ShardAxis,
    /// Total extent of the axis (Σ shard lengths).
    pub total: usize,
    /// Shards in (channel, rank) order; contiguous and disjoint.
    pub shards: Vec<Shard>,
}

impl ShardPlan {
    /// Number of (channel, rank) units holding work.
    #[must_use]
    pub fn units_used(&self) -> usize {
        self.shards.iter().filter(|s| s.len > 0).count()
    }

    /// Number of distinct channels holding work.
    #[must_use]
    pub fn channels_used(&self) -> usize {
        let mut chans: Vec<usize> = self
            .shards
            .iter()
            .filter(|s| s.len > 0)
            .map(|s| s.channel)
            .collect();
        // Shards are all-pub, so don't rely on the planner's
        // channel-major ordering.
        chans.sort_unstable();
        chans.dedup();
        chans.len()
    }

    /// Depth of the partial-sum merge tree after the parallel phase:
    /// `⌈log₂(units)⌉` pairwise rounds (the *latency* of the merge;
    /// the tree performs `units − 1` merges in total), zero for axes
    /// without reduction or single-unit plans.
    #[must_use]
    pub fn reduction_rounds(&self) -> u32 {
        if !self.axis.needs_reduction() {
            return 0;
        }
        let units = self.units_used();
        if units <= 1 {
            0
        } else {
            (units as f64).log2().ceil() as u32
        }
    }

    /// Shards assigned to `channel` (including empty ones).
    pub fn on_channel(&self, channel: usize) -> impl Iterator<Item = &Shard> + '_ {
        self.shards.iter().filter(move |s| s.channel == channel)
    }
}

/// How shards map to compute backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendPolicy {
    /// Every shard runs on the same technology (the paper's setup, with
    /// [`Backend::Ambit`]).
    Uniform(Backend),
    /// Channel `c` runs on `backends[c % backends.len()]` — a mixed
    /// module where channels are built from different substrates.
    PerChannel(Vec<Backend>),
}

impl BackendPolicy {
    /// Backend executing shards on `channel`.
    ///
    /// # Panics
    ///
    /// Panics if a `PerChannel` policy has an empty backend list.
    #[must_use]
    pub fn backend_for(&self, channel: usize) -> Backend {
        match self {
            BackendPolicy::Uniform(b) => *b,
            BackendPolicy::PerChannel(list) => {
                assert!(!list.is_empty(), "PerChannel policy needs backends");
                list[channel % list.len()]
            }
        }
    }
}

impl Default for BackendPolicy {
    fn default() -> Self {
        BackendPolicy::Uniform(Backend::Ambit)
    }
}

/// Plans contiguous, balanced partitions of kernel axes over a
/// [`Topology`].
#[derive(Debug, Clone)]
pub struct ShardPlanner {
    topology: Topology,
    policy: BackendPolicy,
}

impl ShardPlanner {
    /// Planner dispatching every shard to Ambit.
    #[must_use]
    pub fn new(topology: Topology) -> Self {
        Self::with_policy(topology, BackendPolicy::default())
    }

    /// Planner with an explicit backend dispatch policy.
    #[must_use]
    pub fn with_policy(topology: Topology, policy: BackendPolicy) -> Self {
        Self { topology, policy }
    }

    /// The topology being planned over.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Partitions GEMM output rows: one shard per (channel, rank).
    #[must_use]
    pub fn plan_rows(&self, m: usize) -> ShardPlan {
        self.split(ShardAxis::OutputRows, m)
    }

    /// Partitions a GEMV inner dimension.
    #[must_use]
    pub fn plan_inner(&self, k: usize) -> ShardPlan {
        self.split(ShardAxis::InnerDim, k)
    }

    /// Partitions the CSD plane list of an integer GEMV.
    #[must_use]
    pub fn plan_planes(&self, planes: usize) -> ShardPlan {
        self.split(ShardAxis::CsdPlanes, planes)
    }

    /// Splits `total` into at most `channels × ranks` contiguous chunks,
    /// channel-major (channel 0 rank 0, channel 0 rank 1, …), balanced
    /// to within one element. A zero-extent axis still yields one empty
    /// shard on unit (0, 0) so per-unit fixed costs (the bank-level
    /// partial-sum merge a single unit already pays) stay attributed.
    fn split(&self, axis: ShardAxis, total: usize) -> ShardPlan {
        let units = self.topology.units();
        let base = total / units;
        let extra = total % units;
        let mut shards = Vec::new();
        let mut start = 0usize;
        for unit in 0..units {
            let len = base + usize::from(unit < extra);
            if len == 0 && !(unit == 0 && total == 0) {
                continue;
            }
            let channel = unit / self.topology.ranks;
            let rank = unit % self.topology.ranks;
            shards.push(Shard {
                channel,
                rank,
                backend: self.policy.backend_for(channel),
                start,
                len,
            });
            start += len;
        }
        debug_assert_eq!(start, total);
        ShardPlan {
            axis,
            total,
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(channels: usize, ranks: usize) -> Topology {
        Topology {
            channels,
            ranks,
            banks: 16,
        }
    }

    #[test]
    fn single_unit_plan_is_one_full_shard() {
        let plan = ShardPlanner::new(topo(1, 1)).plan_inner(8192);
        assert_eq!(plan.shards.len(), 1);
        assert_eq!(plan.shards[0].len, 8192);
        assert_eq!(plan.units_used(), 1);
        assert_eq!(plan.reduction_rounds(), 0);
    }

    #[test]
    fn shards_cover_axis_disjointly_and_balanced() {
        let plan = ShardPlanner::new(topo(4, 2)).plan_rows(8193);
        assert_eq!(plan.shards.len(), 8);
        let mut cursor = 0;
        for s in &plan.shards {
            assert_eq!(s.start, cursor, "contiguous");
            cursor = s.end();
        }
        assert_eq!(cursor, 8193);
        let lens: Vec<usize> = plan.shards.iter().map(|s| s.len).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(max - min <= 1, "balanced to within one: {lens:?}");
    }

    #[test]
    fn channel_major_unit_order() {
        let plan = ShardPlanner::new(topo(2, 2)).plan_rows(4);
        let coords: Vec<(usize, usize)> = plan.shards.iter().map(|s| (s.channel, s.rank)).collect();
        assert_eq!(coords, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn small_axis_leaves_trailing_units_empty() {
        let plan = ShardPlanner::new(topo(8, 1)).plan_planes(3);
        assert_eq!(plan.units_used(), 3);
        assert_eq!(plan.channels_used(), 3);
        assert_eq!(plan.reduction_rounds(), 2); // ceil(log2(3))
    }

    #[test]
    fn rows_need_no_reduction_inner_dim_does() {
        let planner = ShardPlanner::new(topo(4, 1));
        assert_eq!(planner.plan_rows(1024).reduction_rounds(), 0);
        assert_eq!(planner.plan_inner(1024).reduction_rounds(), 2);
        assert_eq!(planner.plan_planes(14).reduction_rounds(), 2);
    }

    #[test]
    fn empty_axis_keeps_one_empty_shard() {
        let plan = ShardPlanner::new(topo(4, 1)).plan_planes(0);
        assert_eq!(plan.shards.len(), 1);
        assert_eq!(plan.shards[0].len, 0);
        assert_eq!(plan.units_used(), 0);
        assert_eq!(plan.reduction_rounds(), 0);
    }

    #[test]
    fn per_channel_policy_dispatches_backends() {
        let policy = BackendPolicy::PerChannel(vec![Backend::Ambit, Backend::Fcdram]);
        let plan = ShardPlanner::with_policy(topo(4, 1), policy).plan_rows(8);
        let backends: Vec<Backend> = plan.shards.iter().map(|s| s.backend).collect();
        assert_eq!(
            backends,
            vec![
                Backend::Ambit,
                Backend::Fcdram,
                Backend::Ambit,
                Backend::Fcdram
            ]
        );
    }
}
