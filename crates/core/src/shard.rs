//! Sharding kernels across the memory-system topology.
//!
//! The paper executes every kernel on one channel of one rank (§7.2);
//! this module partitions work over the full
//! [`Topology`](c2m_dram::Topology) so the engine can drive every
//! channel's scheduler concurrently:
//!
//! * **GEMM output rows (M)** — rows are independent, so they split
//!   across channels → ranks with no partial-sum traffic; only the host
//!   gather of finished outputs is shared.
//! * **GEMV inner dimension (K)** — each (channel, rank) unit
//!   accumulates a K-slice into its own counters; the partial sums then
//!   merge in `⌈log₂(units)⌉` counter-to-counter addition rounds
//!   (Algorithm 2 lifted to the cross-channel case).
//! * **CSD planes** — integer×integer GEMV planes (§5.2.3) are
//!   independent accumulation passes, so they distribute like K-slices
//!   and merge the same way.
//!
//! Each axis additionally splits below the rank when the topology
//! carries more than one concurrent subarray stream (SALP): the
//! partitioning hierarchy is channels → ranks → (banks ×) subarray
//! streams, and each [`Shard`] is pinned to one
//! (channel, rank, subarray) slot. Streams within one unit merge their
//! partials in-DRAM; only whole (channel, rank) units exchange data
//! over the host bus (see [`ShardPlan::cr_units_used`]).
//!
//! Each [`Shard`] also carries the [`Backend`] that executes it, so a
//! single plan can dispatch shards to heterogeneous substrates (§4.6):
//! an Ambit channel next to an FCDRAM channel prices each shard with
//! its own cost model.
//!
//! Shard *lengths* are sized by a [`ShardSizing`] policy: the default
//! [`ShardSizing::Even`] split (the paper's setup — every unit gets the
//! same share) or [`ShardSizing::Weighted`], which apportions the axis
//! proportionally to per-channel throughput weights so a mixed-backend
//! module is no longer paced by its slowest channels: giving an Ambit
//! channel `f×` the work of an FCDRAM channel whose increments cost `f×`
//! more equalises the per-channel makespan.

use c2m_cim::Backend;
use c2m_dram::Topology;
use serde::{Deserialize, Serialize};

/// Which axis of the kernel a plan partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ShardAxis {
    /// GEMM output rows (M): independent, no reduction needed.
    OutputRows,
    /// GEMV inner dimension (K): partial sums must be reduced.
    InnerDim,
    /// CSD bit-slice planes of an integer GEMV: partial sums must be
    /// reduced.
    CsdPlanes,
}

impl ShardAxis {
    /// True if shards hold partial sums that must merge after the
    /// parallel phase.
    #[must_use]
    pub fn needs_reduction(self) -> bool {
        matches!(self, ShardAxis::InnerDim | ShardAxis::CsdPlanes)
    }
}

/// One contiguous slice of the partitioned axis, pinned to a
/// (channel, rank, subarray-stream) slot and a compute backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shard {
    /// Channel executing this shard.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Concurrent SALP stream within the rank's banks (always 0 on a
    /// topology without subarray-level parallelism).
    pub subarray: usize,
    /// CIM technology pricing this shard's μPrograms.
    pub backend: Backend,
    /// First index of the slice on the partitioned axis.
    pub start: usize,
    /// Slice length (may be zero only in the degenerate all-empty plan).
    pub len: usize,
}

impl Shard {
    /// End of the slice (exclusive).
    #[must_use]
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// An explicit partition of one kernel axis over the topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// The partitioned axis.
    pub axis: ShardAxis,
    /// Total extent of the axis (Σ shard lengths).
    pub total: usize,
    /// Shards in (channel, rank) order; contiguous and disjoint.
    pub shards: Vec<Shard>,
}

impl ShardPlan {
    /// Number of (channel, rank, subarray-stream) slots holding work.
    #[must_use]
    pub fn units_used(&self) -> usize {
        self.shards.iter().filter(|s| s.len > 0).count()
    }

    /// Number of distinct (channel, rank) units holding work — the
    /// granularity of cross-unit host traffic (partial-sum merge trees,
    /// output gathers). Subarray streams within one unit merge in-DRAM,
    /// so they never add host-bus legs. Equals [`Self::units_used`] on
    /// a plan without subarray-level parallelism.
    #[must_use]
    pub fn cr_units_used(&self) -> usize {
        let mut units: Vec<(usize, usize)> = self
            .shards
            .iter()
            .filter(|s| s.len > 0)
            .map(|s| (s.channel, s.rank))
            .collect();
        units.sort_unstable();
        units.dedup();
        units.len()
    }

    /// Number of distinct channels holding work.
    #[must_use]
    pub fn channels_used(&self) -> usize {
        let mut chans: Vec<usize> = self
            .shards
            .iter()
            .filter(|s| s.len > 0)
            .map(|s| s.channel)
            .collect();
        // Shards are all-pub, so don't rely on the planner's
        // channel-major ordering.
        chans.sort_unstable();
        chans.dedup();
        chans.len()
    }

    /// Depth of the partial-sum merge tree after the parallel phase:
    /// `⌈log₂(units)⌉` pairwise rounds (the *latency* of the merge;
    /// the tree performs `units − 1` merges in total), zero for axes
    /// without reduction or single-unit plans.
    #[must_use]
    pub fn reduction_rounds(&self) -> u32 {
        if !self.axis.needs_reduction() {
            return 0;
        }
        let units = self.units_used();
        if units <= 1 {
            0
        } else {
            (units as f64).log2().ceil() as u32
        }
    }

    /// Shards assigned to `channel` (including empty ones).
    pub fn on_channel(&self, channel: usize) -> impl Iterator<Item = &Shard> + '_ {
        self.shards.iter().filter(move |s| s.channel == channel)
    }
}

/// How shards map to compute backends.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BackendPolicy {
    /// Every shard runs on the same technology (the paper's setup, with
    /// [`Backend::Ambit`]).
    Uniform(Backend),
    /// Channel `c` runs on `backends[c % backends.len()]` — a mixed
    /// module where channels are built from different substrates.
    PerChannel(Vec<Backend>),
}

impl BackendPolicy {
    /// Backend executing shards on `channel`.
    ///
    /// # Panics
    ///
    /// Panics if a `PerChannel` policy has an empty backend list.
    #[must_use]
    pub fn backend_for(&self, channel: usize) -> Backend {
        match self {
            BackendPolicy::Uniform(b) => *b,
            BackendPolicy::PerChannel(list) => {
                assert!(!list.is_empty(), "PerChannel policy needs backends");
                list[channel % list.len()]
            }
        }
    }
}

impl Default for BackendPolicy {
    fn default() -> Self {
        BackendPolicy::Uniform(Backend::Ambit)
    }
}

/// How shard lengths are apportioned over the topology's units.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum ShardSizing {
    /// Every unit gets the same share, balanced to within one element
    /// (the seed behaviour; bit-for-bit identical to the paper's model
    /// at one channel/one rank).
    #[default]
    Even,
    /// Shard lengths proportional to per-channel throughput weights:
    /// channel `c` weighs `weights[c % weights.len()]`, every rank of a
    /// channel shares its channel's weight, and the axis is apportioned
    /// by largest remainder (ties to the lower unit index). A channel
    /// with weight 2 receives twice the work of a channel with weight 1,
    /// so weights of `1 / cost-factor` equalise per-channel makespan on
    /// heterogeneous modules.
    Weighted(Vec<f64>),
}

/// Plans contiguous, balanced partitions of kernel axes over a
/// [`Topology`].
#[derive(Debug, Clone)]
pub struct ShardPlanner {
    topology: Topology,
    policy: BackendPolicy,
    sizing: ShardSizing,
}

impl ShardPlanner {
    /// Planner dispatching every shard to Ambit.
    #[must_use]
    pub fn new(topology: Topology) -> Self {
        Self::with_policy(topology, BackendPolicy::default())
    }

    /// Planner with an explicit backend dispatch policy.
    #[must_use]
    pub fn with_policy(topology: Topology, policy: BackendPolicy) -> Self {
        Self {
            topology,
            policy,
            sizing: ShardSizing::default(),
        }
    }

    /// Replaces the shard-length apportionment policy.
    ///
    /// # Panics
    ///
    /// Panics if a `Weighted` sizing is empty or has a non-positive or
    /// non-finite weight.
    #[must_use]
    pub fn with_sizing(mut self, sizing: ShardSizing) -> Self {
        if let ShardSizing::Weighted(w) = &sizing {
            assert!(!w.is_empty(), "weighted sizing needs at least one weight");
            assert!(
                w.iter().all(|&x| x.is_finite() && x > 0.0),
                "weights must be positive and finite: {w:?}"
            );
        }
        self.sizing = sizing;
        self
    }

    /// The shard-length apportionment policy in force.
    #[must_use]
    pub fn sizing(&self) -> &ShardSizing {
        &self.sizing
    }

    /// The topology being planned over.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Partitions GEMM output rows: one shard per (channel, rank).
    #[must_use]
    pub fn plan_rows(&self, m: usize) -> ShardPlan {
        self.split(ShardAxis::OutputRows, m)
    }

    /// Partitions a GEMV inner dimension.
    #[must_use]
    pub fn plan_inner(&self, k: usize) -> ShardPlan {
        self.split(ShardAxis::InnerDim, k)
    }

    /// Partitions the CSD plane list of an integer GEMV.
    #[must_use]
    pub fn plan_planes(&self, planes: usize) -> ShardPlan {
        self.split(ShardAxis::CsdPlanes, planes)
    }

    /// Splits `total` into at most `channels × ranks × subarrays`
    /// contiguous chunks, channel-major (channel 0 rank 0 stream 0,
    /// channel 0 rank 0 stream 1, …), with lengths chosen by the sizing
    /// policy. A zero-extent axis still yields one empty shard on slot
    /// (0, 0, 0) so per-unit fixed costs (the bank-level partial-sum
    /// merge a single unit already pays) stay attributed. With one
    /// subarray stream this is bit-for-bit the pre-SALP split.
    fn split(&self, axis: ShardAxis, total: usize) -> ShardPlan {
        let subarrays = self.topology.subarrays.max(1);
        let units = self.topology.shard_slots();
        let ranks_x_subs = self.topology.ranks * subarrays;
        let lens = match &self.sizing {
            ShardSizing::Even => even_lengths(total, units),
            // Equal weights must reproduce the even split bit-for-bit,
            // so route them through the same integer path.
            ShardSizing::Weighted(w) if uniform_weights(w) => even_lengths(total, units),
            ShardSizing::Weighted(w) => {
                // Weights are per channel: every rank and subarray
                // stream of a channel shares its channel's weight.
                let per_unit: Vec<f64> = (0..units)
                    .map(|u| w[(u / ranks_x_subs) % w.len()])
                    .collect();
                weighted_lengths(total, &per_unit)
            }
        };
        let mut shards = Vec::new();
        let mut start = 0usize;
        for (unit, &len) in lens.iter().enumerate() {
            if len == 0 && !(unit == 0 && total == 0) {
                continue;
            }
            let channel = unit / ranks_x_subs;
            let rank = (unit / subarrays) % self.topology.ranks;
            let subarray = unit % subarrays;
            shards.push(Shard {
                channel,
                rank,
                subarray,
                backend: self.policy.backend_for(channel),
                start,
                len,
            });
            start += len;
        }
        debug_assert_eq!(start, total);
        ShardPlan {
            axis,
            total,
            shards,
        }
    }
}

/// True when every weight equals the first (the degenerate case where a
/// weighted split must not deviate from the even one).
fn uniform_weights(w: &[f64]) -> bool {
    w.iter().all(|&x| x == w[0])
}

/// The seed even split: `total` over `units`, balanced to within one
/// element, leading units taking the remainder.
fn even_lengths(total: usize, units: usize) -> Vec<usize> {
    let base = total / units;
    let extra = total % units;
    (0..units).map(|u| base + usize::from(u < extra)).collect()
}

/// Largest-remainder apportionment of `total` by per-unit weights: each
/// unit gets the floor of its ideal share `total·wᵤ/Σw`, and the
/// leftover elements go to the largest fractional remainders (ties to
/// the lower unit index).
fn weighted_lengths(total: usize, weights: &[f64]) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    let ideal: Vec<f64> = weights.iter().map(|w| total as f64 * w / sum).collect();
    let mut lens: Vec<usize> = ideal.iter().map(|x| x.floor() as usize).collect();
    let assigned: usize = lens.iter().sum();
    debug_assert!(assigned <= total, "floors cannot exceed the total");
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        (ideal[b] - ideal[b].floor())
            .partial_cmp(&(ideal[a] - ideal[a].floor()))
            .expect("finite remainders")
            .then(a.cmp(&b))
    });
    for &u in order.iter().take(total - assigned) {
        lens[u] += 1;
    }
    debug_assert_eq!(lens.iter().sum::<usize>(), total);
    lens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(channels: usize, ranks: usize) -> Topology {
        Topology {
            channels,
            ranks,
            banks: 16,
            subarrays: 1,
        }
    }

    #[test]
    fn single_unit_plan_is_one_full_shard() {
        let plan = ShardPlanner::new(topo(1, 1)).plan_inner(8192);
        assert_eq!(plan.shards.len(), 1);
        assert_eq!(plan.shards[0].len, 8192);
        assert_eq!(plan.units_used(), 1);
        assert_eq!(plan.reduction_rounds(), 0);
    }

    #[test]
    fn shards_cover_axis_disjointly_and_balanced() {
        let plan = ShardPlanner::new(topo(4, 2)).plan_rows(8193);
        assert_eq!(plan.shards.len(), 8);
        let mut cursor = 0;
        for s in &plan.shards {
            assert_eq!(s.start, cursor, "contiguous");
            cursor = s.end();
        }
        assert_eq!(cursor, 8193);
        let lens: Vec<usize> = plan.shards.iter().map(|s| s.len).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(max - min <= 1, "balanced to within one: {lens:?}");
    }

    #[test]
    fn channel_major_unit_order() {
        let plan = ShardPlanner::new(topo(2, 2)).plan_rows(4);
        let coords: Vec<(usize, usize)> = plan.shards.iter().map(|s| (s.channel, s.rank)).collect();
        assert_eq!(coords, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn small_axis_leaves_trailing_units_empty() {
        let plan = ShardPlanner::new(topo(8, 1)).plan_planes(3);
        assert_eq!(plan.units_used(), 3);
        assert_eq!(plan.channels_used(), 3);
        assert_eq!(plan.reduction_rounds(), 2); // ceil(log2(3))
    }

    #[test]
    fn rows_need_no_reduction_inner_dim_does() {
        let planner = ShardPlanner::new(topo(4, 1));
        assert_eq!(planner.plan_rows(1024).reduction_rounds(), 0);
        assert_eq!(planner.plan_inner(1024).reduction_rounds(), 2);
        assert_eq!(planner.plan_planes(14).reduction_rounds(), 2);
    }

    #[test]
    fn empty_axis_keeps_one_empty_shard() {
        let plan = ShardPlanner::new(topo(4, 1)).plan_planes(0);
        assert_eq!(plan.shards.len(), 1);
        assert_eq!(plan.shards[0].len, 0);
        assert_eq!(plan.units_used(), 0);
        assert_eq!(plan.reduction_rounds(), 0);
    }

    #[test]
    fn weighted_split_covers_axis_and_favours_heavy_channels() {
        let plan = ShardPlanner::new(topo(4, 1))
            .with_sizing(ShardSizing::Weighted(vec![1.0, 0.5, 1.0, 0.5]))
            .plan_rows(16);
        let lens: Vec<usize> = plan.shards.iter().map(|s| s.len).collect();
        assert_eq!(lens.iter().sum::<usize>(), 16);
        let mut cursor = 0;
        for s in &plan.shards {
            assert_eq!(s.start, cursor, "contiguous");
            cursor = s.end();
        }
        // Weight-1 channels get twice the rows of weight-0.5 channels.
        assert_eq!(lens, vec![5, 3, 5, 3]);
    }

    #[test]
    fn equal_weights_reproduce_the_even_split_exactly() {
        for total in [0usize, 1, 3, 8, 8193] {
            for &(c, r) in &[(1usize, 1usize), (3, 1), (4, 2), (8, 1)] {
                let even = ShardPlanner::new(topo(c, r)).plan_inner(total);
                let weighted = ShardPlanner::new(topo(c, r))
                    .with_sizing(ShardSizing::Weighted(vec![0.7; c]))
                    .plan_inner(total);
                assert_eq!(even, weighted, "{c}ch x {r}rk, total {total}");
            }
        }
    }

    #[test]
    fn weights_cycle_over_channels_and_share_within_ranks() {
        let plan = ShardPlanner::new(topo(2, 2))
            .with_sizing(ShardSizing::Weighted(vec![3.0, 1.0]))
            .plan_rows(8);
        // Channel 0 (weight 3) holds 6 rows over its two ranks, channel 1
        // (weight 1) holds 2.
        let per_channel: Vec<usize> = (0..2)
            .map(|c| plan.on_channel(c).map(|s| s.len).sum())
            .collect();
        assert_eq!(per_channel, vec![6, 2]);
    }

    #[test]
    fn weighted_split_may_leave_slow_units_empty() {
        let plan = ShardPlanner::new(topo(4, 1))
            .with_sizing(ShardSizing::Weighted(vec![10.0, 1.0, 10.0, 1.0]))
            .plan_planes(2);
        assert_eq!(plan.units_used(), 2);
        assert!(plan
            .shards
            .iter()
            .filter(|s| s.len > 0)
            .all(|s| s.channel % 2 == 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_weights_are_rejected() {
        let _ = ShardPlanner::new(topo(2, 1)).with_sizing(ShardSizing::Weighted(vec![1.0, 0.0]));
    }

    // ---- subarray tier ----

    #[test]
    fn subarray_tier_multiplies_shard_slots() {
        let plan = ShardPlanner::new(topo(2, 2).with_subarrays(4)).plan_inner(1600);
        assert_eq!(plan.shards.len(), 16);
        assert_eq!(plan.units_used(), 16);
        assert_eq!(plan.cr_units_used(), 4, "host traffic stays per unit");
        let mut cursor = 0;
        for s in &plan.shards {
            assert_eq!(s.start, cursor, "contiguous");
            cursor = s.end();
            assert!(s.subarray < 4);
        }
        assert_eq!(cursor, 1600);
        // Channel-major, rank-major, stream-minor order.
        let coords: Vec<(usize, usize, usize)> = plan
            .shards
            .iter()
            .map(|s| (s.channel, s.rank, s.subarray))
            .collect();
        let mut sorted = coords.clone();
        sorted.sort_unstable();
        assert_eq!(coords, sorted);
    }

    #[test]
    fn single_subarray_plans_match_pre_salp_shape() {
        for total in [0usize, 1, 3, 8193] {
            let plan = ShardPlanner::new(topo(4, 2).with_subarrays(1)).plan_inner(total);
            assert!(plan.shards.iter().all(|s| s.subarray == 0));
            assert_eq!(plan.units_used(), plan.cr_units_used());
        }
    }

    #[test]
    fn weights_share_across_subarray_streams() {
        let plan = ShardPlanner::new(topo(2, 1).with_subarrays(2))
            .with_sizing(ShardSizing::Weighted(vec![3.0, 1.0]))
            .plan_rows(16);
        // Channel 0 (weight 3) holds 12 rows over its two streams,
        // channel 1 (weight 1) holds 4.
        let per_channel: Vec<usize> = (0..2)
            .map(|c| plan.on_channel(c).map(|s| s.len).sum())
            .collect();
        assert_eq!(per_channel, vec![12, 4]);
    }

    #[test]
    fn per_channel_policy_dispatches_backends() {
        let policy = BackendPolicy::PerChannel(vec![Backend::Ambit, Backend::Fcdram]);
        let plan = ShardPlanner::with_policy(topo(4, 1), policy).plan_rows(8);
        let backends: Vec<Backend> = plan.shards.iter().map(|s| s.backend).collect();
        assert_eq!(
            backends,
            vec![
                Backend::Ambit,
                Backend::Fcdram,
                Backend::Ambit,
                Backend::Fcdram
            ]
        );
    }
}
