//! Canonical signed-digit (CSD) recoding (§5.2.3).
//!
//! Integer-integer matrix multiplication bit-slices the weight matrix Z:
//! each weight decomposes into power-of-two-weighted ±1 terms, each term
//! becoming one binary mask plane in memory. CSD form guarantees no two
//! adjacent non-zero digits, so a p-bit weight needs at most ⌈(p+1)/2⌉
//! planes touched — the host scales the input by the plane's
//! power-of-two (a shift, no CPU multiplier needed) and chooses
//! increment or decrement commands by the plane's sign.

use serde::{Deserialize, Serialize};

/// One CSD term: `sign * 2^exponent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CsdTerm {
    /// Power-of-two weight.
    pub exponent: u32,
    /// True for a negative term.
    pub negative: bool,
}

/// Recodes `value` into canonical signed-digit form (least-significant
/// term first). The encoding is unique and has no two adjacent non-zero
/// digits.
#[must_use]
pub fn recode(value: i64) -> Vec<CsdTerm> {
    let mut terms = Vec::new();
    let mut v = i128::from(value);
    let mut e = 0u32;
    while v != 0 {
        if v & 1 != 0 {
            // Choose digit in {-1, +1} so the remainder is divisible
            // by 4 where possible (canonical rule: look at the next bit).
            let digit: i128 = if (v & 3) == 3 { -1 } else { 1 };
            terms.push(CsdTerm {
                exponent: e,
                negative: digit < 0,
            });
            v -= digit;
        }
        v >>= 1;
        e += 1;
    }
    terms
}

/// Reconstructs the integer a CSD term list encodes.
#[must_use]
pub fn decode(terms: &[CsdTerm]) -> i64 {
    terms
        .iter()
        .map(|t| {
            let mag = 1i64 << t.exponent;
            if t.negative {
                -mag
            } else {
                mag
            }
        })
        .sum()
}

/// Number of mask planes a `p`-bit signed weight matrix needs in the
/// worst case: `2(p − 1)` (§5.2.3) — one positive and one negative plane
/// per usable power of two.
#[must_use]
pub fn planes_for_precision(p: u32) -> u32 {
    2 * (p - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_encodings() {
        // 7 = 8 - 1.
        let t = recode(7);
        assert_eq!(decode(&t), 7);
        assert_eq!(t.len(), 2);
        // 15 = 16 - 1.
        assert_eq!(recode(15).len(), 2);
        // 5 = 4 + 1 (already sparse).
        assert_eq!(recode(5).len(), 2);
        assert_eq!(recode(0).len(), 0);
    }

    #[test]
    fn no_adjacent_nonzero_digits() {
        for v in -300i64..=300 {
            let t = recode(v);
            for w in t.windows(2) {
                assert!(
                    w[1].exponent > w[0].exponent + 1,
                    "adjacent digits in CSD of {v}: {t:?}"
                );
            }
        }
    }

    #[test]
    fn nonzero_count_bound() {
        // CSD of a p-bit value has at most ceil((p+1)/2) nonzeros.
        for v in -128i64..=127 {
            let t = recode(v);
            assert!(t.len() <= 5, "v={v} has {} terms", t.len());
        }
    }

    #[test]
    fn negative_values() {
        assert_eq!(decode(&recode(-1)), -1);
        assert_eq!(decode(&recode(-100)), -100);
        assert_eq!(decode(&recode(i64::from(i32::MIN))), i64::from(i32::MIN));
    }

    #[test]
    fn plane_budget() {
        assert_eq!(planes_for_precision(8), 14);
        assert_eq!(planes_for_precision(4), 6);
    }

    proptest! {
        #[test]
        fn roundtrip(v in -1_000_000i64..1_000_000) {
            prop_assert_eq!(decode(&recode(v)), v);
        }

        #[test]
        fn csd_is_sparser_than_binary(v in 1i64..1_000_000) {
            let csd_nonzeros = recode(v).len();
            let bin_nonzeros = v.count_ones() as usize;
            prop_assert!(csd_nonzeros <= bin_nonzeros + 1);
        }
    }
}
