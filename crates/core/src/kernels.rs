//! Bit-accurate Count2Multiply kernels (§5.2).
//!
//! These kernels run on real [`CounterBank`] row state (every mask, every
//! k-ary increment, optional fault injection), so they are the ground
//! truth for correctness tests, the examples, and the fault-accuracy
//! studies of Figs. 4 and 17. Performance projections for paper-scale
//! shapes come from [`crate::engine`] instead.
//!
//! Sign handling: counters wrap modulo their capacity, so negative
//! accumulations decode two's-complement-style (values above half the
//! capacity are negative). To keep IARM's pending flags coherent, the
//! host reorders work into an addition pass followed by a subtraction
//! pass per output row — a legal reordering since accumulation commutes
//! (§5.1's host-side routine is free to schedule commands).

use crate::csd;
use crate::matrix::{BinaryMatrix, TernaryMatrix};
use c2m_cim::{FaultModel, Row};
use c2m_ecc::protect::ProtectionKind;
use c2m_jc::bank::{BankStats, CounterBank};
use c2m_jc::cost::digits_for_capacity;
use c2m_jc::iarm::{apply_plan, IarmPlanner};

/// Configuration shared by the functional kernels.
#[derive(Debug, Clone, Copy)]
pub struct KernelConfig {
    /// Johnson-digit radix (even; the paper's evaluation uses 4).
    pub radix: usize,
    /// Binary capacity of each accumulator (the paper uses 64-bit).
    pub capacity_bits: u32,
    /// Fault-tolerance scheme.
    pub protection: ProtectionKind,
    /// Per-op CIM fault rate (0 for exact runs).
    pub fault_rate: f64,
    /// RNG seed for fault injection.
    pub seed: u64,
    /// Use IARM (delayed rippling) rather than full rippling.
    pub iarm: bool,
}

impl KernelConfig {
    /// The paper's evaluation configuration: radix 4, 64-bit capacity,
    /// no protection, fault-free, IARM on.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            radix: 4,
            capacity_bits: 64,
            protection: ProtectionKind::None,
            fault_rate: 0.0,
            seed: 0x5EED,
            iarm: true,
        }
    }

    /// Smaller counters for quick tests/examples.
    #[must_use]
    pub fn compact() -> Self {
        Self {
            capacity_bits: 24,
            ..Self::paper_default()
        }
    }

    fn digits(&self) -> usize {
        digits_for_capacity(self.radix, self.capacity_bits)
    }

    fn bank(&self, width: usize) -> CounterBank {
        CounterBank::with_faults(
            self.radix,
            self.digits(),
            width,
            FaultModel::new(self.fault_rate, self.seed),
            self.protection,
        )
    }
}

/// Result of a GEMV kernel: signed outputs plus execution statistics.
#[derive(Debug, Clone)]
pub struct GemvResult {
    /// Output vector (length N), decoded from the counters.
    pub y: Vec<i128>,
    /// Counter-bank statistics (increments, AAP ops, resolves).
    pub stats: BankStats,
}

/// One signed accumulation job: add `value` (may be negative) under
/// `mask`.
struct Job<'a> {
    value: i128,
    mask: &'a Row,
}

/// Runs a set of signed accumulation jobs on a fresh bank: additions
/// first, then subtractions (IARM-friendly ordering), then a flush.
fn run_jobs(cfg: &KernelConfig, width: usize, jobs: &[Job<'_>]) -> (CounterBank, BankStats) {
    let mut bank = cfg.bank(width);
    let capacity = bank.capacity();
    let clamp = |v: i128| -> u128 { (v.unsigned_abs()) % capacity };
    if cfg.iarm {
        let mut planner = IarmPlanner::new(cfg.radix, bank.digits());
        planner.assume_zero();
        for job in jobs.iter().filter(|j| j.value > 0) {
            let actions = planner.plan_add(clamp(job.value));
            apply_plan(&mut bank, &actions, job.mask);
        }
        for job in jobs.iter().filter(|j| j.value < 0) {
            let actions = planner.plan_sub(clamp(job.value));
            apply_plan(&mut bank, &actions, job.mask);
        }
        let actions = planner.flush();
        // The flush is mask-independent (it consumes O_next rows).
        let all = Row::ones(width);
        apply_plan(&mut bank, &actions, &all);
    } else {
        for job in jobs.iter().filter(|j| j.value > 0) {
            bank.accumulate_ripple(clamp(job.value), job.mask);
        }
        for job in jobs.iter().filter(|j| j.value < 0) {
            bank.subtract_ripple(clamp(job.value), job.mask);
        }
    }
    let stats = *bank.stats();
    (bank, stats)
}

/// Decodes a bank column as a signed value (two's-complement-style wrap).
fn decode_signed(bank: &CounterBank, col: usize) -> i128 {
    let cap = bank.capacity();
    let v = bank.get_nearest(col);
    if v > cap / 2 {
        v as i128 - cap as i128
    } else {
        v as i128
    }
}

fn collect(bank: &CounterBank, stats: BankStats) -> GemvResult {
    let y = (0..bank.width()).map(|c| decode_signed(bank, c)).collect();
    GemvResult { y, stats }
}

/// Integer-vector × binary-matrix GEMV (§5.2.1): `y = x · Z`.
///
/// # Panics
///
/// Panics if `x.len() != z.k()`.
#[must_use]
pub fn int_binary_gemv(cfg: &KernelConfig, x: &[i64], z: &BinaryMatrix) -> GemvResult {
    assert_eq!(x.len(), z.k(), "x length mismatch");
    let jobs: Vec<Job<'_>> = x
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0)
        .map(|(i, &v)| Job {
            value: i128::from(v),
            mask: z.mask(i),
        })
        .collect();
    let (bank, stats) = run_jobs(cfg, z.n(), &jobs);
    collect(&bank, stats)
}

/// Integer-vector × ternary-matrix GEMV: +1 entries accumulate `x_i`,
/// −1 entries accumulate `−x_i` (§5.2.3 with ternary weights).
///
/// # Panics
///
/// Panics if `x.len() != t.k()`.
#[must_use]
pub fn ternary_gemv(cfg: &KernelConfig, x: &[i64], t: &TernaryMatrix) -> GemvResult {
    assert_eq!(x.len(), t.k(), "x length mismatch");
    let mut jobs = Vec::new();
    for (i, &v) in x.iter().enumerate() {
        if v == 0 {
            continue;
        }
        jobs.push(Job {
            value: i128::from(v),
            mask: t.plus.mask(i),
        });
        jobs.push(Job {
            value: -i128::from(v),
            mask: t.minus.mask(i),
        });
    }
    let (bank, stats) = run_jobs(cfg, t.n(), &jobs);
    collect(&bank, stats)
}

/// Integer-vector × integer-matrix GEMV through CSD bit-slicing
/// (§5.2.3): each weight entry decomposes into ±2^e terms; each (e,
/// sign) plane is a binary mask; the host shifts the input by `e` and
/// picks increments or decrements by the sign.
///
/// # Panics
///
/// Panics if `x.len()` doesn't match the weight matrix height, or the
/// weight rows are ragged.
#[must_use]
pub fn int_int_gemv(cfg: &KernelConfig, x: &[i64], weights: &[Vec<i64>]) -> GemvResult {
    let k = weights.len();
    assert_eq!(x.len(), k, "x length mismatch");
    let n = weights[0].len();
    // Build the CSD mask planes: map (exponent, negative) -> BinaryMatrix.
    let mut planes: std::collections::BTreeMap<(u32, bool), BinaryMatrix> =
        std::collections::BTreeMap::new();
    for (r, row) in weights.iter().enumerate() {
        assert_eq!(row.len(), n, "ragged weight matrix");
        for (c, &w) in row.iter().enumerate() {
            for term in csd::recode(w) {
                planes
                    .entry((term.exponent, term.negative))
                    .or_insert_with(|| BinaryMatrix::zeros(k, n))
                    .set(r, c, true);
            }
        }
    }
    let mut jobs = Vec::new();
    for ((e, neg), plane) in &planes {
        for (i, &v) in x.iter().enumerate() {
            if v == 0 || plane.mask(i).count_ones() == 0 {
                continue;
            }
            let scaled = i128::from(v) << e;
            let value = if *neg { -scaled } else { scaled };
            jobs.push(Job {
                value,
                mask: plane.mask(i),
            });
        }
    }
    // The planes borrow from the map; materialise jobs before running.
    let (bank, stats) = run_jobs(cfg, n, &jobs);
    collect(&bank, stats)
}

/// Integer-matrix × binary-matrix GEMM (§5.2.2): rows of Y computed
/// sequentially, reusing the mask matrix Z.
#[must_use]
pub fn int_binary_gemm(
    cfg: &KernelConfig,
    x: &[Vec<i64>],
    z: &BinaryMatrix,
) -> (Vec<Vec<i128>>, BankStats) {
    let mut out = Vec::with_capacity(x.len());
    let mut total = BankStats::default();
    for row in x {
        let r = int_binary_gemv(cfg, row, z);
        total.increments += r.stats.increments;
        total.ambit_ops += r.stats.ambit_ops;
        total.resolves += r.stats.resolves;
        out.push(r.y);
    }
    (out, total)
}

/// Integer-matrix × integer-matrix GEMM via CSD bit-slicing, row by
/// row (§5.2.3 applied per §5.2.2).
///
/// # Panics
///
/// Panics if a row of `x` doesn't match the weight matrix height.
#[must_use]
pub fn int_int_gemm(
    cfg: &KernelConfig,
    x: &[Vec<i64>],
    weights: &[Vec<i64>],
) -> (Vec<Vec<i128>>, BankStats) {
    let mut out = Vec::with_capacity(x.len());
    let mut total = BankStats::default();
    for row in x {
        let r = int_int_gemv(cfg, row, weights);
        total.increments += r.stats.increments;
        total.ambit_ops += r.stats.ambit_ops;
        total.resolves += r.stats.resolves;
        out.push(r.y);
    }
    (out, total)
}

/// Integer-matrix × ternary-matrix GEMM.
#[must_use]
pub fn ternary_gemm(
    cfg: &KernelConfig,
    x: &[Vec<i64>],
    t: &TernaryMatrix,
) -> (Vec<Vec<i128>>, BankStats) {
    let mut out = Vec::with_capacity(x.len());
    let mut total = BankStats::default();
    for row in x {
        let r = ternary_gemv(cfg, row, t);
        total.increments += r.stats.increments;
        total.ambit_ops += r.stats.ambit_ops;
        total.resolves += r.stats.resolves;
        out.push(r.y);
    }
    (out, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;

    fn cfg() -> KernelConfig {
        KernelConfig::compact()
    }

    #[test]
    fn int_binary_gemv_matches_reference() {
        let z = BinaryMatrix::from_rows(&[
            vec![true, false, true, true],
            vec![false, true, true, false],
            vec![true, true, false, false],
        ]);
        let x = vec![5i64, 200, 17];
        let got = int_binary_gemv(&cfg(), &x, &z);
        let want = z.reference_gemv(&x);
        for (g, w) in got.y.iter().zip(&want) {
            assert_eq!(*g, i128::from(*w));
        }
    }

    #[test]
    fn int_binary_gemv_random_matches_reference() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        for trial in 0..5 {
            let k = 16;
            let n = 32;
            let z = BinaryMatrix::random(k, n, 0.4, &mut rng);
            let x: Vec<i64> = (0..k).map(|_| rng.gen_range(0..256)).collect();
            let got = int_binary_gemv(&cfg(), &x, &z);
            let want = z.reference_gemv(&x);
            for (c, (g, w)) in got.y.iter().zip(&want).enumerate() {
                assert_eq!(*g, i128::from(*w), "trial {trial} col {c}");
            }
        }
    }

    #[test]
    fn ternary_gemv_matches_reference_with_negatives() {
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let k = 24;
        let n = 16;
        let t = TernaryMatrix::random(k, n, 0.7, &mut rng);
        let x: Vec<i64> = (0..k).map(|_| rng.gen_range(-128..128)).collect();
        let got = ternary_gemv(&cfg(), &x, &t);
        let want = t.reference_gemv(&x);
        for (c, (g, w)) in got.y.iter().zip(&want).enumerate() {
            assert_eq!(*g, i128::from(*w), "col {c}");
        }
    }

    #[test]
    fn int_int_gemv_matches_reference() {
        let mut rng = ChaCha12Rng::seed_from_u64(13);
        let k = 8;
        let n = 12;
        let weights: Vec<Vec<i64>> = (0..k)
            .map(|_| (0..n).map(|_| rng.gen_range(-128..128)).collect())
            .collect();
        let x: Vec<i64> = (0..k).map(|_| rng.gen_range(0..64)).collect();
        let got = int_int_gemv(&cfg(), &x, &weights);
        for (c, &yc) in got.y.iter().enumerate().take(n) {
            let want: i128 = (0..k)
                .map(|r| i128::from(x[r]) * i128::from(weights[r][c]))
                .sum();
            assert_eq!(yc, want, "col {c}");
        }
    }

    #[test]
    fn gemm_matches_row_by_row_reference() {
        let mut rng = ChaCha12Rng::seed_from_u64(17);
        let z = BinaryMatrix::random(8, 10, 0.5, &mut rng);
        let x: Vec<Vec<i64>> = (0..3)
            .map(|_| (0..8).map(|_| rng.gen_range(0..100)).collect())
            .collect();
        let (y, stats) = int_binary_gemm(&cfg(), &x, &z);
        assert!(stats.ambit_ops > 0);
        for (r, row) in x.iter().enumerate() {
            let want = z.reference_gemv(row);
            for c in 0..10 {
                assert_eq!(y[r][c], i128::from(want[c]), "row {r} col {c}");
            }
        }
    }

    #[test]
    fn zero_inputs_cost_nothing() {
        // §7.2.3: Count2Multiply skips zero-value inputs entirely.
        let z = BinaryMatrix::from_rows(&[vec![true; 8], vec![true; 8]]);
        let r = int_binary_gemv(&cfg(), &[0, 0], &z);
        assert_eq!(r.stats.increments, 0);
        assert!(r.y.iter().all(|&v| v == 0));
    }

    #[test]
    fn sparser_input_costs_less() {
        let mut rng = ChaCha12Rng::seed_from_u64(23);
        let z = BinaryMatrix::random(64, 16, 0.5, &mut rng);
        let dense: Vec<i64> = (0..64).map(|_| rng.gen_range(1..256)).collect();
        let mut sparse = dense.clone();
        for v in sparse.iter_mut().step_by(2) {
            *v = 0;
        }
        let d = int_binary_gemv(&cfg(), &dense, &z);
        let s = int_binary_gemv(&cfg(), &sparse, &z);
        assert!(s.stats.ambit_ops < d.stats.ambit_ops);
    }

    #[test]
    fn iarm_config_is_cheaper_than_full_ripple() {
        let mut rng = ChaCha12Rng::seed_from_u64(29);
        let z = BinaryMatrix::random(64, 8, 0.5, &mut rng);
        let x: Vec<i64> = (0..64).map(|_| rng.gen_range(1..256)).collect();
        let with = int_binary_gemv(
            &KernelConfig {
                iarm: true,
                ..cfg()
            },
            &x,
            &z,
        );
        let without = int_binary_gemv(
            &KernelConfig {
                iarm: false,
                ..cfg()
            },
            &x,
            &z,
        );
        assert_eq!(with.y, without.y, "results must agree");
        assert!(
            with.stats.ambit_ops < without.stats.ambit_ops,
            "IARM {} should beat full ripple {}",
            with.stats.ambit_ops,
            without.stats.ambit_ops
        );
    }

    #[test]
    fn protected_kernel_costs_more_ops() {
        let z = BinaryMatrix::from_rows(&vec![vec![true; 4]; 8]);
        let x = vec![9i64; 8];
        let plain = int_binary_gemv(&cfg(), &x, &z);
        let prot = int_binary_gemv(
            &KernelConfig {
                protection: ProtectionKind::ecc_default(),
                ..cfg()
            },
            &x,
            &z,
        );
        assert_eq!(plain.y, prot.y);
        assert!(prot.stats.ambit_ops > plain.stats.ambit_ops);
    }
}
