//! Neural-network kernels on top of the Count2Multiply primitives.
//!
//! The paper's full-application results (Fig. 18) cover ternary-weight
//! convolutional networks (LeNet, VGG-13/16) and BERT's attention
//! layer. Both reduce to the matrix kernels of §5.2:
//!
//! * **Convolution** lowers to GEMM through *im2col*: each output
//!   position becomes a row of unrolled input patches, so a ternary
//!   conv layer is `im2col(x) · W` with `W` the `(C·kh·kw) × C_out`
//!   ternary weight matrix stored as ±mask rows in memory.
//! * **Attention** is a pipeline of five GEMMs — the Q/K/V projections
//!   (ternary weights), `Q·Kᵀ`, and `P·V`. The paper evaluates "all
//!   GEMM operations in the attention layer"; the softmax between
//!   `Q·Kᵀ` and `P·V` runs host-side (it is not a counting workload)
//!   and is approximated here with an integer shift-normalisation so
//!   the whole pipeline stays in integer arithmetic and is bit-exactly
//!   reproducible.

use crate::kernels::{int_int_gemm, ternary_gemm, KernelConfig};
use crate::matrix::TernaryMatrix;
use c2m_jc::bank::BankStats;

/// Geometry of a 2-D convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel height and width (square kernels in all paper models).
    pub kernel: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Stride (both dimensions).
    pub stride: usize,
    /// Zero padding (both dimensions).
    pub padding: usize,
}

impl ConvShape {
    /// Output height.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero-size output).
    #[must_use]
    pub fn out_h(&self) -> usize {
        let span = self.in_h + 2 * self.padding;
        assert!(span + 1 > self.kernel, "kernel taller than padded input");
        (span - self.kernel) / self.stride + 1
    }

    /// Output width.
    #[must_use]
    pub fn out_w(&self) -> usize {
        let span = self.in_w + 2 * self.padding;
        assert!(span + 1 > self.kernel, "kernel wider than padded input");
        (span - self.kernel) / self.stride + 1
    }

    /// GEMM reduction dimension: `C·kh·kw`.
    #[must_use]
    pub fn gemm_k(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// GEMM row count: output positions per image.
    #[must_use]
    pub fn gemm_m(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Multiply-accumulates per image.
    #[must_use]
    pub fn macs(&self) -> u64 {
        (self.gemm_m() * self.gemm_k() * self.out_channels) as u64
    }
}

/// A channels-first integer image: `data[c][y][x]`.
pub type Image = Vec<Vec<Vec<i64>>>;

/// Unrolls `input` into the im2col matrix: one row per output position,
/// `C·kh·kw` columns ordered channel-major then row-major within the
/// kernel window. Out-of-bounds taps (padding) contribute zero.
///
/// # Panics
///
/// Panics if the image does not match `shape`.
#[must_use]
pub fn im2col(input: &Image, shape: &ConvShape) -> Vec<Vec<i64>> {
    assert_eq!(input.len(), shape.in_channels, "channel count mismatch");
    for c in input {
        assert_eq!(c.len(), shape.in_h, "height mismatch");
        for row in c {
            assert_eq!(row.len(), shape.in_w, "width mismatch");
        }
    }
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut out = Vec::with_capacity(oh * ow);
    for oy in 0..oh {
        for ox in 0..ow {
            let mut patch = Vec::with_capacity(shape.gemm_k());
            for channel in input.iter().take(shape.in_channels) {
                for ky in 0..shape.kernel {
                    for kx in 0..shape.kernel {
                        let y = (oy * shape.stride + ky) as isize - shape.padding as isize;
                        let x = (ox * shape.stride + kx) as isize - shape.padding as isize;
                        let v = if y >= 0
                            && x >= 0
                            && (y as usize) < shape.in_h
                            && (x as usize) < shape.in_w
                        {
                            channel[y as usize][x as usize]
                        } else {
                            0
                        };
                        patch.push(v);
                    }
                }
            }
            out.push(patch);
        }
    }
    out
}

/// Result of a convolution through the counting path.
#[derive(Debug, Clone)]
pub struct ConvResult {
    /// Output feature map, `out[c][y][x]`.
    pub output: Vec<Vec<Vec<i128>>>,
    /// Aggregated counter-bank statistics.
    pub stats: BankStats,
}

/// Ternary-weight 2-D convolution executed as a Count2Multiply GEMM.
///
/// `weights` must be `gemm_k() × out_channels` (each column is one
/// output filter, CSD-free: ternary entries map to ±masks directly).
///
/// # Panics
///
/// Panics if image or weight dimensions do not match `shape`.
#[must_use]
pub fn conv2d_ternary(
    cfg: &KernelConfig,
    input: &Image,
    weights: &TernaryMatrix,
    shape: &ConvShape,
) -> ConvResult {
    assert_eq!(weights.k(), shape.gemm_k(), "weight rows != C·kh·kw");
    assert_eq!(weights.n(), shape.out_channels, "weight cols != C_out");
    let x = im2col(input, shape);
    let (y, stats) = ternary_gemm(cfg, &x, weights);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut output = vec![vec![vec![0i128; ow]; oh]; shape.out_channels];
    for (pos, row) in y.iter().enumerate() {
        let (oy, ox) = (pos / ow, pos % ow);
        for (c, &v) in row.iter().enumerate() {
            output[c][oy][ox] = v;
        }
    }
    ConvResult { output, stats }
}

/// Plain-integer reference convolution for validating the CIM path.
///
/// # Panics
///
/// Panics on dimension mismatches (same contract as
/// [`conv2d_ternary`]).
#[must_use]
pub fn reference_conv2d(
    input: &Image,
    weights: &TernaryMatrix,
    shape: &ConvShape,
) -> Vec<Vec<Vec<i128>>> {
    let x = im2col(input, shape);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut output = vec![vec![vec![0i128; ow]; oh]; shape.out_channels];
    for (pos, patch) in x.iter().enumerate() {
        let want = weights.reference_gemv(patch);
        let (oy, ox) = (pos / ow, pos % ow);
        for (c, &v) in want.iter().enumerate() {
            output[c][oy][ox] = i128::from(v);
        }
    }
    output
}

/// Attention-layer geometry (BERT-base per head group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttentionShape {
    /// Sequence length.
    pub seq_len: usize,
    /// Model (embedding) width.
    pub d_model: usize,
}

/// Per-stage statistics of the attention pipeline.
#[derive(Debug, Clone, Default)]
pub struct AttentionReport {
    /// Q/K/V projection GEMMs (ternary weights).
    pub projections: BankStats,
    /// `Q·Kᵀ` score GEMM (integer × integer via CSD).
    pub scores: BankStats,
    /// `P·V` context GEMM (integer × integer via CSD).
    pub context: BankStats,
}

impl AttentionReport {
    /// Total Ambit macro commands across all five GEMMs.
    #[must_use]
    pub fn total_ambit_ops(&self) -> u64 {
        self.projections.ambit_ops + self.scores.ambit_ops + self.context.ambit_ops
    }
}

fn add_stats(into: &mut BankStats, from: &BankStats) {
    into.increments += from.increments;
    into.ambit_ops += from.ambit_ops;
    into.resolves += from.resolves;
}

/// Requantises a matrix of wide accumulator outputs back to a narrow
/// integer range by an arithmetic right shift (the standard integer
/// inference trick; keeps the pipeline bit-exact and host-cheap).
fn requantize(m: &[Vec<i128>], shift: u32, clamp: i64) -> Vec<Vec<i64>> {
    m.iter()
        .map(|row| {
            row.iter()
                .map(|&v| {
                    i64::try_from(v >> shift)
                        .unwrap_or(clamp)
                        .clamp(-clamp, clamp)
                })
                .collect()
        })
        .collect()
}

/// Integer softmax proxy: shifts scores to non-negative and normalises
/// each row so the (integer) weights sum to ~`2^6`. Matches the paper's
/// treatment of softmax as host-side glue between the in-memory GEMMs.
fn shift_normalize(scores: &[Vec<i64>]) -> Vec<Vec<i64>> {
    scores
        .iter()
        .map(|row| {
            let max = row.iter().copied().max().unwrap_or(0);
            // exp proxy: x - max clamped into [-16, 0], then 2^(x/4).
            let weights: Vec<i64> = row
                .iter()
                .map(|&v| {
                    let d = ((v - max) / 4).max(-15);
                    1i64 << (15 + d).clamp(0, 15)
                })
                .collect();
            let sum: i64 = weights.iter().sum::<i64>().max(1);
            weights.iter().map(|&w| (w * 64 / sum).min(64)).collect()
        })
        .collect()
}

/// Runs one attention block: Q/K/V ternary projections, integer `Q·Kᵀ`,
/// host-side shift-softmax, and integer `P·V`.
///
/// Returns the context matrix (`seq_len × d_model`) and per-stage
/// statistics.
///
/// # Panics
///
/// Panics if `x` is not `seq_len × d_model` or the weight matrices are
/// not `d_model × d_model`.
#[must_use]
pub fn attention_block(
    cfg: &KernelConfig,
    x: &[Vec<i64>],
    wq: &TernaryMatrix,
    wk: &TernaryMatrix,
    wv: &TernaryMatrix,
    shape: &AttentionShape,
) -> (Vec<Vec<i128>>, AttentionReport) {
    assert_eq!(x.len(), shape.seq_len, "sequence length mismatch");
    for row in x {
        assert_eq!(row.len(), shape.d_model, "embedding width mismatch");
    }
    for w in [wq, wk, wv] {
        assert_eq!(w.k(), shape.d_model, "weight height mismatch");
        assert_eq!(w.n(), shape.d_model, "weight width mismatch");
    }
    let mut report = AttentionReport::default();

    // Q/K/V projections: ternary GEMMs over the shared input.
    let (q_wide, s1) = ternary_gemm(cfg, x, wq);
    let (k_wide, s2) = ternary_gemm(cfg, x, wk);
    let (v_wide, s3) = ternary_gemm(cfg, x, wv);
    add_stats(&mut report.projections, &s1);
    add_stats(&mut report.projections, &s2);
    add_stats(&mut report.projections, &s3);

    // Requantise to 8-bit activations (shift by log2(d_model)-ish).
    let shift = (shape.d_model as f64).log2() as u32;
    let q = requantize(&q_wide, shift, 127);
    let k = requantize(&k_wide, shift, 127);
    let v = requantize(&v_wide, shift, 127);

    // Scores = Q · Kᵀ (integer×integer: Kᵀ is the in-memory operand).
    let kt: Vec<Vec<i64>> = (0..shape.d_model)
        .map(|j| k.iter().map(|row| row[j]).collect())
        .collect();
    let (scores_wide, s4) = int_int_gemm(cfg, &q, &kt);
    add_stats(&mut report.scores, &s4);
    let scores = requantize(&scores_wide, shift, 255);

    // Host-side softmax proxy, then context = P · V.
    let probs = shift_normalize(&scores);
    let (context, s5) = int_int_gemm(cfg, &probs, &v);
    add_stats(&mut report.context, &s5);

    (context, report)
}

/// Bit-exact host reference of [`attention_block`] (same quantisation
/// and softmax proxy, plain integer arithmetic).
///
/// # Panics
///
/// Panics on the same dimension mismatches as [`attention_block`].
#[must_use]
pub fn reference_attention(
    x: &[Vec<i64>],
    wq: &TernaryMatrix,
    wk: &TernaryMatrix,
    wv: &TernaryMatrix,
    shape: &AttentionShape,
) -> Vec<Vec<i128>> {
    let project = |w: &TernaryMatrix| -> Vec<Vec<i128>> {
        x.iter()
            .map(|row| {
                w.reference_gemv(row)
                    .iter()
                    .map(|&v| i128::from(v))
                    .collect()
            })
            .collect()
    };
    let shift = (shape.d_model as f64).log2() as u32;
    let q = requantize(&project(wq), shift, 127);
    let k = requantize(&project(wk), shift, 127);
    let v = requantize(&project(wv), shift, 127);
    let matmul = |a: &[Vec<i64>], b: &[Vec<i64>]| -> Vec<Vec<i128>> {
        let n = b[0].len();
        a.iter()
            .map(|row| {
                (0..n)
                    .map(|j| {
                        row.iter()
                            .zip(b)
                            .map(|(&ai, brow)| i128::from(ai) * i128::from(brow[j]))
                            .sum()
                    })
                    .collect()
            })
            .collect()
    };
    let kt: Vec<Vec<i64>> = (0..shape.d_model)
        .map(|j| k.iter().map(|row| row[j]).collect())
        .collect();
    let scores = requantize(&matmul(&q, &kt), shift, 255);
    let probs = shift_normalize(&scores);
    matmul(&probs, &v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;

    fn cfg() -> KernelConfig {
        KernelConfig::compact()
    }

    fn random_image(shape: &ConvShape, rng: &mut ChaCha12Rng) -> Image {
        (0..shape.in_channels)
            .map(|_| {
                (0..shape.in_h)
                    .map(|_| (0..shape.in_w).map(|_| rng.gen_range(0..16)).collect())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn conv_shape_geometry() {
        let s = ConvShape {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            in_h: 8,
            in_w: 8,
            stride: 1,
            padding: 1,
        };
        assert_eq!(s.out_h(), 8);
        assert_eq!(s.out_w(), 8);
        assert_eq!(s.gemm_k(), 27);
        assert_eq!(s.gemm_m(), 64);
        assert_eq!(s.macs(), 64 * 27 * 8);
    }

    #[test]
    fn strided_valid_convolution_geometry() {
        let s = ConvShape {
            in_channels: 1,
            out_channels: 1,
            kernel: 5,
            in_h: 32,
            in_w: 32,
            stride: 2,
            padding: 0,
        };
        assert_eq!(s.out_h(), 14);
        assert_eq!(s.out_w(), 14);
    }

    #[test]
    fn im2col_unit_kernel_is_identity() {
        let s = ConvShape {
            in_channels: 1,
            out_channels: 1,
            kernel: 1,
            in_h: 2,
            in_w: 3,
            stride: 1,
            padding: 0,
        };
        let img: Image = vec![vec![vec![1, 2, 3], vec![4, 5, 6]]];
        let x = im2col(&img, &s);
        assert_eq!(
            x,
            vec![vec![1], vec![2], vec![3], vec![4], vec![5], vec![6]]
        );
    }

    #[test]
    fn im2col_padding_contributes_zeros() {
        let s = ConvShape {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            in_h: 2,
            in_w: 2,
            stride: 1,
            padding: 1,
        };
        let img: Image = vec![vec![vec![1, 2], vec![3, 4]]];
        let x = im2col(&img, &s);
        // Top-left position: only the bottom-right 2x2 of the window is
        // in bounds.
        assert_eq!(x[0], vec![0, 0, 0, 0, 1, 2, 0, 3, 4]);
        assert_eq!(x.len(), 4);
    }

    #[test]
    fn conv2d_matches_reference() {
        let mut rng = ChaCha12Rng::seed_from_u64(31);
        let shape = ConvShape {
            in_channels: 2,
            out_channels: 4,
            kernel: 3,
            in_h: 6,
            in_w: 6,
            stride: 1,
            padding: 1,
        };
        let img = random_image(&shape, &mut rng);
        let w = TernaryMatrix::random(shape.gemm_k(), shape.out_channels, 0.6, &mut rng);
        let got = conv2d_ternary(&cfg(), &img, &w, &shape);
        let want = reference_conv2d(&img, &w, &shape);
        assert_eq!(got.output, want);
        assert!(got.stats.ambit_ops > 0);
    }

    #[test]
    fn conv2d_strided_matches_reference() {
        let mut rng = ChaCha12Rng::seed_from_u64(37);
        let shape = ConvShape {
            in_channels: 1,
            out_channels: 3,
            kernel: 5,
            in_h: 12,
            in_w: 12,
            stride: 2,
            padding: 0,
        };
        let img = random_image(&shape, &mut rng);
        let w = TernaryMatrix::random(shape.gemm_k(), shape.out_channels, 0.5, &mut rng);
        let got = conv2d_ternary(&cfg(), &img, &w, &shape);
        assert_eq!(got.output, reference_conv2d(&img, &w, &shape));
    }

    #[test]
    fn sparse_images_cost_fewer_ops() {
        let mut rng = ChaCha12Rng::seed_from_u64(41);
        let shape = ConvShape {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            in_h: 8,
            in_w: 8,
            stride: 1,
            padding: 0,
        };
        let dense = random_image(&shape, &mut rng);
        let mut sparse = dense.clone();
        for row in &mut sparse[0] {
            for (i, v) in row.iter_mut().enumerate() {
                if i % 2 == 0 {
                    *v = 0;
                }
            }
        }
        let w = TernaryMatrix::random(shape.gemm_k(), shape.out_channels, 0.6, &mut rng);
        let d = conv2d_ternary(&cfg(), &dense, &w, &shape);
        let s = conv2d_ternary(&cfg(), &sparse, &w, &shape);
        assert!(s.stats.ambit_ops < d.stats.ambit_ops);
    }

    #[test]
    fn attention_block_matches_reference() {
        let mut rng = ChaCha12Rng::seed_from_u64(43);
        let shape = AttentionShape {
            seq_len: 6,
            d_model: 8,
        };
        let x: Vec<Vec<i64>> = (0..shape.seq_len)
            .map(|_| (0..shape.d_model).map(|_| rng.gen_range(-8..8)).collect())
            .collect();
        let wq = TernaryMatrix::random(8, 8, 0.7, &mut rng);
        let wk = TernaryMatrix::random(8, 8, 0.7, &mut rng);
        let wv = TernaryMatrix::random(8, 8, 0.7, &mut rng);
        let (got, report) = attention_block(&cfg(), &x, &wq, &wk, &wv, &shape);
        let want = reference_attention(&x, &wq, &wk, &wv, &shape);
        assert_eq!(got, want);
        assert!(report.projections.ambit_ops > 0);
        assert!(report.total_ambit_ops() >= report.projections.ambit_ops);
    }

    #[test]
    fn attention_probabilities_are_bounded() {
        let scores = vec![vec![100i64, 50, 0], vec![5, 5, 5]];
        let probs = shift_normalize(&scores);
        for row in &probs {
            for &p in row {
                assert!((0..=64).contains(&p));
            }
            assert!(row.iter().sum::<i64>() <= 64 * 3);
        }
    }

    #[test]
    #[should_panic(expected = "weight rows")]
    fn conv_dimension_mismatch_panics() {
        let shape = ConvShape {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            in_h: 4,
            in_w: 4,
            stride: 1,
            padding: 0,
        };
        let img: Image = vec![vec![vec![0; 4]; 4]];
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let w = TernaryMatrix::random(5, 1, 0.5, &mut rng);
        let _ = conv2d_ternary(&KernelConfig::compact(), &img, &w, &shape);
    }
}
