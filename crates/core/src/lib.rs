//! The Count2Multiply architecture (§5 of the paper).
//!
//! Count2Multiply executes tensor kernels as *broadcast-and-accumulate*:
//! output accumulators are multi-digit Johnson counters stored column-wise
//! in CIM subarrays, the binary/ternary/bit-sliced weight matrix is stored
//! as per-row masks, and the host converts each input element into k-ary
//! increment μPrograms that the memory controller broadcasts (Fig. 11).
//!
//! * [`csd`] — canonical-signed-digit recoding for integer-integer
//!   matrices via bit-slicing (§5.2.3).
//! * [`matrix`] — binary, ternary and integer mask-matrix types.
//! * [`kernels`] — bit-accurate functional kernels on
//!   [`c2m_jc::CounterBank`]: integer×binary GEMV/GEMM, ternary GEMV,
//!   integer×integer GEMV via CSD slices (used for correctness tests,
//!   examples and the fault-accuracy studies).
//! * [`engine`] — the analytic performance engine: IARM-planned command
//!   counts → `tRRD`/`tFAW`-scheduled latency, energy and area reports
//!   for the paper-scale shapes of Table 3 (§7.2). Built via
//!   [`C2mEngine::builder`].
//! * [`cache`] — the plan/pricing/report cache behind the engine:
//!   memoised shard plans, priced command streams and whole launch
//!   reports, bit-for-bit identical to uncached execution, shareable
//!   across engines for fleet-scale sweeps.
//! * [`store`] — the persistent cache store: snapshot a warm
//!   [`PlanCache`] to a versioned file and reload it in a later
//!   process, so sweeps and benches start warm across invocations.
//! * [`shard`] — topology-aware work partitioning: GEMM rows, GEMV
//!   inner dimension and CSD planes split over channels → ranks → banks,
//!   with per-shard backend dispatch (§4.6).
//! * [`residency`] — tenant weight residency: LRU tracking of which
//!   tenants' mask planes fit in the CIM subarrays, with tenant-switch
//!   reloads priced through the engine (the serving-layer row-conflict
//!   analogue).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cosim;
pub mod csd;
pub mod engine;
pub mod kernels;
pub mod matrix;
pub mod nn;
pub mod placement;
pub mod residency;
pub mod shard;
pub mod store;

pub use cache::{CacheConfig, PlanCache, PlanKey, ReportCache, ReportKernel, ReportKernelRef};
pub use engine::{C2mEngine, EngineBuildError, EngineBuilder, EngineConfig};
pub use matrix::{BinaryMatrix, TernaryMatrix};
pub use nn::{AttentionShape, ConvShape};
pub use placement::{CounterSpec, KernelShape, MaskEncoding, PlacementPlan};
pub use residency::{ResidencyModel, ResidencyOutcome};
pub use shard::{BackendPolicy, Shard, ShardAxis, ShardPlan, ShardPlanner, ShardSizing};
pub use store::CacheStore;
