//! Mask-matrix types stored in memory rows (Fig. 1).
//!
//! Z lives in memory as binary masks: a [`BinaryMatrix`] holds one mask
//! row per inner-dimension index `k`, each of width N (the output
//! columns). Ternary matrices keep two planes (+1 / −1); integer
//! matrices bit-slice into CSD planes in `kernels::int_gemv`.

use c2m_cim::Row;
use rand::Rng;

/// A K×N binary matrix stored as K mask rows of N columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryMatrix {
    rows: Vec<Row>,
    n: usize,
}

impl BinaryMatrix {
    /// All-zero K×N matrix.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `n` is zero.
    #[must_use]
    pub fn zeros(k: usize, n: usize) -> Self {
        assert!(k > 0 && n > 0, "matrix dimensions must be positive");
        Self {
            rows: vec![Row::zeros(n); k],
            n,
        }
    }

    /// Builds from a dense boolean table `data[k][n]`.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    #[must_use]
    pub fn from_rows(data: &[Vec<bool>]) -> Self {
        assert!(!data.is_empty(), "need at least one row");
        let n = data[0].len();
        let rows = data
            .iter()
            .map(|r| {
                assert_eq!(r.len(), n, "ragged matrix");
                Row::from_bits(r.iter().copied())
            })
            .collect();
        Self { rows, n }
    }

    /// Random matrix with the given density of ones.
    #[must_use]
    pub fn random(k: usize, n: usize, density: f64, rng: &mut impl Rng) -> Self {
        let mut m = Self::zeros(k, n);
        for r in 0..k {
            for c in 0..n {
                if rng.gen_bool(density) {
                    m.rows[r].set(c, true);
                }
            }
        }
        m
    }

    /// Inner dimension K (number of mask rows).
    #[must_use]
    pub fn k(&self) -> usize {
        self.rows.len()
    }

    /// Output width N.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Mask row for inner index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    #[must_use]
    pub fn mask(&self, i: usize) -> &Row {
        &self.rows[i]
    }

    /// Entry accessor.
    #[must_use]
    pub fn get(&self, k: usize, n: usize) -> bool {
        self.rows[k].get(n)
    }

    /// Sets an entry.
    pub fn set(&mut self, k: usize, n: usize, v: bool) {
        self.rows[k].set(n, v);
    }

    /// Reference GEMV on the host: `y[n] = Σ_k x[k]·z[k][n]`.
    #[must_use]
    pub fn reference_gemv(&self, x: &[i64]) -> Vec<i64> {
        assert_eq!(x.len(), self.k(), "x length mismatch");
        let mut y = vec![0i64; self.n];
        for (i, &xi) in x.iter().enumerate() {
            for (c, yc) in y.iter_mut().enumerate() {
                if self.rows[i].get(c) {
                    *yc += xi;
                }
            }
        }
        y
    }
}

/// A ternary K×N matrix: separate +1 and −1 planes (mutually exclusive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TernaryMatrix {
    /// Plane of +1 entries.
    pub plus: BinaryMatrix,
    /// Plane of −1 entries.
    pub minus: BinaryMatrix,
}

impl TernaryMatrix {
    /// Builds from a dense table of {-1, 0, +1}.
    ///
    /// # Panics
    ///
    /// Panics on ragged input or entries outside {-1, 0, 1}.
    #[must_use]
    pub fn from_rows(data: &[Vec<i8>]) -> Self {
        let k = data.len();
        let n = data[0].len();
        let mut plus = BinaryMatrix::zeros(k, n);
        let mut minus = BinaryMatrix::zeros(k, n);
        for (r, row) in data.iter().enumerate() {
            assert_eq!(row.len(), n, "ragged matrix");
            for (c, &v) in row.iter().enumerate() {
                match v {
                    1 => plus.set(r, c, true),
                    -1 => minus.set(r, c, true),
                    0 => {}
                    // c2m-lint: allow(unwrap-in-lib, reason = "documented panic contract: from_rows requires entries in {-1, 0, 1}")
                    other => panic!("ternary entry out of range: {other}"),
                }
            }
        }
        Self { plus, minus }
    }

    /// Random ternary matrix: each entry +1/−1 with probability
    /// `density/2` each.
    #[must_use]
    pub fn random(k: usize, n: usize, density: f64, rng: &mut impl Rng) -> Self {
        let mut plus = BinaryMatrix::zeros(k, n);
        let mut minus = BinaryMatrix::zeros(k, n);
        for r in 0..k {
            for c in 0..n {
                if rng.gen_bool(density) {
                    if rng.gen_bool(0.5) {
                        plus.set(r, c, true);
                    } else {
                        minus.set(r, c, true);
                    }
                }
            }
        }
        Self { plus, minus }
    }

    /// Inner dimension K.
    #[must_use]
    pub fn k(&self) -> usize {
        self.plus.k()
    }

    /// Output width N.
    #[must_use]
    pub fn n(&self) -> usize {
        self.plus.n()
    }

    /// Entry accessor (−1, 0 or +1).
    #[must_use]
    pub fn get(&self, k: usize, n: usize) -> i8 {
        match (self.plus.get(k, n), self.minus.get(k, n)) {
            (true, false) => 1,
            (false, true) => -1,
            (false, false) => 0,
            (true, true) => unreachable!("overlapping ternary planes"),
        }
    }

    /// Reference GEMV on the host.
    #[must_use]
    pub fn reference_gemv(&self, x: &[i64]) -> Vec<i64> {
        let p = self.plus.reference_gemv(x);
        let m = self.minus.reference_gemv(x);
        p.into_iter().zip(m).map(|(a, b)| a - b).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn binary_roundtrip_and_reference() {
        let m = BinaryMatrix::from_rows(&[vec![true, false, true], vec![false, true, true]]);
        assert_eq!(m.k(), 2);
        assert_eq!(m.n(), 3);
        assert_eq!(m.reference_gemv(&[10, 1]), vec![10, 1, 11]);
    }

    #[test]
    fn ternary_reference() {
        let t = TernaryMatrix::from_rows(&[vec![1, -1, 0], vec![-1, 1, 1]]);
        assert_eq!(t.get(0, 0), 1);
        assert_eq!(t.get(0, 1), -1);
        assert_eq!(t.get(1, 2), 1);
        assert_eq!(t.reference_gemv(&[3, 5]), vec![3 - 5, -3 + 5, 5]);
    }

    #[test]
    fn random_density() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let m = BinaryMatrix::random(100, 100, 0.3, &mut rng);
        let ones: usize = (0..100).map(|k| m.mask(k).count_ones()).sum();
        let density = ones as f64 / 10_000.0;
        assert!((density - 0.3).abs() < 0.05, "density {density}");
    }

    #[test]
    #[should_panic(expected = "ternary entry")]
    fn ternary_rejects_out_of_range() {
        let _ = TernaryMatrix::from_rows(&[vec![2]]);
    }
}
