//! Analytic performance engine for paper-scale workloads (§5.1, §7).
//!
//! The functional kernels in [`crate::kernels`] bit-simulate every row
//! operation, which is exact but cannot run the Table 3 shapes (tens of
//! billions of MACs). This engine projects performance the way the
//! paper's simulator does: the host-side routine (digit unpacking + IARM
//! planning) is executed *for real* over the input values to obtain the
//! exact broadcast-command count, and the command stream is then priced
//! through the `c2m-dram` scheduler's steady-state `tRRD`/`tFAW` model,
//! energy model and area model.
//!
//! Work partitioning (§5.2.2, §7.2.1): the inner dimension K is split
//! across the X banks, each bank accumulating partial sums into its own
//! counter slice; partial results merge with log₂(X) rounds of
//! counter-to-counter addition (Algorithm 2). Output rows of a GEMM are
//! computed sequentially, paying a counter copy-out per row.
//!
//! Beyond the paper's single-channel setup, the engine shards kernels
//! over the full channel×rank topology of the configured
//! [`DramConfig`] (see [`crate::shard`]): each shard's command stream is
//! projected independently (its own host-side planning pass), channels
//! run concurrently (elapsed = max over channels; commands and energy
//! sum), GEMV K-shards pay cross-unit partial-sum merge rounds, and
//! multi-unit GEMMs pay a host gather of the finished outputs. Shards
//! can dispatch to heterogeneous CIM backends (§4.6) via a
//! [`BackendPolicy`]. With `channels == 1 && ranks == 1` and the default
//! Ambit policy every path reduces bit-for-bit to the paper's
//! single-channel model.

use crate::cache::{CacheConfig, PlanCache, PlanKey, ReportKernelRef};
use crate::shard::{BackendPolicy, ShardAxis, ShardPlan, ShardPlanner, ShardSizing};
use crate::store::CacheStore;
use c2m_cim::Backend;
use c2m_dram::scheduler::{
    salp_stream_cap, steady_state_aap_interval_ranked, steady_state_aap_interval_salp,
};
use c2m_dram::{
    AreaModel, CacheCounters, CommandKind, CommandStats, DramConfig, EnergyLedger, EnergyModel,
    ExecutionReport, TimingParams, Topology,
};
use c2m_ecc::protect::{ProtectionAnalysis, ProtectionKind};
use c2m_jc::codec::JohnsonCode;
use c2m_jc::cost::digits_for_capacity;
use c2m_jc::iarm::IarmPlanner;
use c2m_trace::{TraceEvent, TraceSink, Track};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Trace hook shared by an engine and its clones: the sink plus a
/// synthetic monotonic clock that tiles launch spans sequentially.
///
/// The engine prices kernels analytically — a launch has a *duration*
/// (`elapsed_ns`) but no wall-clock start — so the handle assigns each
/// launch the next free slot on a shared core timeline. Trace
/// timestamps are therefore launch-order, not aligned with any serving
/// timeline. The clock is `f64` bits in an atomic so concurrent clones
/// reserve disjoint slots without locking.
#[derive(Debug, Clone)]
struct TraceHandle {
    sink: Arc<dyn TraceSink>,
    clock: Arc<AtomicU64>,
}

impl TraceHandle {
    fn new(sink: Arc<dyn TraceSink>) -> Self {
        Self {
            sink,
            clock: Arc::new(AtomicU64::new(0.0f64.to_bits())),
        }
    }

    /// Reserves a `dur_ns`-long slot on the core timeline, returning
    /// its start instant.
    fn advance(&self, dur_ns: f64) -> f64 {
        loop {
            let cur = self.clock.load(Ordering::Relaxed);
            let t0 = f64::from_bits(cur);
            let next = (t0 + dur_ns).to_bits();
            if self
                .clock
                .compare_exchange(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return t0;
            }
        }
    }

    /// The current frontier of the core timeline.
    fn now(&self) -> f64 {
        f64::from_bits(self.clock.load(Ordering::Relaxed))
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Johnson-digit radix (the paper's evaluation uses 4).
    pub radix: usize,
    /// Accumulator capacity in bits (the paper uses 64).
    pub capacity_bits: u32,
    /// Banks computing in parallel (C2M:X).
    pub banks: usize,
    /// Concurrent SALP streams per bank the engine shards over
    /// (PRADA-style subarray-level parallelism). 1 — the default and the
    /// paper's setup — disables the subarray tier and reproduces the
    /// pre-SALP model bit for bit. Values above the part's
    /// serialization-floor cap
    /// ([`c2m_dram::scheduler::salp_stream_cap`]) or the config's
    /// `subarrays_per_bank` are clamped/rejected at build time.
    pub subarrays: usize,
    /// Fault-tolerance scheme (affects ops per increment and the
    /// recompute overhead).
    pub protection: ProtectionKind,
    /// Assumed inherent CIM fault rate (drives the detected-fault
    /// recompute overhead when protection is ECC; §7.3.2 uses 10⁻⁴).
    pub fault_rate: f64,
    /// ECC recompute granularity in bits (§7.3.2 prices recomputation
    /// per 512-bit row segment).
    pub ecc_row_bits: usize,
    /// Use IARM planning (otherwise full rippling).
    pub iarm: bool,
    /// DRAM geometry.
    pub dram: DramConfig,
    /// Timing parameters.
    pub timing: TimingParams,
    /// Energy model.
    pub energy: EnergyModel,
    /// Area model.
    pub area: AreaModel,
}

impl EngineConfig {
    /// The paper's C2M:X configuration: radix 4, 64-bit capacity,
    /// unprotected, IARM on.
    #[must_use]
    pub fn c2m(banks: usize) -> Self {
        Self {
            radix: 4,
            capacity_bits: 64,
            banks,
            subarrays: 1,
            protection: ProtectionKind::None,
            fault_rate: 0.0,
            ecc_row_bits: 512,
            iarm: true,
            dram: DramConfig::ddr5_4400(),
            timing: TimingParams::ddr5_4400(),
            energy: EnergyModel::ddr5_4400(),
            area: AreaModel::ddr5_4400(),
        }
    }

    /// Protected configuration of §7.3.2: ECC with one extra FR round
    /// (2 FR checks) at an inherent fault rate of 10⁻⁴.
    #[must_use]
    pub fn c2m_protected(banks: usize) -> Self {
        Self {
            protection: ProtectionKind::Ecc {
                fr_checks: 2,
                fuse_inverted_feedback: false,
            },
            fault_rate: 1e-4,
            ..Self::c2m(banks)
        }
    }
}

/// A validation failure from [`EngineBuilder::try_build`].
///
/// Each variant carries a human-readable message naming the offending
/// value; [`EngineBuilder::build`] panics with the same message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineBuildError {
    /// The Johnson-digit radix is not an even number ≥ 2.
    InvalidRadix(String),
    /// The DRAM geometry is degenerate (zero channels/ranks/banks, or
    /// more compute banks than the rank has).
    InvalidGeometry(String),
    /// The backend dispatch policy is unusable (empty per-channel list).
    InvalidBackends(String),
    /// The shard sizing weights are unusable (empty, non-positive, or
    /// non-finite).
    InvalidSizing(String),
}

impl fmt::Display for EngineBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRadix(m)
            | Self::InvalidGeometry(m)
            | Self::InvalidBackends(m)
            | Self::InvalidSizing(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for EngineBuildError {}

/// Where a freshly built engine gets its plan/pricing cache from.
#[derive(Debug, Clone)]
enum CacheChoice {
    /// Build a private [`PlanCache`] with this configuration.
    Private(CacheConfig),
    /// Share an existing cache handle (e.g. across a sweep's engines).
    Shared(Arc<PlanCache>),
    /// No caching: every kernel call re-plans and re-prices from
    /// scratch (the seed behaviour).
    Disabled,
}

/// Typed builder for [`C2mEngine`] — the one construction path.
///
/// Collects the configuration, backend policy, shard sizing and cache
/// choice, then validates everything at [`Self::build`] /
/// [`Self::try_build`] so the kernel methods cannot fail later:
///
/// ```
/// use c2m_core::{C2mEngine, EngineConfig};
/// let engine = C2mEngine::builder(EngineConfig::c2m(16)).build();
/// assert_eq!(engine.config().banks, 16);
/// ```
///
/// Engines cache by default (a private [`PlanCache`] with
/// [`CacheConfig::default`]); pass [`Self::shared_cache`] to share one
/// cache across many engines (the fleet-sweep fast path) or
/// [`Self::no_cache`] to reproduce the seed's uncached execution.
/// Caching is observational only — cached and uncached engines produce
/// bit-for-bit identical reports.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    cfg: EngineConfig,
    backends: BackendPolicy,
    sizing: ShardSizing,
    balanced: bool,
    cache: CacheChoice,
    cache_path: Option<PathBuf>,
    trace: Option<Arc<dyn TraceSink>>,
}

impl EngineBuilder {
    /// Sets the per-shard backend dispatch policy (§4.6 heterogeneous
    /// execution). Default: uniform Ambit, the paper's substrate.
    #[must_use]
    pub fn backends(mut self, backends: BackendPolicy) -> Self {
        self.backends = backends;
        self
    }

    /// Sets the shard-length sizing policy (see [`ShardSizing`]).
    /// Default: [`ShardSizing::Even`], the seed behaviour.
    #[must_use]
    pub fn sizing(mut self, sizing: ShardSizing) -> Self {
        self.sizing = sizing;
        self.balanced = false;
        self
    }

    /// Derives the sizing from the backend policy at build time:
    /// each channel receives work inversely proportional to its
    /// backend's per-increment cost, equalising per-channel makespan on
    /// mixed-backend modules (equivalent to feeding
    /// [`C2mEngine::heterogeneity_weights`] back into
    /// [`Self::sizing`]).
    #[must_use]
    pub fn balanced_sizing(mut self) -> Self {
        self.balanced = true;
        self
    }

    /// Uses a private plan/pricing cache with the given configuration.
    #[must_use]
    pub fn cache(mut self, cfg: CacheConfig) -> Self {
        self.cache = CacheChoice::Private(cfg);
        self
    }

    /// Shares an existing plan/pricing cache. Engines sharing a handle
    /// reuse each other's shard plans and priced streams — the fast
    /// path for sweeps that rebuild engines per configuration point.
    #[must_use]
    pub fn shared_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = CacheChoice::Shared(cache);
        self
    }

    /// Disables caching: every kernel call re-plans and re-prices from
    /// scratch (the seed behaviour; useful for cache-equivalence
    /// testing).
    #[must_use]
    pub fn no_cache(mut self) -> Self {
        self.cache = CacheChoice::Disabled;
        self
    }

    /// Backs the engine's cache with a persistent store file: at build
    /// time the file is loaded through
    /// [`CacheStore::load_into`](crate::store::CacheStore::load_into)
    /// (a missing, stale, or corrupt file is silently treated as cold),
    /// and [`C2mEngine::save_cache`] writes the warmed contents back.
    /// Applies to whichever cache the engine ends up with (private or
    /// shared); a no-op under [`Self::no_cache`].
    #[must_use]
    pub fn cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// Attaches a trace sink: every kernel launch emits launch /
    /// per-channel shard-exec / merge-round spans plus cache counter
    /// samples on the core tracks. Tracing is observational only — a
    /// traced engine's reports are bit-for-bit identical to an untraced
    /// one's. Default: no sink (and no per-launch overhead beyond one
    /// branch).
    #[must_use]
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Validates and builds the engine.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineBuildError`] on an odd or sub-2 radix,
    /// degenerate DRAM geometry (zero channels/ranks/banks or more
    /// compute banks than the rank has), an empty per-channel backend
    /// list, or empty/non-positive/non-finite sizing weights.
    pub fn try_build(self) -> Result<C2mEngine, EngineBuildError> {
        let cfg = self.cfg;
        if cfg.radix < 2 || !cfg.radix.is_multiple_of(2) {
            return Err(EngineBuildError::InvalidRadix(format!(
                "Johnson-digit radix must be an even number >= 2, got {}",
                cfg.radix
            )));
        }
        if cfg.dram.channels == 0 || cfg.dram.ranks == 0 {
            return Err(EngineBuildError::InvalidGeometry(format!(
                "degenerate DRAM geometry: {} channels x {} ranks",
                cfg.dram.channels, cfg.dram.ranks
            )));
        }
        if cfg.banks == 0 {
            return Err(EngineBuildError::InvalidGeometry(
                "at least one compute bank is required".into(),
            ));
        }
        if cfg.banks > cfg.dram.banks {
            return Err(EngineBuildError::InvalidGeometry(format!(
                "{} compute banks exceed the {} banks per rank",
                cfg.banks, cfg.dram.banks
            )));
        }
        if cfg.subarrays == 0 {
            return Err(EngineBuildError::InvalidGeometry(
                "at least one SALP stream (subarray) per bank is required".into(),
            ));
        }
        if cfg.subarrays > cfg.dram.subarrays_per_bank {
            return Err(EngineBuildError::InvalidGeometry(format!(
                "{} SALP streams exceed the {} subarrays per bank",
                cfg.subarrays, cfg.dram.subarrays_per_bank
            )));
        }
        if let BackendPolicy::PerChannel(list) = &self.backends {
            if list.is_empty() {
                return Err(EngineBuildError::InvalidBackends(
                    "per-channel backend policy needs at least one backend".into(),
                ));
            }
        }
        if let ShardSizing::Weighted(w) = &self.sizing {
            if w.is_empty() {
                return Err(EngineBuildError::InvalidSizing(
                    "shard sizing weights must be non-empty".into(),
                ));
            }
            if !w.iter().all(|&x| x.is_finite() && x > 0.0) {
                return Err(EngineBuildError::InvalidSizing(format!(
                    "shard sizing weights must be positive and finite, got {w:?}"
                )));
            }
        }
        let code = JohnsonCode::for_radix(cfg.radix);
        let digits = digits_for_capacity(cfg.radix, cfg.capacity_bits);
        let cache = match self.cache {
            CacheChoice::Private(c) => Some(Arc::new(PlanCache::new(c))),
            CacheChoice::Shared(h) => Some(h),
            CacheChoice::Disabled => None,
        };
        if let (Some(path), Some(c)) = (&self.cache_path, &cache) {
            // Warm start from the persistent store; any guard failure
            // (missing file, version or fingerprint-scheme mismatch,
            // corruption) just leaves the cache cold.
            let _ = CacheStore::load_into(path, c);
        }
        let mut engine = C2mEngine {
            cfg,
            code,
            digits,
            backends: self.backends,
            sizing: self.sizing,
            cache,
            cache_path: self.cache_path,
            trace: self.trace.map(TraceHandle::new),
        };
        if self.balanced {
            // Backend factors are positive and finite, so the derived
            // weights need no further validation.
            engine.sizing = engine.heterogeneity_weights();
        }
        Ok(engine)
    }

    /// Validates and builds the engine, panicking on invalid input.
    ///
    /// # Panics
    ///
    /// Panics with the [`EngineBuildError`] message on any validation
    /// failure — see [`Self::try_build`] for the exact conditions.
    #[must_use]
    pub fn build(self) -> C2mEngine {
        match self.try_build() {
            Ok(engine) => engine,
            // c2m-lint: allow(unwrap-in-lib, reason = "documented panic contract of build(); try_build is the fallible API")
            Err(e) => panic!("invalid engine configuration: {e}"),
        }
    }
}

/// The analytic Count2Multiply engine.
///
/// Construct via [`C2mEngine::builder`]. Cloning an engine shares its
/// plan/pricing cache handle (an [`Arc<PlanCache>`]), so clones warm
/// each other's cache.
#[derive(Debug, Clone)]
pub struct C2mEngine {
    cfg: EngineConfig,
    code: JohnsonCode,
    digits: usize,
    backends: BackendPolicy,
    sizing: ShardSizing,
    cache: Option<Arc<PlanCache>>,
    /// Persistent-store path from [`EngineBuilder::cache_path`], if any.
    cache_path: Option<PathBuf>,
    /// Optional trace hook (shared clock across clones). Observational
    /// only — never read by any pricing path.
    trace: Option<TraceHandle>,
}

impl C2mEngine {
    /// Starts a builder over `cfg` — the one construction path.
    /// Defaults: uniform Ambit backends, even shard sizing, a private
    /// plan/pricing cache with [`CacheConfig::default`].
    #[must_use]
    pub fn builder(cfg: EngineConfig) -> EngineBuilder {
        EngineBuilder {
            cfg,
            backends: BackendPolicy::default(),
            sizing: ShardSizing::default(),
            balanced: false,
            cache: CacheChoice::Private(CacheConfig::default()),
            cache_path: None,
            trace: None,
        }
    }

    /// Attaches a trace sink to an already-built engine (fresh launch
    /// clock) — the serving runtime uses this to thread its sink down
    /// into the engine it was handed. See [`EngineBuilder::trace`].
    pub fn set_trace(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = Some(TraceHandle::new(sink));
    }

    /// Creates an engine from a configuration, dispatching every shard
    /// to Ambit (the paper's substrate).
    ///
    /// # Panics
    ///
    /// Panics on invalid radix/capacity combinations.
    #[deprecated(since = "0.6.0", note = "use `C2mEngine::builder(cfg).build()`")]
    #[must_use]
    pub fn new(cfg: EngineConfig) -> Self {
        Self::builder(cfg).build()
    }

    /// Creates an engine with an explicit per-shard backend dispatch
    /// policy (§4.6 heterogeneous execution).
    ///
    /// # Panics
    ///
    /// Panics on invalid radix/capacity combinations, and on degenerate
    /// DRAM geometry (zero channels/ranks, or more compute banks than
    /// the rank has) — the same checks as [`Topology::from_config`],
    /// applied at construction so the kernel methods cannot fail later.
    #[deprecated(
        since = "0.6.0",
        note = "use `C2mEngine::builder(cfg).backends(policy).build()`"
    )]
    #[must_use]
    pub fn with_backends(cfg: EngineConfig, backends: BackendPolicy) -> Self {
        Self::builder(cfg).backends(backends).build()
    }

    /// Replaces the shard-length sizing policy (see [`ShardSizing`]).
    /// The default [`ShardSizing::Even`] is the seed behaviour;
    /// [`Self::heterogeneity_weights`] builds the weighted sizing that
    /// equalises per-channel makespan under this engine's backend
    /// policy.
    ///
    /// # Panics
    ///
    /// Panics on an empty or non-positive weight vector.
    #[deprecated(
        since = "0.6.0",
        note = "use `C2mEngine::builder(cfg).sizing(s).build()` (or `.balanced_sizing()`)"
    )]
    #[must_use]
    pub fn with_shard_sizing(mut self, sizing: ShardSizing) -> Self {
        // Validate eagerly through the planner's checks.
        let _ = ShardPlanner::new(self.topology()).with_sizing(sizing.clone());
        self.sizing = sizing;
        self
    }

    /// The shard-length sizing policy in force.
    #[must_use]
    pub fn shard_sizing(&self) -> &ShardSizing {
        &self.sizing
    }

    /// Per-channel throughput weights under the engine's backend policy:
    /// channel `c` weighs `1 / backend_factor(backend_for(c))`, so a
    /// channel whose increments cost `f×` Ambit's receives `1/f` of the
    /// work and every channel finishes its shard at the same time.
    /// Feeding this to [`Self::with_shard_sizing`] rebalances
    /// mixed-backend topologies; on a uniform policy it reduces to the
    /// even split.
    #[must_use]
    pub fn heterogeneity_weights(&self) -> ShardSizing {
        let weights: Vec<f64> = (0..self.cfg.dram.channels)
            .map(|c| 1.0 / self.backend_factor(self.backends.backend_for(c)))
            .collect();
        ShardSizing::Weighted(weights)
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The backend dispatch policy in force.
    #[must_use]
    pub fn backend_policy(&self) -> &BackendPolicy {
        &self.backends
    }

    /// The compute topology the engine shards over: the DRAM config's
    /// channels × ranks, with `banks` CIM banks per rank and
    /// [`Self::salp_streams`] concurrent subarray streams per bank.
    ///
    /// The *effective* (clamped) stream count is baked into the
    /// topology, so [`Topology::fingerprint`] — and hence every
    /// [`PlanKey`] — covers the subarray sizing exactly.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's geometry is degenerate (zero
    /// channels/ranks) or `banks` exceeds the banks per rank.
    #[must_use]
    pub fn topology(&self) -> Topology {
        let base = Topology::from_config(&self.cfg.dram, self.cfg.banks);
        if self.cfg.subarrays <= 1 {
            return base;
        }
        base.with_subarrays(self.cfg.subarrays.min(self.salp_stream_limit()))
    }

    /// The serialization-floor cap on concurrent SALP streams for this
    /// engine's timing and geometry: granting more streams than this
    /// cannot raise throughput (the shared-bank
    /// [`TimingParams::t_subarray_gate`] slot is already saturated), and
    /// *would* strand partial sums in extra merge rounds, so
    /// [`Self::topology`] clamps the configured `subarrays` here.
    #[must_use]
    pub fn salp_stream_limit(&self) -> usize {
        salp_stream_cap(&self.cfg.timing, self.cfg.banks, self.cfg.dram.ranks)
    }

    /// Effective concurrent SALP streams per bank after clamping the
    /// configured `subarrays` to [`Self::salp_stream_limit`]. 1 on a
    /// pre-SALP configuration.
    #[must_use]
    pub fn salp_streams(&self) -> usize {
        self.topology().subarrays
    }

    /// A shard planner over [`Self::topology`] with this engine's
    /// backend policy and sizing.
    #[must_use]
    pub fn planner(&self) -> ShardPlanner {
        ShardPlanner::with_policy(self.topology(), self.backends.clone())
            .with_sizing(self.sizing.clone())
    }

    /// Digits per accumulator.
    #[must_use]
    pub fn digits(&self) -> usize {
        self.digits
    }

    /// AAP/AP macro commands for one k-ary increment under the configured
    /// protection, including the expected detected-fault recompute
    /// overhead (§7.3.2's ~19.6 %).
    #[must_use]
    pub fn ops_per_sequence(&self) -> f64 {
        let base = self.cfg.protection.ambit_increment_ops(self.code.bits()) as f64;
        match self.cfg.protection {
            ProtectionKind::Ecc { fr_checks, .. } if self.cfg.fault_rate > 0.0 => {
                let a = ProtectionAnalysis {
                    fault_rate: self.cfg.fault_rate,
                    fr_checks,
                };
                base * (1.0 + a.expected_recomputes_per_row(self.cfg.ecc_row_bits))
            }
            _ => base,
        }
    }

    /// Broadcast command *sequences* needed to accumulate the signed
    /// input stream `xs` (zeros skipped, §7.2.3). Runs the real host-side
    /// routine: digit unpacking plus IARM planning (or the oblivious
    /// full-ripple chain when IARM is off).
    #[must_use]
    pub fn sequences_for_stream(&self, xs: &[i64]) -> u64 {
        if self.cfg.iarm {
            let mut planner = IarmPlanner::new(self.cfg.radix, self.digits);
            planner.assume_zero();
            let mut seqs = 0u64;
            // Addition pass, then subtraction pass (host reordering).
            for &x in xs.iter().filter(|&&x| x > 0) {
                seqs += planner.plan_add(x.unsigned_abs() as u128).len() as u64;
            }
            for &x in xs.iter().filter(|&&x| x < 0) {
                seqs += planner.plan_sub(x.unsigned_abs() as u128).len() as u64;
            }
            seqs += planner.flush().len() as u64;
            seqs
        } else {
            // k-ary with per-increment carry rippling (§4.5.1): each
            // non-zero digit pays its increment plus one rippling
            // command sequence — the paper's 2·(7n+7)-per-digit model.
            let mut seqs = 0u64;
            let r = self.cfg.radix as u128;
            for &x in xs.iter().filter(|&&x| x != 0) {
                let mut v = x.unsigned_abs() as u128;
                while v != 0 {
                    if !v.is_multiple_of(r) {
                        seqs += 2;
                    }
                    v /= r;
                }
            }
            seqs
        }
    }

    /// Effective AAP count for accumulating `xs` into one counter slice.
    #[must_use]
    pub fn ops_for_stream(&self, xs: &[i64]) -> f64 {
        self.sequences_for_stream(xs) as f64 * self.ops_per_sequence()
    }

    /// The engine's plan/pricing cache handle, if caching is enabled.
    /// Hand this to [`EngineBuilder::shared_cache`] to warm another
    /// engine from this one's entries.
    #[must_use]
    pub fn cache(&self) -> Option<&Arc<PlanCache>> {
        self.cache.as_ref()
    }

    /// Cumulative cache hit/miss tallies (all zeros when caching is
    /// disabled). Every [`ExecutionReport`] carries a snapshot of these
    /// in its `cache` field.
    #[must_use]
    pub fn cache_stats(&self) -> CacheCounters {
        self.cache
            .as_ref()
            .map_or_else(CacheCounters::default, |c| c.counters())
    }

    /// Writes the cache contents to the [`EngineBuilder::cache_path`]
    /// store file, returning `true` if a file was written (`false` when
    /// the engine has no path or no cache).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the store file cannot be written.
    pub fn save_cache(&self) -> std::io::Result<bool> {
        match (&self.cache_path, &self.cache) {
            (Some(path), Some(c)) => CacheStore::save(path, c).map(|()| true),
            _ => Ok(false),
        }
    }

    /// The report-cache key words of this engine: an **injective**
    /// bit-exact word encoding of everything a launch's report depends
    /// on besides the kernel inputs — every [`EngineConfig`] field
    /// (enums as tag + payload, floats as IEEE bit patterns,
    /// length-prefixed variable sections) plus the backend policy and
    /// the resolved shard sizing. Two engines share a word vector only
    /// if every field is equal, so a [`ReportCache`](crate::cache::ReportCache)
    /// entry keyed on these words can never be served across differing
    /// configurations. Field coverage is enforced by the
    /// `cache-key-completeness` lint.
    #[must_use]
    pub fn report_key_words(&self) -> Vec<u64> {
        fn backend_code(b: Backend) -> u64 {
            match b {
                Backend::Ambit => 0,
                Backend::Fcdram => 1,
                Backend::Pinatubo => 2,
                Backend::Magic => 3,
            }
        }
        let cfg = &self.cfg;
        let mut w = Vec::with_capacity(48);
        w.push(cfg.radix as u64);
        w.push(u64::from(cfg.capacity_bits));
        w.push(cfg.banks as u64);
        w.push(cfg.subarrays as u64);
        match cfg.protection {
            ProtectionKind::None => w.extend([0, 0, 0]),
            ProtectionKind::Tmr => w.extend([1, 0, 0]),
            ProtectionKind::Ecc {
                fr_checks,
                fuse_inverted_feedback,
            } => w.extend([2, u64::from(fr_checks), u64::from(fuse_inverted_feedback)]),
        }
        w.push(cfg.fault_rate.to_bits());
        w.push(cfg.ecc_row_bits as u64);
        w.push(u64::from(cfg.iarm));
        let d = &cfg.dram;
        w.extend([
            d.channels as u64,
            d.ranks as u64,
            d.chips as u64,
            d.ecc_chips as u64,
            d.banks as u64,
            d.subarrays_per_bank as u64,
            d.rows_per_subarray as u64,
            d.row_bytes_per_chip as u64,
            d.chip_gbit as u64,
        ]);
        let t = &cfg.timing;
        w.extend([
            t.t_ck.to_bits(),
            t.t_rcd.to_bits(),
            t.t_ras.to_bits(),
            t.t_rp.to_bits(),
            t.t_rrd.to_bits(),
            t.t_faw.to_bits(),
            t.t_ccd.to_bits(),
            t.t_burst.to_bits(),
            t.t_rank_switch.to_bits(),
            t.t_subarray_gate.to_bits(),
        ]);
        let e = &cfg.energy;
        w.extend([
            e.e_act_pre_nj.to_bits(),
            e.e_aap_nj.to_bits(),
            e.e_ap_nj.to_bits(),
            e.e_rd_nj.to_bits(),
            e.e_wr_nj.to_bits(),
            e.p_static_w.to_bits(),
        ]);
        let a = &cfg.area;
        w.extend([a.chip_area_mm2.to_bits(), a.cim_overhead_frac.to_bits()]);
        match &self.backends {
            BackendPolicy::Uniform(b) => w.extend([0, backend_code(*b)]),
            BackendPolicy::PerChannel(list) => {
                w.push(1);
                w.push(list.len() as u64);
                w.extend(list.iter().map(|&b| backend_code(b)));
            }
        }
        match &self.sizing {
            ShardSizing::Even => w.push(0),
            // Weights are validated non-empty at build, so the length
            // prefix (≥ 1) never collides with the `Even` tag.
            ShardSizing::Weighted(ws) => {
                w.push(ws.len() as u64);
                w.extend(ws.iter().map(|v| v.to_bits()));
            }
        }
        w
    }

    /// Report-cache lookup for one launch. Counts a hit or a miss,
    /// emits the `report_{hit,miss}` trace instant, and re-stamps a
    /// hit's `cache` snapshot with this engine's cumulative tallies
    /// (the stored snapshot belongs to the run that folded it).
    fn cached_report(&self, kernel: ReportKernelRef<'_>) -> Option<ExecutionReport> {
        let cache = self.cache.as_ref()?;
        if !cache.reports().enabled() {
            return None;
        }
        let words = self.report_key_words();
        let hit = cache.reports().lookup(&words, kernel);
        if let Some(tr) = &self.trace {
            tr.sink.record(TraceEvent::Instant {
                t_ns: tr.now(),
                name: if hit.is_some() {
                    "report_hit"
                } else {
                    "report_miss"
                },
                cat: "core",
                track: Track::core(0),
            });
        }
        hit.map(|mut report| {
            report.cache = self.cache_stats();
            report
        })
    }

    /// Stores a freshly folded launch report under this engine's key
    /// words (no-op when the report tier is disabled or absent).
    fn store_report(&self, kernel: ReportKernelRef<'_>, report: &ExecutionReport) {
        if let Some(cache) = &self.cache {
            if cache.reports().enabled() {
                cache
                    .reports()
                    .insert(&self.report_key_words(), kernel, report);
            }
        }
    }

    /// [`Self::sequences_for_stream`] through the pricing cache:
    /// bit-for-bit the same count, memoised on the stream content.
    #[must_use]
    pub fn cached_sequences_for_stream(&self, xs: &[i64]) -> u64 {
        match &self.cache {
            Some(c) => c.sequences(
                self.cfg.radix,
                self.digits,
                self.cfg.iarm,
                false,
                xs,
                || self.sequences_for_stream(xs),
            ),
            None => self.sequences_for_stream(xs),
        }
    }

    /// Sequence count for the doubled ternary stream of `x`
    /// ([`doubled_ternary`]), through the pricing cache. Keyed on the
    /// *undoubled* input, so a hit skips materialising the doubled
    /// stream entirely.
    #[must_use]
    pub fn cached_sequences_for_doubled(&self, x: &[i64]) -> u64 {
        match &self.cache {
            Some(c) => c.sequences(self.cfg.radix, self.digits, self.cfg.iarm, true, x, || {
                self.sequences_for_stream(&doubled_ternary(x))
            }),
            None => self.sequences_for_stream(&doubled_ternary(x)),
        }
    }

    /// Shard plan for `total` elements along `axis`, through the plan
    /// cache when one is enabled. The key covers everything the planner
    /// reads: the axis, the element count, the topology fingerprint,
    /// the backend policy and the sizing weights.
    fn plan_for(&self, axis: ShardAxis, total: usize) -> Arc<ShardPlan> {
        let build = || match axis {
            ShardAxis::OutputRows => self.planner().plan_rows(total),
            ShardAxis::InnerDim => self.planner().plan_inner(total),
            ShardAxis::CsdPlanes => self.planner().plan_planes(total),
        };
        match &self.cache {
            Some(c) => {
                let key = PlanKey {
                    axis,
                    total,
                    topology_fp: self.topology().fingerprint(),
                    policy: self.backends.clone(),
                    sizing: PlanKey::sizing_bits(&self.sizing),
                };
                match &self.trace {
                    Some(tr) => {
                        let hits_before = c.counters().plan_hits;
                        let plan = c.plan(&key, build);
                        tr.sink.record(TraceEvent::Instant {
                            t_ns: tr.now(),
                            name: if c.counters().plan_hits > hits_before {
                                "plan_cached"
                            } else {
                                "plan_built"
                            },
                            cat: "core",
                            track: Track::core(0),
                        });
                        plan
                    }
                    None => c.plan(&key, build),
                }
            }
            None => Arc::new(build()),
        }
    }

    /// Ternary GEMV report: `y[1×N] = x[1×K] · Z[K×N]` with ternary Z.
    /// Every non-zero `x_i` is accumulated on the +1 plane and
    /// subtracted on the −1 plane, so the command stream sees `x` twice.
    ///
    /// The inner dimension shards across the topology's (channel, rank)
    /// units; each unit runs the real host-side planning pass over its
    /// own K-slice, and the per-unit partial sums merge in
    /// `⌈log₂(units)⌉` cross-unit counter-addition rounds.
    #[must_use]
    pub fn ternary_gemv(&self, x: &[i64], n: usize) -> ExecutionReport {
        let kernel = ReportKernelRef::TernaryGemv { n, x };
        if let Some(report) = self.cached_report(kernel) {
            return report;
        }
        let plan = self.plan_for(ShardAxis::InnerDim, x.len());
        // The unit's intra-unit merge (banks × SALP streams) rides on
        // its first shard; accumulation and merge both execute on the
        // shard's backend.
        let work: Vec<(usize, f64)> = self
            .unit_reduction_extras(&plan)
            .into_iter()
            .enumerate()
            .collect();
        let shard_ops: Vec<f64> = work
            .par_iter()
            .map(|&(i, red)| {
                let shard = &plan.shards[i];
                let seqs = self.cached_sequences_for_doubled(&x[shard.start..shard.end()]);
                (seqs as f64 * self.ops_per_sequence() + red) * self.backend_factor(shard.backend)
            })
            .collect();
        let report = self.sharded_report(&plan, &shard_ops, 0, useful_ops(1, n, x.len()), n);
        self.store_report(kernel, &report);
        report
    }

    /// Prices a *batch* of `B` ternary GEMVs sharing one weight matrix
    /// (`y_b = x_b · Z` for each request) as a single launch: the B
    /// input streams distribute over the topology's units like GEMM
    /// output rows (each unit accumulates its requests into its own
    /// counters, §5.2.2 row semantics), so a batched request pays
    /// accumulation + counter copy-out instead of the per-request
    /// cross-unit partial-sum merges a lone GEMV pays, and a multi-unit
    /// launch pays one host gather of the B finished outputs. This is
    /// the engine entry point of the `c2m_serve` batching runtime.
    #[must_use]
    pub fn ternary_gemv_batch<S: AsRef<[i64]> + Sync>(
        &self,
        xs: &[S],
        n: usize,
    ) -> ExecutionReport {
        let rows: Vec<&[i64]> = xs.iter().map(AsRef::as_ref).collect();
        let kernel = ReportKernelRef::TernaryGemvBatch { n, xs: &rows };
        if let Some(report) = self.cached_report(kernel) {
            return report;
        }
        let plan = self.plan_for(ShardAxis::OutputRows, xs.len());
        let copy_out = self.copy_out_ops(n);
        let priced: Vec<(f64, u64)> = plan
            .shards
            .par_iter()
            .map(|shard| {
                let mut ops = 0.0f64;
                let mut useful = 0u64;
                for x in &xs[shard.start..shard.end()] {
                    let x = x.as_ref();
                    let seqs = self.cached_sequences_for_doubled(x);
                    ops +=
                        seqs as f64 * self.ops_per_sequence() * self.backend_factor(shard.backend)
                            + copy_out;
                    useful += useful_ops(1, n, x.len());
                }
                (ops, useful)
            })
            .collect();
        let shard_ops: Vec<f64> = priced.iter().map(|&(ops, _)| ops).collect();
        let useful: u64 = priced.iter().map(|&(_, u)| u).sum();
        let gather_bursts = if plan.cr_units_used() > 1 {
            xs.len() as u64 * self.output_row_bursts(n)
        } else {
            0
        };
        let report = self.sharded_report(&plan, &shard_ops, gather_bursts, useful, n);
        self.store_report(kernel, &report);
        report
    }

    /// Ternary GEMM report for `M` output rows, each accumulating the
    /// same-statistics input row `x_sample` (§5.2.2: rows sequential per
    /// bank, counter rows copied out between rows). Unlike a GEMV, a GEMM
    /// has abundant row-level parallelism, so output rows shard across
    /// the topology's (channel, rank) units with no partial-sum
    /// reduction; a multi-unit run only pays the host-side gather of the
    /// finished output rows (RD bursts, serialised at the host).
    #[must_use]
    pub fn ternary_gemm(&self, m: usize, n: usize, x_sample: &[i64]) -> ExecutionReport {
        self.rows_report(m, n, x_sample, true, x_sample.len())
    }

    /// Integer×binary GEMM report: like [`Self::ternary_gemm`] but Z has
    /// a single +1 mask plane (e.g. a graph adjacency matrix), so each
    /// row's input stream is accumulated once — no subtraction pass.
    #[must_use]
    pub fn binary_gemm(&self, m: usize, n: usize, x_sample: &[i64]) -> ExecutionReport {
        self.rows_report(m, n, x_sample, false, x_sample.len())
    }

    /// Shared row-sharded GEMM pricing: each output row accumulates
    /// `sample` (doubled with the negated pass when `doubled` — the
    /// ternary case).
    fn rows_report(
        &self,
        m: usize,
        n: usize,
        sample: &[i64],
        doubled: bool,
        k: usize,
    ) -> ExecutionReport {
        // The kernel key omits `k` because it is always the sample
        // length; the assert keeps that true for future callers.
        debug_assert_eq!(k, sample.len());
        let kernel = ReportKernelRef::Rows {
            m,
            n,
            doubled,
            sample,
        };
        if let Some(report) = self.cached_report(kernel) {
            return report;
        }
        let plan = self.plan_for(ShardAxis::OutputRows, m);
        let seqs = if doubled {
            self.cached_sequences_for_doubled(sample)
        } else {
            self.cached_sequences_for_stream(sample)
        };
        let accum = seqs as f64 * self.ops_per_sequence();
        let copy_out = self.copy_out_ops(n);
        let shard_ops: Vec<f64> = plan
            .shards
            .iter()
            .map(|shard| {
                let per_row = accum * self.backend_factor(shard.backend) + copy_out;
                per_row * shard.len as f64
            })
            .collect();
        let gather_bursts = if plan.cr_units_used() > 1 {
            m as u64 * self.output_row_bursts(n)
        } else {
            0
        };
        let report = self.sharded_report(&plan, &shard_ops, gather_bursts, useful_ops(m, n, k), n);
        self.store_report(kernel, &report);
        report
    }

    /// Integer×integer GEMV via CSD bit-slicing (§5.2.3): the weight
    /// matrix contributes `planes` power-of-two mask planes; the host
    /// replays the input stream once per plane, shifting each value by
    /// the plane's exponent (shifts change which digits are non-zero but
    /// the planner handles that exactly).
    ///
    /// `weight_bits` is the signed weight precision p; the CSD plane
    /// count is `2(p−1)` worst case, but planes whose mask rows are all
    /// zero are skipped by the host, so callers pass the *observed*
    /// plane list via `plane_exponents`.
    #[must_use]
    pub fn int_gemv(
        &self,
        x: &[i64],
        n: usize,
        plane_exponents: &[(u32, bool)],
    ) -> ExecutionReport {
        let kernel = ReportKernelRef::IntGemv {
            n,
            planes: plane_exponents,
            x,
        };
        if let Some(report) = self.cached_report(kernel) {
            return report;
        }
        let plan = self.plan_for(ShardAxis::CsdPlanes, plane_exponents.len());
        let work: Vec<(usize, f64)> = self
            .unit_reduction_extras(&plan)
            .into_iter()
            .enumerate()
            .collect();
        let shard_ops: Vec<f64> = work
            .par_iter()
            .map(|&(i, red)| {
                let shard = &plan.shards[i];
                let mut ops = 0.0f64;
                for &(e, neg) in &plane_exponents[shard.start..shard.end()] {
                    let stream: Vec<i64> = x
                        .iter()
                        .map(|&v| {
                            let scaled = v << e;
                            if neg {
                                -scaled
                            } else {
                                scaled
                            }
                        })
                        .collect();
                    ops +=
                        self.cached_sequences_for_stream(&stream) as f64 * self.ops_per_sequence();
                }
                (ops + red) * self.backend_factor(shard.backend)
            })
            .collect();
        let report = self.sharded_report(&plan, &shard_ops, 0, useful_ops(1, n, x.len()), n);
        self.store_report(kernel, &report);
        report
    }

    /// Commands for the log₂(banks) partial-sum merge rounds within one
    /// (channel, rank) unit (Algorithm 2: 2n unit increments per digit
    /// per round, plus mask staging). Equal to
    /// [`Self::reduction_ops_salp`] with a single stream.
    #[must_use]
    pub fn reduction_ops(&self) -> f64 {
        self.reduction_ops_salp(1)
    }

    /// Commands for the intra-unit partial-sum merge when `streams`
    /// concurrent SALP shards each accumulated across the unit's banks:
    /// `banks × streams` partials collapse in ⌈log₂(banks·streams)⌉
    /// pairwise counter-to-counter rounds, all in-DRAM (subarray streams
    /// share the bank's bitlines, so their merges never cross the host
    /// bus). With one stream this is the pre-SALP bank-level
    /// [`Self::reduction_ops`], bit for bit.
    #[must_use]
    pub fn reduction_ops_salp(&self, streams: usize) -> f64 {
        let partials = self.cfg.banks * streams.max(1);
        if partials <= 1 {
            return 0.0;
        }
        let rounds = (partials as f64).log2().ceil();
        rounds * self.merge_round_ops()
    }

    /// Per-shard extra reduction commands for a K/plane-sharded plan:
    /// the first shard of each (channel, rank) unit in plan order
    /// carries the unit's whole intra-unit merge (its banks × its SALP
    /// streams), the unit's remaining subarray shards carry none. On a
    /// 1-subarray plan every unit holds exactly one shard, so this
    /// degenerates to the pre-SALP "every shard pays
    /// [`Self::reduction_ops`]" attribution, bit for bit.
    fn unit_reduction_extras(&self, plan: &ShardPlan) -> Vec<f64> {
        let mut extras = vec![0.0f64; plan.shards.len()];
        let mut i = 0;
        while i < plan.shards.len() {
            let unit = (plan.shards[i].channel, plan.shards[i].rank);
            let mut j = i + 1;
            while j < plan.shards.len() && (plan.shards[j].channel, plan.shards[j].rank) == unit {
                j += 1;
            }
            extras[i] = self.reduction_ops_salp(j - i);
            i = j;
        }
        extras
    }

    /// Commands for one pairwise counter-to-counter merge round
    /// (Algorithm 2's per-round cost; also the per-round cost of the
    /// cross-unit merge after K/plane sharding).
    #[must_use]
    pub fn merge_round_ops(&self) -> f64 {
        let n = self.code.bits() as f64;
        self.digits as f64 * (2.0 * n) * self.ops_per_sequence() + self.digits as f64 * 2.0
    }

    /// Commands to copy a finished output row's counters to another
    /// subarray (§5.2.2): one RowClone AAP per counter row per column
    /// slice.
    #[must_use]
    pub fn copy_out_ops(&self, n: usize) -> f64 {
        let slices = n.div_ceil(self.cfg.dram.row_bits_per_rank()).max(1);
        (self.digits * (self.code.bits() + 1)) as f64 * slices as f64
    }

    /// Relative per-increment cost of executing a shard on `backend`
    /// instead of the optimised Ambit μProgram: the backend's generic
    /// gate-network increment cost (§4.6, [`Backend::increment_ops`])
    /// over Ambit's hand-scheduled `7n + 7`. Exactly 1 for Ambit.
    #[must_use]
    pub fn backend_factor(&self, backend: Backend) -> f64 {
        if backend == Backend::Ambit {
            return 1.0;
        }
        let n = self.code.bits();
        backend.increment_ops(n) as f64 / ProtectionKind::None.ambit_increment_ops(n) as f64
    }

    /// Mask rows tenant weights of shape `K×N` occupy while resident:
    /// the +1 and −1 planes across the column slices `n` outputs span
    /// (see [`crate::residency::ternary_mask_rows`]).
    #[must_use]
    pub fn tenant_mask_rows(&self, n: usize, k: usize) -> usize {
        crate::residency::ternary_mask_rows(n, k, self.cfg.dram.row_bits_per_rank())
    }

    /// Independent residency slots on this engine's geometry: one per
    /// (channel, rank, SALP stream) — the granularity
    /// [`ResidencyModel::with_slots`](crate::residency::ResidencyModel::with_slots)
    /// tracks when the serving layer prices per-subarray reloads. 1 on
    /// a single-channel, single-rank, 1-subarray engine.
    #[must_use]
    pub fn residency_slots(&self) -> usize {
        self.topology().shard_slots()
    }

    /// Mask rows one residency slot of a `K×N` ternary tenant occupies:
    /// the inner dimension shards evenly across
    /// [`Self::residency_slots`], so each slot holds the planes of its
    /// own K-slice. With a single slot this is exactly
    /// [`Self::tenant_mask_rows`].
    #[must_use]
    pub fn tenant_mask_slot_rows(&self, n: usize, k: usize) -> usize {
        let slots = self.residency_slots().max(1);
        crate::residency::ternary_mask_rows(n, k.div_ceil(slots), self.cfg.dram.row_bits_per_rank())
    }

    /// Mask rows the CIM subarrays can hold after reserving the Johnson
    /// counter rows: the residency budget of this engine's module
    /// (capacity hook: [`c2m_dram::DramConfig::cim_subarray_rows`]).
    /// Feed this to
    /// [`ResidencyModel::new`](crate::residency::ResidencyModel::new) to
    /// track tenant residency on the engine's actual geometry.
    #[must_use]
    pub fn residency_capacity_rows(&self) -> usize {
        let counter_rows = self.digits * (self.code.bits() + 1);
        let units = self.cfg.dram.channels * self.cfg.dram.ranks;
        let reserved = counter_rows * self.cfg.dram.parallel_subarrays(self.cfg.banks) * units;
        self.cfg
            .dram
            .cim_subarray_rows(self.cfg.banks)
            .saturating_sub(reserved)
            .max(1)
    }

    /// Time to stream `rows` mask rows from host memory back into the
    /// CIM subarrays — the price of a tenant switch on an over-subscribed
    /// module (the serving-layer row-conflict analogue). Each row pays
    /// its write bursts on the shared bus plus an activate/precharge
    /// cycle; bursts serialise on the bus, row cycles overlap with the
    /// next row's transfer, so the total is bus-bound with one trailing
    /// row cycle.
    #[must_use]
    pub fn mask_reload_ns(&self, rows: usize) -> f64 {
        if rows == 0 {
            return 0.0;
        }
        let bursts_per_row = self.cfg.dram.row_bits_per_rank().div_ceil(512).max(1) as f64;
        rows as f64 * bursts_per_row * self.cfg.timing.t_burst
            + (self.cfg.timing.t_rcd + self.cfg.timing.t_rp)
    }

    /// Energy to stream `rows` mask rows back into the CIM subarrays —
    /// the joule counterpart of [`Self::mask_reload_ns`], which prices
    /// the reload in time only. Every row pays its write bursts plus a
    /// full activate/precharge cycle: row cycles overlap with the next
    /// row's transfer in *time*, but each still moves charge.
    #[must_use]
    pub fn mask_reload_energy_nj(&self, rows: usize) -> f64 {
        if rows == 0 {
            return 0.0;
        }
        let bursts_per_row = self.cfg.dram.row_bits_per_rank().div_ceil(512).max(1) as f64;
        rows as f64 * (bursts_per_row * self.cfg.energy.e_wr_nj + self.cfg.energy.e_act_pre_nj)
    }

    /// RD bursts to stream one finished output row (`n` accumulators of
    /// `capacity_bits`) to the host over a 64-byte burst interface.
    fn output_row_bursts(&self, n: usize) -> u64 {
        (n * self.cfg.capacity_bits as usize).div_ceil(512).max(1) as u64
    }

    /// Bursts to move one unit's Johnson-coded counter state (all digit
    /// rows of every column slice holding `n` outputs) through the host
    /// during a cross-unit merge round.
    fn counter_transfer_bursts(&self, n: usize) -> u64 {
        let slices = n.div_ceil(self.cfg.dram.row_bits_per_rank()).max(1);
        let rows = self.digits * (self.code.bits() + 1);
        let bursts_per_row = self.cfg.dram.row_bits_per_rank().div_ceil(512).max(1);
        (slices * rows * bursts_per_row) as u64
    }

    /// Merges a sharded run into one [`ExecutionReport`]: channels run
    /// concurrently (elapsed = max over per-channel command time, each
    /// channel priced at the interleave rate of the ranks it *actually*
    /// occupies), the cross-unit merge tree and host gather serialise
    /// after the parallel phase, and commands/energy sum over
    /// everything. With a single-unit plan this is exactly the paper's
    /// single-channel pricing.
    ///
    /// `shard_ops` holds one effective-AAP count per plan shard, in
    /// plan order; besides driving the timing it feeds the
    /// [`EnergyLedger`]'s per-unit dynamic attribution, and each busy
    /// rank's compute window (vs the idle remainder of the makespan) is
    /// booked as a per-rank background interval.
    fn sharded_report(
        &self,
        plan: &ShardPlan,
        shard_ops: &[f64],
        gather_bursts: u64,
        useful: u64,
        n_out: usize,
    ) -> ExecutionReport {
        debug_assert_eq!(plan.shards.len(), shard_ops.len());
        let mut chan_ops = vec![0.0f64; self.cfg.dram.channels];
        for (shard, &ops) in plan.shards.iter().zip(shard_ops) {
            chan_ops[shard.channel] += ops;
        }
        let chan_ns: Vec<f64> = chan_ops
            .iter()
            .enumerate()
            .map(|(c, &ops)| {
                // Interleave rate of the ranks and SALP streams the
                // channel actually occupies; on a 1-subarray plan every
                // busy shard is a distinct rank, so this is exactly the
                // pre-SALP ranked interval.
                let mut ranks: Vec<usize> = plan
                    .on_channel(c)
                    .filter(|s| s.len > 0)
                    .map(|s| s.rank)
                    .collect();
                ranks.sort_unstable();
                ranks.dedup();
                let mut subs: Vec<usize> = plan
                    .on_channel(c)
                    .filter(|s| s.len > 0)
                    .map(|s| s.subarray)
                    .collect();
                subs.sort_unstable();
                subs.dedup();
                ops * steady_state_aap_interval_salp(
                    &self.cfg.timing,
                    self.cfg.banks,
                    ranks.len().max(1),
                    subs.len().max(1),
                )
            })
            .collect();
        let compute_ns = chan_ns.iter().copied().fold(0.0, f64::max);
        let mut total_ops: f64 = chan_ops.iter().sum();
        let mut merge_ops_total = 0.0f64;
        let mut host_rd = 0u64;
        let mut host_wr = 0u64;
        let mut stats = CommandStats::default();
        let mut transfer_ns = 0.0;
        // Per-round merge durations, collected only when tracing (an
        // empty `Vec` never allocates, so the untraced path stays
        // allocation-free here).
        let mut merge_rounds: Vec<f64> = Vec::new();

        // The cross-unit merge tree and the host gather operate at
        // (channel, rank) granularity: SALP streams inside one unit were
        // already collapsed by the intra-unit merge, so they never add
        // host-bus legs.
        let units = plan.cr_units_used();
        if plan.axis.needs_reduction() && units > 1 {
            // Pairwise merge tree over the partial-sum units: round r
            // halves the survivors, so U units take ⌈log₂U⌉ rounds and
            // U−1 merges in total. Within a round the counter-to-counter
            // additions run on distinct destination units (one
            // merge-latency per round, at the single-rank rate), but
            // every transfer crosses the shared host bus (RD at the
            // source, store-and-forward WR at the destination), so
            // transfer time scales with the pair count.
            let bursts = self.counter_transfer_bursts(n_out);
            let merge_interval =
                steady_state_aap_interval_ranked(&self.cfg.timing, self.cfg.banks, 1);
            // Counter-to-counter additions execute on the destination
            // units' backends; price conservatively at the plan's
            // slowest dispatch (the straggler gates each round anyway).
            let merge_ops = self.merge_round_ops()
                * plan
                    .shards
                    .iter()
                    .map(|s| self.backend_factor(s.backend))
                    .fold(0.0, f64::max);
            let mut active = units;
            while active > 1 {
                let pairs = active / 2;
                let round_ns = merge_ops * merge_interval
                    + pairs as f64 * 2.0 * bursts as f64 * self.cfg.timing.t_burst;
                transfer_ns += round_ns;
                if self.trace.is_some() {
                    merge_rounds.push(round_ns);
                }
                total_ops += pairs as f64 * merge_ops;
                merge_ops_total += pairs as f64 * merge_ops;
                stats.record_n(CommandKind::Rd, pairs as u64 * bursts);
                stats.record_n(CommandKind::Wr, pairs as u64 * bursts);
                host_rd += pairs as u64 * bursts;
                host_wr += pairs as u64 * bursts;
                active -= pairs;
            }
        }
        if gather_bursts > 0 {
            transfer_ns += gather_bursts as f64 * self.cfg.timing.t_burst;
            stats.record_n(CommandKind::Rd, gather_bursts);
            host_rd += gather_bursts;
        }

        stats.record_n(CommandKind::Aap, total_ops.round() as u64);
        let elapsed_ns = compute_ns + transfer_ns;

        // Stream the run into the energy ledger: per-shard dynamic AAP
        // work (scaled so the attribution sums to the aggregate integer
        // command count exactly), host-mediated merge work and bus
        // transfers, and each busy rank's compute window.
        let mut ledger = EnergyLedger::new(self.cfg.energy, self.cfg.dram.clone());
        let scale = if total_ops > 0.0 {
            total_ops.round() / total_ops
        } else {
            0.0
        };
        for (shard, &ops) in plan.shards.iter().zip(shard_ops) {
            ledger.record_unit(shard.channel, shard.rank, CommandKind::Aap, ops * scale);
        }
        ledger.record_host(CommandKind::Aap, merge_ops_total * scale);
        ledger.record_host(CommandKind::Rd, host_rd as f64);
        ledger.record_host(CommandKind::Wr, host_wr as f64);
        // One busy window per distinct (channel, rank): the ledger sums
        // windows per rank, so a unit's SALP shards must not each book
        // the whole channel makespan.
        let mut busy_units: Vec<(usize, usize)> = plan
            .shards
            .iter()
            .filter(|s| s.len > 0)
            .map(|s| (s.channel, s.rank))
            .collect();
        busy_units.sort_unstable();
        busy_units.dedup();
        let busy: Vec<(usize, usize, f64)> = busy_units
            .into_iter()
            .map(|(c, r)| (c, r, chan_ns[c]))
            .collect();
        ledger.close(elapsed_ns, stats, &busy);
        let mut report = ExecutionReport::from_ledger(&ledger, useful, &self.cfg.area);
        // Observational only: a snapshot of the engine's cumulative
        // cache tallies at report time. Never feeds back into pricing.
        report.cache = self.cache_stats();
        if self.trace.is_some() {
            let gather_ns = gather_bursts as f64 * self.cfg.timing.t_burst;
            self.trace_launch(&chan_ns, compute_ns, &merge_rounds, gather_ns, &report);
        }
        report
    }

    /// Emits one launch's spans onto the core tracks: the launch span
    /// on the launch track, a shard-exec span per busy channel, the
    /// sequential merge rounds and host gather after the parallel
    /// phase, and cache counter samples from the report's snapshot.
    fn trace_launch(
        &self,
        chan_ns: &[f64],
        compute_ns: f64,
        merge_rounds: &[f64],
        gather_ns: f64,
        report: &ExecutionReport,
    ) {
        let Some(tr) = &self.trace else { return };
        let t0 = tr.advance(report.elapsed_ns);
        let sink = tr.sink.as_ref();
        sink.record(TraceEvent::Begin {
            t_ns: t0,
            name: "launch",
            cat: "core",
            track: Track::core(0),
        });
        let cache = &report.cache;
        for (name, value) in [
            ("plan_cache_hits", cache.plan_hits),
            ("plan_cache_misses", cache.plan_misses),
            ("stream_cache_hits", cache.stream_hits),
            ("stream_cache_misses", cache.stream_misses),
            ("report_cache_hits", cache.report_hits),
            ("report_cache_misses", cache.report_misses),
        ] {
            sink.record(TraceEvent::Counter {
                t_ns: t0,
                name,
                cat: "core",
                track: Track::core(0),
                value: value as f64,
            });
        }
        for (c, &ns) in chan_ns.iter().enumerate() {
            if ns > 0.0 {
                sink.span(Track::core(1 + c as u32), "shard_exec", "core", t0, t0 + ns);
            }
        }
        let mut t = t0 + compute_ns;
        for &round_ns in merge_rounds {
            sink.span(Track::core(0), "merge_round", "core", t, t + round_ns);
            t += round_ns;
        }
        if gather_ns > 0.0 {
            sink.span(Track::core(0), "host_gather", "core", t, t + gather_ns);
        }
        sink.record(TraceEvent::End {
            t_ns: t0 + report.elapsed_ns,
            track: Track::core(0),
        });
        if let Some(m) = sink.metrics() {
            m.inc("core.launches", 1);
            m.observe_ns("core.launch_ns", report.elapsed_ns);
        }
    }
}

/// GOPS convention: one MAC = two operations.
#[must_use]
pub fn useful_ops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// The doubled ternary command stream (`x` then `−x`): the +1-plane
/// accumulation pass followed by the −1-plane subtraction pass. This
/// ordering is load-bearing for seed bit-compatibility — every ternary
/// path (engine kernels and the serving runtime) must build the stream
/// the same way.
#[must_use]
pub fn doubled_ternary(x: &[i64]) -> Vec<i64> {
    x.iter().copied().chain(x.iter().map(|&v| -v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2m_dram::scheduler::steady_state_aap_interval;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;

    fn int8_stream(len: usize, seed: u64) -> Vec<i64> {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-128i64..128)).collect()
    }

    #[test]
    fn zero_skipping() {
        let e = C2mEngine::builder(EngineConfig::c2m(1)).build();
        let dense = int8_stream(1024, 1);
        let mut sparse = dense.clone();
        for v in sparse.iter_mut().take(900) {
            *v = 0;
        }
        assert!(e.sequences_for_stream(&sparse) < e.sequences_for_stream(&dense) / 4);
        assert_eq!(e.sequences_for_stream(&vec![0i64; 128]), 0);
    }

    #[test]
    fn iarm_reduces_sequences() {
        let mut with = EngineConfig::c2m(1);
        with.iarm = true;
        let mut without = EngineConfig::c2m(1);
        without.iarm = false;
        let xs = int8_stream(2048, 2);
        let a = C2mEngine::builder(with).build().sequences_for_stream(&xs);
        let b = C2mEngine::builder(without)
            .build()
            .sequences_for_stream(&xs);
        assert!(a < b, "IARM {a} vs full ripple {b}");
    }

    #[test]
    fn protection_increases_ops() {
        let plain = C2mEngine::builder(EngineConfig::c2m(16)).build();
        let prot = C2mEngine::builder(EngineConfig::c2m_protected(16)).build();
        assert!(prot.ops_per_sequence() > 1.5 * plain.ops_per_sequence());
        // §7.3.2: recompute overhead ~20% on top of the 13n+16 detection
        // cost at fault 1e-4.
        let base = ProtectionKind::Ecc {
            fr_checks: 2,
            fuse_inverted_feedback: false,
        }
        .ambit_increment_ops(2) as f64;
        let overhead = prot.ops_per_sequence() / base - 1.0;
        assert!(
            (0.10..0.30).contains(&overhead),
            "correction overhead {overhead}"
        );
    }

    #[test]
    fn bank_scaling_improves_gemv_latency() {
        let xs = int8_stream(8192, 3);
        let t1 = C2mEngine::builder(EngineConfig::c2m(1))
            .build()
            .ternary_gemv(&xs, 22016);
        let t16 = C2mEngine::builder(EngineConfig::c2m(16))
            .build()
            .ternary_gemv(&xs, 22016);
        let speedup = t1.elapsed_ns / t16.elapsed_ns;
        assert!((6.0..16.0).contains(&speedup), "16-bank speedup {speedup}");
    }

    #[test]
    fn c2m_beats_simdram_shape() {
        // The headline claim: C2M outperforms RCA-based SIMDRAM on
        // ternary kernels (abstract: up to 10x).
        use c2m_dram::TimingParams;
        let xs = int8_stream(8192, 4);
        let c2m = C2mEngine::builder(EngineConfig::c2m(16))
            .build()
            .ternary_gemv(&xs, 8192);
        // SIMDRAM ops: 2K sequences of 64-bit RCA (17 ops/bit).
        let simdram_ops = 2.0 * 8192.0 * (17.0 * 64.0);
        let interval = steady_state_aap_interval(&TimingParams::ddr5_4400(), 16);
        let simdram_ns = simdram_ops * interval;
        let speedup = simdram_ns / c2m.elapsed_ns;
        assert!(
            (2.0..=12.0).contains(&speedup),
            "C2M over SIMDRAM speedup {speedup} outside the paper's 2-10x band"
        );
    }

    #[test]
    fn gemm_scales_linearly_in_m() {
        let xs = int8_stream(4096, 5);
        let e = C2mEngine::builder(EngineConfig::c2m(16)).build();
        let one = e.ternary_gemm(1, 4096, &xs);
        let many = e.ternary_gemm(64, 4096, &xs);
        let ratio = many.elapsed_ns / one.elapsed_ns;
        assert!((ratio - 64.0).abs() / 64.0 < 0.01, "ratio {ratio}");
    }

    #[test]
    fn int8_gemv_beats_bit_serial_multiplication() {
        // §5.2.3: CSD bit-slicing turns int x int into masked counting;
        // the bit-serial alternative multiplies with W-bit shift-and-add
        // RCAs. Worst-case 8-bit weights need 14 CSD planes.
        let planes: Vec<(u32, bool)> = (0..7u32).flat_map(|e| [(e, false), (e, true)]).collect();
        let xs = int8_stream(4096, 9);
        let e = C2mEngine::builder(EngineConfig::c2m(16)).build();
        let c2m = e.int_gemv(&xs, 4096, &planes);
        // Bit-serial baseline: K multiplications, each 8 additions of a
        // 16-bit partial into a 64-bit accumulator (12 AAP/bit as in the
        // SIMDRAM engine), at the same 16-bank interval.
        let simdram_ops = 4096.0 * 8.0 * (12.0 * 64.0);
        let interval = steady_state_aap_interval(&c2m_dram::TimingParams::ddr5_4400(), 16);
        let ratio = simdram_ops * interval / c2m.elapsed_ns;
        assert!(
            ratio > 1.0,
            "counting int8 GEMV should beat bit-serial multiply ({ratio})"
        );
    }

    #[test]
    fn int_gemv_scales_with_plane_count() {
        let xs = int8_stream(1024, 10);
        let e = C2mEngine::builder(EngineConfig::c2m(16)).build();
        let few = e.int_gemv(&xs, 1024, &[(0, false), (2, false)]);
        let many: Vec<(u32, bool)> = (0..7u32).flat_map(|p| [(p, false), (p, true)]).collect();
        let all = e.int_gemv(&xs, 1024, &many);
        assert!(all.elapsed_ns > 3.0 * few.elapsed_ns);
    }

    #[test]
    fn reports_have_positive_metrics() {
        let xs = int8_stream(1024, 6);
        let r = C2mEngine::builder(EngineConfig::c2m(16))
            .build()
            .ternary_gemv(&xs, 4096);
        assert!(r.gops() > 0.0);
        assert!(r.gops_per_watt() > 0.0);
        assert!(r.gops_per_mm2() > 0.0);
        assert!(r.elapsed_ms() > 0.0);
    }

    // ---- topology-aware sharded execution ----

    fn cfg_with_channels(channels: usize, ranks: usize) -> EngineConfig {
        let mut cfg = EngineConfig::c2m(16);
        cfg.dram.channels = channels;
        cfg.dram.ranks = ranks;
        cfg
    }

    #[test]
    fn single_channel_reproduces_seed_closed_form_bit_for_bit() {
        // channels=1, ranks=1 must price exactly like the paper's
        // single-channel model: (accumulation + bank merge) x the
        // steady-state interval, all-AAP stats, rank-level area/energy.
        let xs = int8_stream(4096, 21);
        let e = C2mEngine::builder(EngineConfig::c2m(16)).build();
        let doubled: Vec<i64> = xs.iter().copied().chain(xs.iter().map(|&v| -v)).collect();
        let expect_ops = e.ops_for_stream(&doubled) + e.reduction_ops();
        let interval = steady_state_aap_interval(&TimingParams::ddr5_4400(), 16);

        let gemv = e.ternary_gemv(&xs, 8192);
        assert_eq!(gemv.elapsed_ns, expect_ops * interval);
        assert_eq!(
            gemv.stats.count(CommandKind::Aap),
            expect_ops.round() as u64
        );
        assert_eq!(gemv.stats.count(CommandKind::Rd), 0);
        assert_eq!(gemv.stats.count(CommandKind::Wr), 0);

        let per_row = e.ops_for_stream(&doubled) + e.copy_out_ops(8192);
        let gemm = e.ternary_gemm(64, 8192, &xs);
        assert_eq!(gemm.elapsed_ns, per_row * 64.0 * interval);
        assert_eq!(gemm.stats.count(CommandKind::Rd), 0);
    }

    #[test]
    fn four_channel_gemm_is_sublinear_speedup() {
        // Acceptance: 4 channels lands strictly between 1x and 1/4x of
        // the single-channel latency (gather of finished rows is serial
        // at the host).
        let xs = int8_stream(4096, 22);
        let one = C2mEngine::builder(cfg_with_channels(1, 1))
            .build()
            .ternary_gemm(64, 4096, &xs);
        let four = C2mEngine::builder(cfg_with_channels(4, 1))
            .build()
            .ternary_gemm(64, 4096, &xs);
        assert!(four.elapsed_ns < one.elapsed_ns);
        assert!(
            four.elapsed_ns > one.elapsed_ns / 4.0,
            "4ch {} vs 1ch/4 {}",
            four.elapsed_ns,
            one.elapsed_ns / 4.0
        );
        // The gather shows up as host RD bursts.
        assert!(four.stats.count(CommandKind::Rd) > 0);
    }

    #[test]
    fn gemv_channel_sharding_pays_cross_unit_merge() {
        let xs = int8_stream(8192, 23);
        let one = C2mEngine::builder(cfg_with_channels(1, 1))
            .build()
            .ternary_gemv(&xs, 22016);
        let four = C2mEngine::builder(cfg_with_channels(4, 1))
            .build()
            .ternary_gemv(&xs, 22016);
        assert!(four.elapsed_ns < one.elapsed_ns);
        assert!(four.elapsed_ns > one.elapsed_ns / 4.0);
        // 4 units -> 2 merge rounds of counter traffic through the host.
        assert!(four.stats.count(CommandKind::Rd) > 0);
        assert_eq!(
            four.stats.count(CommandKind::Rd),
            four.stats.count(CommandKind::Wr)
        );
    }

    #[test]
    fn rank_interleaving_improves_latency_with_bus_floor() {
        let xs = int8_stream(8192, 24);
        let r1 = C2mEngine::builder(cfg_with_channels(1, 1))
            .build()
            .ternary_gemv(&xs, 8192);
        let r2 = C2mEngine::builder(cfg_with_channels(1, 2))
            .build()
            .ternary_gemv(&xs, 8192);
        assert!(
            r2.elapsed_ns < r1.elapsed_ns,
            "2 ranks {} vs 1 rank {}",
            r2.elapsed_ns,
            r1.elapsed_ns
        );
        // The rank-switch floor keeps the gain below the unit count.
        assert!(r2.elapsed_ns > r1.elapsed_ns / 2.0);
    }

    #[test]
    fn int_gemv_shards_planes_across_channels() {
        let planes: Vec<(u32, bool)> = (0..7u32).flat_map(|e| [(e, false), (e, true)]).collect();
        let xs = int8_stream(4096, 25);
        let one = C2mEngine::builder(cfg_with_channels(1, 1))
            .build()
            .int_gemv(&xs, 4096, &planes);
        let four = C2mEngine::builder(cfg_with_channels(4, 1))
            .build()
            .int_gemv(&xs, 4096, &planes);
        assert!(four.elapsed_ns < one.elapsed_ns);
        assert!(four.elapsed_ns > one.elapsed_ns / 4.0);
    }

    #[test]
    fn fcdram_dispatch_prices_above_ambit() {
        // FCDRAM has no hand-optimised counting μProgram, so a uniform
        // FCDRAM run pays the generic-lowering premium over Ambit.
        let xs = int8_stream(4096, 26);
        let cfg = cfg_with_channels(4, 1);
        let ambit = C2mEngine::builder(cfg.clone())
            .build()
            .ternary_gemv(&xs, 8192);
        let fcdram = C2mEngine::builder(cfg.clone())
            .backends(BackendPolicy::Uniform(Backend::Fcdram))
            .build()
            .ternary_gemv(&xs, 8192);
        assert!(fcdram.elapsed_ns > ambit.elapsed_ns);

        // A mixed module prices between the two uniform extremes.
        let mixed = C2mEngine::builder(cfg)
            .backends(BackendPolicy::PerChannel(vec![
                Backend::Ambit,
                Backend::Fcdram,
            ]))
            .build()
            .ternary_gemv(&xs, 8192);
        assert!(mixed.elapsed_ns >= ambit.elapsed_ns);
        assert!(mixed.elapsed_ns <= fcdram.elapsed_ns);
    }

    #[test]
    fn binary_gemm_skips_the_subtraction_pass() {
        // A binary mask plane accumulates each row stream once; ternary
        // doubles it with the negated copy, so on a zero-free stream the
        // binary path must price strictly below ternary (and within
        // [1x, 2x] of half the ternary accumulation).
        let xs = vec![1i64; 512];
        let e = C2mEngine::builder(EngineConfig::c2m(16)).build();
        let bin = e.binary_gemm(32, 1024, &xs);
        let ter = e.ternary_gemm(32, 1024, &xs);
        assert!(bin.elapsed_ns < ter.elapsed_ns);
        let ratio = ter.elapsed_ns / bin.elapsed_ns;
        assert!((1.0..=2.5).contains(&ratio), "ternary/binary ratio {ratio}");
        assert_eq!(bin.useful_ops, ter.useful_ops);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn engine_rejects_more_banks_than_the_rank_has() {
        let _ = C2mEngine::builder(EngineConfig::c2m(64)).build();
    }

    // ---- batched GEMV + heterogeneity-aware sizing ----

    #[test]
    fn gemv_batch_of_one_matches_gemm_row_pricing() {
        // A batch is row-sharded, so a single-request batch prices like
        // a one-row GEMM over the same stream (accumulation + copy-out).
        let xs = int8_stream(2048, 30);
        let e = C2mEngine::builder(EngineConfig::c2m(16)).build();
        let batch = e.ternary_gemv_batch(std::slice::from_ref(&xs), 4096);
        let gemm = e.ternary_gemm(1, 4096, &xs);
        assert_eq!(batch.elapsed_ns, gemm.elapsed_ns);
    }

    #[test]
    fn batched_gemvs_price_below_sequential_gemvs() {
        // Per request, a batch pays copy-out instead of the cross-bank
        // partial-sum merge, and on a multi-channel topology rows shard
        // cleanly instead of paying cross-unit merges per request.
        let xs: Vec<Vec<i64>> = (0..8).map(|s| int8_stream(2048, 31 + s)).collect();
        for &channels in &[1usize, 4] {
            let e = C2mEngine::builder(cfg_with_channels(channels, 1)).build();
            let batched = e.ternary_gemv_batch(&xs, 4096).elapsed_ns;
            let serial: f64 = xs.iter().map(|x| e.ternary_gemv(x, 4096).elapsed_ns).sum();
            assert!(
                batched < serial,
                "{channels}ch: batched {batched} vs serial {serial}"
            );
        }
    }

    #[test]
    fn empty_batch_prices_to_zero() {
        let e = C2mEngine::builder(EngineConfig::c2m(16)).build();
        let r = e.ternary_gemv_batch::<Vec<i64>>(&[], 4096);
        assert_eq!(r.elapsed_ns, 0.0);
        assert_eq!(r.useful_ops, 0);
    }

    #[test]
    fn heterogeneity_weights_equalise_mixed_module_makespan() {
        let xs: Vec<Vec<i64>> = (0..16).map(|s| int8_stream(2048, 40 + s)).collect();
        let cfg = cfg_with_channels(4, 1);
        let policy = BackendPolicy::PerChannel(vec![Backend::Ambit, Backend::Fcdram]);
        let even = C2mEngine::builder(cfg.clone())
            .backends(policy.clone())
            .build();
        let weighted = C2mEngine::builder(cfg)
            .backends(policy)
            .balanced_sizing()
            .build();
        let t_even = even.ternary_gemv_batch(&xs, 4096).elapsed_ns;
        let t_weighted = weighted.ternary_gemv_batch(&xs, 4096).elapsed_ns;
        assert!(
            t_weighted < t_even,
            "weighted {t_weighted} vs even {t_even}"
        );
    }

    #[test]
    fn heterogeneity_weights_are_even_on_uniform_policies() {
        let e = C2mEngine::builder(cfg_with_channels(4, 1)).build();
        let ShardSizing::Weighted(w) = e.heterogeneity_weights() else {
            panic!("weights expected");
        };
        assert!(w.iter().all(|&x| x == 1.0));
        // And a uniform weighted engine plans identically to the seed.
        let xs = int8_stream(4096, 50);
        let sized = C2mEngine::builder(cfg_with_channels(4, 1))
            .sizing(ShardSizing::Weighted(w))
            .build();
        assert_eq!(
            sized.ternary_gemv(&xs, 8192).elapsed_ns,
            e.ternary_gemv(&xs, 8192).elapsed_ns
        );
    }

    #[test]
    fn backend_factor_is_exactly_one_for_ambit() {
        let e = C2mEngine::builder(EngineConfig::c2m(16)).build();
        assert_eq!(e.backend_factor(Backend::Ambit), 1.0);
        assert!(e.backend_factor(Backend::Fcdram) > 1.0);
        assert!(e.backend_factor(Backend::Pinatubo) < 1.0);
    }

    // ---- tenant weight residency pricing ----

    #[test]
    fn residency_capacity_reserves_counter_rows_and_scales() {
        let one = C2mEngine::builder(cfg_with_channels(1, 1)).build();
        let cap1 = one.residency_capacity_rows();
        // 16 CIM subarrays x 1024 rows minus the counter reservation.
        assert!(cap1 < 16 * 1024);
        assert!(cap1 > 8 * 1024, "counters must not eat the subarray");
        let eight = C2mEngine::builder(cfg_with_channels(4, 2)).build();
        assert_eq!(eight.residency_capacity_rows(), 8 * cap1);
    }

    #[test]
    fn mask_reload_is_bus_bound_and_linear_in_rows() {
        let e = C2mEngine::builder(EngineConfig::c2m(16)).build();
        assert_eq!(e.mask_reload_ns(0), 0.0);
        let one = e.mask_reload_ns(1);
        let thousand = e.mask_reload_ns(1000);
        assert!(one > 0.0);
        // Linear in rows up to the single trailing row cycle.
        let t = TimingParams::ddr5_4400();
        let per_row = thousand - (t.t_rcd + t.t_rp);
        assert!((per_row / 1000.0 - (one - (t.t_rcd + t.t_rp))).abs() < 1e-9);
        // A real tenant reload costs the same order as one large GEMV,
        // so the scheduler faces a genuine affinity-vs-deadline trade.
        let rows = e.tenant_mask_rows(4096, 2048);
        let xs = int8_stream(2048, 60);
        let gemv = e.ternary_gemv(&xs, 4096).elapsed_ns;
        let reload = e.mask_reload_ns(rows);
        assert!(reload > gemv / 100.0, "reload {reload} vs gemv {gemv}");
        assert!(reload < gemv * 10.0, "reload {reload} vs gemv {gemv}");
    }

    #[test]
    fn tenant_mask_rows_match_residency_module() {
        let e = C2mEngine::builder(EngineConfig::c2m(16)).build();
        let row_bits = e.config().dram.row_bits_per_rank();
        assert_eq!(
            e.tenant_mask_rows(4096, 2048),
            crate::residency::ternary_mask_rows(4096, 2048, row_bits)
        );
    }

    #[test]
    fn topology_capacity_and_area_aggregate_in_reports() {
        let xs = int8_stream(1024, 27);
        let one = C2mEngine::builder(cfg_with_channels(1, 1))
            .build()
            .ternary_gemv(&xs, 4096);
        let eight = C2mEngine::builder(cfg_with_channels(4, 2))
            .build()
            .ternary_gemv(&xs, 4096);
        assert!((eight.area_mm2 - 8.0 * one.area_mm2).abs() < 1e-9);
    }

    // ---- the energy ledger threaded through launches ----

    /// Conservation: the per-shard dynamic + per-rank background
    /// attribution sums to the exact `system_energy_nj` total, across
    /// kernels and topologies.
    #[test]
    fn ledger_attribution_is_conserved_across_kernels_and_topologies() {
        let planes: Vec<(u32, bool)> = (0..5u32).flat_map(|e| [(e, false), (e, true)]).collect();
        for &(channels, ranks) in &[(1usize, 1usize), (4, 1), (2, 2), (4, 2)] {
            let e = C2mEngine::builder(cfg_with_channels(channels, ranks)).build();
            let xs = int8_stream(2048, 70 + channels as u64 * 8 + ranks as u64);
            let batch: Vec<Vec<i64>> = (0..6).map(|s| int8_stream(512, 80 + s)).collect();
            let reports = [
                e.ternary_gemv(&xs, 4096),
                e.ternary_gemm(16, 2048, &xs),
                e.binary_gemm(8, 1024, &xs),
                e.int_gemv(&xs, 1024, &planes),
                e.ternary_gemv_batch(&batch, 1024),
            ];
            for r in &reports {
                assert_eq!(r.energy.total_nj, r.energy_nj, "{channels}x{ranks}");
                let rel = ((r.energy.attributed_nj() - r.energy_nj) / r.energy_nj).abs();
                assert!(
                    rel < 1e-9,
                    "{channels}x{ranks}: attributed {} vs total {} (rel {rel})",
                    r.energy.attributed_nj(),
                    r.energy_nj
                );
                // One attribution entry per rank of the topology.
                assert_eq!(r.energy.shards.len(), channels * ranks);
            }
        }
    }

    #[test]
    fn ledger_splits_background_busy_vs_idle_on_stragglers() {
        // 1x1: the single rank is busy for the whole compute phase, so
        // idle background only accrues over the transfer phase (none
        // for a single-unit GEMV).
        let xs = int8_stream(2048, 90);
        let one = C2mEngine::builder(cfg_with_channels(1, 1))
            .build()
            .ternary_gemv(&xs, 4096);
        assert_eq!(one.energy.background_idle_nj, 0.0);
        assert!(one.energy.background_busy_nj > 0.0);
        // Multi-channel: the merge tree serialises after the parallel
        // phase, so every rank idles through it and idle energy shows.
        let four = C2mEngine::builder(cfg_with_channels(4, 1))
            .build()
            .ternary_gemv(&xs, 4096);
        assert!(four.energy.background_idle_nj > 0.0);
        assert!(four.energy.host_nj > 0.0, "merge traffic is host energy");
        // Dynamic attribution lands on the units that computed.
        for s in &four.energy.shards {
            assert!(s.dynamic_nj > 0.0, "unit ({},{})", s.channel, s.rank);
        }
    }

    #[test]
    fn ledger_attributes_more_dynamic_energy_to_slower_backends() {
        // On a mixed module the FCDRAM channel burns more commands per
        // increment, and the per-shard attribution shows it.
        let xs: Vec<Vec<i64>> = (0..8).map(|s| int8_stream(1024, 95 + s)).collect();
        let e = C2mEngine::builder(cfg_with_channels(2, 1))
            .backends(BackendPolicy::PerChannel(vec![
                Backend::Ambit,
                Backend::Fcdram,
            ]))
            .build();
        let r = e.ternary_gemv_batch(&xs, 2048);
        let ambit = r.energy.shards.iter().find(|s| s.channel == 0).unwrap();
        let fcdram = r.energy.shards.iter().find(|s| s.channel == 1).unwrap();
        assert!(
            fcdram.dynamic_nj > ambit.dynamic_nj,
            "fcdram {} vs ambit {}",
            fcdram.dynamic_nj,
            ambit.dynamic_nj
        );
    }

    // ---- builder validation, caching and deprecated shims ----

    #[test]
    fn try_build_reports_each_validation_failure() {
        let mut bad_radix = EngineConfig::c2m(16);
        bad_radix.radix = 3;
        assert!(matches!(
            C2mEngine::builder(bad_radix).try_build(),
            Err(EngineBuildError::InvalidRadix(_))
        ));
        assert!(matches!(
            C2mEngine::builder(EngineConfig::c2m(64)).try_build(),
            Err(EngineBuildError::InvalidGeometry(_))
        ));
        let mut zero_ch = EngineConfig::c2m(16);
        zero_ch.dram.channels = 0;
        assert!(matches!(
            C2mEngine::builder(zero_ch).try_build(),
            Err(EngineBuildError::InvalidGeometry(_))
        ));
        assert!(matches!(
            C2mEngine::builder(EngineConfig::c2m(16))
                .backends(BackendPolicy::PerChannel(vec![]))
                .try_build(),
            Err(EngineBuildError::InvalidBackends(_))
        ));
        assert!(matches!(
            C2mEngine::builder(EngineConfig::c2m(16))
                .sizing(ShardSizing::Weighted(vec![1.0, -2.0]))
                .try_build(),
            Err(EngineBuildError::InvalidSizing(_))
        ));
        assert!(matches!(
            C2mEngine::builder(EngineConfig::c2m(16))
                .sizing(ShardSizing::Weighted(vec![]))
                .try_build(),
            Err(EngineBuildError::InvalidSizing(_))
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_match_the_builder() {
        let xs = int8_stream(1024, 101);
        let old = C2mEngine::new(EngineConfig::c2m(16)).ternary_gemv(&xs, 2048);
        let new = C2mEngine::builder(EngineConfig::c2m(16))
            .build()
            .ternary_gemv(&xs, 2048);
        assert_eq!(old.elapsed_ns, new.elapsed_ns);
        assert_eq!(old.energy_nj, new.energy_nj);

        let policy = BackendPolicy::Uniform(Backend::Fcdram);
        let old = C2mEngine::with_backends(cfg_with_channels(2, 1), policy.clone())
            .ternary_gemv(&xs, 2048);
        let new = C2mEngine::builder(cfg_with_channels(2, 1))
            .backends(policy.clone())
            .build()
            .ternary_gemv(&xs, 2048);
        assert_eq!(old.elapsed_ns, new.elapsed_ns);

        let w = ShardSizing::Weighted(vec![2.0, 1.0]);
        let old = C2mEngine::with_backends(cfg_with_channels(2, 1), policy.clone())
            .with_shard_sizing(w.clone())
            .ternary_gemv(&xs, 2048);
        let new = C2mEngine::builder(cfg_with_channels(2, 1))
            .backends(policy)
            .sizing(w)
            .build()
            .ternary_gemv(&xs, 2048);
        assert_eq!(old.elapsed_ns, new.elapsed_ns);
    }

    #[test]
    fn cached_and_uncached_engines_price_identically() {
        for cfg in [cfg_with_channels(1, 1), cfg_with_channels(4, 2)] {
            let cached = C2mEngine::builder(cfg.clone()).build();
            let uncached = C2mEngine::builder(cfg).no_cache().build();
            let xs = int8_stream(2048, 111);
            // The second round exercises the hit path.
            for _ in 0..2 {
                let a = cached.ternary_gemv(&xs, 4096);
                let b = uncached.ternary_gemv(&xs, 4096);
                assert_eq!(a.elapsed_ns, b.elapsed_ns);
                assert_eq!(a.energy_nj, b.energy_nj);
                assert_eq!(
                    a.stats.count(CommandKind::Aap),
                    b.stats.count(CommandKind::Aap)
                );
            }
            let tallies = cached.cache_stats();
            // The repeat launch short-circuits at the report tier.
            assert!(tallies.report_hits > 0);
            assert_eq!(uncached.cache_stats(), CacheCounters::default());
        }
    }

    #[test]
    fn reports_carry_cache_counter_snapshots() {
        let e = C2mEngine::builder(EngineConfig::c2m(16)).build();
        let xs = int8_stream(512, 131);
        let first = e.ternary_gemv(&xs, 1024);
        assert_eq!(first.cache.plan_misses, 1);
        assert_eq!(first.cache.stream_misses, 1);
        assert_eq!(first.cache.report_misses, 1);
        // The repeat launch is a whole-report hit; the plan/stream tiers
        // are never consulted, and the hit re-stamps the counters.
        let second = e.ternary_gemv(&xs, 1024);
        assert_eq!(second.cache.report_hits, 1);
        assert_eq!(second.cache.plan_hits, 0);
        assert_eq!(second.cache.stream_hits, 0);
        assert!(second.cache.hit_rate() > 0.0);
    }

    #[test]
    fn clones_and_shared_handles_warm_one_cache() {
        let e = C2mEngine::builder(EngineConfig::c2m(16)).build();
        let xs = int8_stream(1024, 121);
        let _ = e.ternary_gemv(&xs, 2048);
        let misses_after_first = e.cache_stats().stream_misses;
        let clone = e.clone();
        let _ = clone.ternary_gemv(&xs, 2048);
        assert_eq!(clone.cache_stats().stream_misses, misses_after_first);
        assert!(clone.cache_stats().report_hits > 0);
        // A separately built engine sharing the handle also hits.
        let shared = C2mEngine::builder(EngineConfig::c2m(16))
            .shared_cache(Arc::clone(e.cache().unwrap()))
            .build();
        let before = shared.cache_stats().report_hits;
        let _ = shared.ternary_gemv(&xs, 2048);
        assert!(shared.cache_stats().report_hits > before);
    }

    #[test]
    fn mask_reload_energy_is_linear_in_rows_and_pairs_with_time() {
        let e = C2mEngine::builder(EngineConfig::c2m(16)).build();
        assert_eq!(e.mask_reload_energy_nj(0), 0.0);
        let one = e.mask_reload_energy_nj(1);
        assert!(one > 0.0);
        assert!((e.mask_reload_energy_nj(1000) - 1000.0 * one).abs() < 1e-6);
        // The reload's implied power (J over its own wall-clock) is a
        // plausible active-write figure: above zero, below 100 W.
        let rows = e.tenant_mask_rows(4096, 2048);
        let p = e.mask_reload_energy_nj(rows) / e.mask_reload_ns(rows);
        assert!(p > 0.0 && p < 100.0, "reload power {p} W");
    }
}
