//! Analytic performance engine for paper-scale workloads (§5.1, §7).
//!
//! The functional kernels in [`crate::kernels`] bit-simulate every row
//! operation, which is exact but cannot run the Table 3 shapes (tens of
//! billions of MACs). This engine projects performance the way the
//! paper's simulator does: the host-side routine (digit unpacking + IARM
//! planning) is executed *for real* over the input values to obtain the
//! exact broadcast-command count, and the command stream is then priced
//! through the `c2m-dram` scheduler's steady-state `tRRD`/`tFAW` model,
//! energy model and area model.
//!
//! Work partitioning (§5.2.2, §7.2.1): the inner dimension K is split
//! across the X banks, each bank accumulating partial sums into its own
//! counter slice; partial results merge with log₂(X) rounds of
//! counter-to-counter addition (Algorithm 2). Output rows of a GEMM are
//! computed sequentially, paying a counter copy-out per row.

use c2m_dram::scheduler::steady_state_aap_interval;
use c2m_dram::{
    AreaModel, CommandKind, CommandStats, DramConfig, EnergyModel, ExecutionReport, TimingParams,
};
use c2m_ecc::protect::{ProtectionAnalysis, ProtectionKind};
use c2m_jc::codec::JohnsonCode;
use c2m_jc::cost::digits_for_capacity;
use c2m_jc::iarm::IarmPlanner;
use serde::{Deserialize, Serialize};

/// Engine configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Johnson-digit radix (the paper's evaluation uses 4).
    pub radix: usize,
    /// Accumulator capacity in bits (the paper uses 64).
    pub capacity_bits: u32,
    /// Banks computing in parallel (C2M:X).
    pub banks: usize,
    /// Fault-tolerance scheme (affects ops per increment and the
    /// recompute overhead).
    pub protection: ProtectionKind,
    /// Assumed inherent CIM fault rate (drives the detected-fault
    /// recompute overhead when protection is ECC; §7.3.2 uses 10⁻⁴).
    pub fault_rate: f64,
    /// ECC recompute granularity in bits (§7.3.2 prices recomputation
    /// per 512-bit row segment).
    pub ecc_row_bits: usize,
    /// Use IARM planning (otherwise full rippling).
    pub iarm: bool,
    /// DRAM geometry.
    pub dram: DramConfig,
    /// Timing parameters.
    pub timing: TimingParams,
    /// Energy model.
    pub energy: EnergyModel,
    /// Area model.
    pub area: AreaModel,
}

impl EngineConfig {
    /// The paper's C2M:X configuration: radix 4, 64-bit capacity,
    /// unprotected, IARM on.
    #[must_use]
    pub fn c2m(banks: usize) -> Self {
        Self {
            radix: 4,
            capacity_bits: 64,
            banks,
            protection: ProtectionKind::None,
            fault_rate: 0.0,
            ecc_row_bits: 512,
            iarm: true,
            dram: DramConfig::ddr5_4400(),
            timing: TimingParams::ddr5_4400(),
            energy: EnergyModel::ddr5_4400(),
            area: AreaModel::ddr5_4400(),
        }
    }

    /// Protected configuration of §7.3.2: ECC with one extra FR round
    /// (2 FR checks) at an inherent fault rate of 10⁻⁴.
    #[must_use]
    pub fn c2m_protected(banks: usize) -> Self {
        Self {
            protection: ProtectionKind::Ecc {
                fr_checks: 2,
                fuse_inverted_feedback: false,
            },
            fault_rate: 1e-4,
            ..Self::c2m(banks)
        }
    }
}

/// The analytic Count2Multiply engine.
#[derive(Debug, Clone)]
pub struct C2mEngine {
    cfg: EngineConfig,
    code: JohnsonCode,
    digits: usize,
}

impl C2mEngine {
    /// Creates an engine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics on invalid radix/capacity combinations.
    #[must_use]
    pub fn new(cfg: EngineConfig) -> Self {
        let code = JohnsonCode::for_radix(cfg.radix);
        let digits = digits_for_capacity(cfg.radix, cfg.capacity_bits);
        Self { cfg, code, digits }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Digits per accumulator.
    #[must_use]
    pub fn digits(&self) -> usize {
        self.digits
    }

    /// AAP/AP macro commands for one k-ary increment under the configured
    /// protection, including the expected detected-fault recompute
    /// overhead (§7.3.2's ~19.6 %).
    #[must_use]
    pub fn ops_per_sequence(&self) -> f64 {
        let base = self.cfg.protection.ambit_increment_ops(self.code.bits()) as f64;
        match self.cfg.protection {
            ProtectionKind::Ecc { fr_checks, .. } if self.cfg.fault_rate > 0.0 => {
                let a = ProtectionAnalysis {
                    fault_rate: self.cfg.fault_rate,
                    fr_checks,
                };
                base * (1.0 + a.expected_recomputes_per_row(self.cfg.ecc_row_bits))
            }
            _ => base,
        }
    }

    /// Broadcast command *sequences* needed to accumulate the signed
    /// input stream `xs` (zeros skipped, §7.2.3). Runs the real host-side
    /// routine: digit unpacking plus IARM planning (or the oblivious
    /// full-ripple chain when IARM is off).
    #[must_use]
    pub fn sequences_for_stream(&self, xs: &[i64]) -> u64 {
        if self.cfg.iarm {
            let mut planner = IarmPlanner::new(self.cfg.radix, self.digits);
            planner.assume_zero();
            let mut seqs = 0u64;
            // Addition pass, then subtraction pass (host reordering).
            for &x in xs.iter().filter(|&&x| x > 0) {
                seqs += planner.plan_add(x.unsigned_abs() as u128).len() as u64;
            }
            for &x in xs.iter().filter(|&&x| x < 0) {
                seqs += planner.plan_sub(x.unsigned_abs() as u128).len() as u64;
            }
            seqs += planner.flush().len() as u64;
            seqs
        } else {
            // k-ary with per-increment carry rippling (§4.5.1): each
            // non-zero digit pays its increment plus one rippling
            // command sequence — the paper's 2·(7n+7)-per-digit model.
            let mut seqs = 0u64;
            let r = self.cfg.radix as u128;
            for &x in xs.iter().filter(|&&x| x != 0) {
                let mut v = x.unsigned_abs() as u128;
                while v != 0 {
                    if !v.is_multiple_of(r) {
                        seqs += 2;
                    }
                    v /= r;
                }
            }
            seqs
        }
    }

    /// Effective AAP count for accumulating `xs` into one counter slice.
    #[must_use]
    pub fn ops_for_stream(&self, xs: &[i64]) -> f64 {
        self.sequences_for_stream(xs) as f64 * self.ops_per_sequence()
    }

    /// Ternary GEMV report: `y[1×N] = x[1×K] · Z[K×N]` with ternary Z.
    /// Every non-zero `x_i` is accumulated on the +1 plane and
    /// subtracted on the −1 plane, so the command stream sees `x` twice.
    #[must_use]
    pub fn ternary_gemv(&self, x: &[i64], n: usize) -> ExecutionReport {
        let doubled: Vec<i64> = x.iter().copied().chain(x.iter().map(|&v| -v)).collect();
        let accum_ops = self.ops_for_stream(&doubled);
        let total = accum_ops + self.reduction_ops();
        self.report(total, useful_ops(1, n, x.len()))
    }

    /// Ternary GEMM report for `M` output rows, each accumulating the
    /// same-statistics input row `x_sample` (§5.2.2: rows sequential per
    /// bank, counter rows copied out between rows). Unlike a GEMV, a GEMM
    /// has abundant row-level parallelism, so banks each take a share of
    /// the output rows and no partial-sum reduction is needed.
    #[must_use]
    pub fn ternary_gemm(&self, m: usize, n: usize, x_sample: &[i64]) -> ExecutionReport {
        let doubled: Vec<i64> = x_sample
            .iter()
            .copied()
            .chain(x_sample.iter().map(|&v| -v))
            .collect();
        let per_row = self.ops_for_stream(&doubled) + self.copy_out_ops(n);
        self.report(per_row * m as f64, useful_ops(m, n, x_sample.len()))
    }

    /// Integer×integer GEMV via CSD bit-slicing (§5.2.3): the weight
    /// matrix contributes `planes` power-of-two mask planes; the host
    /// replays the input stream once per plane, shifting each value by
    /// the plane's exponent (shifts change which digits are non-zero but
    /// the planner handles that exactly).
    ///
    /// `weight_bits` is the signed weight precision p; the CSD plane
    /// count is `2(p−1)` worst case, but planes whose mask rows are all
    /// zero are skipped by the host, so callers pass the *observed*
    /// plane list via `plane_exponents`.
    #[must_use]
    pub fn int_gemv(
        &self,
        x: &[i64],
        n: usize,
        plane_exponents: &[(u32, bool)],
    ) -> ExecutionReport {
        let mut total = 0.0f64;
        for &(e, neg) in plane_exponents {
            let stream: Vec<i64> = x
                .iter()
                .map(|&v| {
                    let scaled = v << e;
                    if neg {
                        -scaled
                    } else {
                        scaled
                    }
                })
                .collect();
            total += self.ops_for_stream(&stream);
        }
        total += self.reduction_ops();
        self.report(total, useful_ops(1, n, x.len()))
    }

    /// Commands for the log₂(banks) partial-sum merge rounds
    /// (Algorithm 2: 2n unit increments per digit per round, plus mask
    /// staging).
    #[must_use]
    pub fn reduction_ops(&self) -> f64 {
        if self.cfg.banks <= 1 {
            return 0.0;
        }
        let rounds = (self.cfg.banks as f64).log2().ceil();
        let n = self.code.bits() as f64;
        let per_round =
            self.digits as f64 * (2.0 * n) * self.ops_per_sequence() + self.digits as f64 * 2.0;
        rounds * per_round
    }

    /// Commands to copy a finished output row's counters to another
    /// subarray (§5.2.2): one RowClone AAP per counter row per column
    /// slice.
    #[must_use]
    pub fn copy_out_ops(&self, n: usize) -> f64 {
        let slices = n.div_ceil(self.cfg.dram.row_bits_per_rank()).max(1);
        (self.digits * (self.code.bits() + 1)) as f64 * slices as f64
    }

    fn report(&self, total_ops: f64, useful: u64) -> ExecutionReport {
        let interval = steady_state_aap_interval(&self.cfg.timing, self.cfg.banks);
        let elapsed_ns = total_ops * interval;
        let mut stats = CommandStats::default();
        stats.record_n(CommandKind::Aap, total_ops.round() as u64);
        ExecutionReport::from_run(
            elapsed_ns,
            stats,
            useful,
            &self.cfg.energy,
            &self.cfg.area,
            &self.cfg.dram,
        )
    }
}

/// GOPS convention: one MAC = two operations.
#[must_use]
pub fn useful_ops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;

    fn int8_stream(len: usize, seed: u64) -> Vec<i64> {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-128i64..128)).collect()
    }

    #[test]
    fn zero_skipping() {
        let e = C2mEngine::new(EngineConfig::c2m(1));
        let dense = int8_stream(1024, 1);
        let mut sparse = dense.clone();
        for v in sparse.iter_mut().take(900) {
            *v = 0;
        }
        assert!(e.sequences_for_stream(&sparse) < e.sequences_for_stream(&dense) / 4);
        assert_eq!(e.sequences_for_stream(&vec![0i64; 128]), 0);
    }

    #[test]
    fn iarm_reduces_sequences() {
        let mut with = EngineConfig::c2m(1);
        with.iarm = true;
        let mut without = EngineConfig::c2m(1);
        without.iarm = false;
        let xs = int8_stream(2048, 2);
        let a = C2mEngine::new(with).sequences_for_stream(&xs);
        let b = C2mEngine::new(without).sequences_for_stream(&xs);
        assert!(a < b, "IARM {a} vs full ripple {b}");
    }

    #[test]
    fn protection_increases_ops() {
        let plain = C2mEngine::new(EngineConfig::c2m(16));
        let prot = C2mEngine::new(EngineConfig::c2m_protected(16));
        assert!(prot.ops_per_sequence() > 1.5 * plain.ops_per_sequence());
        // §7.3.2: recompute overhead ~20% on top of the 13n+16 detection
        // cost at fault 1e-4.
        let base = ProtectionKind::Ecc {
            fr_checks: 2,
            fuse_inverted_feedback: false,
        }
        .ambit_increment_ops(2) as f64;
        let overhead = prot.ops_per_sequence() / base - 1.0;
        assert!(
            (0.10..0.30).contains(&overhead),
            "correction overhead {overhead}"
        );
    }

    #[test]
    fn bank_scaling_improves_gemv_latency() {
        let xs = int8_stream(8192, 3);
        let t1 = C2mEngine::new(EngineConfig::c2m(1)).ternary_gemv(&xs, 22016);
        let t16 = C2mEngine::new(EngineConfig::c2m(16)).ternary_gemv(&xs, 22016);
        let speedup = t1.elapsed_ns / t16.elapsed_ns;
        assert!((6.0..16.0).contains(&speedup), "16-bank speedup {speedup}");
    }

    #[test]
    fn c2m_beats_simdram_shape() {
        // The headline claim: C2M outperforms RCA-based SIMDRAM on
        // ternary kernels (abstract: up to 10x).
        use c2m_dram::TimingParams;
        let xs = int8_stream(8192, 4);
        let c2m = C2mEngine::new(EngineConfig::c2m(16)).ternary_gemv(&xs, 8192);
        // SIMDRAM ops: 2K sequences of 64-bit RCA (17 ops/bit).
        let simdram_ops = 2.0 * 8192.0 * (17.0 * 64.0);
        let interval = steady_state_aap_interval(&TimingParams::ddr5_4400(), 16);
        let simdram_ns = simdram_ops * interval;
        let speedup = simdram_ns / c2m.elapsed_ns;
        assert!(
            (2.0..=12.0).contains(&speedup),
            "C2M over SIMDRAM speedup {speedup} outside the paper's 2-10x band"
        );
    }

    #[test]
    fn gemm_scales_linearly_in_m() {
        let xs = int8_stream(4096, 5);
        let e = C2mEngine::new(EngineConfig::c2m(16));
        let one = e.ternary_gemm(1, 4096, &xs);
        let many = e.ternary_gemm(64, 4096, &xs);
        let ratio = many.elapsed_ns / one.elapsed_ns;
        assert!((ratio - 64.0).abs() / 64.0 < 0.01, "ratio {ratio}");
    }

    #[test]
    fn int8_gemv_beats_bit_serial_multiplication() {
        // §5.2.3: CSD bit-slicing turns int x int into masked counting;
        // the bit-serial alternative multiplies with W-bit shift-and-add
        // RCAs. Worst-case 8-bit weights need 14 CSD planes.
        let planes: Vec<(u32, bool)> = (0..7u32).flat_map(|e| [(e, false), (e, true)]).collect();
        let xs = int8_stream(4096, 9);
        let e = C2mEngine::new(EngineConfig::c2m(16));
        let c2m = e.int_gemv(&xs, 4096, &planes);
        // Bit-serial baseline: K multiplications, each 8 additions of a
        // 16-bit partial into a 64-bit accumulator (12 AAP/bit as in the
        // SIMDRAM engine), at the same 16-bank interval.
        let simdram_ops = 4096.0 * 8.0 * (12.0 * 64.0);
        let interval = steady_state_aap_interval(&c2m_dram::TimingParams::ddr5_4400(), 16);
        let ratio = simdram_ops * interval / c2m.elapsed_ns;
        assert!(
            ratio > 1.0,
            "counting int8 GEMV should beat bit-serial multiply ({ratio})"
        );
    }

    #[test]
    fn int_gemv_scales_with_plane_count() {
        let xs = int8_stream(1024, 10);
        let e = C2mEngine::new(EngineConfig::c2m(16));
        let few = e.int_gemv(&xs, 1024, &[(0, false), (2, false)]);
        let many: Vec<(u32, bool)> = (0..7u32).flat_map(|p| [(p, false), (p, true)]).collect();
        let all = e.int_gemv(&xs, 1024, &many);
        assert!(all.elapsed_ns > 3.0 * few.elapsed_ns);
    }

    #[test]
    fn reports_have_positive_metrics() {
        let xs = int8_stream(1024, 6);
        let r = C2mEngine::new(EngineConfig::c2m(16)).ternary_gemv(&xs, 4096);
        assert!(r.gops() > 0.0);
        assert!(r.gops_per_watt() > 0.0);
        assert!(r.gops_per_mm2() > 0.0);
        assert!(r.elapsed_ms() > 0.0);
    }
}
