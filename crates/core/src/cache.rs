//! Keyed memoisation of shard plans and stream pricing.
//!
//! Fleet-scale traces (ROADMAP direction 3: millions of served
//! requests) re-price the same (shape, topology, backend-mix) tuple on
//! every batch, and in steady-state serving the same input streams come
//! back again and again — through the serve layer's plan pass, the
//! engine launch, and the power governor's trial-pricing loop. Both
//! recomputations are *exact* to memoise:
//!
//! * **Shard plans** are a pure function of `(axis, extent, topology,
//!   backend policy, sizing)` — the [`PlanKey`]. The cache stores the
//!   built [`ShardPlan`] behind an `Arc` and hands it out on repeats.
//! * **Stream pricing** (the IARM/full-ripple sequence count of
//!   [`crate::engine::C2mEngine::sequences_for_stream`]) is a pure
//!   function of `(radix, digits, iarm-flag, stream values)`. Because
//!   the count depends on the input *values* — the planner really runs
//!   over them — the cache keys on the full stream content: an entry is
//!   only served after an exact slice comparison against the stored
//!   stream, so a cached path can never return anything the uncached
//!   path would not have computed. (The hash bucketing is just an
//!   index; correctness never rests on it.)
//!
//! A [`PlanCache`] is interior-mutable and thread-safe, so one handle
//! can be shared by every engine of a sweep (see
//! [`EngineBuilder::shared_cache`](crate::engine::EngineBuilder::shared_cache))
//! and by the parallel per-shard pricing loops. Hit/miss tallies are
//! surfaced through [`CacheCounters`] on every
//! [`ExecutionReport`](c2m_dram::ExecutionReport).

use crate::shard::{BackendPolicy, ShardAxis, ShardPlan, ShardSizing};
use c2m_dram::{CacheCounters, ExecutionReport};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sizing limits for a [`PlanCache`]. Every map uses epoch eviction:
/// when a map would exceed its cap the whole map is cleared — trivially
/// correct (a cleared entry is just a future miss) and O(1) amortised,
/// which suits the steady-state traces the cache exists for (a working
/// set either fits or churns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum distinct shard plans retained.
    pub max_plans: usize,
    /// Maximum distinct priced streams retained. Each entry owns a copy
    /// of its stream, so memory is bounded by `max_streams × longest
    /// stream`.
    pub max_streams: usize,
    /// Maximum whole-launch [`ExecutionReport`]s retained. `0` disables
    /// the report tier entirely (no entries, no tallies) — useful when
    /// a caller wants to keep measuring or exercising the re-fold path
    /// while still sharing warm plan/stream tiers.
    pub max_reports: usize,
}

impl Default for CacheConfig {
    /// 1024 plans / 8192 streams / 1024 reports: a steady-state serving
    /// working set (tens of tenants × shapes) fits with two orders of
    /// magnitude to spare, while the worst case stays a few hundred MB.
    fn default() -> Self {
        Self {
            max_plans: 1024,
            max_streams: 8192,
            max_reports: 1024,
        }
    }
}

/// Cache key of one shard plan: everything
/// [`ShardPlanner`](crate::shard::ShardPlanner) reads when splitting an
/// axis. `topology_fp` is the exact packed encoding of
/// [`Topology::fingerprint`](c2m_dram::Topology::fingerprint), and
/// `sizing` holds the weight bit patterns of a
/// [`ShardSizing::Weighted`] (empty for [`ShardSizing::Even`]) so the
/// key stays hashable without losing any f64 exactness.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanKey {
    /// Partitioned kernel axis.
    pub axis: ShardAxis,
    /// Axis extent (rows, K, or plane count).
    pub total: usize,
    /// Packed topology geometry.
    pub topology_fp: u64,
    /// Backend dispatch policy.
    pub policy: BackendPolicy,
    /// Weight bit patterns (empty = even sizing).
    pub sizing: Vec<u64>,
}

impl PlanKey {
    /// Encodes a sizing policy into the key's weight-bits form.
    #[must_use]
    pub fn sizing_bits(sizing: &ShardSizing) -> Vec<u64> {
        match sizing {
            ShardSizing::Even => Vec::new(),
            ShardSizing::Weighted(w) => w.iter().map(|v| v.to_bits()).collect(),
        }
    }
}

/// Identity of a priced stream: the engine parameters
/// [`sequences_for_stream`](crate::engine::C2mEngine::sequences_for_stream)
/// reads, plus whether the stream is the doubled ternary form of the
/// stored values (`x` then `−x`), so ternary callers can key on the
/// undoubled input and skip materialising the doubled copy on a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct StreamParams {
    pub(crate) radix: usize,
    pub(crate) digits: usize,
    pub(crate) iarm: bool,
    pub(crate) doubled: bool,
}

#[derive(Debug)]
struct StreamEntry {
    params: StreamParams,
    xs: Box<[i64]>,
    seqs: u64,
}

/// Owned identity of a memoised whole launch: which kernel entry point
/// ran and the full input content it ran over. Content is stored, not
/// hashed, so the [`ReportCache`] equality gate can compare exactly —
/// the same rule the stream tier follows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportKernel {
    /// [`ternary_gemv`](crate::engine::C2mEngine::ternary_gemv) over
    /// `x` with `n` output rows.
    TernaryGemv {
        /// Output rows.
        n: usize,
        /// Input stream.
        x: Box<[i64]>,
    },
    /// [`ternary_gemv_batch`](crate::engine::C2mEngine::ternary_gemv_batch)
    /// over the batch `xs` with `n` output rows each.
    TernaryGemvBatch {
        /// Output rows per request.
        n: usize,
        /// One input stream per batched request.
        xs: Box<[Box<[i64]>]>,
    },
    /// Row-sharded GEMM pricing
    /// ([`ternary_gemm`](crate::engine::C2mEngine::ternary_gemm) when
    /// `doubled`, [`binary_gemm`](crate::engine::C2mEngine::binary_gemm)
    /// otherwise) over an `m × n` output and a sampled column stream.
    Rows {
        /// Output rows.
        m: usize,
        /// Output columns.
        n: usize,
        /// Whether the sample stream is priced in doubled ternary form.
        doubled: bool,
        /// Sampled per-column input stream (length = inner dimension).
        sample: Box<[i64]>,
    },
    /// [`int_gemv`](crate::engine::C2mEngine::int_gemv) over `x` with
    /// `n` output rows and the given CSD plane decomposition.
    IntGemv {
        /// Output rows.
        n: usize,
        /// CSD planes as `(shift, negated)` pairs.
        planes: Box<[(u32, bool)]>,
        /// Input stream.
        x: Box<[i64]>,
    },
}

/// Borrowed view of a [`ReportKernel`], used for lookups so the hit
/// path compares and hashes in place without copying kernel inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKernelRef<'a> {
    /// See [`ReportKernel::TernaryGemv`].
    TernaryGemv {
        /// Output rows.
        n: usize,
        /// Input stream.
        x: &'a [i64],
    },
    /// See [`ReportKernel::TernaryGemvBatch`].
    TernaryGemvBatch {
        /// Output rows per request.
        n: usize,
        /// One input stream per batched request.
        xs: &'a [&'a [i64]],
    },
    /// See [`ReportKernel::Rows`].
    Rows {
        /// Output rows.
        m: usize,
        /// Output columns.
        n: usize,
        /// Whether the sample stream is priced in doubled ternary form.
        doubled: bool,
        /// Sampled per-column input stream.
        sample: &'a [i64],
    },
    /// See [`ReportKernel::IntGemv`].
    IntGemv {
        /// Output rows.
        n: usize,
        /// CSD planes as `(shift, negated)` pairs.
        planes: &'a [(u32, bool)],
        /// Input stream.
        x: &'a [i64],
    },
}

impl ReportKernelRef<'_> {
    fn to_owned_kernel(self) -> ReportKernel {
        match self {
            Self::TernaryGemv { n, x } => ReportKernel::TernaryGemv { n, x: x.into() },
            Self::TernaryGemvBatch { n, xs } => ReportKernel::TernaryGemvBatch {
                n,
                xs: xs.iter().map(|&row| Box::from(row)).collect(),
            },
            Self::Rows {
                m,
                n,
                doubled,
                sample,
            } => ReportKernel::Rows {
                m,
                n,
                doubled,
                sample: sample.into(),
            },
            Self::IntGemv { n, planes, x } => ReportKernel::IntGemv {
                n,
                planes: planes.into(),
                x: x.into(),
            },
        }
    }
}

impl ReportKernel {
    /// Runs `f` on a borrowed view of this kernel (the batch variant
    /// materialises its row-slice table on the stack of the call).
    fn with_ref<R>(&self, f: impl FnOnce(ReportKernelRef<'_>) -> R) -> R {
        match self {
            Self::TernaryGemv { n, x } => f(ReportKernelRef::TernaryGemv { n: *n, x }),
            Self::TernaryGemvBatch { n, xs } => {
                let rows: Vec<&[i64]> = xs.iter().map(AsRef::as_ref).collect();
                f(ReportKernelRef::TernaryGemvBatch { n: *n, xs: &rows })
            }
            Self::Rows {
                m,
                n,
                doubled,
                sample,
            } => f(ReportKernelRef::Rows {
                m: *m,
                n: *n,
                doubled: *doubled,
                sample,
            }),
            Self::IntGemv { n, planes, x } => f(ReportKernelRef::IntGemv { n: *n, planes, x }),
        }
    }
}

#[derive(Debug)]
struct ReportEntry {
    cfg_words: Box<[u64]>,
    kernel: ReportKernel,
    report: ExecutionReport,
}

/// Whole-launch memo table: `(engine-config words, kernel identity) →`
/// [`ExecutionReport`]. A hit clones the stored report and skips the
/// entire plan/price/fold pipeline.
///
/// `cfg_words` must be an *injective* encoding of everything the engine
/// reads when folding a launch — see
/// [`C2mEngine::report_key_words`](crate::engine::C2mEngine::report_key_words),
/// whose field coverage the `cache-key-completeness` lint enforces. As
/// with the stream tier, entries are served only after full equality of
/// both the config words and the kernel content, so a cached launch is
/// bit-for-bit the launch the uncached engine would have folded.
#[derive(Debug)]
pub struct ReportCache {
    max: usize,
    entries: Mutex<BTreeMap<u64, ReportEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ReportCache {
    fn new(max: usize) -> Self {
        Self {
            max,
            entries: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Whether the tier is enabled (`max_reports > 0`). Disabled tiers
    /// never store, serve, or tally anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.max > 0
    }

    /// The stored report for `(cfg_words, kernel)`, if one exists.
    /// Counts a hit or a miss unless the tier is disabled. The caller
    /// re-stamps the clone's `cache` field — the stored snapshot
    /// belongs to the run that produced it.
    #[must_use]
    pub fn lookup(
        &self,
        cfg_words: &[u64],
        kernel: ReportKernelRef<'_>,
    ) -> Option<ExecutionReport> {
        if !self.enabled() {
            return None;
        }
        let index = report_index(cfg_words, kernel);
        {
            let map = self.entries.lock().expect("report cache poisoned");
            if let Some(entry) = map.get(&index) {
                // Exactness gate: serve only on full equality of the
                // config encoding and the kernel content.
                if entry.cfg_words.as_ref() == cfg_words
                    && entry.kernel.with_ref(|stored| stored == kernel)
                {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(entry.report.clone());
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores `report` under `(cfg_words, kernel)`. No-op when the tier
    /// is disabled.
    pub fn insert(&self, cfg_words: &[u64], kernel: ReportKernelRef<'_>, report: &ExecutionReport) {
        if !self.enabled() {
            return;
        }
        let index = report_index(cfg_words, kernel);
        let mut map = self.entries.lock().expect("report cache poisoned");
        if map.len() >= self.max {
            map.clear();
        }
        map.insert(
            index,
            ReportEntry {
                cfg_words: cfg_words.into(),
                kernel: kernel.to_owned_kernel(),
                report: report.clone(),
            },
        );
    }
}

/// Thread-safe memo table for shard plans and stream sequence counts.
///
/// Cached results are bit-for-bit identical to uncached computation by
/// construction: plans are served only on full [`PlanKey`] equality,
/// stream counts only after comparing the stored stream's values (and
/// parameters) with the query's. Collisions in the index hash therefore
/// cost a recomputation, never an incorrect answer.
#[derive(Debug)]
pub struct PlanCache {
    cfg: CacheConfig,
    plans: Mutex<BTreeMap<PlanKey, Arc<ShardPlan>>>,
    streams: Mutex<BTreeMap<u64, StreamEntry>>,
    reports: ReportCache,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    stream_hits: AtomicU64,
    stream_misses: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(CacheConfig::default())
    }
}

impl PlanCache {
    /// An empty cache with the given limits.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        Self {
            cfg,
            plans: Mutex::new(BTreeMap::new()),
            streams: Mutex::new(BTreeMap::new()),
            reports: ReportCache::new(cfg.max_reports),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            stream_hits: AtomicU64::new(0),
            stream_misses: AtomicU64::new(0),
        }
    }

    /// The limits in force.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// The whole-launch report tier.
    #[must_use]
    pub fn reports(&self) -> &ReportCache {
        &self.reports
    }

    /// Cumulative hit/miss tallies.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            stream_hits: self.stream_hits.load(Ordering::Relaxed),
            stream_misses: self.stream_misses.load(Ordering::Relaxed),
            report_hits: self.reports.hits.load(Ordering::Relaxed),
            report_misses: self.reports.misses.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry (tallies are kept — they count lookups, not
    /// contents).
    pub fn clear(&self) {
        self.plans.lock().expect("plan cache poisoned").clear();
        self.streams.lock().expect("stream cache poisoned").clear();
        self.reports
            .entries
            .lock()
            .expect("report cache poisoned")
            .clear();
    }

    /// The plan under `key`, building it with `build` on a miss.
    pub fn plan(&self, key: &PlanKey, build: impl FnOnce() -> ShardPlan) -> Arc<ShardPlan> {
        if let Some(plan) = self.plans.lock().expect("plan cache poisoned").get(key) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(plan);
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build());
        let mut map = self.plans.lock().expect("plan cache poisoned");
        if map.len() >= self.cfg.max_plans {
            map.clear();
        }
        map.insert(key.clone(), Arc::clone(&plan));
        plan
    }

    /// The sequence count of the stream identified by
    /// `(radix, digits, iarm, doubled, xs)`, computing it with `compute`
    /// on a miss. `xs` is the *undoubled* values when `doubled` is true;
    /// `compute` receives nothing and must price the effective stream.
    pub fn sequences(
        &self,
        radix: usize,
        digits: usize,
        iarm: bool,
        doubled: bool,
        xs: &[i64],
        compute: impl FnOnce() -> u64,
    ) -> u64 {
        let params = StreamParams {
            radix,
            digits,
            iarm,
            doubled,
        };
        let index = stream_index(params, xs);
        {
            let map = self.streams.lock().expect("stream cache poisoned");
            if let Some(entry) = map.get(&index) {
                // Exactness gate: serve only on full value equality.
                if entry.params == params && entry.xs.as_ref() == xs {
                    self.stream_hits.fetch_add(1, Ordering::Relaxed);
                    return entry.seqs;
                }
            }
        }
        self.stream_misses.fetch_add(1, Ordering::Relaxed);
        let seqs = compute();
        let mut map = self.streams.lock().expect("stream cache poisoned");
        if map.len() >= self.cfg.max_streams {
            map.clear();
        }
        map.insert(
            index,
            StreamEntry {
                params,
                xs: xs.into(),
                seqs,
            },
        );
        seqs
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a word stream, one little-endian u64 at a time. All map
/// *indices* in this module use this: collisions degrade to
/// recomputation (the entry fails the equality gate and is replaced),
/// so the hash needs to be fast and well-distributed, not
/// cryptographic.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(FNV_OFFSET)
    }

    fn eat(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// One xor-multiply step per whole word — 8× fewer multiplies than
    /// [`Self::eat`], slightly worse diffusion. The report index hashes
    /// entire kernel inputs on every launch, so it takes the fast step
    /// (a weaker index only ever costs a recomputation).
    fn eat_word(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }
}

/// Index of a stream entry (see [`Fnv`]).
fn stream_index(params: StreamParams, xs: &[i64]) -> u64 {
    let mut h = Fnv::new();
    h.eat(params.radix as u64);
    h.eat(params.digits as u64);
    h.eat(u64::from(params.iarm) << 1 | u64::from(params.doubled));
    h.eat(xs.len() as u64);
    for &x in xs {
        h.eat(x as u64);
    }
    h.0
}

/// Index of a report entry (see [`Fnv`]): the config words, then a
/// kernel variant tag, then the length-prefixed kernel payload.
fn report_index(cfg_words: &[u64], kernel: ReportKernelRef<'_>) -> u64 {
    let mut h = Fnv::new();
    h.eat_word(cfg_words.len() as u64);
    for &w in cfg_words {
        h.eat_word(w);
    }
    match kernel {
        ReportKernelRef::TernaryGemv { n, x } => {
            h.eat_word(0);
            h.eat_word(n as u64);
            h.eat_word(x.len() as u64);
            for &v in x {
                h.eat_word(v as u64);
            }
        }
        ReportKernelRef::TernaryGemvBatch { n, xs } => {
            h.eat_word(1);
            h.eat_word(n as u64);
            h.eat_word(xs.len() as u64);
            for row in xs {
                h.eat_word(row.len() as u64);
                for &v in *row {
                    h.eat_word(v as u64);
                }
            }
        }
        ReportKernelRef::Rows {
            m,
            n,
            doubled,
            sample,
        } => {
            h.eat_word(2);
            h.eat_word(m as u64);
            h.eat_word(n as u64);
            h.eat_word(u64::from(doubled));
            h.eat_word(sample.len() as u64);
            for &v in sample {
                h.eat_word(v as u64);
            }
        }
        ReportKernelRef::IntGemv { n, planes, x } => {
            h.eat_word(3);
            h.eat_word(n as u64);
            h.eat_word(planes.len() as u64);
            for &(shift, neg) in planes {
                h.eat_word(u64::from(shift) << 1 | u64::from(neg));
            }
            h.eat_word(x.len() as u64);
            for &v in x {
                h.eat_word(v as u64);
            }
        }
    }
    h.0
}

/// Full contents of a [`PlanCache`] (entries only — tallies count
/// lookups, not contents, and are never persisted). The bridge between
/// the live maps and [`CacheStore`](crate::store::CacheStore)'s on-disk
/// word encoding.
#[derive(Debug, Default)]
pub(crate) struct CacheContents {
    pub(crate) plans: Vec<(PlanKey, ShardPlan)>,
    pub(crate) streams: Vec<(StreamParams, Box<[i64]>, u64)>,
    pub(crate) reports: Vec<(Box<[u64]>, ReportKernel, ExecutionReport)>,
}

impl PlanCache {
    /// Snapshots every entry of every tier.
    pub(crate) fn export_contents(&self) -> CacheContents {
        CacheContents {
            plans: self
                .plans
                .lock()
                .expect("plan cache poisoned")
                .iter()
                .map(|(k, p)| (k.clone(), (**p).clone()))
                .collect(),
            streams: self
                .streams
                .lock()
                .expect("stream cache poisoned")
                .values()
                .map(|e| (e.params, e.xs.clone(), e.seqs))
                .collect(),
            reports: self
                .reports
                .entries
                .lock()
                .expect("report cache poisoned")
                .values()
                .map(|e| (e.cfg_words.clone(), e.kernel.clone(), e.report.clone()))
                .collect(),
        }
    }

    /// Installs snapshotted entries, respecting this cache's caps and
    /// leaving the tallies untouched (a restored entry is neither a hit
    /// nor a miss until something looks it up). Indices are recomputed
    /// from content, so a snapshot survives hash-function changes.
    pub(crate) fn import_contents(&self, contents: CacheContents) {
        {
            let mut map = self.plans.lock().expect("plan cache poisoned");
            for (key, plan) in contents.plans {
                if map.len() >= self.cfg.max_plans {
                    break;
                }
                map.insert(key, Arc::new(plan));
            }
        }
        {
            let mut map = self.streams.lock().expect("stream cache poisoned");
            for (params, xs, seqs) in contents.streams {
                if map.len() >= self.cfg.max_streams {
                    break;
                }
                let index = stream_index(params, &xs);
                map.insert(index, StreamEntry { params, xs, seqs });
            }
        }
        if self.reports.enabled() {
            let mut map = self.reports.entries.lock().expect("report cache poisoned");
            for (cfg_words, kernel, report) in contents.reports {
                if map.len() >= self.cfg.max_reports {
                    break;
                }
                let index = kernel.with_ref(|k| report_index(&cfg_words, k));
                map.insert(
                    index,
                    ReportEntry {
                        cfg_words,
                        kernel,
                        report,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2m_cim::Backend;
    use c2m_dram::Topology;

    fn key(total: usize) -> PlanKey {
        PlanKey {
            axis: ShardAxis::InnerDim,
            total,
            topology_fp: Topology::single(16).fingerprint(),
            policy: BackendPolicy::Uniform(Backend::Ambit),
            sizing: PlanKey::sizing_bits(&ShardSizing::Even),
        }
    }

    fn plan(total: usize) -> ShardPlan {
        crate::shard::ShardPlanner::new(Topology::single(16)).plan_inner(total)
    }

    #[test]
    fn plan_lookups_count_hits_and_misses() {
        let c = PlanCache::default();
        let a = c.plan(&key(64), || plan(64));
        let b = c.plan(&key(64), || unreachable!("second lookup must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        let c64 = c.plan(&key(128), || plan(128));
        assert_eq!(c64.total, 128);
        let t = c.counters();
        assert_eq!((t.plan_hits, t.plan_misses), (1, 2));
    }

    #[test]
    fn stream_lookups_serve_only_exact_content() {
        let c = PlanCache::default();
        let xs = vec![1i64, -2, 3, 0, 5];
        let a = c.sequences(4, 32, true, false, &xs, || 42);
        assert_eq!(a, 42);
        let b = c.sequences(4, 32, true, false, &xs, || unreachable!());
        assert_eq!(b, 42);
        // Different values, params, or doubling flag must all miss.
        let mut ys = xs.clone();
        ys[4] = 6;
        assert_eq!(c.sequences(4, 32, true, false, &ys, || 7), 7);
        assert_eq!(c.sequences(4, 32, false, false, &xs, || 8), 8);
        assert_eq!(c.sequences(4, 32, true, true, &xs, || 9), 9);
        let t = c.counters();
        assert_eq!((t.stream_hits, t.stream_misses), (1, 4));
    }

    #[test]
    fn epoch_eviction_bounds_entries_without_breaking_results() {
        let c = PlanCache::new(CacheConfig {
            max_plans: 2,
            max_streams: 2,
            max_reports: 2,
        });
        for total in 1..=10usize {
            let p = c.plan(&key(total), || plan(total));
            assert_eq!(p.total, total, "evicted caches still build correctly");
            let s = c.sequences(4, 32, true, false, &[total as i64], || total as u64);
            assert_eq!(s, total as u64);
        }
        assert!(c.plans.lock().unwrap().len() <= 2);
        assert!(c.streams.lock().unwrap().len() <= 2);
    }

    #[test]
    fn clear_keeps_tallies() {
        let c = PlanCache::default();
        let _ = c.plan(&key(1), || plan(1));
        c.clear();
        let _ = c.plan(&key(1), || plan(1));
        let t = c.counters();
        assert_eq!(t.plan_misses, 2, "cleared entry is a future miss");
    }

    fn fake_report(elapsed_ns: f64) -> ExecutionReport {
        ExecutionReport {
            elapsed_ns,
            stats: c2m_dram::CommandStats::default(),
            energy_nj: 2.0 * elapsed_ns,
            useful_ops: 7,
            area_mm2: 1.0,
            energy: c2m_dram::EnergyBreakdown::default(),
            cache: CacheCounters::default(),
        }
    }

    #[test]
    fn report_lookups_serve_only_exact_config_and_kernel() {
        let c = PlanCache::default();
        let words = [1u64, 2, 3];
        let xs = [1i64, -2, 3];
        let k = ReportKernelRef::TernaryGemv { n: 16, x: &xs };
        assert!(c.reports().lookup(&words, k).is_none());
        c.reports().insert(&words, k, &fake_report(10.0));
        let hit = c.reports().lookup(&words, k).expect("exact repeat hits");
        assert_eq!(hit.elapsed_ns.to_bits(), 10.0f64.to_bits());
        // Different config words, kernel shape, or content must miss.
        assert!(c.reports().lookup(&[1, 2, 4], k).is_none());
        assert!(c
            .reports()
            .lookup(&words, ReportKernelRef::TernaryGemv { n: 17, x: &xs })
            .is_none());
        assert!(c
            .reports()
            .lookup(
                &words,
                ReportKernelRef::Rows {
                    m: 16,
                    n: 16,
                    doubled: true,
                    sample: &xs
                }
            )
            .is_none());
        let t = c.counters();
        assert_eq!((t.report_hits, t.report_misses), (1, 4));
    }

    #[test]
    fn disabled_report_tier_never_stores_or_tallies() {
        let c = PlanCache::new(CacheConfig {
            max_reports: 0,
            ..CacheConfig::default()
        });
        let xs = [4i64, 5];
        let k = ReportKernelRef::TernaryGemv { n: 8, x: &xs };
        assert!(!c.reports().enabled());
        c.reports().insert(&[9], k, &fake_report(1.0));
        assert!(c.reports().lookup(&[9], k).is_none());
        let t = c.counters();
        assert_eq!((t.report_hits, t.report_misses), (0, 0));
    }

    #[test]
    fn contents_round_trip_through_export_import() {
        let c = PlanCache::default();
        let _ = c.plan(&key(64), || plan(64));
        let xs = vec![1i64, -2, 3];
        let _ = c.sequences(4, 32, true, false, &xs, || 42);
        let k = ReportKernelRef::TernaryGemv { n: 16, x: &xs };
        c.reports().insert(&[5, 6], k, &fake_report(3.5));

        let fresh = PlanCache::default();
        fresh.import_contents(c.export_contents());
        // Imports never count as lookups…
        assert_eq!(fresh.counters(), CacheCounters::default());
        // …but every tier serves the restored entries.
        let p = fresh.plan(&key(64), || unreachable!("restored plan must hit"));
        assert_eq!(p.total, 64);
        assert_eq!(
            fresh.sequences(4, 32, true, false, &xs, || unreachable!()),
            42
        );
        let hit = fresh.reports().lookup(&[5, 6], k).expect("restored report");
        assert_eq!(hit.elapsed_ns.to_bits(), 3.5f64.to_bits());
    }

    #[test]
    fn sizing_bits_distinguish_weight_vectors() {
        let even = PlanKey::sizing_bits(&ShardSizing::Even);
        let w1 = PlanKey::sizing_bits(&ShardSizing::Weighted(vec![1.0, 2.0]));
        let w2 = PlanKey::sizing_bits(&ShardSizing::Weighted(vec![1.0, 2.5]));
        assert!(even.is_empty());
        assert_ne!(w1, w2);
    }
}
