//! Keyed memoisation of shard plans and stream pricing.
//!
//! Fleet-scale traces (ROADMAP direction 3: millions of served
//! requests) re-price the same (shape, topology, backend-mix) tuple on
//! every batch, and in steady-state serving the same input streams come
//! back again and again — through the serve layer's plan pass, the
//! engine launch, and the power governor's trial-pricing loop. Both
//! recomputations are *exact* to memoise:
//!
//! * **Shard plans** are a pure function of `(axis, extent, topology,
//!   backend policy, sizing)` — the [`PlanKey`]. The cache stores the
//!   built [`ShardPlan`] behind an `Arc` and hands it out on repeats.
//! * **Stream pricing** (the IARM/full-ripple sequence count of
//!   [`crate::engine::C2mEngine::sequences_for_stream`]) is a pure
//!   function of `(radix, digits, iarm-flag, stream values)`. Because
//!   the count depends on the input *values* — the planner really runs
//!   over them — the cache keys on the full stream content: an entry is
//!   only served after an exact slice comparison against the stored
//!   stream, so a cached path can never return anything the uncached
//!   path would not have computed. (The hash bucketing is just an
//!   index; correctness never rests on it.)
//!
//! A [`PlanCache`] is interior-mutable and thread-safe, so one handle
//! can be shared by every engine of a sweep (see
//! [`EngineBuilder::shared_cache`](crate::engine::EngineBuilder::shared_cache))
//! and by the parallel per-shard pricing loops. Hit/miss tallies are
//! surfaced through [`CacheCounters`] on every
//! [`ExecutionReport`](c2m_dram::ExecutionReport).

use crate::shard::{BackendPolicy, ShardAxis, ShardPlan, ShardSizing};
use c2m_dram::CacheCounters;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sizing limits for a [`PlanCache`]. Both maps use epoch eviction:
/// when a map would exceed its cap the whole map is cleared — trivially
/// correct (a cleared entry is just a future miss) and O(1) amortised,
/// which suits the steady-state traces the cache exists for (a working
/// set either fits or churns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum distinct shard plans retained.
    pub max_plans: usize,
    /// Maximum distinct priced streams retained. Each entry owns a copy
    /// of its stream, so memory is bounded by `max_streams × longest
    /// stream`.
    pub max_streams: usize,
}

impl Default for CacheConfig {
    /// 1024 plans / 8192 streams: a steady-state serving working set
    /// (tens of tenants × shapes) fits with two orders of magnitude to
    /// spare, while the worst case stays a few hundred MB.
    fn default() -> Self {
        Self {
            max_plans: 1024,
            max_streams: 8192,
        }
    }
}

/// Cache key of one shard plan: everything
/// [`ShardPlanner`](crate::shard::ShardPlanner) reads when splitting an
/// axis. `topology_fp` is the exact packed encoding of
/// [`Topology::fingerprint`](c2m_dram::Topology::fingerprint), and
/// `sizing` holds the weight bit patterns of a
/// [`ShardSizing::Weighted`] (empty for [`ShardSizing::Even`]) so the
/// key stays hashable without losing any f64 exactness.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanKey {
    /// Partitioned kernel axis.
    pub axis: ShardAxis,
    /// Axis extent (rows, K, or plane count).
    pub total: usize,
    /// Packed topology geometry.
    pub topology_fp: u64,
    /// Backend dispatch policy.
    pub policy: BackendPolicy,
    /// Weight bit patterns (empty = even sizing).
    pub sizing: Vec<u64>,
}

impl PlanKey {
    /// Encodes a sizing policy into the key's weight-bits form.
    #[must_use]
    pub fn sizing_bits(sizing: &ShardSizing) -> Vec<u64> {
        match sizing {
            ShardSizing::Even => Vec::new(),
            ShardSizing::Weighted(w) => w.iter().map(|v| v.to_bits()).collect(),
        }
    }
}

/// Identity of a priced stream: the engine parameters
/// [`sequences_for_stream`](crate::engine::C2mEngine::sequences_for_stream)
/// reads, plus whether the stream is the doubled ternary form of the
/// stored values (`x` then `−x`), so ternary callers can key on the
/// undoubled input and skip materialising the doubled copy on a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct StreamParams {
    radix: usize,
    digits: usize,
    iarm: bool,
    doubled: bool,
}

#[derive(Debug)]
struct StreamEntry {
    params: StreamParams,
    xs: Box<[i64]>,
    seqs: u64,
}

/// Thread-safe memo table for shard plans and stream sequence counts.
///
/// Cached results are bit-for-bit identical to uncached computation by
/// construction: plans are served only on full [`PlanKey`] equality,
/// stream counts only after comparing the stored stream's values (and
/// parameters) with the query's. Collisions in the index hash therefore
/// cost a recomputation, never an incorrect answer.
#[derive(Debug)]
pub struct PlanCache {
    cfg: CacheConfig,
    plans: Mutex<BTreeMap<PlanKey, Arc<ShardPlan>>>,
    streams: Mutex<BTreeMap<u64, StreamEntry>>,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    stream_hits: AtomicU64,
    stream_misses: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(CacheConfig::default())
    }
}

impl PlanCache {
    /// An empty cache with the given limits.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        Self {
            cfg,
            plans: Mutex::new(BTreeMap::new()),
            streams: Mutex::new(BTreeMap::new()),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            stream_hits: AtomicU64::new(0),
            stream_misses: AtomicU64::new(0),
        }
    }

    /// The limits in force.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Cumulative hit/miss tallies.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            stream_hits: self.stream_hits.load(Ordering::Relaxed),
            stream_misses: self.stream_misses.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry (tallies are kept — they count lookups, not
    /// contents).
    pub fn clear(&self) {
        self.plans.lock().expect("plan cache poisoned").clear();
        self.streams.lock().expect("stream cache poisoned").clear();
    }

    /// The plan under `key`, building it with `build` on a miss.
    pub fn plan(&self, key: &PlanKey, build: impl FnOnce() -> ShardPlan) -> Arc<ShardPlan> {
        if let Some(plan) = self.plans.lock().expect("plan cache poisoned").get(key) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(plan);
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build());
        let mut map = self.plans.lock().expect("plan cache poisoned");
        if map.len() >= self.cfg.max_plans {
            map.clear();
        }
        map.insert(key.clone(), Arc::clone(&plan));
        plan
    }

    /// The sequence count of the stream identified by
    /// `(radix, digits, iarm, doubled, xs)`, computing it with `compute`
    /// on a miss. `xs` is the *undoubled* values when `doubled` is true;
    /// `compute` receives nothing and must price the effective stream.
    pub fn sequences(
        &self,
        radix: usize,
        digits: usize,
        iarm: bool,
        doubled: bool,
        xs: &[i64],
        compute: impl FnOnce() -> u64,
    ) -> u64 {
        let params = StreamParams {
            radix,
            digits,
            iarm,
            doubled,
        };
        let index = stream_index(params, xs);
        {
            let map = self.streams.lock().expect("stream cache poisoned");
            if let Some(entry) = map.get(&index) {
                // Exactness gate: serve only on full value equality.
                if entry.params == params && entry.xs.as_ref() == xs {
                    self.stream_hits.fetch_add(1, Ordering::Relaxed);
                    return entry.seqs;
                }
            }
        }
        self.stream_misses.fetch_add(1, Ordering::Relaxed);
        let seqs = compute();
        let mut map = self.streams.lock().expect("stream cache poisoned");
        if map.len() >= self.cfg.max_streams {
            map.clear();
        }
        map.insert(
            index,
            StreamEntry {
                params,
                xs: xs.into(),
                seqs,
            },
        );
        seqs
    }
}

/// FNV-1a over the stream parameters and values: the *index* of the
/// stream map. Collisions degrade to recomputation (the entry fails the
/// equality gate and is replaced), so this needs to be fast and
/// well-distributed, not cryptographic.
fn stream_index(params: StreamParams, xs: &[i64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(params.radix as u64);
    eat(params.digits as u64);
    eat(u64::from(params.iarm) << 1 | u64::from(params.doubled));
    eat(xs.len() as u64);
    for &x in xs {
        eat(x as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2m_cim::Backend;
    use c2m_dram::Topology;

    fn key(total: usize) -> PlanKey {
        PlanKey {
            axis: ShardAxis::InnerDim,
            total,
            topology_fp: Topology::single(16).fingerprint(),
            policy: BackendPolicy::Uniform(Backend::Ambit),
            sizing: PlanKey::sizing_bits(&ShardSizing::Even),
        }
    }

    fn plan(total: usize) -> ShardPlan {
        crate::shard::ShardPlanner::new(Topology::single(16)).plan_inner(total)
    }

    #[test]
    fn plan_lookups_count_hits_and_misses() {
        let c = PlanCache::default();
        let a = c.plan(&key(64), || plan(64));
        let b = c.plan(&key(64), || unreachable!("second lookup must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        let c64 = c.plan(&key(128), || plan(128));
        assert_eq!(c64.total, 128);
        let t = c.counters();
        assert_eq!((t.plan_hits, t.plan_misses), (1, 2));
    }

    #[test]
    fn stream_lookups_serve_only_exact_content() {
        let c = PlanCache::default();
        let xs = vec![1i64, -2, 3, 0, 5];
        let a = c.sequences(4, 32, true, false, &xs, || 42);
        assert_eq!(a, 42);
        let b = c.sequences(4, 32, true, false, &xs, || unreachable!());
        assert_eq!(b, 42);
        // Different values, params, or doubling flag must all miss.
        let mut ys = xs.clone();
        ys[4] = 6;
        assert_eq!(c.sequences(4, 32, true, false, &ys, || 7), 7);
        assert_eq!(c.sequences(4, 32, false, false, &xs, || 8), 8);
        assert_eq!(c.sequences(4, 32, true, true, &xs, || 9), 9);
        let t = c.counters();
        assert_eq!((t.stream_hits, t.stream_misses), (1, 4));
    }

    #[test]
    fn epoch_eviction_bounds_entries_without_breaking_results() {
        let c = PlanCache::new(CacheConfig {
            max_plans: 2,
            max_streams: 2,
        });
        for total in 1..=10usize {
            let p = c.plan(&key(total), || plan(total));
            assert_eq!(p.total, total, "evicted caches still build correctly");
            let s = c.sequences(4, 32, true, false, &[total as i64], || total as u64);
            assert_eq!(s, total as u64);
        }
        assert!(c.plans.lock().unwrap().len() <= 2);
        assert!(c.streams.lock().unwrap().len() <= 2);
    }

    #[test]
    fn clear_keeps_tallies() {
        let c = PlanCache::default();
        let _ = c.plan(&key(1), || plan(1));
        c.clear();
        let _ = c.plan(&key(1), || plan(1));
        let t = c.counters();
        assert_eq!(t.plan_misses, 2, "cleared entry is a future miss");
    }

    #[test]
    fn sizing_bits_distinguish_weight_vectors() {
        let even = PlanKey::sizing_bits(&ShardSizing::Even);
        let w1 = PlanKey::sizing_bits(&ShardSizing::Weighted(vec![1.0, 2.0]));
        let w2 = PlanKey::sizing_bits(&ShardSizing::Weighted(vec![1.0, 2.5]));
        assert!(even.is_empty());
        assert_ne!(w1, w2);
    }
}
