//! Persistent cache store: snapshot a warm [`PlanCache`] to a file and
//! reload it in a later process.
//!
//! PR 6 made repeated work cheap *within* a process; every new process
//! still pays the full cold start. [`CacheStore`] closes that gap for
//! the sweep binaries and benches (`--cache-dir`) and for
//! [`EngineBuilder::cache_path`](crate::engine::EngineBuilder::cache_path):
//! all three cache tiers — shard plans, priced streams and whole launch
//! reports — serialise through the vendored serde shim and restore into
//! a fresh cache with their equality-gate content intact, so a restored
//! entry is exactly as trustworthy as a freshly computed one.
//!
//! # Format
//!
//! A store file is a JSON object with four keys:
//!
//! * `magic` — the literal `"c2m-cache"`.
//! * `format_version` — [`CacheStore::FORMAT_VERSION`]; bumped whenever
//!   the word layout below changes.
//! * `fingerprint_scheme` — [`Topology::FINGERPRINT_SCHEME`]; plan keys
//!   embed topology fingerprints, which are only comparable under the
//!   scheme that packed them.
//! * `words` — the cache contents as a flat `u64` word stream
//!   (length-prefixed sections; floats as IEEE-754 bit patterns; the
//!   vendored `serde_json` round-trips integers exactly, so every word
//!   survives the text encoding bit-for-bit).
//!
//! **Stale or mismatched files are ignored, never trusted**: any guard
//! failure — missing file, wrong magic, version or scheme mismatch,
//! malformed JSON, truncated or nonsensical words — makes
//! [`CacheStore::load_into`] return `false` and leave the cache cold.
//! Loading never panics on file content.

use crate::cache::{CacheContents, PlanCache, PlanKey, ReportKernel, StreamParams};
use crate::shard::{BackendPolicy, Shard, ShardAxis, ShardPlan};
use c2m_cim::Backend;
use c2m_dram::{
    CacheCounters, CommandKind, CommandStats, EnergyBreakdown, ExecutionReport, ShardEnergy,
    Topology,
};
use serde::Value;
use std::path::Path;

/// Snapshot/load of a [`PlanCache`] to/from a versioned store file.
/// See the [module docs](self) for the format and trust rules.
#[derive(Debug, Clone, Copy)]
pub struct CacheStore;

/// Command kinds in their fixed store order (the order
/// [`CommandStats::iter`] yields). The store encodes one count per kind.
const COMMAND_KINDS: [CommandKind; 7] = [
    CommandKind::Act,
    CommandKind::Pre,
    CommandKind::Aap,
    CommandKind::Ap,
    CommandKind::Apa,
    CommandKind::Rd,
    CommandKind::Wr,
];

const MAGIC: &str = "c2m-cache";

impl CacheStore {
    /// Version of the word layout. Readers reject any other value.
    pub const FORMAT_VERSION: u64 = 1;

    /// Writes `cache`'s entries to `path` (creating parent directories),
    /// replacing any existing file. Tallies are not persisted — they
    /// count lookups, not contents.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from directory creation or the write.
    pub fn save(path: &Path, cache: &PlanCache) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let words = encode(cache.export_contents());
        let file = Value::Object(vec![
            ("magic".into(), Value::Str(MAGIC.into())),
            (
                "format_version".into(),
                Value::Int(i128::from(Self::FORMAT_VERSION)),
            ),
            (
                "fingerprint_scheme".into(),
                Value::Int(i128::from(Topology::FINGERPRINT_SCHEME)),
            ),
            (
                "words".into(),
                Value::Array(
                    words
                        .into_iter()
                        .map(|w| Value::Int(i128::from(w)))
                        .collect(),
                ),
            ),
        ]);
        let text = serde_json::to_string(&file)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, text)
    }

    /// Loads the store file at `path` into `cache`, returning whether
    /// any entries were installed. Every failure path (missing file,
    /// guard mismatch, corruption) returns `false` and leaves `cache`
    /// untouched — a bad file is just a cold start.
    pub fn load_into(path: &Path, cache: &PlanCache) -> bool {
        let Ok(text) = std::fs::read_to_string(path) else {
            return false;
        };
        let Some(contents) = parse(&text) else {
            return false;
        };
        let any = !contents.plans.is_empty()
            || !contents.streams.is_empty()
            || !contents.reports.is_empty();
        cache.import_contents(contents);
        any
    }

    /// Convenience: a fresh [`PlanCache`] with the given limits, warmed
    /// from `path` when the store file is present and valid.
    #[must_use]
    pub fn load(path: &Path, cfg: crate::cache::CacheConfig) -> PlanCache {
        let cache = PlanCache::new(cfg);
        let _ = Self::load_into(path, &cache);
        cache
    }
}

/// Parses and guards a store file, returning its contents or `None`.
fn parse(text: &str) -> Option<CacheContents> {
    let Ok(value) = serde_json::from_str(text) else {
        return None;
    };
    let Value::Object(fields) = value else {
        return None;
    };
    let field = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    match field("magic")? {
        Value::Str(s) if s == MAGIC => {}
        _ => return None,
    }
    if field("format_version")? != &Value::Int(i128::from(CacheStore::FORMAT_VERSION)) {
        return None;
    }
    if field("fingerprint_scheme")? != &Value::Int(i128::from(Topology::FINGERPRINT_SCHEME)) {
        return None;
    }
    let Value::Array(raw) = field("words")? else {
        return None;
    };
    let mut words = Vec::with_capacity(raw.len());
    for v in raw {
        match v {
            Value::Int(i) if (0..=i128::from(u64::MAX)).contains(i) => {
                words.push(*i as u64);
            }
            _ => return None,
        }
    }
    decode(&words)
}

// ---------------------------------------------------------------------
// Word encoding. Every section is length-prefixed; enums are tags;
// floats are IEEE bit patterns; `i64` stream values are stored as their
// two's-complement `u64` bits.

fn encode(contents: CacheContents) -> Vec<u64> {
    let mut w = Vec::new();
    w.push(contents.plans.len() as u64);
    for (key, plan) in &contents.plans {
        encode_plan_key(&mut w, key);
        encode_plan(&mut w, plan);
    }
    w.push(contents.streams.len() as u64);
    for (params, xs, seqs) in &contents.streams {
        w.push(params.radix as u64);
        w.push(params.digits as u64);
        w.push(u64::from(params.iarm));
        w.push(u64::from(params.doubled));
        w.push(xs.len() as u64);
        w.extend(xs.iter().map(|&v| v as u64));
        w.push(*seqs);
    }
    w.push(contents.reports.len() as u64);
    for (cfg_words, kernel, report) in &contents.reports {
        w.push(cfg_words.len() as u64);
        w.extend(cfg_words.iter().copied());
        encode_kernel(&mut w, kernel);
        encode_report(&mut w, report);
    }
    w
}

fn axis_code(axis: ShardAxis) -> u64 {
    match axis {
        ShardAxis::InnerDim => 0,
        ShardAxis::OutputRows => 1,
        ShardAxis::CsdPlanes => 2,
    }
}

fn backend_code(b: Backend) -> u64 {
    match b {
        Backend::Ambit => 0,
        Backend::Fcdram => 1,
        Backend::Pinatubo => 2,
        Backend::Magic => 3,
    }
}

fn encode_policy(w: &mut Vec<u64>, policy: &BackendPolicy) {
    match policy {
        BackendPolicy::Uniform(b) => w.extend([0, backend_code(*b)]),
        BackendPolicy::PerChannel(list) => {
            w.push(1);
            w.push(list.len() as u64);
            w.extend(list.iter().map(|&b| backend_code(b)));
        }
    }
}

fn encode_plan_key(w: &mut Vec<u64>, key: &PlanKey) {
    w.push(axis_code(key.axis));
    w.push(key.total as u64);
    w.push(key.topology_fp);
    encode_policy(w, &key.policy);
    w.push(key.sizing.len() as u64);
    w.extend(key.sizing.iter().copied());
}

fn encode_plan(w: &mut Vec<u64>, plan: &ShardPlan) {
    w.push(axis_code(plan.axis));
    w.push(plan.total as u64);
    w.push(plan.shards.len() as u64);
    for s in &plan.shards {
        w.extend([
            s.channel as u64,
            s.rank as u64,
            s.subarray as u64,
            backend_code(s.backend),
            s.start as u64,
            s.len as u64,
        ]);
    }
}

fn encode_kernel(w: &mut Vec<u64>, kernel: &ReportKernel) {
    match kernel {
        ReportKernel::TernaryGemv { n, x } => {
            w.extend([0, *n as u64, x.len() as u64]);
            w.extend(x.iter().map(|&v| v as u64));
        }
        ReportKernel::TernaryGemvBatch { n, xs } => {
            w.extend([1, *n as u64, xs.len() as u64]);
            for row in xs.iter() {
                w.push(row.len() as u64);
                w.extend(row.iter().map(|&v| v as u64));
            }
        }
        ReportKernel::Rows {
            m,
            n,
            doubled,
            sample,
        } => {
            w.extend([
                2,
                *m as u64,
                *n as u64,
                u64::from(*doubled),
                sample.len() as u64,
            ]);
            w.extend(sample.iter().map(|&v| v as u64));
        }
        ReportKernel::IntGemv { n, planes, x } => {
            w.extend([3, *n as u64, planes.len() as u64]);
            for &(shift, neg) in planes.iter() {
                w.push(u64::from(shift) << 1 | u64::from(neg));
            }
            w.push(x.len() as u64);
            w.extend(x.iter().map(|&v| v as u64));
        }
    }
}

fn encode_report(w: &mut Vec<u64>, report: &ExecutionReport) {
    w.push(report.elapsed_ns.to_bits());
    w.push(report.energy_nj.to_bits());
    w.push(report.useful_ops);
    w.push(report.area_mm2.to_bits());
    for kind in COMMAND_KINDS {
        w.push(report.stats.count(kind));
    }
    let e = &report.energy;
    w.extend([
        e.dynamic_nj.to_bits(),
        e.host_nj.to_bits(),
        e.background_busy_nj.to_bits(),
        e.background_idle_nj.to_bits(),
        e.total_nj.to_bits(),
    ]);
    w.push(e.shards.len() as u64);
    for s in &e.shards {
        w.extend([
            s.channel as u64,
            s.rank as u64,
            s.dynamic_nj.to_bits(),
            s.busy_ns.to_bits(),
            s.background_busy_nj.to_bits(),
            s.background_idle_nj.to_bits(),
        ]);
    }
    // `report.cache` is deliberately not persisted: counter snapshots
    // belong to the producing run, and a report-cache hit re-stamps
    // them from the consuming engine anyway.
}

// ---------------------------------------------------------------------
// Word decoding: a cursor over the stream. Every read is checked; any
// failure aborts the whole parse (`None`), so a truncated or corrupt
// file can never install partial or garbage entries.

struct Reader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u(&mut self) -> Option<u64> {
        let v = *self.words.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn n(&mut self) -> Option<usize> {
        usize::try_from(self.u()?).ok()
    }

    fn f(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u()?))
    }

    fn i(&mut self) -> Option<i64> {
        Some(self.u()? as i64)
    }

    fn flag(&mut self) -> Option<bool> {
        match self.u()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// A length prefix, rejected when it exceeds the words remaining
    /// (each element takes at least one word), so corrupt lengths can
    /// never drive a huge allocation.
    fn len(&mut self) -> Option<usize> {
        let len = self.n()?;
        (len <= self.words.len() - self.pos).then_some(len)
    }

    fn i64_vec(&mut self) -> Option<Box<[i64]>> {
        let len = self.len()?;
        (0..len).map(|_| self.i()).collect()
    }

    fn done(&self) -> bool {
        self.pos == self.words.len()
    }
}

fn decode_axis(r: &mut Reader<'_>) -> Option<ShardAxis> {
    match r.u()? {
        0 => Some(ShardAxis::InnerDim),
        1 => Some(ShardAxis::OutputRows),
        2 => Some(ShardAxis::CsdPlanes),
        _ => None,
    }
}

fn decode_backend(r: &mut Reader<'_>) -> Option<Backend> {
    match r.u()? {
        0 => Some(Backend::Ambit),
        1 => Some(Backend::Fcdram),
        2 => Some(Backend::Pinatubo),
        3 => Some(Backend::Magic),
        _ => None,
    }
}

fn decode_policy(r: &mut Reader<'_>) -> Option<BackendPolicy> {
    match r.u()? {
        0 => Some(BackendPolicy::Uniform(decode_backend(r)?)),
        1 => {
            let len = r.len()?;
            let list = (0..len).map(|_| decode_backend(r)).collect::<Option<_>>()?;
            Some(BackendPolicy::PerChannel(list))
        }
        _ => None,
    }
}

fn decode_plan_key(r: &mut Reader<'_>) -> Option<PlanKey> {
    Some(PlanKey {
        axis: decode_axis(r)?,
        total: r.n()?,
        topology_fp: r.u()?,
        policy: decode_policy(r)?,
        sizing: {
            let len = r.len()?;
            (0..len).map(|_| r.u()).collect::<Option<_>>()?
        },
    })
}

fn decode_plan(r: &mut Reader<'_>) -> Option<ShardPlan> {
    let axis = decode_axis(r)?;
    let total = r.n()?;
    let len = r.len()?;
    let shards = (0..len)
        .map(|_| {
            Some(Shard {
                channel: r.n()?,
                rank: r.n()?,
                subarray: r.n()?,
                backend: decode_backend(r)?,
                start: r.n()?,
                len: r.n()?,
            })
        })
        .collect::<Option<_>>()?;
    Some(ShardPlan {
        axis,
        total,
        shards,
    })
}

fn decode_kernel(r: &mut Reader<'_>) -> Option<ReportKernel> {
    match r.u()? {
        0 => Some(ReportKernel::TernaryGemv {
            n: r.n()?,
            x: r.i64_vec()?,
        }),
        1 => {
            let n = r.n()?;
            let rows = r.len()?;
            let xs = (0..rows).map(|_| r.i64_vec()).collect::<Option<_>>()?;
            Some(ReportKernel::TernaryGemvBatch { n, xs })
        }
        2 => Some(ReportKernel::Rows {
            m: r.n()?,
            n: r.n()?,
            doubled: r.flag()?,
            sample: r.i64_vec()?,
        }),
        3 => {
            let n = r.n()?;
            let len = r.len()?;
            let planes = (0..len)
                .map(|_| {
                    let packed = r.u()?;
                    let shift = u32::try_from(packed >> 1).ok()?;
                    Some((shift, packed & 1 == 1))
                })
                .collect::<Option<_>>()?;
            Some(ReportKernel::IntGemv {
                n,
                planes,
                x: r.i64_vec()?,
            })
        }
        _ => None,
    }
}

fn decode_report(r: &mut Reader<'_>) -> Option<ExecutionReport> {
    let elapsed_ns = r.f()?;
    let energy_nj = r.f()?;
    let useful_ops = r.u()?;
    let area_mm2 = r.f()?;
    let mut stats = CommandStats::default();
    for kind in COMMAND_KINDS {
        stats.record_n(kind, r.u()?);
    }
    let dynamic_nj = r.f()?;
    let host_nj = r.f()?;
    let background_busy_nj = r.f()?;
    let background_idle_nj = r.f()?;
    let total_nj = r.f()?;
    let len = r.len()?;
    let shards = (0..len)
        .map(|_| {
            Some(ShardEnergy {
                channel: r.n()?,
                rank: r.n()?,
                dynamic_nj: r.f()?,
                busy_ns: r.f()?,
                background_busy_nj: r.f()?,
                background_idle_nj: r.f()?,
            })
        })
        .collect::<Option<_>>()?;
    Some(ExecutionReport {
        elapsed_ns,
        stats,
        energy_nj,
        useful_ops,
        area_mm2,
        energy: EnergyBreakdown {
            dynamic_nj,
            host_nj,
            background_busy_nj,
            background_idle_nj,
            total_nj,
            shards,
        },
        cache: CacheCounters::default(),
    })
}

fn decode(words: &[u64]) -> Option<CacheContents> {
    let mut r = Reader { words, pos: 0 };
    let mut contents = CacheContents::default();
    let plans = r.len()?;
    for _ in 0..plans {
        let key = decode_plan_key(&mut r)?;
        let plan = decode_plan(&mut r)?;
        contents.plans.push((key, plan));
    }
    let streams = r.len()?;
    for _ in 0..streams {
        let params = StreamParams {
            radix: r.n()?,
            digits: r.n()?,
            iarm: r.flag()?,
            doubled: r.flag()?,
        };
        let xs = r.i64_vec()?;
        let seqs = r.u()?;
        contents.streams.push((params, xs, seqs));
    }
    let reports = r.len()?;
    for _ in 0..reports {
        let cfg_len = r.len()?;
        let cfg_words = (0..cfg_len).map(|_| r.u()).collect::<Option<_>>()?;
        let kernel = decode_kernel(&mut r)?;
        let report = decode_report(&mut r)?;
        contents.reports.push((cfg_words, kernel, report));
    }
    // Trailing words mean the file disagrees with this layout — distrust
    // all of it.
    r.done().then_some(contents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::engine::{C2mEngine, EngineConfig};
    use std::sync::Arc;

    fn temp_store(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("c2m_store_{}_{name}.json", std::process::id()))
    }

    fn warm_cache() -> Arc<PlanCache> {
        let cache = Arc::new(PlanCache::default());
        let engine = C2mEngine::builder(EngineConfig::c2m(16))
            .shared_cache(Arc::clone(&cache))
            .build();
        let xs: Vec<i64> = (0..256).map(|i| i64::from(i % 3) - 1).collect();
        let _ = engine.ternary_gemv(&xs, 64);
        let _ = engine.ternary_gemm(8, 64, &xs);
        let _ = engine.int_gemv(&xs, 64, &[(0, false), (2, true)]);
        cache
    }

    #[test]
    fn save_then_load_restores_every_tier() {
        let path = temp_store("round_trip");
        let cache = warm_cache();
        CacheStore::save(&path, &cache).expect("save");
        let restored = CacheStore::load(&path, CacheConfig::default());
        std::fs::remove_file(&path).ok();

        let before = cache.export_contents();
        let after = restored.export_contents();
        assert_eq!(before.plans.len(), after.plans.len());
        assert_eq!(before.streams.len(), after.streams.len());
        assert_eq!(before.reports.len(), after.reports.len());
        assert!(!before.reports.is_empty(), "warm-up must store reports");
        // Loading installs entries without counting lookups.
        assert_eq!(restored.counters(), CacheCounters::default());
        // And the restored entries serve: a repeat launch on the
        // restored cache is a pure report hit.
        let engine = C2mEngine::builder(EngineConfig::c2m(16))
            .shared_cache(Arc::new(restored))
            .build();
        let xs: Vec<i64> = (0..256).map(|i| i64::from(i % 3) - 1).collect();
        let rep = engine.ternary_gemv(&xs, 64);
        assert_eq!(rep.cache.report_hits, 1);
        assert_eq!(rep.cache.report_misses, 0);
    }

    #[test]
    fn load_missing_or_corrupt_or_stale_is_cold() {
        let cold = |text: Option<&str>, name: &str| {
            let path = temp_store(name);
            if let Some(t) = text {
                std::fs::write(&path, t).unwrap();
            }
            let cache = PlanCache::default();
            let loaded = CacheStore::load_into(&path, &cache);
            std::fs::remove_file(&path).ok();
            assert!(!loaded, "{name} must be treated as cold");
            let contents = cache.export_contents();
            assert!(contents.plans.is_empty());
            assert!(contents.streams.is_empty());
            assert!(contents.reports.is_empty());
        };
        cold(None, "missing");
        cold(Some("not json at all"), "corrupt_text");
        cold(Some("{\"magic\": \"c2m-cache\"}"), "missing_fields");
        cold(
            Some("{\"magic\": \"other\", \"format_version\": 1, \"fingerprint_scheme\": 1, \"words\": []}"),
            "wrong_magic",
        );

        // A real store with a bumped version or scheme must also be cold.
        let path = temp_store("stale");
        CacheStore::save(&path, &warm_cache()).expect("save");
        let text = std::fs::read_to_string(&path).unwrap();
        for (from, to, name) in [
            (
                "\"format_version\":1",
                "\"format_version\":999",
                "version_bump",
            ),
            (
                "\"fingerprint_scheme\":1",
                "\"fingerprint_scheme\":999",
                "scheme_bump",
            ),
        ] {
            assert!(text.contains(from), "store text must contain {from}");
            cold(Some(&text.replace(from, to)), name);
        }
        // Truncated words: chop the tail of the array.
        let truncated = {
            let idx = text.rfind(',').unwrap();
            format!("{}]}}", &text[..idx])
        };
        cold(Some(&truncated), "truncated_words");
        std::fs::remove_file(&path).ok();
    }
}
