//! Canonical counting programs for non-DRAM technologies (§4.6, Fig. 10).
//!
//! The paper shows the masked unit-increment + overflow-check μPrograms
//! for Pinatubo-class non-stateful logic (Fig. 10a) and MAGIC's NOR-only
//! logic (Fig. 10b). This module provides both as reusable, bit-accurate
//! routines over a [`LogicMachine`], with the op counts the paper quotes:
//! `3n + 4` (+3 overflow) for Pinatubo-style and `6n + 4` for the
//! specialised MAGIC schedule.

use crate::machine::{LogicMachine, RowId};

/// Row-register layout shared by the counting programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountingLayout {
    /// Counter bit rows, LSB first (length n).
    pub bits: Vec<RowId>,
    /// Mask row m.
    pub mask: RowId,
    /// Pre-computed complement row `!m` (staged once per mask load, not
    /// charged to the per-increment cost — Fig. 10a's `!m` operand).
    pub not_mask: RowId,
    /// Pending-overflow row `O_next`.
    pub onext: RowId,
    /// Scratch rows (need at least 4).
    pub scratch: Vec<RowId>,
}

impl CountingLayout {
    /// Dense layout starting at row `base` for an n-bit counter.
    #[must_use]
    pub fn dense(n: usize, base: usize) -> Self {
        Self {
            bits: (base..base + n).collect(),
            mask: base + n,
            not_mask: base + n + 1,
            onext: base + n + 2,
            scratch: (base + n + 3..base + n + 7).collect(),
        }
    }

    /// Rows needed beyond `base`.
    #[must_use]
    pub fn rows_needed(n: usize) -> usize {
        n + 7
    }
}

/// Fig. 10a — Pinatubo-style masked unit increment with overflow check.
///
/// Per forward-shift bit: `b_j = (m ∧ b_i) ∨ (!m ∧ b_j)` — two ANDs and
/// an OR, each a single sense-amplifier operation; the inverted feedback
/// reuses the saved `!b_n`; overflow adds NOT + AND + OR. Total device
/// ops (on the Pinatubo cost model): `3n + 4` for counting plus 3 for
/// overflow.
///
/// # Panics
///
/// Panics if the machine's backend prices gates differently than 1 op
/// (use [`crate::backend::Backend::Pinatubo`]) only when op-count
/// assertions are enabled by the caller; the routine itself runs on any
/// backend.
pub fn pinatubo_unit_increment(m: &mut LogicMachine, lay: &CountingLayout) {
    let n = lay.bits.len();
    let [t0, t1, o1, o2] = [
        lay.scratch[0],
        lay.scratch[1],
        lay.scratch[2],
        lay.scratch[3],
    ];
    // LD bn, t0 ; t1 <- !bn   (setup: save MSB and its complement).
    m.copy(lay.bits[n - 1], t0);
    m.not(lay.bits[n - 1], t1);
    // Forward shifts, MSB-1 down to LSB+1.
    for i in (1..n).rev() {
        m.and(lay.mask, lay.bits[i - 1], o1);
        m.and(lay.not_mask, lay.bits[i], o2);
        m.or(o1, o2, lay.bits[i]);
    }
    // Inverted feedback into the LSB.
    m.and(lay.not_mask, lay.bits[0], o1);
    m.and(lay.mask, t1, o2);
    m.or(o1, o2, lay.bits[0]);
    // Overflow checking: O <- O | (old_msb & !new_msb).
    m.not(lay.bits[n - 1], t1);
    m.and(t0, t1, o1);
    // Restrict to masked columns (unmasked columns keep old = new, so
    // the AND with t1 already nulls them; the OR folds into O_next).
    m.or(lay.onext, o1, lay.onext);
}

/// Fig. 10b — MAGIC (NOR-only) masked unit increment with overflow.
///
/// Every gate is synthesised from NOR: `x AND y = NOR(!x, !y)`,
/// `x OR y = !NOR(x, y)`. The specialised schedule reuses complement
/// rows so the whole increment needs ~`6n + 4` NOR pulses (the generic
/// gate network would take ~10n).
pub fn magic_unit_increment(m: &mut LogicMachine, lay: &CountingLayout) {
    let n = lay.bits.len();
    let [t0, t1, o1, o2] = [
        lay.scratch[0],
        lay.scratch[1],
        lay.scratch[2],
        lay.scratch[3],
    ];
    // Save !bn (one NOR) and bn (!(!bn): one more).
    m.nor(lay.bits[n - 1], lay.bits[n - 1], t1); // t1 = !bn
    m.nor(t1, t1, t0); //                           t0 = bn
    for i in (1..n).rev() {
        // o1 = !( m & b_{i-1} ) = NOR(!m, !b_{i-1}): build !b_{i-1} in o2.
        m.nor(lay.bits[i - 1], lay.bits[i - 1], o2);
        m.nor(lay.not_mask, o2, o1); //  o1 = m & b_{i-1}
                                     // o2 = !m & b_i = NOR(m, !b_i).
        m.nor(lay.bits[i], lay.bits[i], o2);
        m.nor(lay.mask, o2, o2); //      o2 = !m & b_i ... NOR(m, !b_i)
                                 // b_i = o1 | o2 = !NOR(o1, o2).
        m.nor(o1, o2, lay.bits[i]);
        m.nor(lay.bits[i], lay.bits[i], lay.bits[i]);
    }
    // Inverted feedback: b_0 = (!m & b_0) | (m & !bn_old).
    m.nor(lay.bits[0], lay.bits[0], o2);
    m.nor(lay.mask, o2, o1); //          o1 = !m & b_0
    m.nor(lay.not_mask, t0, o2); //      o2 = m & !bn_old   (NOR(!m, bn))
    m.nor(o1, o2, lay.bits[0]);
    m.nor(lay.bits[0], lay.bits[0], lay.bits[0]);
    // Overflow: O |= old_msb & !new_msb = O | NOR(!old, new) — 4 NORs.
    m.nor(t0, t0, o1); //                 o1 = !old_msb
    m.nor(o1, lay.bits[n - 1], o2); //    o2 = old & !new (the flag)
    m.nor(lay.onext, o2, o1); //          o1 = !(O | flag)
    m.nor(o1, o1, lay.onext); //          O  = O | flag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::row::Row;

    /// Loads a machine with JC states (one column per value) and a mask.
    fn setup(backend: Backend, n: usize) -> (LogicMachine, CountingLayout) {
        let radix = 2 * n;
        let width = 2 * radix; // masked + unmasked column per value
        let lay = CountingLayout::dense(n, 0);
        let mut m = LogicMachine::new(backend, width, CountingLayout::rows_needed(n));
        // Johnson encoding: value v has bits i < v (for v <= n) etc. —
        // delegate to the same convention as c2m-jc via direct bit math.
        let bit = |v: usize, i: usize| -> bool {
            if v == 0 {
                false
            } else if v <= n {
                i < v
            } else {
                i >= v - n
            }
        };
        for i in 0..n {
            let mut row = Row::zeros(width);
            for v in 0..radix {
                row.set(2 * v, bit(v, i));
                row.set(2 * v + 1, bit(v, i));
            }
            m.write(lay.bits[i], &row);
        }
        let mut mask = Row::zeros(width);
        for v in 0..radix {
            mask.set(2 * v, true);
        }
        m.write(lay.mask, &mask.clone());
        m.write(lay.not_mask, &mask.not());
        (m, lay)
    }

    fn check_increment(
        backend: Backend,
        n: usize,
        run: fn(&mut LogicMachine, &CountingLayout),
    ) -> u64 {
        let radix = 2 * n;
        let (mut m, lay) = setup(backend, n);
        run(&mut m, &lay);
        let bit = |v: usize, i: usize| -> bool {
            if v == 0 {
                false
            } else if v <= n {
                i < v
            } else {
                i >= v - n
            }
        };
        for v in 0..radix {
            let next = (v + 1) % radix;
            for i in 0..n {
                assert_eq!(
                    m.read(lay.bits[i]).get(2 * v),
                    bit(next, i),
                    "masked v={v} bit={i}"
                );
                assert_eq!(
                    m.read(lay.bits[i]).get(2 * v + 1),
                    bit(v, i),
                    "unmasked v={v} bit={i}"
                );
            }
            assert_eq!(
                m.read(lay.onext).get(2 * v),
                v + 1 == radix,
                "overflow v={v}"
            );
        }
        m.ops()
    }

    #[test]
    fn pinatubo_program_is_correct_and_3n_plus_7_ops() {
        for n in [2usize, 4, 5, 8] {
            let ops = check_increment(Backend::Pinatubo, n, pinatubo_unit_increment);
            // Setup (LD + NOT) + 3 per bit + 3 overflow = 3n + 5 gates
            // on the Pinatubo cost model — within one op of the paper's
            // "3n + 4 counting, +3 overflow" accounting.
            assert_eq!(ops, 3 * n as u64 + 5, "n={n}");
        }
    }

    #[test]
    fn magic_program_is_correct() {
        for n in [2usize, 5, 8] {
            let ops = check_increment(Backend::Magic, n, magic_unit_increment);
            // NOR pulses: 6 per bit step + constant. The paper's
            // specialised 6n+4 is approached; ours is 6n + ~12.
            assert!(
                ops <= 6 * n as u64 + 14,
                "n={n}: MAGIC program took {ops} NOR pulses"
            );
        }
    }

    #[test]
    fn programs_agree_across_backends() {
        // The same routine yields the same row state regardless of the
        // backend pricing.
        let (mut a, lay_a) = setup(Backend::Pinatubo, 5);
        let (mut b, lay_b) = setup(Backend::Fcdram, 5);
        pinatubo_unit_increment(&mut a, &lay_a);
        pinatubo_unit_increment(&mut b, &lay_b);
        for i in 0..5 {
            assert_eq!(a.read(lay_a.bits[i]), b.read(lay_b.bits[i]));
        }
        assert!(b.ops() > a.ops(), "FCDRAM gates cost more device ops");
    }
}
