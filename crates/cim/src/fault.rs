//! Bernoulli per-bit fault injection for CIM operations.
//!
//! §2.3 of the paper: multi-row activation fault rates range from 10⁻⁶
//! (simulation) to 10⁻¹ (experimental COTS demonstrations), caused by
//! reduced sense margins under process variation. Plain accesses, RowClone
//! copies and DCC-based NOT behave like normal reads (≈10⁻²⁰, effectively
//! fault-free at our simulation scales), so faults are injected only on
//! *compute* results — MAJ3 / AND / OR / NOR outputs.

use crate::row::Row;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Deterministic, seedable per-bit fault injector.
#[derive(Debug, Clone)]
pub struct FaultModel {
    rate: f64,
    rng: ChaCha12Rng,
    injected: u64,
}

impl FaultModel {
    /// Creates a fault model flipping each computed bit independently with
    /// probability `rate`, using a fixed seed for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]`.
    #[must_use]
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0,1]");
        Self {
            rate,
            rng: ChaCha12Rng::seed_from_u64(seed),
            injected: 0,
        }
    }

    /// A fault-free model (rate 0). No RNG draws are made.
    #[must_use]
    pub fn fault_free() -> Self {
        Self::new(0.0, 0)
    }

    /// The configured per-bit fault probability.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Number of bit flips injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Applies faults in-place to a computed row.
    ///
    /// Uses a geometric-skip sampler so that low fault rates cost O(faults)
    /// rather than O(width) RNG draws.
    pub fn perturb(&mut self, row: &mut Row) {
        if self.rate <= 0.0 {
            return;
        }
        let width = row.width();
        if self.rate >= 1.0 {
            for i in 0..width {
                row.flip(i);
                self.injected += 1;
            }
            return;
        }
        // Geometric skips: next fault index gap ~ Geom(rate). ln_1p keeps
        // precision for tiny rates (ln(1-p) underflows to -0.0 below
        // ~1e-16, which would otherwise flip every bit).
        let ln_q = (-self.rate).ln_1p();
        let mut i = 0usize;
        loop {
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            let skip = (u.ln() / ln_q).floor() as usize;
            i = match i.checked_add(skip) {
                Some(v) => v,
                None => break,
            };
            if i >= width {
                break;
            }
            row.flip(i);
            self.injected += 1;
            i += 1;
        }
    }

    /// Decides a single-bit fault (used by scalar fault studies).
    pub fn flip_bit(&mut self, bit: bool) -> bool {
        if self.rate > 0.0 && self.rng.gen_bool(self.rate) {
            self.injected += 1;
            !bit
        } else {
            bit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_never_flips() {
        let mut fm = FaultModel::fault_free();
        let mut r = Row::ones(1024);
        fm.perturb(&mut r);
        assert_eq!(r.count_ones(), 1024);
        assert_eq!(fm.injected(), 0);
    }

    #[test]
    fn rate_one_flips_everything() {
        let mut fm = FaultModel::new(1.0, 7);
        let mut r = Row::zeros(128);
        fm.perturb(&mut r);
        assert_eq!(r.count_ones(), 128);
        assert_eq!(fm.injected(), 128);
    }

    #[test]
    fn empirical_rate_close_to_configured() {
        let rate = 0.01;
        let mut fm = FaultModel::new(rate, 42);
        let width = 4096;
        let trials = 200;
        let mut flips = 0usize;
        for _ in 0..trials {
            let mut r = Row::zeros(width);
            fm.perturb(&mut r);
            flips += r.count_ones();
        }
        let measured = flips as f64 / (width * trials) as f64;
        assert!(
            (measured - rate).abs() < rate * 0.2,
            "measured {measured} vs {rate}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut fm = FaultModel::new(0.05, seed);
            let mut r = Row::zeros(512);
            fm.perturb(&mut r);
            r
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn tiny_rates_do_not_flip_everything() {
        // Regression: ln(1-p) underflows to -0.0 for p ~ 1e-20 and the
        // geometric sampler must not degenerate into flip-all.
        let mut fm = FaultModel::new(1e-20, 1);
        let mut r = Row::zeros(4096);
        for _ in 0..100 {
            fm.perturb(&mut r);
        }
        assert_eq!(r.count_ones(), 0);
        assert_eq!(fm.injected(), 0);
    }

    #[test]
    #[should_panic(expected = "fault rate")]
    fn invalid_rate_panics() {
        let _ = FaultModel::new(1.5, 0);
    }
}
