//! Per-technology cost models for bulk-bitwise logic.
//!
//! §4.6 of the paper extends in-memory counting beyond Ambit to any
//! functionally complete bulk-bitwise substrate, quoting per-increment op
//! counts of `7n+7` (Ambit, optimised μProgram of Fig. 6b), `3n+4` + 3
//! (Pinatubo-style non-stateful logic, Fig. 10a) and `6n+4` (MAGIC's
//! NOR-only logic, Fig. 10b). This module captures what one *logic gate*
//! costs on each technology so the generic [`crate::machine::LogicMachine`]
//! can count device operations for any program.

use crate::machine::LogicOp;
use serde::{Deserialize, Serialize};

/// The CIM technologies modelled in this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// Ambit-style DRAM: MAJ3 via triple-row activation, NOT via DCC.
    /// Costs below are for *generic* gate lowering; the optimised counting
    /// path uses hand-scheduled μPrograms (see `c2m-jc`) instead.
    Ambit,
    /// FCDRAM: AND/OR via APA with fractional reference rows in the
    /// neighbouring subarray; NOT by writing the negated value across
    /// subarrays plus the copy-back the paper requires (§2.2).
    Fcdram,
    /// Pinatubo-style non-stateful NVM logic: AND/OR/NOT/XOR computed in
    /// the sense amplifiers in a single read-like operation each.
    Pinatubo,
    /// MAGIC: stateful memristive logic with NOR as the only primitive.
    Magic,
}

impl Backend {
    /// All supported backends, for sweeps.
    pub const ALL: [Backend; 4] = [
        Backend::Ambit,
        Backend::Fcdram,
        Backend::Pinatubo,
        Backend::Magic,
    ];

    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Ambit => "Ambit",
            Backend::Fcdram => "FCDRAM",
            Backend::Pinatubo => "Pinatubo",
            Backend::Magic => "MAGIC",
        }
    }

    /// The cost model for this backend.
    #[must_use]
    pub fn cost_model(self) -> CostModel {
        CostModel { backend: self }
    }

    /// Device operations for one generic masked unit increment (with
    /// overflow check) of an `n`-bit Johnson counter on this backend —
    /// the §4.6 ablation, measured by running the Fig. 10a-style gate
    /// program on a [`crate::machine::LogicMachine`] with this backend's
    /// [`CostModel`].
    ///
    /// This is the *generic* gate-network lowering. For Ambit the
    /// hand-scheduled Fig. 6b μProgram (`7n + 7`, see
    /// `c2m_jc::ambit_lower`) is cheaper; heterogeneous shard dispatch
    /// therefore prices a non-Ambit backend by the ratio of its generic
    /// increment cost to Ambit's optimised `7n + 7`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn increment_ops(self, n: usize) -> u64 {
        use crate::machine::LogicMachine;
        use crate::row::Row;

        assert!(n > 0, "a counter needs at least one bit");
        let width = 1; // op counts are width-independent
                       // Rows: bits 0..n | mask | onext | t0 | t1 | o1 | o2 | !mask.
        let mut m = LogicMachine::new(self, width, n + 7);
        let mask = n;
        let onext = n + 1;
        let t0 = n + 2;
        let t1 = n + 3;
        let o1 = n + 4;
        let o2 = n + 5;
        let notm = n + 6;
        m.write(mask, &Row::ones(width));
        // Setup: save the MSB, its complement, and the mask complement.
        m.copy(n - 1, t0);
        m.not(n - 1, t1);
        m.not(mask, notm);
        // Forward shifts (MSB-1 down to 1): b_j = (m & b_{j-1}) | (!m & b_j).
        for i in (1..n).rev() {
            m.and(mask, i - 1, o1);
            m.and(notm, i, o2);
            m.or(o1, o2, i);
        }
        // Inverted feedback into bit 0.
        m.and(notm, 0, o1);
        m.and(mask, t1, o2);
        m.or(o1, o2, 0);
        // Overflow check: O <- O | (old_msb & !new_msb).
        m.not(n - 1, t1);
        m.and(t0, t1, o1);
        m.or(onext, o1, onext);
        m.ops()
    }
}

/// Device-operation cost of each logic gate on a given backend.
///
/// A "device operation" is the unit each technology's literature counts:
/// AAP/AP macro commands for DRAM designs, read-like sense operations for
/// Pinatubo, NOR pulses for MAGIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    backend: Backend,
}

impl CostModel {
    /// The backend this model describes.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Cost of one gate, in device operations.
    #[must_use]
    pub fn cost(&self, op: LogicOp) -> u64 {
        match self.backend {
            // Generic Ambit lowering: a 2-input gate needs three operand
            // AAPs into the B-group (two operands + control row) plus the
            // TRA and a result copy-out — 4 AAP + 1 AP when the result can
            // stay in the B-group, 5 otherwise. We charge the standard
            // 4-command sequence from the Ambit paper (operands + control
            // + TRA fused into AAP of the triple address).
            Backend::Ambit => match op {
                LogicOp::Copy => 1,
                LogicOp::Not => 2, // AAP src->B8 ; AAP DCC0->dst
                LogicOp::And | LogicOp::Or => 4,
                LogicOp::Maj3 => 4, // 3 operand AAPs + AAP(triple, dst)
                LogicOp::Nor => 6,  // OR + NOT
                LogicOp::Xor => 10, // 2 AND + 1 OR with negated operands
            },
            // FCDRAM: operands must sit in the subarray adjacent to the
            // reference rows, so a 2-input gate costs two operand copies
            // plus the APA; NOT is an APA plus the copy-back of §2.2.
            Backend::Fcdram => match op {
                LogicOp::Copy => 1,
                LogicOp::Not => 2,
                LogicOp::And | LogicOp::Or => 3,
                LogicOp::Maj3 => 7, // synthesised from AND/OR
                LogicOp::Nor => 5,  // OR + NOT
                LogicOp::Xor => 11,
            },
            // Pinatubo: every bulk gate is one sense-amplifier operation.
            Backend::Pinatubo => match op {
                LogicOp::Copy => 1,
                LogicOp::Not => 1,
                LogicOp::And | LogicOp::Or | LogicOp::Xor => 1,
                LogicOp::Nor => 1,
                LogicOp::Maj3 => 3,
            },
            // MAGIC: NOR is native; everything else is a NOR network.
            Backend::Magic => match op {
                LogicOp::Copy => 2, // NOR(a,a)=!a twice
                LogicOp::Not => 1,
                LogicOp::Nor => 1,
                LogicOp::Or => 2,  // NOR + NOT
                LogicOp::And => 3, // NOR(!a, !b)
                LogicOp::Xor => 5,
                LogicOp::Maj3 => 9,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinatubo_single_op_gates() {
        let m = Backend::Pinatubo.cost_model();
        assert_eq!(m.cost(LogicOp::And), 1);
        assert_eq!(m.cost(LogicOp::Or), 1);
        assert_eq!(m.cost(LogicOp::Not), 1);
    }

    #[test]
    fn magic_nor_is_cheapest() {
        let m = Backend::Magic.cost_model();
        assert_eq!(m.cost(LogicOp::Nor), 1);
        assert!(m.cost(LogicOp::And) > m.cost(LogicOp::Nor));
    }

    #[test]
    fn ambit_generic_gate_cost() {
        let m = Backend::Ambit.cost_model();
        assert_eq!(m.cost(LogicOp::And), 4);
        assert_eq!(m.cost(LogicOp::Copy), 1);
    }

    #[test]
    fn all_backends_have_names() {
        for b in Backend::ALL {
            assert!(!b.name().is_empty());
        }
    }

    #[test]
    fn increment_ops_tracks_the_4_6_anchors() {
        // Pinatubo's non-stateful gates make the Fig. 10a program cost
        // ~3n+7 (3n+4 counting + 3 overflow); the generic Ambit network
        // is an upper bound well above the optimised 7n+7 μProgram.
        for n in [2usize, 5, 8] {
            // 3(n-1) shift ops + 3 feedback + 3 overflow + 3 setup = 3n+6
            // (the `!m` staging op is charged here but amortised in the
            // paper's 3n+4+3 quote).
            let pin = Backend::Pinatubo.increment_ops(n);
            assert_eq!(pin, 3 * n as u64 + 6, "pinatubo at n={n}");
            let ambit = Backend::Ambit.increment_ops(n);
            assert!(ambit > 7 * n as u64 + 7, "generic > optimised at n={n}");
        }
    }

    #[test]
    fn increment_ops_grows_with_n() {
        for b in Backend::ALL {
            assert!(b.increment_ops(8) > b.increment_ops(2), "{}", b.name());
        }
    }

    #[test]
    fn pinatubo_cheapest_generic_ambit_dearest() {
        // The ordering heterogeneous dispatch relies on: single-op
        // sense-amp gates beat everything, and generic Ambit lowering
        // (4-op AND/OR via B-group staging) is the dearest — FCDRAM's
        // 3-op gates sit between. Dispatch prices non-Ambit backends
        // against Ambit's *optimised* 7n+7 μProgram, which undercuts
        // both generic DRAM lowerings.
        let n = 5;
        let costs: Vec<u64> = Backend::ALL.iter().map(|b| b.increment_ops(n)).collect();
        let pin = Backend::Pinatubo.increment_ops(n);
        assert!(costs.iter().all(|&c| c >= pin));
        assert!(Backend::Fcdram.increment_ops(n) < Backend::Ambit.increment_ops(n));
        assert!(Backend::Fcdram.increment_ops(n) > 7 * n as u64 + 7);
    }
}
