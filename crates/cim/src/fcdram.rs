//! FCDRAM — functionally complete logic in off-the-shelf DRAM (§2.2).
//!
//! FCDRAM (Yuksel et al., HPCA 2024) performs Boolean functions in
//! unmodified DRAM chips with carefully timed command sequences. The key
//! sequence is **APA** (activate–precharge–activate), which activates
//! rows in *neighbouring subarrays that share sense amplifiers*. One
//! subarray holds two reference rows initialised to fractional values
//! (FracDRAM): `Vdd` + `Vdd/2` for AND, `Gnd` + `Vdd/2` for OR; the other
//! holds the operand rows A and B. Charge sharing across the four rows
//! biases the sense amplifier so that it latches `A AND B` or `A OR B`.
//!
//! NOT is obtained by writing the negated value of a source row into the
//! neighbouring subarray; Count2Multiply additionally requires copying
//! the inverted result *back* to the original subarray (§2.2), which this
//! model charges explicitly. Like all COTS multi-row operations, the
//! activated operand rows are destroyed (overwritten with the result).

use crate::fault::FaultModel;
use crate::row::Row;
use c2m_dram::{CommandKind, CommandStats};
use serde::{Deserialize, Serialize};

/// Reference-row charge configuration for an APA operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefConfig {
    /// `Vdd` + `Vdd/2`: the sense amplifier latches AND.
    And,
    /// `Gnd` + `Vdd/2`: the sense amplifier latches OR.
    Or,
}

/// A pair of neighbouring subarrays sharing sense amplifiers, with the
/// FCDRAM command repertoire.
#[derive(Debug, Clone)]
pub struct FcdramPair {
    width: usize,
    /// "Compute" subarray rows (holds operands A/B during APA).
    upper: Vec<Row>,
    /// Neighbour subarray rows (holds reference rows / NOT destinations).
    lower: Vec<Row>,
    fault: FaultModel,
    stats: CommandStats,
}

impl FcdramPair {
    /// Creates a subarray pair with `rows` zeroed rows each.
    #[must_use]
    pub fn new(width: usize, rows: usize) -> Self {
        Self::with_faults(width, rows, FaultModel::fault_free())
    }

    /// Creates a pair with fault injection on APA results (§2.3: COTS
    /// multi-row activation is the least reliable CIM primitive, with
    /// experimentally observed error rates up to 10⁻¹).
    #[must_use]
    pub fn with_faults(width: usize, rows: usize, fault: FaultModel) -> Self {
        Self {
            width,
            upper: vec![Row::zeros(width); rows],
            lower: vec![Row::zeros(width); rows],
            fault,
            stats: CommandStats::default(),
        }
    }

    /// Column count.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Commands issued so far.
    #[must_use]
    pub fn stats(&self) -> &CommandStats {
        &self.stats
    }

    /// Host write into the compute subarray.
    ///
    /// # Panics
    ///
    /// Panics on row/width mismatch.
    pub fn write_upper(&mut self, row: usize, v: &Row) {
        assert_eq!(v.width(), self.width, "row width mismatch");
        self.upper[row] = v.clone();
    }

    /// Reads a compute-subarray row.
    #[must_use]
    pub fn read_upper(&self, row: usize) -> &Row {
        &self.upper[row]
    }

    /// Reads a neighbour-subarray row.
    #[must_use]
    pub fn read_lower(&self, row: usize) -> &Row {
        &self.lower[row]
    }

    /// APA two-input logic: computes `a ⊙ b` (per `cfg`) between compute
    /// rows `a` and `b`, leaving the result in both operand rows
    /// (destructive) and returning a copy. One APA macro command.
    pub fn apa_logic(&mut self, cfg: RefConfig, a: usize, b: usize) -> Row {
        let mut r = match cfg {
            RefConfig::And => self.upper[a].and(&self.upper[b]),
            RefConfig::Or => self.upper[a].or(&self.upper[b]),
        };
        self.fault.perturb(&mut r);
        self.upper[a] = r.clone();
        self.upper[b] = r.clone();
        self.stats.record(CommandKind::Apa);
        r
    }

    /// NOT across subarrays: writes `!src` (a compute row) into neighbour
    /// row `dst`. One APA command. Only DRAMs built from true cells
    /// support this (paper footnote 1); we model such a device.
    pub fn not_across(&mut self, src: usize, dst: usize) {
        // The cross-subarray negation rides on the sense-amp inversion of
        // a normal access path, so it is access-reliable (no faults).
        self.lower[dst] = self.upper[src].not();
        self.stats.record(CommandKind::Apa);
    }

    /// Copies a neighbour row back into the compute subarray (the extra
    /// step Count2Multiply needs after a NOT, §2.2). One AAP command.
    pub fn copy_back(&mut self, src: usize, dst: usize) {
        self.upper[dst] = self.lower[src].clone();
        self.stats.record(CommandKind::Aap);
    }

    /// In-subarray RowClone copy. One AAP command.
    pub fn copy_upper(&mut self, src: usize, dst: usize) {
        self.upper[dst] = self.upper[src].clone();
        self.stats.record(CommandKind::Aap);
    }

    /// Full NOT with copy-back: `dst ← !src`, both in the compute
    /// subarray, costing 2 commands (APA + AAP).
    pub fn not_full(&mut self, src: usize, dst: usize) {
        self.not_across(src, 0);
        self.copy_back(0, dst);
    }

    /// The masked-update step of a Johnson counter bit on FCDRAM:
    /// `dst ← (keep ∧ !m) ∨ (take ∧ m)`, reading `keep`/`take`/`m` from
    /// compute rows and scratch rows `s0`/`s1`. Returns the command count
    /// consumed (6: one NOT+copy-back, two ANDs, one OR, plus an operand
    /// re-copy since APA destroys its inputs).
    #[allow(clippy::too_many_arguments)]
    pub fn masked_update(
        &mut self,
        keep: usize,
        take: usize,
        mask: usize,
        dst: usize,
        s0: usize,
        s1: usize,
    ) -> u64 {
        let before = self.stats.total();
        // s0 <- !m (2 cmds), preserving m: NOT reads non-destructively.
        self.not_full(mask, s0);
        // s0 <- keep & !m (destroys both: re-stage keep first).
        self.copy_upper(keep, s1);
        self.apa_logic(RefConfig::And, s1, s0);
        // s1 now holds keep&!m too (APA leaves result in both rows).
        // Stage take & m into (take_copy, mask_copy).
        self.copy_upper(take, dst);
        self.copy_upper(mask, s1);
        // Wait: s1 currently holds keep&!m; we must keep one copy — use
        // s0 as the surviving copy and s1 as mask staging.
        self.apa_logic(RefConfig::And, dst, s1);
        // OR the two partial products.
        self.apa_logic(RefConfig::Or, s0, dst);
        self.stats.total() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> FcdramPair {
        let mut p = FcdramPair::new(8, 8);
        p.write_upper(
            1,
            &Row::from_bits([true, true, false, false, true, false, true, false]),
        );
        p.write_upper(
            2,
            &Row::from_bits([true, false, true, false, false, true, true, false]),
        );
        p
    }

    #[test]
    fn apa_and_or() {
        let mut p = pair();
        let a = p.read_upper(1).clone();
        let b = p.read_upper(2).clone();
        let r = p.apa_logic(RefConfig::And, 1, 2);
        assert_eq!(r, a.and(&b));
        // Destructive: both operand rows now hold the result.
        assert_eq!(p.read_upper(1), &r);
        assert_eq!(p.read_upper(2), &r);

        let mut p = pair();
        let r = p.apa_logic(RefConfig::Or, 1, 2);
        assert_eq!(r, a.or(&b));
    }

    #[test]
    fn not_with_copy_back() {
        let mut p = pair();
        let a = p.read_upper(1).clone();
        p.not_full(1, 3);
        assert_eq!(p.read_upper(3), &a.not());
        // 2 commands: APA + AAP.
        assert_eq!(p.stats().count(c2m_dram::CommandKind::Apa), 1);
        assert_eq!(p.stats().count(c2m_dram::CommandKind::Aap), 1);
    }

    #[test]
    fn masked_update_computes_mux() {
        let mut p = FcdramPair::new(8, 10);
        let keep = Row::from_bits([true, true, false, false, true, true, false, false]);
        let take = Row::from_bits([false, true, true, false, false, true, true, false]);
        let mask = Row::from_bits([true, false, true, false, true, false, true, false]);
        p.write_upper(1, &keep);
        p.write_upper(2, &take);
        p.write_upper(3, &mask);
        let cmds = p.masked_update(1, 2, 3, 4, 5, 6);
        let expect = keep.and(&mask.not()).or(&take.and(&mask));
        assert_eq!(p.read_upper(4), &expect);
        assert!(cmds <= 8, "masked update took {cmds} commands");
    }

    #[test]
    fn faulty_apa_perturbs_results() {
        let mut p = FcdramPair::with_faults(1024, 4, FaultModel::new(1.0, 9));
        p.write_upper(1, &Row::ones(1024));
        p.write_upper(2, &Row::ones(1024));
        let r = p.apa_logic(RefConfig::And, 1, 2);
        assert_eq!(r.count_ones(), 0, "rate-1 faults flip everything");
    }

    #[test]
    fn command_accounting() {
        let mut p = pair();
        p.apa_logic(RefConfig::And, 1, 2);
        p.copy_upper(1, 3);
        assert_eq!(p.stats().macro_ops(), 2);
    }
}
