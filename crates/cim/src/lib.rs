//! Bulk-bitwise compute-in-memory (CIM) substrate.
//!
//! This crate models the in-memory compute fabric Count2Multiply runs on:
//!
//! * [`row`] — bit-packed DRAM rows with bulk bitwise operations
//!   (AND/OR/NOT/XOR/MAJ3/NOR) over all columns at once.
//! * [`fault`] — Bernoulli per-bit fault injection for multi-row-activation
//!   results, covering the 10⁻⁶…10⁻¹ fault regime of §2.3.
//! * [`ambit`] — a full-fidelity model of the Ambit substrate (§2.2):
//!   B/C/D row groups, dual-contact cells for NOT, triple-row activation
//!   computing MAJ3 destructively, and the AAP/AP command interface of
//!   Fig. 6b (including the paper's modified B11 mapping, footnote 2).
//! * [`machine`] — a backend-agnostic logic-machine abstraction used to
//!   count operations and simulate faults for the FCDRAM, Pinatubo and
//!   MAGIC backends of §4.6 (Fig. 10) and for generic MAJ-based adders.
//! * [`backend`] — per-technology cost models (ops per logic gate).
//!
//! The Ambit model is bit-accurate: executing a μProgram both updates the
//! stored rows (so results can be checked against a software model) and
//! tallies the AAP/AP commands that the `c2m-dram` scheduler turns into
//! latency and energy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ambit;
pub mod backend;
pub mod fault;
pub mod fcdram;
pub mod machine;
pub mod programs;
pub mod row;

pub use ambit::{AmbitAddr, AmbitSubarray, MicroOp, MicroProgram};
pub use backend::{Backend, CostModel};
pub use fault::FaultModel;
pub use fcdram::FcdramPair;
pub use machine::{LogicMachine, LogicOp, RowId};
pub use row::Row;
