//! Backend-agnostic bulk-logic machine.
//!
//! [`LogicMachine`] is a register-file-of-rows abstraction used wherever
//! the exact Ambit row choreography is not the object of study: the
//! Pinatubo/MAGIC counting programs of §4.6 (Fig. 10), the generic
//! MAJ-based ripple-carry adder that Fig. 17 uses as the RCA proxy, and
//! the protected μPrograms of Fig. 13a (written in terms of `AND`, `OR`,
//! `CP`). Each gate updates row state bit-accurately, injects faults on
//! compute results, and charges the backend's [`CostModel`].

use crate::backend::{Backend, CostModel};
use crate::fault::FaultModel;
use crate::row::Row;
use serde::{Deserialize, Serialize};

/// Identifier of a row register inside a [`LogicMachine`].
pub type RowId = usize;

/// Logic gates the machine can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicOp {
    /// Copy a row.
    Copy,
    /// Bitwise NOT.
    Not,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise NOR.
    Nor,
    /// Bitwise XOR.
    Xor,
    /// Columnwise 3-input majority.
    Maj3,
}

/// A bulk-bitwise logic machine over named rows.
#[derive(Debug, Clone)]
pub struct LogicMachine {
    width: usize,
    rows: Vec<Row>,
    cost: CostModel,
    fault: FaultModel,
    ops_charged: u64,
    gate_count: u64,
}

impl LogicMachine {
    /// Creates a machine with `rows` zeroed rows of `width` columns on the
    /// given backend, fault-free.
    #[must_use]
    pub fn new(backend: Backend, width: usize, rows: usize) -> Self {
        Self::with_faults(backend, width, rows, FaultModel::fault_free())
    }

    /// Creates a machine with fault injection on compute results.
    #[must_use]
    pub fn with_faults(backend: Backend, width: usize, rows: usize, fault: FaultModel) -> Self {
        Self {
            width,
            rows: vec![Row::zeros(width); rows],
            cost: backend.cost_model(),
            fault,
            ops_charged: 0,
            gate_count: 0,
        }
    }

    /// Column count.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The backend being modelled.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.cost.backend()
    }

    /// Device operations charged so far (the unit of Fig. 10 comparisons).
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops_charged
    }

    /// Logic gates executed so far (backend-independent count).
    #[must_use]
    pub fn gates(&self) -> u64 {
        self.gate_count
    }

    /// Bit faults injected so far.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.fault.injected()
    }

    /// Resets op/gate counters (row contents are preserved).
    pub fn reset_counters(&mut self) {
        self.ops_charged = 0;
        self.gate_count = 0;
    }

    /// Reads a row.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn read(&self, r: RowId) -> &Row {
        &self.rows[r]
    }

    /// Host-writes a row (not charged as a CIM op).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range or the width differs.
    pub fn write(&mut self, r: RowId, v: &Row) {
        assert_eq!(v.width(), self.width, "row width mismatch");
        self.rows[r] = v.clone();
    }

    /// `dst ← src` (charged as a copy; copies are access-reliable, so no
    /// fault injection).
    pub fn copy(&mut self, src: RowId, dst: RowId) {
        let v = self.rows[src].clone();
        self.rows[dst] = v;
        self.charge(LogicOp::Copy);
    }

    /// `dst ← !src` (DCC-mediated on DRAM; access-reliable, no faults).
    pub fn not(&mut self, src: RowId, dst: RowId) {
        let v = self.rows[src].not();
        self.rows[dst] = v;
        self.charge(LogicOp::Not);
    }

    /// `dst ← a & b` with fault injection on the result.
    pub fn and(&mut self, a: RowId, b: RowId, dst: RowId) {
        let mut v = self.rows[a].and(&self.rows[b]);
        self.fault.perturb(&mut v);
        self.rows[dst] = v;
        self.charge(LogicOp::And);
    }

    /// `dst ← a | b` with fault injection on the result.
    pub fn or(&mut self, a: RowId, b: RowId, dst: RowId) {
        let mut v = self.rows[a].or(&self.rows[b]);
        self.fault.perturb(&mut v);
        self.rows[dst] = v;
        self.charge(LogicOp::Or);
    }

    /// `dst ← !(a | b)` with fault injection on the result.
    pub fn nor(&mut self, a: RowId, b: RowId, dst: RowId) {
        let mut v = self.rows[a].nor(&self.rows[b]);
        self.fault.perturb(&mut v);
        self.rows[dst] = v;
        self.charge(LogicOp::Nor);
    }

    /// `dst ← a ^ b` with fault injection on the result.
    pub fn xor(&mut self, a: RowId, b: RowId, dst: RowId) {
        let mut v = self.rows[a].xor(&self.rows[b]);
        self.fault.perturb(&mut v);
        self.rows[dst] = v;
        self.charge(LogicOp::Xor);
    }

    /// `dst ← MAJ3(a, b, c)` with fault injection on the result.
    pub fn maj3(&mut self, a: RowId, b: RowId, c: RowId, dst: RowId) {
        let mut v = Row::maj3(&self.rows[a], &self.rows[b], &self.rows[c]);
        self.fault.perturb(&mut v);
        self.rows[dst] = v;
        self.charge(LogicOp::Maj3);
    }

    fn charge(&mut self, op: LogicOp) {
        self.ops_charged += self.cost.cost(op);
        self.gate_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(backend: Backend) -> LogicMachine {
        let mut m = LogicMachine::new(backend, 8, 6);
        m.write(
            0,
            &Row::from_bits([true, true, false, false, true, false, true, false]),
        );
        m.write(
            1,
            &Row::from_bits([true, false, true, false, false, true, true, false]),
        );
        m
    }

    #[test]
    fn gates_compute_correctly() {
        let mut m = machine(Backend::Pinatubo);
        let a = m.read(0).clone();
        let b = m.read(1).clone();
        m.and(0, 1, 2);
        m.or(0, 1, 3);
        m.xor(0, 1, 4);
        m.not(0, 5);
        assert_eq!(m.read(2), &a.and(&b));
        assert_eq!(m.read(3), &a.or(&b));
        assert_eq!(m.read(4), &a.xor(&b));
        assert_eq!(m.read(5), &a.not());
    }

    #[test]
    fn ops_charged_per_backend() {
        let mut p = machine(Backend::Pinatubo);
        p.and(0, 1, 2);
        p.or(0, 1, 3);
        assert_eq!(p.ops(), 2);

        let mut g = machine(Backend::Magic);
        g.and(0, 1, 2);
        assert_eq!(g.ops(), 3); // NOR network
        assert_eq!(g.gates(), 1);
    }

    #[test]
    fn faults_hit_compute_not_copies() {
        let mut m = LogicMachine::with_faults(Backend::Pinatubo, 1024, 4, FaultModel::new(1.0, 3));
        m.write(0, &Row::ones(1024));
        m.copy(0, 1);
        assert_eq!(m.read(1).count_ones(), 1024);
        assert_eq!(m.faults_injected(), 0);
        m.and(0, 1, 2);
        assert_eq!(m.read(2).count_ones(), 0); // rate-1 faults flip all
        assert_eq!(m.faults_injected(), 1024);
    }

    #[test]
    fn maj3_matches_row_maj3() {
        let mut m = machine(Backend::Ambit);
        m.write(2, &Row::from_bits([true; 8]));
        let expect = Row::maj3(m.read(0), m.read(1), m.read(2));
        m.maj3(0, 1, 2, 3);
        assert_eq!(m.read(3), &expect);
    }

    #[test]
    fn reset_counters_preserves_rows() {
        let mut m = machine(Backend::Ambit);
        m.and(0, 1, 2);
        let saved = m.read(2).clone();
        m.reset_counters();
        assert_eq!(m.ops(), 0);
        assert_eq!(m.read(2), &saved);
    }
}
