//! Full-fidelity model of the Ambit in-DRAM compute substrate (§2.2).
//!
//! Ambit divides each subarray's row-address space into three groups
//! (Fig. 1b of the paper):
//!
//! * **B-group** — eight physical rows (T0–T3 compute rows and two
//!   dual-contact cells DCC0/DCC1, each with a true and a negated
//!   wordline) reachable through 16 addresses: eight single-row, two
//!   double-row and five triple-row combinations. Activating a triple-row
//!   address performs a triple-row activation (TRA) that *destructively*
//!   replaces all three rows with their bitwise majority (MAJ3).
//! * **C-group** — two control rows hard-wired to all-zeros (`C0`) and
//!   all-ones (`C1`).
//! * **D-group** — the remaining rows, used for data (masks, counters).
//!
//! Two macro commands drive computation:
//!
//! * [`MicroOp::Aap`]`(src, dst)` — activate `src`, then activate `dst`
//!   (RowClone-style copy of the sensed value into every row selected by
//!   `dst`), then precharge.
//! * [`MicroOp::Ap`]`(addr)` — activate a triple-row address and
//!   precharge, leaving MAJ3 in all three rows.
//!
//! Per the paper's footnote 2, address **B11** is remapped to activate
//! `{T0, T1, DCC0}` (it was unused in stock Ambit); this is what enables
//! the seven-command inverted-feedback sequence of Fig. 6b.
//!
//! Faults: TRA results are perturbed by the configured [`FaultModel`]
//! (§2.3 — compute is much less reliable than access); plain copies and
//! DCC-mediated NOT behave like normal accesses and are not perturbed.

use crate::fault::FaultModel;
use crate::row::Row;
use c2m_dram::{CommandKind, CommandStats};
use serde::{Deserialize, Serialize};

/// Row addresses understood by the Ambit subarray.
///
/// Single-row addresses name one wordline; `Pair*` and `Triple*` addresses
/// activate several wordlines simultaneously. The concrete `B<n>` numbers
/// from Fig. 6b of the paper are noted on each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AmbitAddr {
    /// A D-group data row.
    Data(usize),
    /// Compute row T0..T3 (B0..B3).
    T(u8),
    /// True wordline of dual-contact cell 0 or 1 (B4 = DCC0, B6 = DCC1):
    /// reads/writes the cell value directly.
    Dcc(u8),
    /// Negated wordline of DCC 0 or 1 (B5 = !DCC0, B7 = !DCC1): reading
    /// yields the complement of the cell; writing stores the complement of
    /// the driven value.
    DccNeg(u8),
    /// Control row of zeros.
    C0,
    /// Control row of ones.
    C1,
    /// B8: activates T0 and !DCC0 together — an AAP into this address
    /// leaves `src` in T0 and `!src` readable at DCC0.
    PairT0Dcc0,
    /// B9: activates T1 and !DCC1 together (T1 ← src, DCC1 reads !src).
    PairT1Dcc1,
    /// B10: activates T2 and T3 together (double copy).
    PairT2T3,
    /// B11 (remapped, paper footnote 2): TRA over {T0, T1, DCC0}.
    TripleT0T1Dcc0,
    /// B12: TRA over {T0, T1, T2}.
    TripleT0T1T2,
    /// B13: TRA over {T1, T2, T3}.
    TripleT1T2T3,
    /// B14: TRA over {T1, T2, DCC0}.
    TripleT1T2Dcc0,
    /// B15: TRA over {T0, T3, DCC1}.
    TripleT0T3Dcc1,
}

impl AmbitAddr {
    /// True if this address triggers a triple-row activation.
    #[must_use]
    pub fn is_triple(self) -> bool {
        matches!(
            self,
            AmbitAddr::TripleT0T1Dcc0
                | AmbitAddr::TripleT0T1T2
                | AmbitAddr::TripleT1T2T3
                | AmbitAddr::TripleT1T2Dcc0
                | AmbitAddr::TripleT0T3Dcc1
        )
    }
}

/// One Ambit macro command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MicroOp {
    /// Activate–activate–precharge: copy the value sensed at `src` (which
    /// may itself be a TRA computing MAJ3) into every row selected by
    /// `dst`.
    Aap(AmbitAddr, AmbitAddr),
    /// Activate–precharge on a triple-row address: in-place MAJ3.
    Ap(AmbitAddr),
}

/// A sequence of Ambit macro commands (the paper's μProgram, Fig. 6b).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroProgram {
    ops: Vec<MicroOp>,
}

impl MicroProgram {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an AAP command.
    pub fn aap(&mut self, src: AmbitAddr, dst: AmbitAddr) -> &mut Self {
        self.ops.push(MicroOp::Aap(src, dst));
        self
    }

    /// Appends an AP command.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a triple-row address.
    pub fn ap(&mut self, addr: AmbitAddr) -> &mut Self {
        assert!(addr.is_triple(), "AP requires a triple-row address");
        self.ops.push(MicroOp::Ap(addr));
        self
    }

    /// The command list.
    #[must_use]
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of macro commands (the paper's "AAP operations" unit).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Concatenates another program onto this one.
    pub fn extend(&mut self, other: &MicroProgram) {
        self.ops.extend_from_slice(&other.ops);
    }
}

impl FromIterator<MicroOp> for MicroProgram {
    fn from_iter<I: IntoIterator<Item = MicroOp>>(iter: I) -> Self {
        Self {
            ops: iter.into_iter().collect(),
        }
    }
}

/// Bit-accurate Ambit subarray: D-group data rows, B-group compute rows,
/// C-group constants, with AAP/AP execution, fault injection on TRA
/// results, and command accounting.
#[derive(Debug, Clone)]
pub struct AmbitSubarray {
    width: usize,
    data: Vec<Row>,
    t: [Row; 4],
    dcc: [Row; 2],
    fault: FaultModel,
    stats: CommandStats,
}

impl AmbitSubarray {
    /// Creates a subarray with `data_rows` zeroed D-group rows of `width`
    /// columns and a fault-free compute model.
    #[must_use]
    pub fn new(width: usize, data_rows: usize) -> Self {
        Self::with_faults(width, data_rows, FaultModel::fault_free())
    }

    /// Creates a subarray with the given fault model for TRA results.
    #[must_use]
    pub fn with_faults(width: usize, data_rows: usize, fault: FaultModel) -> Self {
        Self {
            width,
            data: vec![Row::zeros(width); data_rows],
            t: std::array::from_fn(|_| Row::zeros(width)),
            dcc: std::array::from_fn(|_| Row::zeros(width)),
            fault,
            stats: CommandStats::default(),
        }
    }

    /// Column count.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of D-group rows.
    #[must_use]
    pub fn data_rows(&self) -> usize {
        self.data.len()
    }

    /// Commands executed so far.
    #[must_use]
    pub fn stats(&self) -> &CommandStats {
        &self.stats
    }

    /// Resets command statistics (data is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CommandStats::default();
    }

    /// Total bit faults injected so far.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.fault.injected()
    }

    /// Reads a data row directly (host access path, not a CIM op).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn read_data(&self, row: usize) -> &Row {
        &self.data[row]
    }

    /// Writes a data row directly (host access path, not a CIM op).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `value` has the wrong width.
    pub fn write_data(&mut self, row: usize, value: &Row) {
        assert_eq!(value.width(), self.width, "row width mismatch");
        self.data[row] = value.clone();
    }

    /// Executes one macro command.
    pub fn execute_op(&mut self, op: MicroOp) {
        match op {
            MicroOp::Aap(src, dst) => {
                let v = self.activate_read(src);
                self.write_addr(dst, &v);
                self.stats.record(CommandKind::Aap);
            }
            MicroOp::Ap(addr) => {
                assert!(addr.is_triple(), "AP requires a triple-row address");
                let _ = self.activate_read(addr); // destructive TRA
                self.stats.record(CommandKind::Ap);
            }
        }
    }

    /// Executes a whole μProgram.
    pub fn execute(&mut self, prog: &MicroProgram) {
        for &op in prog.ops() {
            self.execute_op(op);
        }
    }

    /// Sensed value when activating `addr`. Triple addresses perform the
    /// destructive MAJ3 (with fault injection) as a side effect.
    fn activate_read(&mut self, addr: AmbitAddr) -> Row {
        match addr {
            AmbitAddr::Data(i) => self.data[i].clone(),
            AmbitAddr::T(i) => self.t[usize::from(i)].clone(),
            AmbitAddr::Dcc(i) => self.dcc[usize::from(i)].clone(),
            AmbitAddr::DccNeg(i) => self.dcc[usize::from(i)].not(),
            AmbitAddr::C0 => Row::zeros(self.width),
            AmbitAddr::C1 => Row::ones(self.width),
            AmbitAddr::PairT0Dcc0 => {
                // Reading a pair assumes both cells hold the same logical
                // value (as left by a prior pair write).
                self.t[0].clone()
            }
            AmbitAddr::PairT1Dcc1 => self.t[1].clone(),
            AmbitAddr::PairT2T3 => self.t[2].clone(),
            triple => {
                let (a, b, c) = self.triple_rows(triple);
                let mut m = Row::maj3(&a, &b, &c);
                self.fault.perturb(&mut m);
                self.write_triple(triple, &m);
                m
            }
        }
    }

    fn triple_rows(&self, addr: AmbitAddr) -> (Row, Row, Row) {
        match addr {
            AmbitAddr::TripleT0T1Dcc0 => {
                (self.t[0].clone(), self.t[1].clone(), self.dcc[0].clone())
            }
            AmbitAddr::TripleT0T1T2 => (self.t[0].clone(), self.t[1].clone(), self.t[2].clone()),
            AmbitAddr::TripleT1T2T3 => (self.t[1].clone(), self.t[2].clone(), self.t[3].clone()),
            AmbitAddr::TripleT1T2Dcc0 => {
                (self.t[1].clone(), self.t[2].clone(), self.dcc[0].clone())
            }
            AmbitAddr::TripleT0T3Dcc1 => {
                (self.t[0].clone(), self.t[3].clone(), self.dcc[1].clone())
            }
            _ => unreachable!("not a triple address"),
        }
    }

    fn write_triple(&mut self, addr: AmbitAddr, v: &Row) {
        match addr {
            AmbitAddr::TripleT0T1Dcc0 => {
                self.t[0] = v.clone();
                self.t[1] = v.clone();
                self.dcc[0] = v.clone();
            }
            AmbitAddr::TripleT0T1T2 => {
                self.t[0] = v.clone();
                self.t[1] = v.clone();
                self.t[2] = v.clone();
            }
            AmbitAddr::TripleT1T2T3 => {
                self.t[1] = v.clone();
                self.t[2] = v.clone();
                self.t[3] = v.clone();
            }
            AmbitAddr::TripleT1T2Dcc0 => {
                self.t[1] = v.clone();
                self.t[2] = v.clone();
                self.dcc[0] = v.clone();
            }
            AmbitAddr::TripleT0T3Dcc1 => {
                self.t[0] = v.clone();
                self.t[3] = v.clone();
                self.dcc[1] = v.clone();
            }
            _ => unreachable!("not a triple address"),
        }
    }

    fn write_addr(&mut self, addr: AmbitAddr, v: &Row) {
        match addr {
            AmbitAddr::Data(i) => self.data[i] = v.clone(),
            AmbitAddr::T(i) => self.t[usize::from(i)] = v.clone(),
            // Writing through the true wordline stores the value; through
            // the negated wordline stores its complement (so a subsequent
            // true-wordline read yields the complement of what was driven).
            AmbitAddr::Dcc(i) => self.dcc[usize::from(i)] = v.clone(),
            AmbitAddr::DccNeg(i) => self.dcc[usize::from(i)] = v.not(),
            AmbitAddr::C0 | AmbitAddr::C1 => {
                // c2m-lint: allow(unwrap-in-lib, reason = "documented hardware contract: writing a C-group control row is a program bug")
                panic!("C-group control rows are read-only")
            }
            AmbitAddr::PairT0Dcc0 => {
                self.t[0] = v.clone();
                self.dcc[0] = v.not();
            }
            AmbitAddr::PairT1Dcc1 => {
                self.t[1] = v.clone();
                self.dcc[1] = v.not();
            }
            AmbitAddr::PairT2T3 => {
                self.t[2] = v.clone();
                self.t[3] = v.clone();
            }
            triple => self.write_triple(triple, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(width: usize) -> AmbitSubarray {
        AmbitSubarray::new(width, 8)
    }

    #[test]
    fn rowclone_copy() {
        let mut s = sub(8);
        let v = Row::from_bits([true, false, true, true, false, false, true, false]);
        s.write_data(0, &v);
        let mut p = MicroProgram::new();
        p.aap(AmbitAddr::Data(0), AmbitAddr::Data(1));
        s.execute(&p);
        assert_eq!(s.read_data(1), &v);
        assert_eq!(s.stats().count(CommandKind::Aap), 1);
    }

    #[test]
    fn tra_computes_majority_destructively() {
        let mut s = sub(4);
        let a = Row::from_bits([true, true, false, false]);
        let b = Row::from_bits([true, false, true, false]);
        let c = Row::from_bits([false, true, true, false]);
        s.write_data(0, &a);
        s.write_data(1, &b);
        s.write_data(2, &c);
        let mut p = MicroProgram::new();
        p.aap(AmbitAddr::Data(0), AmbitAddr::T(0))
            .aap(AmbitAddr::Data(1), AmbitAddr::T(1))
            .aap(AmbitAddr::Data(2), AmbitAddr::T(2))
            .ap(AmbitAddr::TripleT0T1T2)
            .aap(AmbitAddr::T(0), AmbitAddr::Data(3));
        s.execute(&p);
        let expect = Row::maj3(&a, &b, &c);
        assert_eq!(s.read_data(3), &expect);
        assert_eq!(s.stats().count(CommandKind::Ap), 1);
        assert_eq!(s.stats().count(CommandKind::Aap), 4);
    }

    #[test]
    fn and_via_maj_with_zero_control_row() {
        let mut s = sub(4);
        let a = Row::from_bits([true, true, false, false]);
        let b = Row::from_bits([true, false, true, false]);
        s.write_data(0, &a);
        s.write_data(1, &b);
        let mut p = MicroProgram::new();
        p.aap(AmbitAddr::Data(0), AmbitAddr::T(0))
            .aap(AmbitAddr::Data(1), AmbitAddr::T(1))
            .aap(AmbitAddr::C0, AmbitAddr::T(2))
            .ap(AmbitAddr::TripleT0T1T2)
            .aap(AmbitAddr::T(0), AmbitAddr::Data(2));
        s.execute(&p);
        assert_eq!(s.read_data(2), &a.and(&b));
    }

    #[test]
    fn or_via_maj_with_one_control_row() {
        let mut s = sub(4);
        let a = Row::from_bits([true, true, false, false]);
        let b = Row::from_bits([true, false, true, false]);
        s.write_data(0, &a);
        s.write_data(1, &b);
        let mut p = MicroProgram::new();
        p.aap(AmbitAddr::Data(0), AmbitAddr::T(0))
            .aap(AmbitAddr::Data(1), AmbitAddr::T(1))
            .aap(AmbitAddr::C1, AmbitAddr::T(2))
            .ap(AmbitAddr::TripleT0T1T2)
            .aap(AmbitAddr::T(0), AmbitAddr::Data(2));
        s.execute(&p);
        assert_eq!(s.read_data(2), &a.or(&b));
    }

    #[test]
    fn not_via_dcc_pair_write() {
        let mut s = sub(4);
        let m = Row::from_bits([true, false, true, false]);
        s.write_data(0, &m);
        // AAP m, B8 : T0 <- m, DCC0 cell <- !m.
        let mut p = MicroProgram::new();
        p.aap(AmbitAddr::Data(0), AmbitAddr::PairT0Dcc0)
            .aap(AmbitAddr::Dcc(0), AmbitAddr::Data(1));
        s.execute(&p);
        assert_eq!(s.read_data(1), &m.not());
    }

    #[test]
    fn not_via_negated_wordline_write() {
        // AAP O0, B5 : !DCC0 <- O0 means a later DCC0 read yields !O0.
        let mut s = sub(4);
        let o = Row::from_bits([true, true, false, false]);
        s.write_data(0, &o);
        let mut p = MicroProgram::new();
        p.aap(AmbitAddr::Data(0), AmbitAddr::DccNeg(0))
            .aap(AmbitAddr::Dcc(0), AmbitAddr::Data(1));
        s.execute(&p);
        assert_eq!(s.read_data(1), &o.not());
    }

    #[test]
    fn dcc_neg_read_is_complement() {
        let mut s = sub(4);
        let v = Row::from_bits([true, false, false, true]);
        s.write_data(0, &v);
        let mut p = MicroProgram::new();
        p.aap(AmbitAddr::Data(0), AmbitAddr::Dcc(1))
            .aap(AmbitAddr::DccNeg(1), AmbitAddr::Data(1));
        s.execute(&p);
        assert_eq!(s.read_data(1), &v.not());
    }

    #[test]
    fn remapped_b11_computes_t0_and_dcc0() {
        // Footnote 2: B11 activates {T0, T1, DCC0}. With T1 = 0 this is
        // T0 AND DCC0.
        let mut s = sub(4);
        let a = Row::from_bits([true, true, false, false]);
        let d = Row::from_bits([true, false, true, false]);
        s.write_data(0, &a);
        s.write_data(1, &d);
        let mut p = MicroProgram::new();
        p.aap(AmbitAddr::Data(0), AmbitAddr::T(0))
            .aap(AmbitAddr::C0, AmbitAddr::T(1))
            .aap(AmbitAddr::Data(1), AmbitAddr::Dcc(0))
            .ap(AmbitAddr::TripleT0T1Dcc0)
            .aap(AmbitAddr::T(0), AmbitAddr::Data(2));
        s.execute(&p);
        assert_eq!(s.read_data(2), &a.and(&d));
    }

    #[test]
    fn fault_injection_only_on_tra() {
        let mut s = AmbitSubarray::with_faults(1024, 4, FaultModel::new(1.0, 1));
        let v = Row::ones(1024);
        s.write_data(0, &v);
        // A copy is never perturbed...
        let mut p = MicroProgram::new();
        p.aap(AmbitAddr::Data(0), AmbitAddr::Data(1));
        s.execute(&p);
        assert_eq!(s.read_data(1), &v);
        assert_eq!(s.faults_injected(), 0);
        // ...but a TRA with rate 1.0 flips every result bit.
        let mut p2 = MicroProgram::new();
        p2.aap(AmbitAddr::C1, AmbitAddr::T(0))
            .aap(AmbitAddr::C1, AmbitAddr::T(1))
            .aap(AmbitAddr::C1, AmbitAddr::T(2))
            .ap(AmbitAddr::TripleT0T1T2);
        s.execute(&p2);
        assert_eq!(s.faults_injected(), 1024);
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn writing_control_rows_panics() {
        let mut s = sub(4);
        s.execute_op(MicroOp::Aap(AmbitAddr::Data(0), AmbitAddr::C0));
    }

    #[test]
    #[should_panic(expected = "triple-row")]
    fn ap_on_single_row_panics() {
        let mut p = MicroProgram::new();
        p.ap(AmbitAddr::T(0));
    }

    #[test]
    fn microprogram_builder_and_extend() {
        let mut a = MicroProgram::new();
        a.aap(AmbitAddr::C0, AmbitAddr::T(0));
        let mut b = MicroProgram::new();
        b.ap(AmbitAddr::TripleT0T1T2);
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }
}
