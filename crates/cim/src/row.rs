//! Bit-packed DRAM rows and bulk bitwise operations.
//!
//! A [`Row`] models one DRAM row across the rank: `width` independent bit
//! columns packed into 64-bit words. All logic operations act on every
//! column simultaneously, exactly like a multi-row activation does in the
//! real substrate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One DRAM row: `width` bit columns, bit-packed.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Row {
    width: usize,
    words: Vec<u64>,
}

impl Row {
    /// Creates an all-zero row of `width` columns.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn zeros(width: usize) -> Self {
        assert!(width > 0, "row width must be positive");
        Self {
            width,
            words: vec![0; width.div_ceil(64)],
        }
    }

    /// Creates an all-one row of `width` columns.
    #[must_use]
    pub fn ones(width: usize) -> Self {
        let mut r = Self::zeros(width);
        for w in &mut r.words {
            *w = u64::MAX;
        }
        r.mask_tail();
        r
    }

    /// Builds a row from an iterator of booleans (column 0 first).
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut r = Self::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            r.set(i, *b);
        }
        r
    }

    /// Number of columns.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Reads the bit in column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.width, "column {i} out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit in column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.width, "column {i} out of range");
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips the bit in column `i`.
    pub fn flip(&mut self, i: usize) {
        let cur = self.get(i);
        self.set(i, !cur);
    }

    /// Number of set columns.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bitwise AND of two rows.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn and(&self, other: &Row) -> Row {
        self.zip(other, |a, b| a & b)
    }

    /// Bitwise OR of two rows.
    #[must_use]
    pub fn or(&self, other: &Row) -> Row {
        self.zip(other, |a, b| a | b)
    }

    /// Bitwise XOR of two rows.
    #[must_use]
    pub fn xor(&self, other: &Row) -> Row {
        self.zip(other, |a, b| a ^ b)
    }

    /// Bitwise NOR of two rows (MAGIC's primitive).
    #[must_use]
    pub fn nor(&self, other: &Row) -> Row {
        let mut r = self.zip(other, |a, b| !(a | b));
        r.mask_tail();
        r
    }

    /// Bitwise NOT.
    #[must_use]
    pub fn not(&self) -> Row {
        let mut r = Row {
            width: self.width,
            words: self.words.iter().map(|w| !w).collect(),
        };
        r.mask_tail();
        r
    }

    /// Column-wise majority of three rows — the triple-row-activation
    /// primitive (MAJ3).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn maj3(a: &Row, b: &Row, c: &Row) -> Row {
        assert_eq!(a.width, b.width, "row width mismatch");
        assert_eq!(a.width, c.width, "row width mismatch");
        let words = a
            .words
            .iter()
            .zip(&b.words)
            .zip(&c.words)
            .map(|((&x, &y), &z)| (x & y) | (y & z) | (x & z))
            .collect();
        Row {
            width: a.width,
            words,
        }
    }

    /// Iterates over the column bits (column 0 first).
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.width).map(move |i| self.get(i))
    }

    /// Counts columns where `self` and `other` differ.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn hamming_distance(&self, other: &Row) -> usize {
        self.xor(other).count_ones()
    }

    /// Even parity over all columns (true = odd number of ones).
    #[must_use]
    pub fn parity(&self) -> bool {
        self.count_ones() % 2 == 1
    }

    fn zip(&self, other: &Row, f: impl Fn(u64, u64) -> u64) -> Row {
        assert_eq!(self.width, other.width, "row width mismatch");
        Row {
            width: self.width,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    fn mask_tail(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Row[{}; ", self.width)?;
        let shown = self.width.min(64);
        for i in 0..shown {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.width > shown {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Row::zeros(100);
        let o = Row::ones(100);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(o.count_ones(), 100);
        assert_eq!(z.width(), 100);
    }

    #[test]
    fn tail_masking_not() {
        // width not a multiple of 64: NOT must not set bits past width.
        let z = Row::zeros(70);
        let n = z.not();
        assert_eq!(n.count_ones(), 70);
    }

    #[test]
    fn get_set_flip() {
        let mut r = Row::zeros(65);
        r.set(64, true);
        assert!(r.get(64));
        r.flip(64);
        assert!(!r.get(64));
        r.flip(0);
        assert!(r.get(0));
    }

    #[test]
    fn maj3_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let ra = Row::from_bits([a]);
                    let rb = Row::from_bits([b]);
                    let rc = Row::from_bits([c]);
                    let m = Row::maj3(&ra, &rb, &rc);
                    let expect = (a && b) || (c && (a || b));
                    assert_eq!(m.get(0), expect, "maj({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn maj_with_zero_is_and_with_one_is_or() {
        let a = Row::from_bits([false, false, true, true]);
        let b = Row::from_bits([false, true, false, true]);
        let zero = Row::zeros(4);
        let one = Row::ones(4);
        assert_eq!(Row::maj3(&a, &b, &zero), a.and(&b));
        assert_eq!(Row::maj3(&a, &b, &one), a.or(&b));
    }

    #[test]
    fn nor_matches_definition() {
        let a = Row::from_bits([false, false, true, true]);
        let b = Row::from_bits([false, true, false, true]);
        assert_eq!(a.nor(&b), a.or(&b).not());
    }

    #[test]
    fn hamming_and_parity() {
        let a = Row::from_bits([true, false, true]);
        let b = Row::from_bits([false, false, true]);
        assert_eq!(a.hamming_distance(&b), 1);
        assert!(!a.parity()); // two ones -> even
        assert!(b.parity()); // one one -> odd
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_widths_panic() {
        let _ = Row::zeros(4).and(&Row::zeros(5));
    }

    #[test]
    fn from_bits_roundtrip() {
        let bits = [true, false, true, true, false];
        let r = Row::from_bits(bits);
        let back: Vec<bool> = r.iter_bits().collect();
        assert_eq!(back, bits);
    }
}
