//! Row-parallel multi-digit counter bank (§4.1–§4.4, Fig. 5).
//!
//! A [`CounterBank`] holds `width` independent counters, one per memory
//! column. Each counter has `digits` radix-2n digits; digit `d`, bit `i`
//! is memory row `bits[d][i]`, and each digit owns an `O_next` row that
//! latches pending overflow (or borrow, for decrements). A masked k-ary
//! increment updates **all** `width` counters in one broadcast command
//! sequence; columns where the mask is 0 are untouched.
//!
//! Fault behaviour: each destination-row update synthesises
//! `b'_i = (b_i ∧ m̄) ∨ (s_i ∧ m)` from three MAJ-class operations
//! (two ANDs and one OR, Fig. 6a), so the computed row is perturbed three
//! times at the *effective* per-op fault rate — the raw CIM rate for
//! unprotected execution, the TMR residual for [`ProtectionKind::Tmr`],
//! or the Table 1 undetected-error rate for [`ProtectionKind::Ecc`]
//! (detected faults are recomputed and show up as op-count overhead, not
//! as errors — see [`BankStats`]).

use crate::codec::JohnsonCode;
use crate::kary::TransitionPattern;
use c2m_cim::{FaultModel, Row};
use c2m_ecc::protect::{ProtectionAnalysis, ProtectionKind};
use c2m_ecc::TmrVoter;
use serde::{Deserialize, Serialize};

/// Execution statistics of a counter bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankStats {
    /// k-ary increment/decrement command sequences issued (incl. carry
    /// resolution steps).
    pub increments: u64,
    /// Ambit AAP/AP macro commands, already including the protection
    /// scheme's extra operations (Tab. 1 costs).
    pub ambit_ops: u64,
    /// Carry/borrow resolution sequences issued.
    pub resolves: u64,
}

/// `width` parallel multi-digit Johnson counters stored in rows.
#[derive(Debug, Clone)]
pub struct CounterBank {
    code: JohnsonCode,
    digits: usize,
    width: usize,
    /// bits[d][i] = row holding bit i of digit d of every counter.
    bits: Vec<Vec<Row>>,
    /// onext[d] = pending overflow/borrow flag rows.
    onext: Vec<Row>,
    protection: ProtectionKind,
    faults: FaultModel,
    effective_rate: f64,
    stats: BankStats,
}

impl CounterBank {
    /// Creates a fault-free bank of `width` counters with `digits`
    /// radix-`radix` digits each.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is odd/zero, or `digits`/`width` are zero.
    #[must_use]
    pub fn new(radix: usize, digits: usize, width: usize) -> Self {
        Self::with_faults(
            radix,
            digits,
            width,
            FaultModel::fault_free(),
            ProtectionKind::None,
        )
    }

    /// Creates a bank with a CIM fault model and a protection scheme.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (see [`CounterBank::new`]).
    #[must_use]
    pub fn with_faults(
        radix: usize,
        digits: usize,
        width: usize,
        faults: FaultModel,
        protection: ProtectionKind,
    ) -> Self {
        assert!(digits > 0, "need at least one digit");
        assert!(width > 0, "need at least one counter column");
        let code = JohnsonCode::for_radix(radix);
        let n = code.bits();
        let raw = faults.rate();
        let effective_rate = match protection {
            ProtectionKind::None => raw,
            ProtectionKind::Tmr => TmrVoter::effective_per_op_rate(raw),
            ProtectionKind::Ecc { fr_checks, .. } => ProtectionAnalysis {
                fault_rate: raw,
                fr_checks,
            }
            .undetected_error_rate()
            .min(1.0),
        };
        let effective = FaultModel::new(effective_rate.min(1.0), 0xC0DE ^ width as u64);
        let _ = faults; // raw model consumed into the effective rate
        Self {
            code,
            digits,
            width,
            bits: vec![vec![Row::zeros(width); n]; digits],
            onext: vec![Row::zeros(width); digits],
            protection,
            faults: effective,
            effective_rate,
            stats: BankStats::default(),
        }
    }

    /// The digit codec.
    #[must_use]
    pub fn code(&self) -> JohnsonCode {
        self.code
    }

    /// Digits per counter.
    #[must_use]
    pub fn digits(&self) -> usize {
        self.digits
    }

    /// Number of parallel counters.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Maximum representable value + 1 (radix^digits).
    #[must_use]
    pub fn capacity(&self) -> u128 {
        (self.code.radix() as u128).pow(self.digits as u32)
    }

    /// Memory rows consumed per counter column: `digits · (n + 1)` (§4.4).
    #[must_use]
    pub fn rows_used(&self) -> usize {
        self.digits * (self.code.bits() + 1)
    }

    /// Execution statistics so far.
    #[must_use]
    pub fn stats(&self) -> &BankStats {
        &self.stats
    }

    /// The effective per-op undetected fault rate in force.
    #[must_use]
    pub fn effective_fault_rate(&self) -> f64 {
        self.effective_rate
    }

    /// Host-writes counter `col` to `value` (no pending flags).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range or `value` exceeds the capacity.
    pub fn set(&mut self, col: usize, value: u128) {
        assert!(col < self.width, "column out of range");
        assert!(value < self.capacity(), "value exceeds counter capacity");
        let radix = self.code.radix() as u128;
        let mut v = value;
        for d in 0..self.digits {
            let digit = (v % radix) as usize;
            v /= radix;
            let enc = self.code.encode(digit);
            for i in 0..self.code.bits() {
                self.bits[d][i].set(col, (enc >> i) & 1 == 1);
            }
            self.onext[d].set(col, false);
        }
    }

    /// Reads counter `col`, resolving pending flags arithmetically.
    /// Returns `None` if any digit holds an invalid (fault-corrupted)
    /// Johnson pattern.
    #[must_use]
    pub fn get(&self, col: usize) -> Option<u128> {
        let radix = self.code.radix() as u128;
        let mut total = 0u128;
        let mut scale = 1u128;
        for d in 0..self.digits {
            let v = self.code.decode(self.digit_bits(d, col))?;
            let pending = u128::from(self.onext[d].get(col));
            total += scale * (v as u128 + radix * pending);
            scale *= radix;
        }
        Some(total % (scale))
    }

    /// Reads counter `col` tolerantly: corrupt digits decode to the
    /// nearest valid Johnson state (how a downstream consumer would read
    /// a faulted counter — §2.4's minimal-transitional-error property).
    #[must_use]
    pub fn get_nearest(&self, col: usize) -> u128 {
        let radix = self.code.radix() as u128;
        let mut total = 0u128;
        let mut scale = 1u128;
        for d in 0..self.digits {
            let v = self.code.decode_nearest(self.digit_bits(d, col));
            let pending = u128::from(self.onext[d].get(col));
            total += scale * (v as u128 + radix * pending);
            scale *= radix;
        }
        total % scale
    }

    fn digit_bits(&self, d: usize, col: usize) -> u64 {
        let mut bits = 0u64;
        for i in 0..self.code.bits() {
            if self.bits[d][i].get(col) {
                bits |= 1 << i;
            }
        }
        bits
    }

    /// Applies one masked k-ary step to digit `d`, latching the
    /// overflow/borrow flag into the digit's `O_next` row. This is the
    /// unit the μProgram of Fig. 6b implements; it costs
    /// `protection.ambit_increment_ops(n)` macro commands.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range, the pattern width differs from the
    /// digit width, or the mask width differs from the bank width.
    pub fn step_digit(&mut self, d: usize, pattern: &TransitionPattern, mask: &Row) {
        assert!(d < self.digits, "digit out of range");
        assert_eq!(pattern.n(), self.code.bits(), "pattern width mismatch");
        assert_eq!(mask.width(), self.width, "mask width mismatch");
        let n = self.code.bits();
        let old: Vec<Row> = self.bits[d].clone();
        let not_mask = mask.not();
        let old_msb = old[n - 1].clone();
        for (i, srcspec) in pattern.sources().iter().enumerate() {
            let src = if srcspec.invert {
                old[srcspec.src].not()
            } else {
                old[srcspec.src].clone()
            };
            // b'_i = (b_i & !m) | (src & m): two ANDs and an OR, each a
            // fault-exposed MAJ-class op.
            let keep = self.faulty(old[i].and(&not_mask));
            let take = self.faulty(src.and(mask));
            let merged = self.faulty(keep.or(&take));
            self.bits[d][i] = merged;
        }
        let new_msb = &self.bits[d][n - 1];
        let fired = match pattern.flag_rule() {
            crate::kary::FlagRule::IncSmall => old_msb.and(&new_msb.not()),
            crate::kary::FlagRule::IncLarge => old_msb.or(&new_msb.not()).and(mask),
            crate::kary::FlagRule::DecSmall => old_msb.not().and(new_msb),
            crate::kary::FlagRule::DecLarge => old_msb.not().or(new_msb).and(mask),
        };
        let fired = self.faulty(fired);
        self.onext[d] = self.faulty(self.onext[d].or(&fired));
        self.stats.increments += 1;
        self.stats.ambit_ops += self.protection.ambit_increment_ops(self.code.bits());
    }

    /// Masked increment of digit `d` by `k` (`1..radix`).
    pub fn increment_digit(&mut self, d: usize, k: usize, mask: &Row) {
        let p = TransitionPattern::increment(self.code.bits(), k);
        self.step_digit(d, &p, mask);
    }

    /// Masked decrement of digit `d` by `k` (`1..radix`).
    pub fn decrement_digit(&mut self, d: usize, k: usize, mask: &Row) {
        let p = TransitionPattern::decrement(self.code.bits(), k);
        self.step_digit(d, &p, mask);
    }

    /// Digit-wise carry ripple (§4.4 footnote 3): unit-increments digit
    /// `d+1` using digit `d`'s `O_next` as the mask, then clears the flag.
    /// Overflow out of the most-significant digit wraps (is dropped), as
    /// in any fixed-capacity accumulator.
    pub fn resolve_carry(&mut self, d: usize) {
        let mask = self.onext[d].clone();
        self.onext[d] = Row::zeros(self.width);
        if d + 1 < self.digits {
            self.increment_digit(d + 1, 1, &mask);
        }
        self.stats.resolves += 1;
    }

    /// Borrow ripple for decrements: unit-decrements digit `d+1` under
    /// digit `d`'s flag, then clears it.
    pub fn resolve_borrow(&mut self, d: usize) {
        let mask = self.onext[d].clone();
        self.onext[d] = Row::zeros(self.width);
        if d + 1 < self.digits {
            self.decrement_digit(d + 1, 1, &mask);
        }
        self.stats.resolves += 1;
    }

    /// True if digit `d` has any pending flag set.
    #[must_use]
    pub fn has_pending(&self, d: usize) -> bool {
        self.onext[d].count_ones() > 0
    }

    /// Direct access to a digit's `O_next` flag row.
    #[must_use]
    pub fn onext(&self, d: usize) -> &Row {
        &self.onext[d]
    }

    /// Direct access to bit row `i` of digit `d` (for Algorithm 2 and the
    /// tensor ops in `ops`).
    #[must_use]
    pub fn bit_row(&self, d: usize, i: usize) -> &Row {
        &self.bits[d][i]
    }

    /// Accumulates `value` into every masked counter with **full carry
    /// rippling** after every digit (the "k-ary only" baseline of
    /// Fig. 8b): for each non-zero digit k_d of `value` in base 2n, issue
    /// one k-ary increment followed by a complete ripple chain.
    pub fn accumulate_ripple(&mut self, value: u128, mask: &Row) {
        let radix = self.code.radix() as u128;
        let mut v = value;
        for d in 0..self.digits {
            let k = (v % radix) as usize;
            v /= radix;
            if k == 0 {
                continue;
            }
            self.increment_digit(d, k, mask);
            for dd in d..self.digits {
                if !self.has_pending(dd) {
                    break;
                }
                self.resolve_carry(dd);
            }
        }
    }

    /// Subtracts `value` from every masked counter with full borrow
    /// rippling (negative-input support, §4.4 "Decrements").
    pub fn subtract_ripple(&mut self, value: u128, mask: &Row) {
        let radix = self.code.radix() as u128;
        let mut v = value;
        for d in 0..self.digits {
            let k = (v % radix) as usize;
            v /= radix;
            if k == 0 {
                continue;
            }
            self.decrement_digit(d, k, mask);
            for dd in d..self.digits {
                if !self.has_pending(dd) {
                    break;
                }
                self.resolve_borrow(dd);
            }
        }
    }

    fn faulty(&mut self, mut r: Row) -> Row {
        if self.effective_rate > 0.0 {
            self.faults.perturb(&mut r);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let b = CounterBank::new(10, 3, 64);
        assert_eq!(b.capacity(), 1000);
        assert_eq!(b.rows_used(), 3 * 6);
        assert_eq!(b.width(), 64);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = CounterBank::new(10, 3, 8);
        for (col, v) in [(0usize, 0u128), (1, 7), (2, 42), (3, 999), (4, 500)] {
            b.set(col, v);
            assert_eq!(b.get(col), Some(v), "col {col}");
        }
    }

    #[test]
    fn masked_increment_only_touches_masked_columns() {
        let mut b = CounterBank::new(10, 2, 8);
        for col in 0..8 {
            b.set(col, col as u128);
        }
        let mask = Row::from_bits((0..8).map(|i| i % 2 == 0));
        b.increment_digit(0, 3, &mask);
        for col in 0..8 {
            let expect = if col % 2 == 0 {
                col as u128 + 3
            } else {
                col as u128
            };
            assert_eq!(b.get(col), Some(expect % 100), "col {col}");
        }
    }

    #[test]
    fn single_digit_overflow_latches_onext() {
        let mut b = CounterBank::new(10, 2, 4);
        b.set(0, 8);
        b.set(1, 2);
        let mask = Row::ones(4);
        b.increment_digit(0, 5, &mask); // 8+5 = 13: digit0 -> 3, carry
        assert!(b.onext(0).get(0));
        assert!(!b.onext(0).get(1)); // 2+5 = 7: no carry
                                     // get() folds pending carries into the value.
        assert_eq!(b.get(0), Some(13));
        assert_eq!(b.get(1), Some(7));
        b.resolve_carry(0);
        assert_eq!(b.get(0), Some(13));
        assert!(!b.has_pending(0));
    }

    #[test]
    fn accumulate_ripple_matches_plain_addition() {
        let mut b = CounterBank::new(10, 4, 4);
        let mask = Row::ones(4);
        let inputs = [9u128, 999, 5, 123, 87, 1, 4000, 38];
        let mut expect = 0u128;
        for &x in &inputs {
            b.accumulate_ripple(x, &mask);
            expect = (expect + x) % b.capacity();
        }
        for col in 0..4 {
            assert_eq!(b.get(col), Some(expect), "col {col}");
        }
    }

    #[test]
    fn fig9_delayed_overflow_example() {
        // Fig. 9: counter at 9999 (radix 10), add 9 repeatedly; pending
        // flags let digits exceed 9 logically without immediate rippling.
        let mut b = CounterBank::new(10, 5, 1);
        b.set(0, 9999);
        let mask = Row::ones(1);
        b.increment_digit(0, 9, &mask); // 9999 + 9 = 10008 via pending flag
        assert_eq!(b.get(0), Some(10008));
        assert!(b.has_pending(0));
    }

    #[test]
    fn subtract_undoes_accumulate() {
        let mut b = CounterBank::new(8, 4, 2);
        let mask = Row::ones(2);
        b.set(0, 100);
        b.set(1, 100);
        b.accumulate_ripple(77, &mask);
        b.subtract_ripple(77, &mask);
        assert_eq!(b.get(0), Some(100));
        assert_eq!(b.get(1), Some(100));
    }

    #[test]
    fn subtract_with_borrow_across_digits() {
        let mut b = CounterBank::new(10, 3, 1);
        b.set(0, 500);
        let mask = Row::ones(1);
        b.subtract_ripple(123, &mask);
        assert_eq!(b.get(0), Some(377));
    }

    #[test]
    fn op_accounting_unprotected() {
        let mut b = CounterBank::new(10, 1, 4);
        let mask = Row::ones(4);
        b.increment_digit(0, 4, &mask);
        // 7n+7 with n=5 -> 42.
        assert_eq!(b.stats().ambit_ops, 42);
        assert_eq!(b.stats().increments, 1);
    }

    #[test]
    fn op_accounting_protected() {
        let mut b = CounterBank::with_faults(
            10,
            1,
            4,
            FaultModel::fault_free(),
            ProtectionKind::Ecc {
                fr_checks: 2,
                fuse_inverted_feedback: false,
            },
        );
        let mask = Row::ones(4);
        b.increment_digit(0, 4, &mask);
        // 13n+16 with n=5 -> 81.
        assert_eq!(b.stats().ambit_ops, 81);
    }

    #[test]
    fn tmr_protection_reduces_error_vs_unprotected() {
        let rate = 0.02;
        let run = |prot: ProtectionKind| -> f64 {
            let mut b = CounterBank::with_faults(10, 4, 256, FaultModel::new(rate, 77), prot);
            let mask = Row::ones(256);
            for _ in 0..20 {
                b.accumulate_ripple(9, &mask);
            }
            let mut err = 0.0;
            for col in 0..256 {
                let got = b.get_nearest(col) as f64;
                err += (got - 180.0).abs();
            }
            err / 256.0
        };
        let raw = run(ProtectionKind::None);
        let tmr = run(ProtectionKind::Tmr);
        let ecc = run(ProtectionKind::ecc_default());
        assert!(tmr < raw, "TMR {tmr} should beat raw {raw}");
        assert!(ecc <= tmr, "ECC {ecc} should beat TMR {tmr}");
    }

    #[test]
    fn effective_rate_zero_when_fault_free() {
        let b = CounterBank::new(10, 2, 4);
        assert_eq!(b.effective_fault_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn set_rejects_overflowing_value() {
        let mut b = CounterBank::new(10, 2, 4);
        b.set(0, 100);
    }
}
