//! Closed-form operation-count models behind Fig. 8.
//!
//! All counts are in Ambit AAP/AP macro commands. The paper's cost anchors:
//!
//! * one masked k-ary increment including overflow check: `7n + 7` (§4.5.1,
//!   Tab. 1);
//! * unit counting of a multi-digit input repeats the increment
//!   `D + Σ d_i` times — digit-sum unit increments plus carry rippling
//!   (§4.4);
//! * k-ary counting with full carry propagation pays one increment per
//!   non-zero input digit plus the ripple chain through the remaining
//!   higher digits (§4.5.1, the capacity-dependent curves of Fig. 8b);
//! * IARM is input-dependent only (§4.5.2) — its expected cost is
//!   measured by running the planner, not by a closed form.

use crate::codec::JohnsonCode;
use crate::iarm::{CounterAction, IarmPlanner};

/// AAP/AP commands of one masked k-ary increment with overflow check on
/// an n-bit digit (the `7n + 7` anchor).
#[must_use]
pub fn increment_ops(n: usize) -> u64 {
    7 * n as u64 + 7
}

/// Digits needed for a counter of `capacity_bits` binary capacity at the
/// given even `radix`.
///
/// # Panics
///
/// Panics if `radix` is odd or < 2.
#[must_use]
pub fn digits_for_capacity(radix: usize, capacity_bits: u32) -> usize {
    assert!(radix >= 2 && radix.is_multiple_of(2), "radix must be even");
    let need = 2f64.powi(capacity_bits as i32);
    let mut d = 1usize;
    let mut cap = radix as f64;
    while cap < need {
        cap *= radix as f64;
        d += 1;
    }
    d
}

/// Base-`radix` digits of `value`, least significant first, padded to the
/// counter's digit count.
#[must_use]
pub fn unpack_digits(value: u128, radix: usize, digits: usize) -> Vec<usize> {
    let mut v = value;
    let r = radix as u128;
    (0..digits)
        .map(|_| {
            let d = (v % r) as usize;
            v /= r;
            d
        })
        .collect()
}

/// Unit-counting cost of accumulating `value` into a `digits`-digit
/// radix-`2n` counter: `(Σ d_i + D) · (7n + 7)` — digit-sum unit
/// increments plus one rippling increment per digit (§4.4).
#[must_use]
pub fn unit_counting_ops(value: u128, radix: usize, digits: usize) -> u64 {
    let n = JohnsonCode::for_radix(radix).bits();
    let digit_sum: u64 = unpack_digits(value, radix, digits)
        .iter()
        .map(|&d| d as u64)
        .sum();
    (digit_sum + digits as u64) * increment_ops(n)
}

/// k-ary counting cost with per-increment carry rippling: the paper's
/// `2·(7n+7)` per non-zero input digit (§4.5.1) — each k-ary increment is
/// followed by one carry-rippling command sequence.
#[must_use]
pub fn kary_full_ripple_ops(value: u128, radix: usize, digits: usize) -> u64 {
    let n = JohnsonCode::for_radix(radix).bits();
    let per = increment_ops(n);
    unpack_digits(value, radix, digits)
        .iter()
        .filter(|&&k| k != 0)
        .map(|_| 2 * per)
        .sum()
}

/// Worst-case *data-oblivious* k-ary cost: the memory controller cannot
/// observe `O_next`, so without IARM it must issue the ripple chain all
/// the way to the most-significant digit after every increment. This is
/// the capacity-dependent family of k-ary curves in Fig. 8b
/// (`k-ary_i16/i32/i64`).
#[must_use]
pub fn kary_oblivious_chain_ops(value: u128, radix: usize, digits: usize) -> u64 {
    let n = JohnsonCode::for_radix(radix).bits();
    let per = increment_ops(n);
    unpack_digits(value, radix, digits)
        .iter()
        .enumerate()
        .filter(|(_, &k)| k != 0)
        .map(|(d, _)| per * (1 + (digits - 1 - d) as u64))
        .sum()
}

/// Measured IARM cost of accumulating an input stream: runs the planner
/// (plus the final flush) and charges one increment per emitted action.
/// Capacity-invariant in expectation, per §4.5.2.
#[must_use]
pub fn iarm_stream_ops(inputs: &[u128], radix: usize, digits: usize) -> u64 {
    let n = JohnsonCode::for_radix(radix).bits();
    let per = increment_ops(n);
    let mut planner = IarmPlanner::new(radix, digits);
    let mut actions = 0u64;
    for &x in inputs {
        actions += planner.plan_add(x).len() as u64;
    }
    actions += planner
        .flush()
        .iter()
        .filter(|a| matches!(a, CounterAction::ResolveCarry { .. }))
        .count() as u64;
    actions * per
}

/// MAJ-based bit-serial ripple-carry addition cost on Ambit: adding one
/// operand into a `width`-bit accumulator costs ≈ 15 AAP/AP per bit
/// (operand staging, two MAJ3 for carry/sum, DCC inversions) — the flat
/// "RCA" reference levels of Fig. 8.
#[must_use]
pub fn rca_add_ops(width_bits: usize) -> u64 {
    15 * width_bits as u64
}

/// Average ops/input over a uniform 8-bit input distribution — the
/// quantity Fig. 8a/8b plot on the y axis.
#[must_use]
pub fn average_over_uniform_u8(f: impl Fn(u128) -> u64) -> f64 {
    let total: u64 = (0u128..256).map(f).sum();
    total as f64 / 256.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_formula() {
        assert_eq!(increment_ops(5), 42); // 7*5+7
        assert_eq!(increment_ops(2), 21);
    }

    #[test]
    fn digits_for_capacity_examples() {
        // 16-bit capacity in radix 10: 10^5 >= 65536 -> 5 digits.
        assert_eq!(digits_for_capacity(10, 16), 5);
        // 32-bit in radix 4: 4^16 = 2^32 -> 16 digits.
        assert_eq!(digits_for_capacity(4, 32), 16);
        assert_eq!(digits_for_capacity(2, 8), 8);
    }

    #[test]
    fn unpack_digits_roundtrip() {
        let d = unpack_digits(4095, 10, 5);
        assert_eq!(d, vec![5, 9, 0, 4, 0]);
    }

    #[test]
    fn kary_beats_unit_counting() {
        // Fig. 8a: k-ary reduces ops by 2-6x over unit counting.
        for radix in [4usize, 6, 8, 10, 16, 20] {
            let digits = digits_for_capacity(radix, 32);
            let unit = average_over_uniform_u8(|v| unit_counting_ops(v, radix, digits));
            let kary = average_over_uniform_u8(|v| kary_full_ripple_ops(v, radix, digits));
            let gain = unit / kary;
            assert!(
                gain > 1.5,
                "radix {radix}: unit {unit:.0} vs kary {kary:.0} (gain {gain:.2})"
            );
        }
    }

    #[test]
    fn iarm_beats_kary_full_ripple() {
        // Fig. 8b: IARM provides the fewest operations, against both the
        // paper's 2-sequences-per-digit accounting and the data-oblivious
        // worst-case chain.
        let inputs: Vec<u128> = (0..256).collect();
        for radix in [4usize, 6, 8, 10] {
            let digits = digits_for_capacity(radix, 32);
            let kary: u64 = inputs
                .iter()
                .map(|&v| kary_full_ripple_ops(v, radix, digits))
                .sum();
            let chain: u64 = inputs
                .iter()
                .map(|&v| kary_oblivious_chain_ops(v, radix, digits))
                .sum();
            let iarm = iarm_stream_ops(&inputs, radix, digits);
            assert!(
                iarm < kary,
                "radix {radix}: IARM {iarm} should beat k-ary {kary}"
            );
            assert!(
                iarm < chain,
                "radix {radix}: IARM {iarm} should beat oblivious chain {chain}"
            );
        }
    }

    #[test]
    fn iarm_is_capacity_invariant() {
        // §4.5.2: the single IARM curve of Fig. 8b.
        let inputs: Vec<u128> = (1..256).collect();
        let d16 = digits_for_capacity(10, 16);
        let d64 = digits_for_capacity(10, 64);
        let a = iarm_stream_ops(&inputs, 10, d16);
        let b = iarm_stream_ops(&inputs, 10, d64);
        let ratio = b as f64 / a as f64;
        assert!(
            ratio < 1.05,
            "IARM cost must be (nearly) capacity invariant: {a} vs {b}"
        );
    }

    #[test]
    fn iarm_beats_rca_at_mid_radices() {
        // Fig. 8b: IARM wins over RCA particularly for radices 4-8.
        let inputs: Vec<u128> = (0..256).collect();
        for radix in [4usize, 6, 8] {
            let digits = digits_for_capacity(radix, 32);
            let iarm = iarm_stream_ops(&inputs, radix, digits) as f64 / 256.0;
            let rca = rca_add_ops(32) as f64;
            assert!(
                iarm < rca,
                "radix {radix}: IARM {iarm:.0} should beat RCA {rca:.0}"
            );
        }
    }

    #[test]
    fn rca_is_capacity_dependent() {
        assert!(rca_add_ops(64) > rca_add_ops(32));
        assert!(rca_add_ops(32) > rca_add_ops(16));
    }

    #[test]
    fn zero_input_costs_nothing_in_kary() {
        assert_eq!(kary_full_ripple_ops(0, 10, 5), 0);
        // But unit counting still pays the rippling allowance.
        assert!(unit_counting_ops(0, 10, 5) > 0);
    }
}
