//! In-memory high-radix Johnson counters (§4 of the paper).
//!
//! A radix-2n digit is stored as an n-bit Johnson counter (JC) whose bits
//! live in n dedicated memory rows, one counter per column, so thousands
//! of counters advance in lockstep under a single broadcast command
//! sequence. This crate implements the complete §4 machinery:
//!
//! * [`codec`] — JC state encoding/decoding and state arithmetic (§2.4).
//! * [`kary`] — variable-step (k-ary) transition patterns: Algorithm 1 and
//!   the Fig. 7 pattern family, plus decrements (§4.4–4.5.1).
//! * [`bank`] — the row-parallel counter bank: masked multi-digit
//!   counters with overflow rows, fault injection and protection-aware
//!   op accounting (§4.1–4.4, §6.2).
//! * [`iarm`] — Input-Aware Rippling Minimization: the host-side virtual
//!   counter that postpones carry propagation (§4.5.2, Fig. 9).
//! * [`ops`] — counter-to-counter addition (Algorithm 2), shift-left and
//!   ReLU (§5.2.4).
//! * [`ambit_lower`] — exact Ambit μProgram emission for a masked k-ary
//!   increment, reproducing the seven-command-per-bit schedule of
//!   Fig. 6b (7n+7 AAP/AP per increment including overflow).
//! * [`cost`] — closed-form op-count models behind Fig. 8.
//! * [`capacity`] — bits-required-versus-capacity model behind Fig. 19.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ambit_lower;
pub mod bank;
pub mod capacity;
pub mod codec;
pub mod cost;
pub mod iarm;
pub mod kary;
pub mod ops;

pub use bank::CounterBank;
pub use codec::JohnsonCode;
pub use iarm::IarmPlanner;
pub use kary::{BitSource, TransitionPattern};
