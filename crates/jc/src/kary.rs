//! Variable-step (k-ary) Johnson-counter transitions — Algorithm 1.
//!
//! §4.5.1: an increment by any `k` in `1..2n` costs the same number of
//! CIM steps as a unit increment; only the shift pattern differs (Fig. 7).
//! Every output bit is produced by the masked selection
//! `b'_i = (m̄ ∧ b_i) ∨ (m ∧ s_i)` where the source `s_i` is some counter
//! bit, possibly inverted — forward shifts take it upright, inverted
//! feedback takes the complement. Decrements reuse the machinery with the
//! complementary step (`2n − k`) and the underflow rule of §4.4.

use serde::{Deserialize, Serialize};

/// Where output bit `i` of a transition takes its value from (in masked
/// columns): counter bit `src`, inverted if `invert`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSource {
    /// Source bit index (0 = LSB).
    pub src: usize,
    /// Whether the source passes through the inverted feedback path.
    pub invert: bool,
}

/// How the overflow/underflow flag is computed for a transition
/// (Algorithm 1 lines 6 and 13 and their decrement duals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlagRule {
    /// Increment with `k ≤ n`: `O' = O ∨ (MSB ∧ ¬MSB')`
    /// (MSB falling edge; unmasked columns never fire).
    IncSmall,
    /// Increment with `k > n`: `O' = O ∨ ((MSB ∨ ¬MSB') ∧ m)`.
    IncLarge,
    /// Decrement with `k ≤ n`: `O' = O ∨ (¬MSB ∧ MSB')` (rising edge).
    DecSmall,
    /// Decrement with `k > n`: `O' = O ∨ ((¬MSB ∨ MSB') ∧ m)`.
    DecLarge,
}

/// A complete k-ary transition: per-bit sources plus the flag rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionPattern {
    n: usize,
    k: usize,
    decrement: bool,
    sources: Vec<BitSource>,
    flag: FlagRule,
}

impl TransitionPattern {
    /// Builds the increment-by-`k` pattern for an `n`-bit JC
    /// (Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k < 2n`.
    #[must_use]
    pub fn increment(n: usize, k: usize) -> Self {
        assert!(n >= 1, "counter width must be positive");
        assert!((1..2 * n).contains(&k), "k must be in 1..2n");
        let (sources, flag) = Self::build(n, k);
        Self {
            n,
            k,
            decrement: false,
            sources,
            flag,
        }
    }

    /// Builds the decrement-by-`k` pattern: bit movement of an increment
    /// by `2n − k` with the underflow flag rule of §4.4.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k < 2n`.
    #[must_use]
    pub fn decrement(n: usize, k: usize) -> Self {
        assert!((1..2 * n).contains(&k), "k must be in 1..2n");
        let (sources, _) = Self::build(n, 2 * n - k);
        let flag = if k <= n {
            FlagRule::DecSmall
        } else {
            FlagRule::DecLarge
        };
        Self {
            n,
            k,
            decrement: true,
            sources,
            flag,
        }
    }

    fn build(n: usize, k: usize) -> (Vec<BitSource>, FlagRule) {
        let mut sources = vec![
            BitSource {
                src: 0,
                invert: false
            };
            n
        ];
        if k <= n {
            // Forward shifts (Alg. 1 line 3): b'_i <- b_{i-k}, i = n-1..k.
            for (i, source) in sources.iter_mut().enumerate().take(n).skip(k) {
                *source = BitSource {
                    src: i - k,
                    invert: false,
                };
            }
            // Inverted feedback (line 5): b'_i <- !b_{n-k+i}, i = 0..k.
            for (i, source) in sources.iter_mut().enumerate().take(k) {
                *source = BitSource {
                    src: n - k + i,
                    invert: true,
                };
            }
            (sources, FlagRule::IncSmall)
        } else {
            let kk = k - n; // line 8
                            // Inverted feedback (line 10): b'_i <- !b_{i-kk}, i = n-1..kk.
            for (i, source) in sources.iter_mut().enumerate().take(n).skip(kk) {
                *source = BitSource {
                    src: i - kk,
                    invert: true,
                };
            }
            // Forward shifts (line 12): b'_i <- b_{n-kk+i}, i = 0..kk.
            for (i, source) in sources.iter_mut().enumerate().take(kk) {
                *source = BitSource {
                    src: n - kk + i,
                    invert: false,
                };
            }
            (sources, FlagRule::IncLarge)
        }
    }

    /// Counter width in bits.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The step amount.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// True for decrement patterns.
    #[must_use]
    pub fn is_decrement(&self) -> bool {
        self.decrement
    }

    /// Per-bit sources (index = destination bit).
    #[must_use]
    pub fn sources(&self) -> &[BitSource] {
        &self.sources
    }

    /// The flag (overflow/underflow) rule.
    #[must_use]
    pub fn flag_rule(&self) -> FlagRule {
        self.flag
    }

    /// Number of inverted-feedback steps (the rest are forward shifts) —
    /// Fig. 7's lower-arrow count.
    #[must_use]
    pub fn inverted_steps(&self) -> usize {
        self.sources.iter().filter(|s| s.invert).count()
    }

    /// Applies the pattern to a bit-packed JC state (all columns masked).
    #[must_use]
    pub fn apply_bits(&self, bits: u64) -> u64 {
        let mut out = 0u64;
        for (i, s) in self.sources.iter().enumerate() {
            let mut b = (bits >> s.src) & 1 == 1;
            if s.invert {
                b = !b;
            }
            if b {
                out |= 1 << i;
            }
        }
        out
    }

    /// Whether the flag fires for an `old → new` masked transition.
    #[must_use]
    pub fn flag_fires(&self, old_bits: u64, new_bits: u64) -> bool {
        let msb = |b: u64| (b >> (self.n - 1)) & 1 == 1;
        match self.flag {
            FlagRule::IncSmall => msb(old_bits) && !msb(new_bits),
            FlagRule::IncLarge => msb(old_bits) || !msb(new_bits),
            FlagRule::DecSmall => !msb(old_bits) && msb(new_bits),
            FlagRule::DecLarge => !msb(old_bits) || msb(new_bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::JohnsonCode;
    use proptest::prelude::*;

    #[test]
    fn fig7_radix10_all_steps_match_modular_arithmetic() {
        // Fig. 7: every k in 1..=9 must realise v -> (v+k) mod 10.
        let c = JohnsonCode::new(5);
        for k in 1..10usize {
            let p = TransitionPattern::increment(5, k);
            for v in 0..10usize {
                let got = p.apply_bits(c.encode(v));
                let want = c.encode((v + k) % 10);
                assert_eq!(got, want, "k={k}, v={v}");
            }
        }
    }

    #[test]
    fn paper_example_direct_transitions() {
        // §4.5.1: 10000(1) -> 00111(7) and 00111(7) -> 11100(3) for k=6.
        let c = JohnsonCode::new(5);
        let p = TransitionPattern::increment(5, 6);
        assert_eq!(p.apply_bits(c.encode(1)), c.encode(7));
        assert_eq!(p.apply_bits(c.encode(7)), c.encode(3));
    }

    #[test]
    fn increments_match_for_all_widths() {
        for n in 1..=10usize {
            let c = JohnsonCode::new(n);
            for k in 1..2 * n {
                let p = TransitionPattern::increment(n, k);
                for v in 0..2 * n {
                    assert_eq!(
                        p.apply_bits(c.encode(v)),
                        c.encode((v + k) % (2 * n)),
                        "n={n} k={k} v={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn decrements_match_for_all_widths() {
        for n in 1..=10usize {
            let c = JohnsonCode::new(n);
            for k in 1..2 * n {
                let p = TransitionPattern::decrement(n, k);
                assert!(p.is_decrement());
                for v in 0..2 * n {
                    assert_eq!(
                        p.apply_bits(c.encode(v)),
                        c.encode((v + 2 * n - k) % (2 * n)),
                        "n={n} k={k} v={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn overflow_flag_fires_exactly_on_wraparound() {
        for n in 1..=8usize {
            let c = JohnsonCode::new(n);
            for k in 1..2 * n {
                let p = TransitionPattern::increment(n, k);
                for v in 0..2 * n {
                    let new = p.apply_bits(c.encode(v));
                    let wrapped = v + k >= 2 * n;
                    assert_eq!(p.flag_fires(c.encode(v), new), wrapped, "n={n} k={k} v={v}");
                }
            }
        }
    }

    #[test]
    fn underflow_flag_fires_exactly_on_borrow() {
        for n in 1..=8usize {
            let c = JohnsonCode::new(n);
            for k in 1..2 * n {
                let p = TransitionPattern::decrement(n, k);
                for v in 0..2 * n {
                    let new = p.apply_bits(c.encode(v));
                    let borrow = v < k;
                    assert_eq!(p.flag_fires(c.encode(v), new), borrow, "n={n} k={k} v={v}");
                }
            }
        }
    }

    #[test]
    fn step_count_is_k_independent() {
        // §4.5.1: all k-ary increments use exactly n bit-update steps
        // (forward shifts + inverted feedbacks), same as a unit increment.
        for n in 2..=10 {
            for k in 1..2 * n {
                let p = TransitionPattern::increment(n, k);
                assert_eq!(p.sources().len(), n);
                let inv = p.inverted_steps();
                // Increment by k <= n has exactly k inverted feedbacks
                // (Fig. 7's lower arrows); k > n has n - (k - n).
                let expect = if k <= n { k } else { 2 * n - k };
                assert_eq!(inv, expect, "n={n} k={k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be in 1..2n")]
    fn k_zero_rejected() {
        let _ = TransitionPattern::increment(5, 0);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..2n")]
    fn k_full_cycle_rejected() {
        let _ = TransitionPattern::increment(5, 10);
    }

    proptest! {
        #[test]
        fn composition_of_two_increments(
            n in 1usize..=9,
            a in 1usize..=17,
            b in 1usize..=17,
            v in 0usize..64,
        ) {
            let radix = 2 * n;
            let a = 1 + a % (radix - 1);
            let b = 1 + b % (radix - 1);
            let v = v % radix;
            let c = JohnsonCode::new(n);
            let pa = TransitionPattern::increment(n, a);
            let pb = TransitionPattern::increment(n, b);
            let step = pb.apply_bits(pa.apply_bits(c.encode(v)));
            prop_assert_eq!(step, c.encode((v + a + b) % radix));
        }
    }
}
