//! Input-Aware Rippling Minimization — IARM (§4.5.2, Fig. 9).
//!
//! Each digit's `O_next` flag extends its effective range from `2n − 1`
//! to `4n − 1`, so a detected overflow need not ripple immediately. IARM
//! is a host-side, mask-oblivious planner: it maintains a *virtual
//! counter* that is incremented with every input value (as if all masks
//! were ones — the worst case over all real counters) and issues a carry
//! resolution only when the next increment could push some digit past
//! `4n − 1`, i.e. when a second pending overflow could occur.
//!
//! The planner is symmetric for decrements (borrow flags, lower bound
//! `−2n`). Because a digit's flag row cannot distinguish a pending carry
//! from a pending borrow, all pending flags are flushed when the input
//! stream switches direction (§4.4 "Decrements").

use serde::{Deserialize, Serialize};

/// One host-issued counter command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CounterAction {
    /// Masked k-ary increment of `digit` by `k`.
    Increment {
        /// Target digit index (0 = least significant).
        digit: usize,
        /// Step amount, `1..radix`.
        k: usize,
    },
    /// Masked k-ary decrement of `digit` by `k`.
    Decrement {
        /// Target digit index.
        digit: usize,
        /// Step amount, `1..radix`.
        k: usize,
    },
    /// Ripple `digit`'s pending carry into `digit + 1`.
    ResolveCarry {
        /// Digit whose flag is consumed.
        digit: usize,
    },
    /// Ripple `digit`'s pending borrow into `digit + 1`.
    ResolveBorrow {
        /// Digit whose flag is consumed.
        digit: usize,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Add,
    Sub,
}

/// Host-side IARM planner.
#[derive(Debug, Clone)]
pub struct IarmPlanner {
    radix: usize,
    digits: usize,
    /// Worst-case effective digit values. In Add mode these are upper
    /// bounds in `0..=4n−1`; in Sub mode lower bounds in `−2n..=2n−1`
    /// (stored as `i64`).
    virt: Vec<i64>,
    direction: Direction,
    /// Pending-flag possibility per digit (virtual counter says a flag
    /// *may* be set somewhere).
    maybe_pending: Vec<bool>,
}

impl IarmPlanner {
    /// Creates a planner for counters of `digits` radix-`radix` digits,
    /// assuming all counters start flag-free with digits anywhere in
    /// canonical range (the pessimistic, always-safe bound; use
    /// [`IarmPlanner::assume_zero`] to tighten it for zero-initialised
    /// counters).
    ///
    /// # Panics
    ///
    /// Panics if `radix` is odd or zero, or `digits` is zero.
    #[must_use]
    pub fn new(radix: usize, digits: usize) -> Self {
        assert!(radix >= 2 && radix.is_multiple_of(2), "radix must be even");
        assert!(digits > 0, "need at least one digit");
        Self {
            radix,
            digits,
            // Add-mode virtual digits are *upper* bounds: any canonical
            // digit can be as large as radix − 1.
            virt: vec![radix as i64 - 1; digits],
            direction: Direction::Add,
            maybe_pending: vec![false; digits],
        }
    }

    /// Declares that every counter is currently zero (flag-free, all
    /// digits zero), tightening the virtual bounds — Fig. 9's "virtual
    /// counter initialised to 9999" seeds the dual of this.
    pub fn assume_zero(&mut self) {
        self.virt.iter_mut().for_each(|v| *v = 0);
        self.maybe_pending.iter_mut().for_each(|p| *p = false);
    }

    /// Radix of each digit.
    #[must_use]
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Worst-case virtual digit values (for tests / introspection).
    #[must_use]
    pub fn virtual_digits(&self) -> &[i64] {
        &self.virt
    }

    /// Plans the accumulation of `value`, emitting resolutions only where
    /// a digit could otherwise need a second pending overflow.
    pub fn plan_add(&mut self, value: u128) -> Vec<CounterAction> {
        let mut out = Vec::new();
        if self.direction != Direction::Add {
            self.flush_into(&mut out);
            self.direction = Direction::Add;
            self.reset_bounds();
        }
        let extended = 2 * self.radix as i64 - 1; // 4n − 1
        let r = self.radix as u128;
        let mut v = value;
        for d in 0..self.digits {
            let k = (v % r) as usize;
            v /= r;
            if k == 0 {
                continue;
            }
            // Make room: resolving may cascade upward first.
            if self.virt[d] + k as i64 > extended {
                self.resolve_add(d, &mut out);
            }
            out.push(CounterAction::Increment { digit: d, k });
            self.virt[d] += k as i64;
            if self.virt[d] >= self.radix as i64 {
                self.maybe_pending[d] = true;
            }
        }
        debug_assert_eq!(v, 0, "value exceeds counter capacity");
        out
    }

    /// Plans the subtraction of `value` (negative inputs, §4.4).
    pub fn plan_sub(&mut self, value: u128) -> Vec<CounterAction> {
        let mut out = Vec::new();
        if self.direction != Direction::Sub {
            self.flush_into(&mut out);
            self.direction = Direction::Sub;
            self.reset_bounds();
        }
        let floor = -(self.radix as i64); // −2n
        let r = self.radix as u128;
        let mut v = value;
        for d in 0..self.digits {
            let k = (v % r) as usize;
            v /= r;
            if k == 0 {
                continue;
            }
            if self.virt[d] - (k as i64) < floor {
                self.resolve_sub(d, &mut out);
            }
            out.push(CounterAction::Decrement { digit: d, k });
            self.virt[d] -= k as i64;
            if self.virt[d] < 0 {
                self.maybe_pending[d] = true;
            }
        }
        out
    }

    /// Flushes every pending flag (must run before counters are read out
    /// or before the input stream switches direction).
    pub fn flush(&mut self) -> Vec<CounterAction> {
        let mut out = Vec::new();
        self.flush_into(&mut out);
        out
    }

    fn flush_into(&mut self, out: &mut Vec<CounterAction>) {
        match self.direction {
            Direction::Add => {
                for d in 0..self.digits {
                    if self.maybe_pending[d] {
                        self.resolve_add(d, out);
                    }
                }
            }
            Direction::Sub => {
                for d in 0..self.digits {
                    if self.maybe_pending[d] {
                        self.resolve_sub(d, out);
                    }
                }
            }
        }
        // After a full flush all digits are back in canonical range.
        for v in &mut self.virt {
            *v = (*v).clamp(0, self.radix as i64 - 1);
        }
    }

    /// Re-seeds the virtual bounds for the current direction after a
    /// flush: Add mode tracks *upper* bounds (pessimistically radix − 1),
    /// Sub mode tracks *lower* bounds (pessimistically 0).
    fn reset_bounds(&mut self) {
        let fill = match self.direction {
            Direction::Add => self.radix as i64 - 1,
            Direction::Sub => 0,
        };
        self.virt.iter_mut().for_each(|v| *v = fill);
    }

    fn resolve_add(&mut self, d: usize, out: &mut Vec<CounterAction>) {
        if d + 1 < self.digits {
            // The +1 into d+1 must itself fit below 4n−1.
            if self.virt[d + 1] + 1 > 2 * self.radix as i64 - 1 {
                self.resolve_add(d + 1, out);
            }
            self.virt[d + 1] += i64::from(self.virt[d] >= self.radix as i64);
            if self.virt[d + 1] >= self.radix as i64 {
                self.maybe_pending[d + 1] = true;
            }
        }
        out.push(CounterAction::ResolveCarry { digit: d });
        // Flags cleared; the worst-case digit is back below the radix.
        self.virt[d] = self.virt[d].min(self.radix as i64 - 1);
        self.maybe_pending[d] = false;
    }

    fn resolve_sub(&mut self, d: usize, out: &mut Vec<CounterAction>) {
        if d + 1 < self.digits {
            if self.virt[d + 1] - 1 < -(self.radix as i64) {
                self.resolve_sub(d + 1, out);
            }
            self.virt[d + 1] -= i64::from(self.virt[d] < 0);
            if self.virt[d + 1] < 0 {
                self.maybe_pending[d + 1] = true;
            }
        }
        out.push(CounterAction::ResolveBorrow { digit: d });
        self.virt[d] = self.virt[d].max(0);
        self.maybe_pending[d] = false;
    }
}

/// Executes a plan on a [`crate::bank::CounterBank`] with the given mask.
pub fn apply_plan(
    bank: &mut crate::bank::CounterBank,
    actions: &[CounterAction],
    mask: &c2m_cim::Row,
) {
    for &a in actions {
        match a {
            CounterAction::Increment { digit, k } => bank.increment_digit(digit, k, mask),
            CounterAction::Decrement { digit, k } => bank.decrement_digit(digit, k, mask),
            CounterAction::ResolveCarry { digit } => bank.resolve_carry(digit),
            CounterAction::ResolveBorrow { digit } => bank.resolve_borrow(digit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::CounterBank;
    use c2m_cim::Row;

    /// Accumulate a stream through IARM and check exact results.
    fn iarm_accumulate(radix: usize, digits: usize, inputs: &[i64]) {
        let mut bank = CounterBank::new(radix, digits, 4);
        let mut planner = IarmPlanner::new(radix, digits);
        let mask = Row::ones(4);
        let capacity = (radix as i128).pow(digits as u32);
        let mut expect = 0i128;
        for &x in inputs {
            let actions = if x >= 0 {
                planner.plan_add(x as u128)
            } else {
                planner.plan_sub((-x) as u128)
            };
            apply_plan(&mut bank, &actions, &mask);
            expect = (expect + i128::from(x)).rem_euclid(capacity);
        }
        let actions = planner.flush();
        apply_plan(&mut bank, &actions, &mask);
        for col in 0..4 {
            assert_eq!(
                bank.get(col),
                Some(expect as u128),
                "radix={radix} digits={digits} inputs={inputs:?}"
            );
        }
    }

    #[test]
    fn fig9_stream_of_nines() {
        // Fig. 9's running example: repeated +9 on a radix-10 counter.
        iarm_accumulate(10, 5, &[9999, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9]);
    }

    #[test]
    fn mixed_values_and_radices() {
        iarm_accumulate(10, 4, &[123, 999, 1, 47, 1000, 888]);
        iarm_accumulate(4, 8, &[3, 17, 255, 63, 1, 2, 3, 4]);
        iarm_accumulate(8, 5, &[511, 7, 7, 7, 100, 4095]);
        iarm_accumulate(16, 4, &[15, 240, 4095, 1]);
    }

    #[test]
    fn negative_inputs_and_direction_switches() {
        iarm_accumulate(10, 4, &[500, -123, -377, 9, -8]);
        iarm_accumulate(10, 3, &[100, -1, -1, -1, 50, -148]);
        iarm_accumulate(8, 4, &[64, -65, 100, -99]);
    }

    #[test]
    fn iarm_issues_fewer_resolves_than_full_rippling() {
        // Accumulating many 9s: full rippling resolves on nearly every
        // input (Fig. 9's motivating pathology), IARM only occasionally.
        let radix = 10;
        let digits = 6;
        let inputs = vec![9u128; 200];

        let mut planner = IarmPlanner::new(radix, digits);
        let mut iarm_resolves = 0usize;
        let mut iarm_incs = 0usize;
        for &x in &inputs {
            for a in planner.plan_add(x) {
                match a {
                    CounterAction::ResolveCarry { .. } => iarm_resolves += 1,
                    CounterAction::Increment { .. } => iarm_incs += 1,
                    _ => {}
                }
            }
        }

        // Data-oblivious full-rippling baseline: the controller cannot
        // observe O_next, so each increment is followed by a ripple chain
        // through every higher digit (§4.5.2's motivating pathology).
        let ripple_total = inputs.len() * (1 + (digits - 1));

        let iarm_total = iarm_resolves + iarm_incs;
        assert!(
            iarm_total < ripple_total,
            "IARM {iarm_total} ops should beat oblivious rippling {ripple_total}"
        );
        // Even on the worst-case all-nines stream, resolves stay
        // single-digit affairs: far fewer total resolves than the
        // (digits−1)-long chains the oblivious baseline pays per input.
        assert!(iarm_resolves < 2 * inputs.len());
    }

    #[test]
    fn virtual_counter_never_exceeds_extended_range() {
        let radix = 10;
        let mut planner = IarmPlanner::new(radix, 5);
        for x in [9u128, 99, 999, 9999, 9, 9, 9, 99999, 9, 9] {
            let _ = planner.plan_add(x);
            for &v in planner.virtual_digits() {
                assert!(v < 2 * radix as i64, "virtual digit {v} overflow");
            }
        }
    }

    #[test]
    fn flush_is_idempotent() {
        let mut planner = IarmPlanner::new(10, 3);
        let _ = planner.plan_add(999);
        let first = planner.flush();
        let second = planner.flush();
        assert!(!first.is_empty() || first.is_empty()); // flush ran
        assert!(second.is_empty(), "second flush must be a no-op");
    }
}
