//! Johnson-counter state encoding and arithmetic (§2.4).
//!
//! An n-bit Johnson counter cycles through 2n states with single-bit
//! transitions. With bit 0 the LSB, the paper's 5-bit example runs
//! `10000(1) → 11000(2) → … → 11111(5) → 01111(6) → … → 00001(9) →
//! 00000(0)`: values 1..=n fill ones from the LSB; values n+1..2n−1 drain
//! ones from the LSB; the all-zero state is value 0.

use serde::{Deserialize, Serialize};

/// Codec for an n-bit Johnson counter representing one radix-2n digit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JohnsonCode {
    n: usize,
}

impl JohnsonCode {
    /// Creates a codec for `n`-bit counters (radix `2n`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds 32.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!((1..=32).contains(&n), "JC width must be 1..=32 bits");
        Self { n }
    }

    /// Codec for the radix `r` digit (`r` must be even; `n = r/2`).
    ///
    /// # Panics
    ///
    /// Panics if `r` is odd or out of range.
    #[must_use]
    pub fn for_radix(r: usize) -> Self {
        assert!(
            r >= 2 && r.is_multiple_of(2),
            "JC radix must be even and >= 2"
        );
        Self::new(r / 2)
    }

    /// Bits per digit.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.n
    }

    /// The radix (2n distinct states).
    #[must_use]
    pub fn radix(&self) -> usize {
        2 * self.n
    }

    /// Encodes `value` (reduced mod the radix) as a bit pattern; bit `i`
    /// of the result is counter bit `i` (LSB = bit 0).
    #[must_use]
    pub fn encode(&self, value: usize) -> u64 {
        let v = value % self.radix();
        let mut bits = 0u64;
        for i in 0..self.n {
            if self.bit(v, i) {
                bits |= 1 << i;
            }
        }
        bits
    }

    /// Value of bit `i` in the encoding of `v` (no reduction).
    #[must_use]
    pub fn bit(&self, v: usize, i: usize) -> bool {
        debug_assert!(v < self.radix() && i < self.n);
        if v == 0 {
            false
        } else if v <= self.n {
            i < v
        } else {
            i >= v - self.n
        }
    }

    /// Decodes a bit pattern back to its value, or `None` if the pattern
    /// is not a valid Johnson state (e.g. after an uncorrected fault).
    #[must_use]
    pub fn decode(&self, bits: u64) -> Option<usize> {
        let masked = bits & ((1u64 << self.n) - 1);
        (0..self.radix()).find(|&v| self.encode(v) == masked)
    }

    /// Decodes a possibly-corrupt pattern to the *nearest* valid state by
    /// Hamming distance (used to quantify fault impact: a single bitflip
    /// in a JC decodes within two states of the original — the "minimal
    /// transitional error" property of §2.4, versus an unbounded
    /// positional error for a binary counter).
    #[must_use]
    pub fn decode_nearest(&self, bits: u64) -> usize {
        let mask = (1u64 << self.n) - 1;
        let bits = bits & mask;
        (0..self.radix())
            .min_by_key(|&v| (self.encode(v) ^ bits).count_ones())
            .expect("radix is positive")
    }

    /// The MSB (bit n−1) of the encoding of `v` — set for values in
    /// `n..2n`, clear for `0..n`. Overflow is an MSB 1→0 transition.
    #[must_use]
    pub fn msb(&self, v: usize) -> bool {
        self.bit(v, self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_sequence_radix10() {
        // §2.4: 10000(1) → 11000(2) → 11111(5) → 01111(6) → 00001(9) → 0.
        let c = JohnsonCode::new(5);
        assert_eq!(c.encode(0), 0b00000);
        assert_eq!(c.encode(1), 0b00001); // LSB-first: "10000" in paper order
        assert_eq!(c.encode(2), 0b00011);
        assert_eq!(c.encode(5), 0b11111);
        assert_eq!(c.encode(6), 0b11110);
        assert_eq!(c.encode(9), 0b10000);
    }

    #[test]
    fn single_bit_transitions() {
        for n in 1..=8 {
            let c = JohnsonCode::new(n);
            for v in 0..c.radix() {
                let next = (v + 1) % c.radix();
                let d = (c.encode(v) ^ c.encode(next)).count_ones();
                assert_eq!(d, 1, "n={n}, {v}->{next} is not a 1-bit transition");
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for n in 1..=10 {
            let c = JohnsonCode::new(n);
            for v in 0..c.radix() {
                assert_eq!(c.decode(c.encode(v)), Some(v), "n={n}, v={v}");
            }
        }
    }

    #[test]
    fn invalid_patterns_decode_to_none() {
        let c = JohnsonCode::new(5);
        // 10100 (gap in the ones run) is not a Johnson state.
        assert_eq!(c.decode(0b00101), None);
        assert_eq!(c.decode(0b01001), None);
    }

    #[test]
    fn msb_tracks_upper_half() {
        let c = JohnsonCode::new(5);
        for v in 0..10 {
            assert_eq!(c.msb(v), (5..10).contains(&v), "v={v}");
        }
    }

    #[test]
    fn nearest_decode_of_single_fault_stays_local() {
        // §2.4's minimal-transitional-error property: a single bitflip
        // decodes to a state at most two positions away (boundary flips
        // land one away; interior flips create a tie between the original
        // and a state two away).
        let c = JohnsonCode::new(5);
        for v in 0..10usize {
            for bit in 0..5 {
                let corrupt = c.encode(v) ^ (1 << bit);
                let near = c.decode_nearest(corrupt);
                let dist = (v as i64 - near as i64)
                    .rem_euclid(10)
                    .min((near as i64 - v as i64).rem_euclid(10));
                assert!(dist <= 2, "v={v} bit={bit} near={near}");
            }
        }
    }

    #[test]
    fn for_radix_constructor() {
        assert_eq!(JohnsonCode::for_radix(10).bits(), 5);
        assert_eq!(JohnsonCode::for_radix(4).bits(), 2);
        assert_eq!(JohnsonCode::for_radix(4).radix(), 4);
    }

    proptest! {
        #[test]
        fn decode_nearest_is_identity_on_valid_states(
            n in 1usize..=12, v in 0usize..64
        ) {
            let c = JohnsonCode::new(n);
            let v = v % c.radix();
            prop_assert_eq!(c.decode_nearest(c.encode(v)), v);
        }
    }
}
