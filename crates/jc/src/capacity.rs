//! Storage-capacity analysis (§7.3.3, Fig. 19).
//!
//! A D-digit radix-2n counter stores `(2n)^D` states in `D·n` bit rows
//! (plus one `O_next` row per digit). Binary (and radix-4, since
//! `4 = 2²`) achieve the information-theoretic bit count; higher radices
//! pay a moderate density premium in exchange for the §4.5 performance
//! gains.

/// Bits required to reach at least `capacity` distinct states with
/// radix-`radix` Johnson digits (`radix` even). Radix 2 degenerates to
/// plain binary density.
///
/// # Panics
///
/// Panics if `radix` is odd or < 2, or `capacity` is zero.
#[must_use]
pub fn bits_required(radix: usize, capacity: u128) -> usize {
    assert!(radix >= 2 && radix.is_multiple_of(2), "radix must be even");
    assert!(capacity > 0, "capacity must be positive");
    let n = radix / 2;
    let mut digits = 0usize;
    let mut cap = 1u128;
    while cap < capacity {
        cap = cap.saturating_mul(radix as u128);
        digits += 1;
    }
    digits * n
}

/// Bits required by a plain binary counter (the Fig. 19 reference line).
#[must_use]
pub fn binary_bits_required(capacity: u128) -> usize {
    assert!(capacity > 0, "capacity must be positive");
    let mut bits = 0usize;
    let mut cap = 1u128;
    while cap < capacity {
        cap = cap.saturating_mul(2);
        bits += 1;
    }
    bits
}

/// Total memory rows per counter including the per-digit `O_next` rows:
/// `D · (n + 1)` (§4.4).
#[must_use]
pub fn rows_required(radix: usize, capacity: u128) -> usize {
    let n = radix / 2;
    let bits = bits_required(radix, capacity);
    let digits = bits / n.max(1);
    digits * (n + 1)
}

/// Capacity requirements of the paper's real-world tasks (Fig. 19
/// annotation lines).
pub mod requirements {
    /// DNA short-read filtering: accumulates up to ~100 per counter.
    pub const DNA_FILTER: u128 = 100;
    /// BERT projection layers: 64 ternary-weight × int-activation
    /// products.
    pub const BERT_PROJECTION: u128 = 64;
    /// BERT attention: 792 accumulated products.
    pub const BERT_ATTENTION: u128 = 792;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        // §7.3.3: capacity 100 needs 10 bits in radix 10, 7 bits binary.
        assert_eq!(bits_required(10, requirements::DNA_FILTER), 10);
        assert_eq!(binary_bits_required(requirements::DNA_FILTER), 7);
    }

    #[test]
    fn radix4_matches_binary_density_at_power_of_four() {
        // §7.3.3: radix-4 counters have the same density as binary.
        for bits in [4u32, 8, 16, 24, 32] {
            let cap = 1u128 << bits;
            assert_eq!(
                bits_required(4, cap),
                binary_bits_required(cap).next_multiple_of(2),
                "capacity 2^{bits}"
            );
        }
    }

    #[test]
    fn radix2_is_binary() {
        for cap in [2u128, 100, 65536, 1 << 32] {
            assert_eq!(bits_required(2, cap), binary_bits_required(cap));
        }
    }

    #[test]
    fn higher_radix_overhead_is_moderate() {
        // Fig. 19: radix-10 pays < 2.2x over binary for large capacities.
        for bits in [16u32, 24, 32] {
            let cap = 1u128 << bits;
            let jc = bits_required(10, cap) as f64;
            let bin = binary_bits_required(cap) as f64;
            assert!(jc / bin < 2.2, "2^{bits}: {jc} vs {bin}");
            assert!(jc >= bin);
        }
    }

    #[test]
    fn rows_include_onext() {
        // radix 10, capacity 100: 2 digits x (5+1) rows = 12.
        assert_eq!(rows_required(10, 100), 12);
    }

    #[test]
    fn monotone_in_capacity() {
        let mut prev = 0;
        for bits in 1..=32u32 {
            let b = bits_required(6, 1u128 << bits);
            assert!(b >= prev);
            prev = b;
        }
    }
}
