//! Exact Ambit μProgram lowering for masked k-ary increments (Fig. 6b).
//!
//! This module turns a [`TransitionPattern`] into the concrete AAP/AP
//! command sequence the memory controller broadcasts, using the Fig. 6b
//! schedule:
//!
//! * a **forward-shift** bit step costs 7 commands
//!   (`AAP m,B8; AAP C0,B9; AAP src,B2; AP B12; AAP dst,B2; AAP B14,B3;
//!   AAP B15,dst`);
//! * an **inverted-feedback** bit step costs 7 commands (Fig. 6b lines
//!   10–16, using the remapped B11 of footnote 2);
//! * overflow detection costs 6 commands for `k ≤ n` and 10 for the
//!   masked `k > n` rule;
//! * sources that are overwritten before they are consumed are first
//!   saved to θ rows (the generalisation of Fig. 6b's `AAP bn, O0`
//!   setup command). A unit increment saves exactly one row, giving the
//!   paper's `7n + 7` total; a k-step saves `min(k, 2n−k)` rows, so our
//!   lowering costs `7n + 6 + saves` (+4 for the masked overflow rule) —
//!   within `n − 1` commands of the paper's uniform-cost claim. Cost
//!   models (`crate::cost`) use the paper's `7n + 7` anchor throughout.

use crate::kary::{FlagRule, TransitionPattern};
use c2m_cim::ambit::{AmbitAddr, MicroProgram};

/// Where a counter digit lives inside an Ambit subarray's D-group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterLayout {
    /// Data-row index of each counter bit (LSB first), length n.
    pub bit_rows: Vec<usize>,
    /// Data row holding the mask m.
    pub mask_row: usize,
    /// Data row latching O_next.
    pub onext_row: usize,
    /// Scratch data rows for θ saves (need at least
    /// `min(k, 2n−k) + 1` rows available).
    pub theta_rows: Vec<usize>,
}

impl CounterLayout {
    /// A dense layout: bits at rows `base..base+n`, mask/O_next/θ after.
    #[must_use]
    pub fn dense(n: usize, base: usize) -> Self {
        Self {
            bit_rows: (base..base + n).collect(),
            mask_row: base + n,
            onext_row: base + n + 1,
            theta_rows: (base + n + 2..base + 2 * n + 3).collect(),
        }
    }

    /// Total data rows the layout needs beyond `base`.
    #[must_use]
    pub fn rows_needed(n: usize) -> usize {
        2 * n + 3
    }
}

/// Lowers one masked k-ary step (increment or decrement) plus its
/// overflow/underflow detection into an Ambit μProgram.
///
/// # Panics
///
/// Panics if the layout's geometry doesn't match the pattern width or if
/// too few θ rows are provided.
#[must_use]
pub fn lower_step(layout: &CounterLayout, pattern: &TransitionPattern) -> MicroProgram {
    let n = pattern.n();
    assert_eq!(layout.bit_rows.len(), n, "layout/pattern width mismatch");
    let mut prog = MicroProgram::new();
    let d = |r: usize| AmbitAddr::Data(r);

    // --- θ saves: any source read after its row is overwritten. We
    // process destinations in descending order, so dest j is written
    // before dest i whenever j > i; source s of dest i needs a save iff
    // s > i. The old MSB additionally always needs a save for the flag.
    let mut saves: Vec<usize> = Vec::new();
    for (i, s) in pattern.sources().iter().enumerate() {
        if s.src > i && !saves.contains(&s.src) {
            saves.push(s.src);
        }
    }
    if !saves.contains(&(n - 1)) {
        saves.push(n - 1); // old MSB for overflow detection
    }
    assert!(
        saves.len() <= layout.theta_rows.len(),
        "need {} θ rows, layout provides {}",
        saves.len(),
        layout.theta_rows.len()
    );
    let theta_of =
        |src: usize, saves: &[usize]| -> Option<usize> { saves.iter().position(|&s| s == src) };
    for (j, &src) in saves.iter().enumerate() {
        prog.aap(d(layout.bit_rows[src]), d(layout.theta_rows[j]));
    }

    // --- bit steps, MSB-first.
    for i in (0..n).rev() {
        let spec = pattern.sources()[i];
        // Row to read the source from: the live row if not yet
        // overwritten (spec.src <= i), else its θ save.
        let src_row = if spec.src > i {
            layout.theta_rows[theta_of(spec.src, &saves).expect("saved")]
        } else {
            layout.bit_rows[spec.src]
        };
        let dst_row = layout.bit_rows[i];
        if !spec.invert {
            // Forward shift (Fig. 6b lines 2-8).
            prog.aap(d(layout.mask_row), AmbitAddr::PairT0Dcc0); // T0<-m, DCC0<-!m
            prog.aap(AmbitAddr::C0, AmbitAddr::PairT1Dcc1); //      T1<-0, DCC1<-1
            prog.aap(d(src_row), AmbitAddr::T(2)); //               T2<-src
            prog.ap(AmbitAddr::TripleT0T1T2); //                    T0<-src&m
            prog.aap(d(dst_row), AmbitAddr::T(2)); //               T2<-old dst
            prog.aap(AmbitAddr::TripleT1T2Dcc0, AmbitAddr::T(3)); //T3<-maj(T1,dst,!m)
            prog.aap(AmbitAddr::TripleT0T3Dcc1, d(dst_row)); //     dst<-T0|T3
        } else {
            // Inverted feedback (Fig. 6b lines 10-16).
            prog.aap(d(dst_row), AmbitAddr::T(2)); //               T2<-old dst
            prog.aap(d(layout.mask_row), AmbitAddr::PairT0Dcc0); // T0<-m, DCC0<-!m
            prog.aap(AmbitAddr::C0, AmbitAddr::PairT1Dcc1); //      T1<-0, DCC1<-1
            prog.aap(AmbitAddr::TripleT1T2Dcc0, AmbitAddr::T(3)); //T3<-dst&!m
            prog.aap(d(src_row), AmbitAddr::DccNeg(0)); //          DCC0<-!src
            prog.ap(AmbitAddr::TripleT0T1Dcc0); //                  T0<-m&!src
            prog.aap(AmbitAddr::TripleT0T3Dcc1, d(dst_row)); //     dst<-T0|T3
        }
    }

    // --- flag detection. The T1=0/DCC1=1 initialisation comes *first*
    // because the AP on B11 below destroys T1 (but leaves DCC1 intact for
    // the final OR), keeping the small-rule sequence at 6 commands.
    let old_msb = layout.theta_rows[theta_of(n - 1, &saves).expect("MSB saved")];
    let new_msb = layout.bit_rows[n - 1];
    match pattern.flag_rule() {
        FlagRule::IncSmall => {
            // O' = O | (oldMSB & !newMSB): 6 commands.
            prog.aap(AmbitAddr::C0, AmbitAddr::PairT1Dcc1); // T1<-0, DCC1<-1
            prog.aap(d(new_msb), AmbitAddr::DccNeg(0)); //     DCC0 <- !MSB'
            prog.aap(d(old_msb), AmbitAddr::T(0)); //          T0 <- old MSB
            prog.ap(AmbitAddr::TripleT0T1Dcc0); //             T0 <- old & !new
            prog.aap(d(layout.onext_row), AmbitAddr::T(3)); // T3 <- O
            prog.aap(AmbitAddr::TripleT0T3Dcc1, d(layout.onext_row));
        }
        FlagRule::DecSmall => {
            // O' = O | (!oldMSB & newMSB): 6 commands.
            prog.aap(AmbitAddr::C0, AmbitAddr::PairT1Dcc1); // T1<-0, DCC1<-1
            prog.aap(d(old_msb), AmbitAddr::DccNeg(0)); //     DCC0 <- !old
            prog.aap(d(new_msb), AmbitAddr::T(0)); //          T0 <- MSB'
            prog.ap(AmbitAddr::TripleT0T1Dcc0); //             T0 <- new & !old
            prog.aap(d(layout.onext_row), AmbitAddr::T(3));
            prog.aap(AmbitAddr::TripleT0T3Dcc1, d(layout.onext_row));
        }
        FlagRule::IncLarge => {
            // O' = O | ((oldMSB | !newMSB) & m)
            //    = O | (!(newMSB & !oldMSB) & m): 10 commands (T1 must be
            // re-zeroed after the first B11 AP destroys it).
            prog.aap(AmbitAddr::C0, AmbitAddr::PairT1Dcc1); // T1<-0, DCC1<-1
            prog.aap(d(old_msb), AmbitAddr::DccNeg(0)); //     DCC0 <- !old
            prog.aap(d(new_msb), AmbitAddr::T(0)); //          T0 <- MSB'
            prog.ap(AmbitAddr::TripleT0T1Dcc0); //             T0 <- new & !old = u
            prog.aap(AmbitAddr::T(0), AmbitAddr::DccNeg(0)); //DCC0 <- !u
            prog.aap(AmbitAddr::C0, AmbitAddr::T(1)); //       T1 <- 0 (again)
            prog.aap(d(layout.mask_row), AmbitAddr::T(0)); //  T0 <- m
            prog.ap(AmbitAddr::TripleT0T1Dcc0); //             T0 <- m & !u
            prog.aap(d(layout.onext_row), AmbitAddr::T(3));
            prog.aap(AmbitAddr::TripleT0T3Dcc1, d(layout.onext_row));
        }
        FlagRule::DecLarge => {
            // O' = O | ((!oldMSB | newMSB) & m)
            //    = O | (!(oldMSB & !newMSB) & m): 10 commands.
            prog.aap(AmbitAddr::C0, AmbitAddr::PairT1Dcc1); // T1<-0, DCC1<-1
            prog.aap(d(new_msb), AmbitAddr::DccNeg(0)); //     DCC0 <- !new
            prog.aap(d(old_msb), AmbitAddr::T(0)); //          T0 <- old
            prog.ap(AmbitAddr::TripleT0T1Dcc0); //             T0 <- old & !new = u
            prog.aap(AmbitAddr::T(0), AmbitAddr::DccNeg(0)); //DCC0 <- !u
            prog.aap(AmbitAddr::C0, AmbitAddr::T(1)); //       T1 <- 0 (again)
            prog.aap(d(layout.mask_row), AmbitAddr::T(0)); //  T0 <- m
            prog.ap(AmbitAddr::TripleT0T1Dcc0); //             T0 <- m & !u
            prog.aap(d(layout.onext_row), AmbitAddr::T(3));
            prog.aap(AmbitAddr::TripleT0T3Dcc1, d(layout.onext_row));
        }
    }
    prog
}

/// Command count of [`lower_step`] for an increment by `k` on an n-bit
/// digit: `θ saves + 7n + (6 or 10)`. A unit increment saves one row and
/// uses the small flag rule, landing exactly on the paper's `7n + 7`.
#[must_use]
pub fn lowered_ops(n: usize, k: usize) -> usize {
    // θ saves: sources consumed after their row is overwritten. For
    // k < n the inverted-feedback window {n−k..n−1} needs saving (k rows,
    // including the MSB); k = n maps every bit onto itself so only the
    // MSB (for the flag) is saved; k > n saves the k−n wrapped sources.
    let (saves, flag) = match k.cmp(&n) {
        std::cmp::Ordering::Less => (k, 6),
        std::cmp::Ordering::Equal => (1, 6),
        std::cmp::Ordering::Greater => (k - n, 10),
    };
    saves + 7 * n + flag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::JohnsonCode;
    use c2m_cim::ambit::AmbitSubarray;
    use c2m_cim::Row;

    /// Runs the lowered μProgram on a real Ambit subarray and compares
    /// against the software model for every (value, k, mask) combination.
    fn check_all(n: usize) {
        let code = JohnsonCode::new(n);
        let width = 2 * n * 2; // one column per (value, masked?) pair
        let layout = CounterLayout::dense(n, 0);
        for k in 1..2 * n {
            let pattern = TransitionPattern::increment(n, k);
            let prog = lower_step(&layout, &pattern);
            assert_eq!(prog.len(), lowered_ops(n, k), "ops n={n} k={k}");

            let mut sub = AmbitSubarray::new(width, CounterLayout::rows_needed(n));
            // Column 2v   = value v, masked;
            // column 2v+1 = value v, unmasked.
            let mut mask = Row::zeros(width);
            for v in 0..2 * n {
                mask.set(2 * v, true);
            }
            for i in 0..n {
                let mut row = Row::zeros(width);
                for v in 0..2 * n {
                    let bit = (code.encode(v) >> i) & 1 == 1;
                    row.set(2 * v, bit);
                    row.set(2 * v + 1, bit);
                }
                sub.write_data(layout.bit_rows[i], &row);
            }
            sub.write_data(layout.mask_row, &mask);
            sub.execute(&prog);

            for v in 0..2 * n {
                // Masked column advanced by k.
                let mut got = 0u64;
                for i in 0..n {
                    if sub.read_data(layout.bit_rows[i]).get(2 * v) {
                        got |= 1 << i;
                    }
                }
                assert_eq!(
                    got,
                    code.encode((v + k) % (2 * n)),
                    "n={n} k={k} v={v} (masked)"
                );
                // Unmasked column untouched.
                let mut keep = 0u64;
                for i in 0..n {
                    if sub.read_data(layout.bit_rows[i]).get(2 * v + 1) {
                        keep |= 1 << i;
                    }
                }
                assert_eq!(keep, code.encode(v), "n={n} k={k} v={v} (unmasked)");
                // Overflow flag.
                let fired = sub.read_data(layout.onext_row).get(2 * v);
                assert_eq!(fired, v + k >= 2 * n, "n={n} k={k} v={v} (flag)");
                let unmasked_fired = sub.read_data(layout.onext_row).get(2 * v + 1);
                assert!(!unmasked_fired, "n={n} k={k} v={v} unmasked flag");
            }
        }
    }

    #[test]
    fn lowered_increments_match_software_model_radix4() {
        check_all(2);
    }

    #[test]
    fn lowered_increments_match_software_model_radix10() {
        check_all(5);
    }

    #[test]
    fn lowered_increments_match_software_model_radix16() {
        check_all(8);
    }

    #[test]
    fn unit_increment_is_exactly_7n_plus_7() {
        // The Fig. 6b anchor: one θ save + 7n bit steps + 6 flag commands.
        for n in [2usize, 5, 8, 10] {
            assert_eq!(lowered_ops(n, 1), 7 * n + 7, "n={n}");
            let layout = CounterLayout::dense(n, 0);
            let prog = lower_step(&layout, &TransitionPattern::increment(n, 1));
            assert_eq!(prog.len(), 7 * n + 7, "emitted n={n}");
        }
    }

    #[test]
    fn decrement_lowering_matches_software_model() {
        let n = 5;
        let code = JohnsonCode::new(n);
        let layout = CounterLayout::dense(n, 0);
        for k in 1..2 * n {
            let pattern = TransitionPattern::decrement(n, k);
            let prog = lower_step(&layout, &pattern);
            let width = 2 * n;
            let mut sub = AmbitSubarray::new(width, CounterLayout::rows_needed(n));
            for i in 0..n {
                let mut row = Row::zeros(width);
                for v in 0..2 * n {
                    row.set(v, (code.encode(v) >> i) & 1 == 1);
                }
                sub.write_data(layout.bit_rows[i], &row);
            }
            sub.write_data(layout.mask_row, &Row::ones(width));
            sub.execute(&prog);
            for v in 0..2 * n {
                let mut got = 0u64;
                for i in 0..n {
                    if sub.read_data(layout.bit_rows[i]).get(v) {
                        got |= 1 << i;
                    }
                }
                assert_eq!(got, code.encode((v + 2 * n - k) % (2 * n)), "k={k} v={v}");
                // Borrow flag fires iff v < k.
                assert_eq!(
                    sub.read_data(layout.onext_row).get(v),
                    v < k,
                    "borrow k={k} v={v}"
                );
            }
        }
    }

    #[test]
    fn lowering_overhead_vs_paper_anchor_is_small() {
        // Our explicit-θ lowering is within n-1 commands of 7n+7 for
        // k <= n and within n+3 beyond (documented deviation).
        for n in [2usize, 5, 8] {
            for k in 1..2 * n {
                let anchor = 7 * n + 7;
                let ours = lowered_ops(n, k);
                assert!(ours >= anchor - 1);
                assert!(ours <= anchor + n + 3, "n={n} k={k}: {ours}");
            }
        }
    }
}
