//! Counter-to-counter tensor operations (§5.2.4).
//!
//! * [`add_assign`] — Algorithm 2: adds counter bank `src` into `dst` by
//!   deriving unit-increment masks from `src`'s own bit rows. A
//!   descending pass over the source bits applies prefix-OR masks, an
//!   ascending pass refines with AND-of-complements masks; together a
//!   column receives exactly `value(src)` unit increments.
//! * [`shift_left`] — `c << i` by adding the counter to itself `i` times
//!   (doubling per round).
//! * [`relu`] — zeroes counters whose sign flag is set, via `O_sign`.

use crate::bank::CounterBank;
use c2m_cim::Row;

/// Algorithm 2: `dst ← dst + src`, digit-aligned, using `src`'s bit rows
/// as unit-increment masks. Carries latched in `dst` are fully resolved.
///
/// # Panics
///
/// Panics if the two banks have different geometry.
pub fn add_assign(dst: &mut CounterBank, src: &CounterBank) {
    assert_eq!(dst.code(), src.code(), "digit radix mismatch");
    assert_eq!(dst.digits(), src.digits(), "digit count mismatch");
    assert_eq!(dst.width(), src.width(), "width mismatch");
    let n = dst.code().bits();
    for d in 0..dst.digits() {
        // Descending pass: prefix-OR masks from the MSB down (Alg. 2
        // lines 2–5).
        let mut theta = src.bit_row(d, n - 1).clone();
        for i in (0..n).rev() {
            let mask = src.bit_row(d, i).or(&theta);
            dst.increment_digit(d, 1, &mask);
            theta = mask;
        }
        // Ascending pass: AND-of-complement masks from the LSB up
        // (lines 6–8); theta keeps chaining.
        for i in 0..n {
            let mask = src.bit_row(d, i).not().and(&theta);
            dst.increment_digit(d, 1, &mask);
            theta = mask;
        }
        // Resolve this digit's carries before the next digit is added.
        let mut dd = d;
        while dd < dst.digits() && dst.has_pending(dd) {
            dst.resolve_carry(dd);
            dd += 1;
        }
    }
}

/// `bank ← bank << shift` (multiply by 2^shift): each round adds the
/// counter to a snapshot of itself (Algorithm 2), doubling the value.
pub fn shift_left(bank: &mut CounterBank, shift: u32) {
    for _ in 0..shift {
        let snapshot = bank.clone();
        add_assign(bank, &snapshot);
    }
}

/// ReLU (§5.2.4): zeroes every counter column whose bit is set in
/// `sign_row` (the `O_sign` row latching "went negative"), leaving other
/// columns untouched.
///
/// # Panics
///
/// Panics if `sign_row` width differs from the bank width.
pub fn relu(bank: &mut CounterBank, sign_row: &Row) -> CounterBank {
    assert_eq!(sign_row.width(), bank.width(), "sign row width mismatch");
    // Rebuild the bank with negative columns cleared. In memory this is
    // one AND with !O_sign per counter row; we mirror that here.
    let keep = sign_row.not();
    let mut out = bank.clone();
    for col in 0..bank.width() {
        if !keep.get(col) {
            out.set(col, 0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank_with(radix: usize, digits: usize, vals: &[u128]) -> CounterBank {
        let mut b = CounterBank::new(radix, digits, vals.len());
        for (c, &v) in vals.iter().enumerate() {
            b.set(c, v);
        }
        b
    }

    #[test]
    fn algorithm2_single_digit_all_value_pairs() {
        // Exhaustive over one radix-10 digit: every (a, b) pair.
        for a in 0..10u128 {
            for b in 0..10u128 {
                let mut dst = bank_with(10, 1, &[a]);
                let src = bank_with(10, 1, &[b]);
                add_assign(&mut dst, &src);
                assert_eq!(dst.get(0), Some((a + b) % 10), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn algorithm2_multi_digit_with_carries() {
        let cases = [(37u128, 45u128), (99, 1), (123, 877), (0, 456), (999, 999)];
        for (a, b) in cases {
            let mut dst = bank_with(10, 3, &[a]);
            let src = bank_with(10, 3, &[b]);
            add_assign(&mut dst, &src);
            assert_eq!(dst.get(0), Some((a + b) % 1000), "a={a} b={b}");
        }
    }

    #[test]
    fn algorithm2_is_columnwise_parallel() {
        let a = [5u128, 99, 0, 250];
        let b = [17u128, 99, 33, 250];
        let mut dst = bank_with(8, 3, &a);
        let src = bank_with(8, 3, &b);
        add_assign(&mut dst, &src);
        for c in 0..4 {
            assert_eq!(dst.get(c), Some((a[c] + b[c]) % 512), "col {c}");
        }
    }

    #[test]
    fn algorithm2_cost_is_2n_unit_increments_per_digit() {
        let mut dst = bank_with(10, 1, &[3]);
        let src = bank_with(10, 1, &[4]);
        let before = dst.stats().increments;
        add_assign(&mut dst, &src);
        // 2n = 10 unit increments for one radix-10 digit (plus any
        // resolves; a single digit bank has none).
        assert_eq!(dst.stats().increments - before, 10);
    }

    #[test]
    fn algorithm2_works_across_radices() {
        for radix in [4usize, 6, 8, 16] {
            let cap = (radix * radix * radix) as u128;
            for (a, b) in [(0u128, 1u128), (7, 9), (100, 55)] {
                let a = a % cap;
                let b = b % cap;
                let mut dst = bank_with(radix, 3, &[a]);
                let src = bank_with(radix, 3, &[b]);
                add_assign(&mut dst, &src);
                assert_eq!(dst.get(0), Some((a + b) % cap), "radix {radix} {a}+{b}");
            }
        }
    }

    #[test]
    fn shift_left_doubles() {
        let mut b = bank_with(10, 3, &[12, 3, 0, 111]);
        shift_left(&mut b, 3); // x8
        assert_eq!(b.get(0), Some(96));
        assert_eq!(b.get(1), Some(24));
        assert_eq!(b.get(2), Some(0));
        assert_eq!(b.get(3), Some(888));
    }

    #[test]
    fn relu_zeroes_flagged_columns() {
        let b = bank_with(10, 2, &[5, 17, 42, 99]);
        let sign = Row::from_bits([false, true, false, true]);
        let mut bank = b;
        let out = relu(&mut bank, &sign);
        assert_eq!(out.get(0), Some(5));
        assert_eq!(out.get(1), Some(0));
        assert_eq!(out.get(2), Some(42));
        assert_eq!(out.get(3), Some(0));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn add_assign_rejects_mismatched_banks() {
        let mut dst = bank_with(10, 2, &[1, 2]);
        let src = bank_with(10, 2, &[1, 2, 3]);
        add_assign(&mut dst, &src);
    }
}
