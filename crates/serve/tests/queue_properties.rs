//! Property tests for the serving queue and scheduler invariants:
//!
//! 1. batched dispatch is never slower than serial dispatch under the
//!    same trace;
//! 2. no request starves — the FR-FCFS cap bounds how long first-ready
//!    priority may bypass a ready request;
//! 3. batch cap 1 on a 1-channel/1-rank engine reproduces the seed
//!    engine's per-request numbers bit-for-bit, under every admission
//!    policy;
//! 4. on equal-cost jobs, EDF admission never misses a deadline FIFO
//!    meets (non-preemptive EDF is optimal for max lateness when
//!    service times are equal);
//! 5. the PriorityWeighted starvation cap bounds how long a low-class
//!    request can wait before admission;
//! 6. the scheduler is never clairvoyant: every admitted request had
//!    arrived by its batch's admission instant;
//! 7. the engine's energy ledger is conserved: the per-shard dynamic +
//!    per-rank background attribution entries sum to the exact
//!    `system_energy_nj` total within 1e-9 relative slack, across
//!    topologies and launch shapes;
//! 8. batching never costs joules: J/request under batched admission is
//!    never above J/request of the serial one-at-a-time configuration
//!    on the same trace.

use c2m_core::engine::{C2mEngine, EngineConfig};
use c2m_dram::{BatchWindow, MemoryRequest, RequestQueue, TimingParams};
use c2m_serve::{
    open_loop, OpenLoopConfig, SchedPolicy, ServeConfig, ServeReport, ServeRequest, ServeRuntime,
    ServiceClass, TenantSpec,
};
use proptest::prelude::*;

/// A reproducible random memory trace: `len` requests over `banks`
/// banks and `rows` distinct rows, arrivals spread by `gap_ns`.
fn trace(len: usize, banks: usize, rows: usize, gap_ns: f64, seed: u64) -> Vec<MemoryRequest> {
    // Deterministic splitmix-style stream; no rand dependency needed.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 11
    };
    (0..len)
        .map(|i| {
            let bank = (next() as usize) % banks;
            let row = (next() as usize) % rows;
            MemoryRequest::read(i as f64 * gap_ns, bank, row)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 1: for any trace, window and bank count, batched
    /// dispatch finishes no later than the serial one-at-a-time host
    /// path.
    #[test]
    fn batched_dispatch_never_slower_than_serial(
        (len, banks, rows) in (1usize..120, 1usize..5, 1usize..6),
        gap_tenths in 0u32..400,
        window_tenths in 0u32..100_000,
        seed in 0u64..1_000,
    ) {
        let t = TimingParams::ddr5_4400();
        let reqs = trace(len, banks, rows, f64::from(gap_tenths) / 10.0, seed);
        let serial = RequestQueue::new(t, banks).run_serial(&reqs);
        let batched = RequestQueue::new(t, banks)
            .run_batched(&reqs, BatchWindow::new(f64::from(window_tenths) / 10.0));
        prop_assert_eq!(batched.completions.len(), serial.completions.len());
        prop_assert!(
            batched.makespan_ns() <= serial.makespan_ns() + 1e-9,
            "batched {} vs serial {}",
            batched.makespan_ns(),
            serial.makespan_ns()
        );
    }

    /// Invariant 2: with a starvation cap, no request waits more than
    /// the cap plus the drain of requests legitimately ahead of it —
    /// conservatively bounded by the cap plus the whole-trace service
    /// time at the worst-case per-request latency.
    #[test]
    fn no_request_starves_under_the_cap(
        (len, rows) in (2usize..100, 2usize..5),
        seed in 0u64..1_000,
        cap_us in 1u32..20,
    ) {
        let t = TimingParams::ddr5_4400();
        // Single bank and tight arrivals: the adversarial case where
        // row-hit streams can bypass a conflicting request indefinitely.
        let reqs = trace(len, 1, rows, 0.1, seed);
        let cap = f64::from(cap_us) * 1_000.0;
        let rep = RequestQueue::new(t, 1).run_batched(
            &reqs,
            BatchWindow { window_ns: f64::INFINITY, max_wait_ns: cap },
        );
        let worst = t.t_rp + t.t_rcd + t.t_burst;
        let bound = cap + len as f64 * worst + 1e-9;
        for c in &rep.completions {
            prop_assert!(
                c.latency_ns() <= bound,
                "request latency {} exceeds starvation bound {}",
                c.latency_ns(),
                bound
            );
        }
    }

    /// Invariant 3: batch cap 1 on the 1-channel/1-rank engine prices
    /// every request through the seed `ternary_gemv` path bit-for-bit —
    /// under every admission policy, because a single-tenant trace
    /// collapses EDF and PriorityWeighted to arrival order.
    #[test]
    fn unit_batches_reproduce_the_seed_engine(
        k_blocks in 1usize..6,
        requests in 1usize..10,
        seed in 0u64..500,
    ) {
        let engine = C2mEngine::builder(EngineConfig::c2m(16)).build();
        let reqs = open_loop(&OpenLoopConfig {
            tenants: vec![TenantSpec::new(1024, 64 * k_blocks)],
            requests,
            mean_interarrival_ns: 5_000.0,
            seed,
        });
        for policy in [
            SchedPolicy::Fifo,
            SchedPolicy::EarliestDeadlineFirst,
            SchedPolicy::PriorityWeighted,
        ] {
            let runtime = ServeRuntime::new(
                engine.clone(),
                ServeConfig { policy, ..ServeConfig::default() },
            );
            let rep = runtime.run(&reqs);
            prop_assert_eq!(rep.batches.len(), reqs.len());
            for (batch, req) in rep.batches.iter().zip(&reqs) {
                let expect = engine.ternary_gemv(&req.x, req.n);
                prop_assert_eq!(batch.size, 1);
                // Bitwise equality: the serving path must not perturb
                // the seed model's arithmetic.
                prop_assert!(
                    batch.exec_ns == expect.elapsed_ns,
                    "{:?}: serve {} vs seed {}",
                    policy,
                    batch.exec_ns,
                    expect.elapsed_ns
                );
            }
        }
    }

    /// Invariant 4: with equal-cost jobs (identical input vector and
    /// shape, batch cap 1), non-preemptive EDF is optimal for maximum
    /// lateness — so whenever FIFO meets every deadline, EDF does too,
    /// and EDF's worst lateness never exceeds FIFO's. The 1 µs slack
    /// absorbs the ~tens-of-ns fetch jitter from per-tenant row-buffer
    /// state; scheduling differences are whole multiples of the >10 µs
    /// service time.
    #[test]
    fn edf_never_misses_a_deadline_fifo_meets_on_equal_jobs(
        requests in 2usize..24,
        gap_us in 1u32..40,
        deadline_us in 30u32..400,
        seed in 0u64..1_000,
    ) {
        let reqs = equal_job_trace(requests, f64::from(gap_us) * 1_000.0, f64::from(deadline_us) * 1_000.0, seed);
        let fifo = run_policy(SchedPolicy::Fifo, &reqs);
        let edf = run_policy(SchedPolicy::EarliestDeadlineFirst, &reqs);
        prop_assert_eq!(edf.outcomes.len(), fifo.outcomes.len());
        prop_assert!(
            edf.max_lateness_ns() <= fifo.max_lateness_ns() + 1_000.0,
            "EDF lateness {} vs FIFO {}",
            edf.max_lateness_ns(),
            fifo.max_lateness_ns()
        );
        if fifo.deadline_miss_count() == 0 {
            prop_assert_eq!(
                edf.deadline_miss_count(),
                0,
                "EDF missed a deadline FIFO met (EDF Lmax {}, FIFO Lmax {})",
                edf.max_lateness_ns(),
                fifo.max_lateness_ns()
            );
        }
    }

    /// Invariant 5: under PriorityWeighted, a request's wait until
    /// admission is bounded by the starvation cap plus the FCFS drain
    /// of the requests ahead of it — over-cap requests are served
    /// oldest-first, one per admission, and admissions are at most one
    /// batch cycle apart.
    #[test]
    fn priority_cap_bounds_low_class_wait(
        low_requests in 1usize..4,
        high_requests in 4usize..20,
        cap_us in 10u32..200,
        seed in 0u64..1_000,
    ) {
        let cap = f64::from(cap_us) * 1_000.0;
        let high = ServiceClass { priority: 7, deadline_ns: f64::INFINITY };
        // Low-class victims early, a high-class flood right behind.
        let mut reqs: Vec<ServeRequest> = (0..low_requests)
            .map(|i| equal_job(i as u64, i as f64, 0, ServiceClass::BEST_EFFORT))
            .collect();
        let n = low_requests + high_requests;
        for i in low_requests..n {
            let jitter = (seed.wrapping_mul(i as u64 + 1) % 97) as f64;
            reqs.push(equal_job(i as u64, jitter, 1 + i % 2, high));
        }
        let rep = run_policy_capped(SchedPolicy::PriorityWeighted, &reqs, cap);
        prop_assert_eq!(rep.outcomes.len(), n);
        let max_cycle = rep
            .batches
            .iter()
            .map(|b| b.exec_done_ns - b.formed_ns)
            .fold(0.0, f64::max);
        let bound = cap + (n as f64 + 2.0) * max_cycle + 1e-9;
        for o in &rep.outcomes {
            let admitted = rep.batches[o.batch].formed_ns;
            prop_assert!(
                admitted - o.arrival_ns <= bound,
                "request {} admitted after {} ns wait (cap {}, bound {})",
                o.id,
                admitted - o.arrival_ns,
                cap,
                bound
            );
        }
    }

    /// Invariant 6: no clairvoyance — under any policy and window,
    /// every request had arrived by its batch's admission instant.
    #[test]
    fn admission_is_never_clairvoyant(
        requests in 1usize..40,
        window_us in 0u32..2_000,
        tenants in 1usize..4,
        seed in 0u64..1_000,
        policy_idx in 0usize..3,
    ) {
        let policy = [
            SchedPolicy::Fifo,
            SchedPolicy::EarliestDeadlineFirst,
            SchedPolicy::PriorityWeighted,
        ][policy_idx];
        let reqs = open_loop(&OpenLoopConfig {
            tenants: (0..tenants)
                .map(|t| TenantSpec::new(256, 64).with_class(
                    ServiceClass::new(t as u8, 1e5 * (t + 1) as f64),
                ))
                .collect(),
            requests,
            mean_interarrival_ns: 3_000.0,
            seed,
        });
        let runtime = ServeRuntime::new(
            C2mEngine::builder(EngineConfig::c2m(16)).build(),
            ServeConfig {
                window_ns: f64::from(window_us) * 1_000.0,
                max_batch: 8,
                policy,
                ..ServeConfig::default()
            },
        );
        let rep = runtime.run(&reqs);
        prop_assert_eq!(rep.outcomes.len(), reqs.len());
        for o in &rep.outcomes {
            prop_assert!(
                o.arrival_ns <= rep.batches[o.batch].formed_ns,
                "request {} admitted before it arrived",
                o.id
            );
        }
    }
}

/// One request with a constant input vector: every equal-job request
/// costs the engine the same, which is what makes non-preemptive EDF
/// provably optimal for max lateness in invariant 4.
fn equal_job(id: u64, arrival_ns: f64, tenant: usize, class: ServiceClass) -> ServeRequest {
    ServeRequest {
        id,
        arrival_ns,
        tenant,
        class,
        n: 512,
        x: vec![7; 128],
    }
}

/// Equal-cost jobs over 3 tenants whose relative deadlines are 1×, 2×
/// and 3× `deadline_ns`, with splitmix-jittered arrivals `gap_ns`
/// apart on average.
fn equal_job_trace(requests: usize, gap_ns: f64, deadline_ns: f64, seed: u64) -> Vec<ServeRequest> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 11
    };
    let mut arrival = 0.0;
    (0..requests)
        .map(|i| {
            arrival += gap_ns * ((next() % 200) as f64 / 100.0);
            let tenant = (next() % 3) as usize;
            let class = ServiceClass::new(0, deadline_ns * (tenant + 1) as f64);
            equal_job(i as u64, arrival, tenant, class)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Invariant 7: energy-ledger conservation. Every launch's
    /// per-shard dynamic + per-rank busy/idle background entries sum to
    /// the exact `system_energy_nj` scalar within 1e-9 relative slack,
    /// for any channel/rank topology and for both the lone-GEMV and the
    /// row-sharded batch entry points the serving runtime dispatches
    /// through.
    #[test]
    fn energy_ledger_attribution_is_conserved(
        (channels, ranks) in (1usize..=4, 1usize..=2),
        k_blocks in 1usize..5,
        batch in 1usize..6,
        seed in 0u64..500,
    ) {
        let mut cfg = EngineConfig::c2m(16);
        cfg.dram.channels = channels;
        cfg.dram.ranks = ranks;
        let engine = C2mEngine::builder(cfg).build();
        let reqs = open_loop(&OpenLoopConfig {
            tenants: vec![TenantSpec::new(1024, 64 * k_blocks)],
            requests: batch,
            mean_interarrival_ns: 1_000.0,
            seed,
        });
        let xs: Vec<&[i64]> = reqs.iter().map(|r| r.x.as_slice()).collect();
        let reports = [
            engine.ternary_gemv(xs[0], 1024),
            engine.ternary_gemv_batch(&xs, 1024),
        ];
        for r in &reports {
            prop_assert_eq!(r.energy.total_nj, r.energy_nj);
            let rel = ((r.energy.attributed_nj() - r.energy_nj) / r.energy_nj).abs();
            prop_assert!(
                rel < 1e-9,
                "{}x{}: attributed {} vs exact {} (rel {})",
                channels, ranks, r.energy.attributed_nj(), r.energy_nj, rel
            );
        }
    }

    /// Invariant 8: J/request under batched admission never exceeds
    /// J/request of the serial one-at-a-time configuration on the same
    /// trace — per request, a coalesced batch pays counter copy-out
    /// instead of the per-request bank merge, and the shorter makespan
    /// burns less background energy.
    #[test]
    fn batched_joules_per_request_never_above_serial(
        channels in 1usize..=4,
        cap in 2usize..=12,
        requests in 4usize..24,
        seed in 0u64..500,
    ) {
        let mut cfg = EngineConfig::c2m(16);
        cfg.dram.channels = channels;
        let engine = C2mEngine::builder(cfg).build();
        let reqs = open_loop(&OpenLoopConfig {
            tenants: vec![TenantSpec::new(1024, 256)],
            requests,
            mean_interarrival_ns: 2_000.0,
            seed,
        });
        let serial = ServeRuntime::new(engine.clone(), ServeConfig::default()).run(&reqs);
        let batched = ServeRuntime::new(
            engine,
            ServeConfig {
                window_ns: 1e9,
                max_batch: cap,
                ..ServeConfig::default()
            },
        )
        .run(&reqs);
        prop_assert!(
            batched.joules_per_request() <= serial.joules_per_request() * (1.0 + 1e-9),
            "batched {} J vs serial {} J",
            batched.joules_per_request(),
            serial.joules_per_request()
        );
    }
}

fn run_policy(policy: SchedPolicy, reqs: &[ServeRequest]) -> ServeReport {
    run_policy_capped(policy, reqs, BatchWindow::DEFAULT_MAX_WAIT_NS)
}

fn run_policy_capped(policy: SchedPolicy, reqs: &[ServeRequest], cap_ns: f64) -> ServeReport {
    ServeRuntime::new(
        C2mEngine::builder(EngineConfig::c2m(16)).build(),
        ServeConfig {
            max_batch: 1,
            policy,
            max_wait_ns: cap_ns,
            ..ServeConfig::default()
        },
    )
    .run(reqs)
}

/// Deterministic end-to-end sanity: batching and async planning
/// together dominate the seed-faithful serial configuration on a
/// row-hit-heavy single-tenant trace.
#[test]
fn full_pipeline_dominates_serial_configuration() {
    let mut cfg = EngineConfig::c2m(16);
    cfg.dram.channels = 4;
    let engine = C2mEngine::builder(cfg).build();
    let reqs = open_loop(&OpenLoopConfig {
        tenants: vec![TenantSpec::new(2048, 512)],
        requests: 48,
        mean_interarrival_ns: 1_000.0,
        seed: 21,
    });
    let serial = ServeRuntime::new(engine.clone(), ServeConfig::default()).run(&reqs);
    let tuned = ServeRuntime::new(
        engine,
        ServeConfig {
            window_ns: 1e9,
            max_batch: 8,
            async_planner: true,
            ..ServeConfig::default()
        },
    )
    .run(&reqs);
    assert!(tuned.throughput_rps() > serial.throughput_rps());
    assert!(tuned.makespan_ns() < serial.makespan_ns());
}

/// The tentpole's perf claim, as an invariant: on the fig_serve
/// steady-state trace (one tenant, repeated shapes, backlogged queue),
/// a configuration sweep over a *shared* plan/pricing cache hits on
/// more than 90% of its lookups once each topology has been priced
/// once — the sweep re-prices the same request contents at every
/// point, so only the warm-up runs pay (their misses are the
/// compulsory per-topology shard splits).
#[test]
fn steady_state_sweep_hits_the_shared_cache_above_90_percent() {
    use c2m_core::cache::PlanCache;
    use std::sync::Arc;

    let reqs = open_loop(&OpenLoopConfig {
        tenants: vec![TenantSpec::new(4096, 2048)],
        requests: 64,
        mean_interarrival_ns: 20_000.0,
        seed: 0x5EE5,
    });
    let cache = Arc::new(PlanCache::default());
    let engine = |channels: usize| {
        let mut cfg = EngineConfig::c2m(16);
        cfg.dram.channels = channels;
        C2mEngine::builder(cfg)
            .shared_cache(Arc::clone(&cache))
            .build()
    };
    let run = |channels: usize, max_batch: usize| {
        let cfg = ServeConfig {
            window_ns: if max_batch == 1 { 0.0 } else { 1e9 },
            max_batch,
            ..ServeConfig::default()
        };
        let _ = ServeRuntime::new(engine(channels), cfg).run(&reqs);
    };
    // Warm-up: one run per swept topology pays the compulsory misses.
    for channels in [1usize, 4] {
        run(channels, 1);
    }
    let warm = cache.counters();
    // Steady state: the batching sweep proper.
    for channels in [1usize, 4] {
        for max_batch in [2usize, 4, 8, 16] {
            run(channels, max_batch);
        }
    }
    let end = cache.counters();
    let hits = (end.plan_hits + end.stream_hits) - (warm.plan_hits + warm.stream_hits);
    let misses = (end.plan_misses + end.stream_misses) - (warm.plan_misses + warm.stream_misses);
    assert!(hits > 0);
    let rate = hits as f64 / (hits + misses) as f64;
    assert!(
        rate > 0.9,
        "steady-state hit rate {rate:.3} (hits {hits} / misses {misses}) must exceed 0.9"
    );
    // And the warm-up itself already re-uses the single-channel stream
    // entries for the 4-channel plan pass.
    assert!(warm.stream_hits > 0);
}
