//! Property tests for the serving queue invariants:
//!
//! 1. batched dispatch is never slower than serial dispatch under the
//!    same trace;
//! 2. no request starves — the FR-FCFS cap bounds how long first-ready
//!    priority may bypass a ready request;
//! 3. batch cap 1 on a 1-channel/1-rank engine reproduces the seed
//!    engine's per-request numbers bit-for-bit.

use c2m_core::engine::{C2mEngine, EngineConfig};
use c2m_dram::{BatchWindow, MemoryRequest, RequestQueue, TimingParams};
use c2m_serve::{open_loop, OpenLoopConfig, ServeConfig, ServeRuntime, TenantSpec};
use proptest::prelude::*;

/// A reproducible random memory trace: `len` requests over `banks`
/// banks and `rows` distinct rows, arrivals spread by `gap_ns`.
fn trace(len: usize, banks: usize, rows: usize, gap_ns: f64, seed: u64) -> Vec<MemoryRequest> {
    // Deterministic splitmix-style stream; no rand dependency needed.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 11
    };
    (0..len)
        .map(|i| {
            let bank = (next() as usize) % banks;
            let row = (next() as usize) % rows;
            MemoryRequest::read(i as f64 * gap_ns, bank, row)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 1: for any trace, window and bank count, batched
    /// dispatch finishes no later than the serial one-at-a-time host
    /// path.
    #[test]
    fn batched_dispatch_never_slower_than_serial(
        (len, banks, rows) in (1usize..120, 1usize..5, 1usize..6),
        gap_tenths in 0u32..400,
        window_tenths in 0u32..100_000,
        seed in 0u64..1_000,
    ) {
        let t = TimingParams::ddr5_4400();
        let reqs = trace(len, banks, rows, f64::from(gap_tenths) / 10.0, seed);
        let serial = RequestQueue::new(t, banks).run_serial(&reqs);
        let batched = RequestQueue::new(t, banks)
            .run_batched(&reqs, BatchWindow::new(f64::from(window_tenths) / 10.0));
        prop_assert_eq!(batched.completions.len(), serial.completions.len());
        prop_assert!(
            batched.makespan_ns() <= serial.makespan_ns() + 1e-9,
            "batched {} vs serial {}",
            batched.makespan_ns(),
            serial.makespan_ns()
        );
    }

    /// Invariant 2: with a starvation cap, no request waits more than
    /// the cap plus the drain of requests legitimately ahead of it —
    /// conservatively bounded by the cap plus the whole-trace service
    /// time at the worst-case per-request latency.
    #[test]
    fn no_request_starves_under_the_cap(
        (len, rows) in (2usize..100, 2usize..5),
        seed in 0u64..1_000,
        cap_us in 1u32..20,
    ) {
        let t = TimingParams::ddr5_4400();
        // Single bank and tight arrivals: the adversarial case where
        // row-hit streams can bypass a conflicting request indefinitely.
        let reqs = trace(len, 1, rows, 0.1, seed);
        let cap = f64::from(cap_us) * 1_000.0;
        let rep = RequestQueue::new(t, 1).run_batched(
            &reqs,
            BatchWindow { window_ns: f64::INFINITY, max_wait_ns: cap },
        );
        let worst = t.t_rp + t.t_rcd + t.t_burst;
        let bound = cap + len as f64 * worst + 1e-9;
        for c in &rep.completions {
            prop_assert!(
                c.latency_ns() <= bound,
                "request latency {} exceeds starvation bound {}",
                c.latency_ns(),
                bound
            );
        }
    }

    /// Invariant 3: batch cap 1 on the 1-channel/1-rank engine prices
    /// every request through the seed `ternary_gemv` path bit-for-bit.
    #[test]
    fn unit_batches_reproduce_the_seed_engine(
        k_blocks in 1usize..6,
        requests in 1usize..10,
        seed in 0u64..500,
    ) {
        let engine = C2mEngine::new(EngineConfig::c2m(16));
        let reqs = open_loop(&OpenLoopConfig {
            tenants: vec![TenantSpec { n: 1024, k: 64 * k_blocks }],
            requests,
            mean_interarrival_ns: 5_000.0,
            seed,
        });
        let runtime = ServeRuntime::new(engine.clone(), ServeConfig::default());
        let rep = runtime.run(&reqs);
        prop_assert_eq!(rep.batches.len(), reqs.len());
        for (batch, req) in rep.batches.iter().zip(&reqs) {
            let expect = engine.ternary_gemv(&req.x, req.n);
            prop_assert_eq!(batch.size, 1);
            // Bitwise equality: the serving path must not perturb the
            // seed model's arithmetic.
            prop_assert!(
                batch.exec_ns == expect.elapsed_ns,
                "serve {} vs seed {}",
                batch.exec_ns,
                expect.elapsed_ns
            );
        }
    }
}

/// Deterministic end-to-end sanity: batching and async planning
/// together dominate the seed-faithful serial configuration on a
/// row-hit-heavy single-tenant trace.
#[test]
fn full_pipeline_dominates_serial_configuration() {
    let mut cfg = EngineConfig::c2m(16);
    cfg.dram.channels = 4;
    let engine = C2mEngine::new(cfg);
    let reqs = open_loop(&OpenLoopConfig {
        tenants: vec![TenantSpec { n: 2048, k: 512 }],
        requests: 48,
        mean_interarrival_ns: 1_000.0,
        seed: 21,
    });
    let serial = ServeRuntime::new(engine.clone(), ServeConfig::default()).run(&reqs);
    let tuned = ServeRuntime::new(
        engine,
        ServeConfig {
            window_ns: 1e9,
            max_batch: 8,
            async_planner: true,
            ..ServeConfig::default()
        },
    )
    .run(&reqs);
    assert!(tuned.throughput_rps() > serial.throughput_rps());
    assert!(tuned.makespan_ns() < serial.makespan_ns());
}
