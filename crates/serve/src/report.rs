//! Serving metrics: per-request and per-class latency percentiles,
//! deadline-miss rates, throughput, batch shapes, residency reloads,
//! queue-depth timelines, and — via the engine's energy ledger —
//! per-batch/per-request energy with a rolling-window power timeline.
//!
//! Energy accounting covers the busy window of the trace
//! (first arrival → last completion): each dispatched batch carries the
//! energy of its pipeline occupancy (engine launch energy from the
//! [`c2m_dram::EnergyBreakdown`], mask-reload energy for residency
//! misses, and module background power over the reload/dispatch
//! overhead), and the gaps between batches burn the module's idle
//! background floor ([`ServeReport::idle_floor_w`]). J/request figures
//! apportion a batch's energy equally over its requests and the idle
//! burn equally over the whole trace.

use serde::Serialize;

/// Outcome of one served request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RequestOutcome {
    /// Request id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: usize,
    /// SLO priority the request carried.
    pub priority: u8,
    /// Arrival at the front end, ns.
    pub arrival_ns: f64,
    /// Absolute deadline, ns (`+∞` for best-effort requests).
    pub deadline_ns: f64,
    /// Completion (its batch's execution finished), ns.
    pub completion_ns: f64,
    /// Index of the batch that served it.
    pub batch: usize,
}

impl RequestOutcome {
    /// End-to-end latency (arrival → completion), ns.
    #[must_use]
    pub fn latency_ns(&self) -> f64 {
        self.completion_ns - self.arrival_ns
    }

    /// Whether the request finished past its deadline.
    #[must_use]
    pub fn missed(&self) -> bool {
        self.completion_ns > self.deadline_ns
    }

    /// Lateness, ns: completion minus deadline (negative = early,
    /// `-∞` for best-effort requests).
    #[must_use]
    pub fn lateness_ns(&self) -> f64 {
        self.completion_ns - self.deadline_ns
    }
}

/// One dispatched batch's cost breakdown and pipeline placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BatchRecord {
    /// Requests coalesced into the batch.
    pub size: usize,
    /// The batch's tenant (batches never mix tenants).
    pub tenant: usize,
    /// Admission instant, ns: the clock time the scheduler formed the
    /// batch. Only requests that had *arrived* by this instant are in
    /// the batch.
    pub formed_ns: f64,
    /// Host fetch of the batch's input vectors finished at, ns.
    pub fetch_done_ns: f64,
    /// Host-side planning time (digit unpack + IARM), ns.
    pub plan_ns: f64,
    /// Mask rows reloaded because the tenant was not resident (0 on a
    /// residency hit or when residency is unmodelled).
    pub reload_rows: usize,
    /// Time the tenant-switch mask reload took, ns.
    pub reload_ns: f64,
    /// Engine execution time, ns.
    pub exec_ns: f64,
    /// Execution started at, ns.
    pub exec_start_ns: f64,
    /// Execution finished at, ns.
    pub exec_done_ns: f64,
    /// Energy of the batch's pipeline occupancy
    /// (`exec_start_ns..exec_done_ns`), nJ: engine launch energy
    /// (dynamic + all-rank background over the launch), mask-reload
    /// energy, and background power over the reload/dispatch overhead.
    pub energy_nj: f64,
    /// Mask-reload share of `energy_nj` (0 on a residency hit), nJ.
    pub reload_energy_nj: f64,
}

impl BatchRecord {
    /// The batch's busy-interval length, ns.
    #[must_use]
    pub fn busy_ns(&self) -> f64 {
        self.exec_done_ns - self.exec_start_ns
    }

    /// Average power over the batch's busy interval, W (0 degenerate).
    #[must_use]
    pub fn power_w(&self) -> f64 {
        if self.busy_ns() <= 0.0 {
            return 0.0;
        }
        self.energy_nj / self.busy_ns()
    }
}

/// Rolling-window average power sampled at a batch completion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PowerSample {
    /// Sample instant (a batch's completion), ns.
    pub t_ns: f64,
    /// Average power over the preceding
    /// [`ServeReport::power_window_ns`], W.
    pub power_w: f64,
}

/// Queue depth sampled at a pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct QueueSample {
    /// Sample instant, ns.
    pub t_ns: f64,
    /// Requests arrived but not yet completed at that instant.
    pub depth: usize,
}

/// One request's end-to-end latency split into pipeline components,
/// ns. By construction `queue_ns + plan_ns + reload_ns + exec_ns ==
/// total_ns` exactly: the queue share is derived subtractively, so the
/// decomposition never drifts from the end-to-end figure it explains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LatencyComponents {
    /// Time not attributable to work on the request's own batch:
    /// pre-admission waiting, the host fetch, and stalls behind the
    /// planner/engine clocks, ns.
    pub queue_ns: f64,
    /// Host planning (digit unpack + IARM) of the request's batch, ns.
    pub plan_ns: f64,
    /// Tenant mask-plane reload on the batch's critical path, ns.
    pub reload_ns: f64,
    /// Engine occupancy after the reload — dispatch overhead plus the
    /// launch itself, ns.
    pub exec_ns: f64,
    /// End-to-end latency (arrival → completion), ns.
    pub total_ns: f64,
}

/// Per-priority-class latency decomposition: component means and p99s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClassBreakdown {
    /// The priority this row aggregates.
    pub priority: u8,
    /// Requests served in the class.
    pub count: usize,
    /// Mean of each component over the class. Sums to the mean
    /// end-to-end latency exactly (the queue mean is derived
    /// subtractively, like the per-request split).
    pub mean: LatencyComponents,
    /// 99th percentile of each component over the class, taken
    /// *independently* per component: the p99s need not sum to
    /// `p99.total_ns`, since the slowest-queued request is rarely also
    /// the slowest-executing one.
    pub p99: LatencyComponents,
}

/// Aggregate latency/SLO statistics of one priority class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClassStats {
    /// The priority this row aggregates.
    pub priority: u8,
    /// Requests served in the class.
    pub count: usize,
    /// Median latency, ns.
    pub p50_ns: f64,
    /// 95th-percentile latency, ns.
    pub p95_ns: f64,
    /// 99th-percentile latency, ns.
    pub p99_ns: f64,
    /// Fraction of the class's requests that finished past deadline.
    pub miss_rate: f64,
}

/// Aggregate results of one serving run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ServeReport {
    /// Per-request outcomes, in completion order.
    pub outcomes: Vec<RequestOutcome>,
    /// Per-batch pipeline records, in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// Queue depth at each batch completion.
    pub queue_depth: Vec<QueueSample>,
    /// Rolling-window average power at each batch completion — the
    /// power timeline alongside the queue-depth timeline.
    pub power_timeline: Vec<PowerSample>,
    /// Row-buffer hit rate of the host fetch path over the whole run.
    pub host_hit_rate: f64,
    /// Static background power of the served module
    /// (`p_static_w × channels × ranks`), burned between batches, W.
    pub idle_floor_w: f64,
    /// The rolling window the power timeline (and any power cap)
    /// averages over, ns.
    pub power_window_ns: f64,
    /// Priced-batch cache hits at report time (cumulative over the
    /// runtime's lifetime, like the engine tallies; zero when the cache
    /// is disabled). Observational only — caching never changes
    /// results.
    pub batch_cache_hits: u64,
    /// Priced-batch cache misses at report time.
    pub batch_cache_misses: u64,
    /// Engine plan/stream cache tallies at report time (all zeros when
    /// the engine was built with caching disabled).
    pub engine_cache: c2m_dram::CacheCounters,
}

/// Percentiles of `lat` (consumed and sorted in place).
fn percentiles_ns(mut lat: Vec<f64>, ps: &[f64]) -> Vec<f64> {
    if lat.is_empty() {
        return vec![0.0; ps.len()];
    }
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ps.iter()
        .map(|p| {
            let rank = (p / 100.0 * lat.len() as f64).ceil() as usize;
            lat[rank.clamp(1, lat.len()) - 1]
        })
        .collect()
}

impl ServeReport {
    /// Fraction of priced-batch cache lookups that hit, in [0, 1]
    /// (0.0 when the cache is disabled or never consulted).
    #[must_use]
    pub fn batch_cache_hit_rate(&self) -> f64 {
        c2m_dram::hit_fraction(
            self.batch_cache_hits,
            self.batch_cache_hits + self.batch_cache_misses,
        )
    }

    /// One request's end-to-end latency decomposed against its batch's
    /// pipeline record: planning, mask reload, engine occupancy
    /// (dispatch + launch), and — subtractively, so the parts sum to
    /// the whole exactly — everything else as queueing.
    ///
    /// # Panics
    ///
    /// Panics if `o.batch` is out of range for this report's batches —
    /// outcomes decompose only against the report that produced them.
    #[must_use]
    pub fn latency_components(&self, o: &RequestOutcome) -> LatencyComponents {
        let b = &self.batches[o.batch];
        let plan_ns = b.plan_ns;
        let reload_ns = b.reload_ns;
        let exec_ns = (b.exec_done_ns - b.exec_start_ns) - b.reload_ns;
        let total_ns = o.completion_ns - o.arrival_ns;
        let queue_ns = total_ns - plan_ns - reload_ns - exec_ns;
        LatencyComponents {
            queue_ns,
            plan_ns,
            reload_ns,
            exec_ns,
            total_ns,
        }
    }

    /// Per-class latency decomposition, ascending by priority: mean and
    /// p99 of the queue/plan/reload/exec components. Each class's mean
    /// components sum to its mean end-to-end latency exactly; the p99s
    /// are per-component order statistics and carry no such identity
    /// (see [`ClassBreakdown::p99`]).
    #[must_use]
    pub fn latency_breakdown(&self) -> Vec<ClassBreakdown> {
        self.priorities()
            .into_iter()
            .map(|priority| {
                let comps: Vec<LatencyComponents> = self
                    .outcomes
                    .iter()
                    .filter(|o| o.priority == priority)
                    .map(|o| self.latency_components(o))
                    .collect();
                let n = comps.len() as f64;
                let mean_of = |f: fn(&LatencyComponents) -> f64| -> f64 {
                    comps.iter().map(f).sum::<f64>() / n
                };
                let p99_of = |f: fn(&LatencyComponents) -> f64| -> f64 {
                    percentiles_ns(comps.iter().map(f).collect(), &[99.0])[0]
                };
                let plan_ns = mean_of(|c| c.plan_ns);
                let reload_ns = mean_of(|c| c.reload_ns);
                let exec_ns = mean_of(|c| c.exec_ns);
                let total_ns = mean_of(|c| c.total_ns);
                ClassBreakdown {
                    priority,
                    count: comps.len(),
                    mean: LatencyComponents {
                        queue_ns: total_ns - plan_ns - reload_ns - exec_ns,
                        plan_ns,
                        reload_ns,
                        exec_ns,
                        total_ns,
                    },
                    p99: LatencyComponents {
                        queue_ns: p99_of(|c| c.queue_ns),
                        plan_ns: p99_of(|c| c.plan_ns),
                        reload_ns: p99_of(|c| c.reload_ns),
                        exec_ns: p99_of(|c| c.exec_ns),
                        total_ns: p99_of(|c| c.total_ns),
                    },
                }
            })
            .collect()
    }

    /// Latencies at each percentile of `ps` (values in [0, 100]), ns —
    /// sorts the outcomes once however many percentiles are asked for.
    /// All zeros when there are no outcomes.
    #[must_use]
    pub fn latency_percentiles_ns(&self, ps: &[f64]) -> Vec<f64> {
        percentiles_ns(
            self.outcomes
                .iter()
                .map(RequestOutcome::latency_ns)
                .collect(),
            ps,
        )
    }

    /// Latency at percentile `p` in [0, 100], ns (0 when no outcomes).
    #[must_use]
    pub fn latency_percentile_ns(&self, p: f64) -> f64 {
        self.latency_percentiles_ns(&[p])[0]
    }

    /// Median latency, ns.
    #[must_use]
    pub fn p50_ns(&self) -> f64 {
        self.latency_percentile_ns(50.0)
    }

    /// 95th-percentile latency, ns.
    #[must_use]
    pub fn p95_ns(&self) -> f64 {
        self.latency_percentile_ns(95.0)
    }

    /// 99th-percentile latency, ns.
    #[must_use]
    pub fn p99_ns(&self) -> f64 {
        self.latency_percentile_ns(99.0)
    }

    /// Mean latency, ns.
    #[must_use]
    pub fn mean_latency_ns(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(RequestOutcome::latency_ns)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// The distinct priorities served, ascending.
    #[must_use]
    pub fn priorities(&self) -> Vec<u8> {
        let mut ps: Vec<u8> = self.outcomes.iter().map(|o| o.priority).collect();
        ps.sort_unstable();
        ps.dedup();
        ps
    }

    /// Latency percentiles restricted to one priority class, ns.
    #[must_use]
    pub fn class_latency_percentiles_ns(&self, priority: u8, ps: &[f64]) -> Vec<f64> {
        percentiles_ns(
            self.outcomes
                .iter()
                .filter(|o| o.priority == priority)
                .map(RequestOutcome::latency_ns)
                .collect(),
            ps,
        )
    }

    /// Deadline-miss rate of one priority class (0 when the class is
    /// empty).
    #[must_use]
    pub fn class_miss_rate(&self, priority: u8) -> f64 {
        let class: Vec<&RequestOutcome> = self
            .outcomes
            .iter()
            .filter(|o| o.priority == priority)
            .collect();
        if class.is_empty() {
            return 0.0;
        }
        class.iter().filter(|o| o.missed()).count() as f64 / class.len() as f64
    }

    /// Per-class latency/SLO rollup, ascending by priority.
    #[must_use]
    pub fn class_stats(&self) -> Vec<ClassStats> {
        self.priorities()
            .into_iter()
            .map(|priority| {
                let pcts = self.class_latency_percentiles_ns(priority, &[50.0, 95.0, 99.0]);
                ClassStats {
                    priority,
                    count: self
                        .outcomes
                        .iter()
                        .filter(|o| o.priority == priority)
                        .count(),
                    p50_ns: pcts[0],
                    p95_ns: pcts[1],
                    p99_ns: pcts[2],
                    miss_rate: self.class_miss_rate(priority),
                }
            })
            .collect()
    }

    /// Overall deadline-miss rate (best-effort requests never miss).
    #[must_use]
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.missed()).count() as f64 / self.outcomes.len() as f64
    }

    /// Deadline misses, absolute count.
    #[must_use]
    pub fn deadline_miss_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.missed()).count()
    }

    /// Worst lateness over requests that carry a deadline, ns
    /// (negative when every deadline was met; 0 with no deadlines).
    #[must_use]
    pub fn max_lateness_ns(&self) -> f64 {
        let mut worst = None;
        for o in self.outcomes.iter().filter(|o| o.deadline_ns.is_finite()) {
            let l = o.lateness_ns();
            worst = Some(worst.map_or(l, |w: f64| w.max(l)));
        }
        worst.unwrap_or(0.0)
    }

    /// Tenant-switch mask reloads over the run.
    #[must_use]
    pub fn reload_count(&self) -> usize {
        self.batches.iter().filter(|b| b.reload_rows > 0).count()
    }

    /// Total time spent reloading tenant mask planes, ns.
    #[must_use]
    pub fn reload_ns_total(&self) -> f64 {
        self.batches.iter().map(|b| b.reload_ns).sum()
    }

    /// Completion time of the last request, ns.
    #[must_use]
    pub fn makespan_ns(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.completion_ns)
            .fold(0.0, f64::max)
    }

    /// First arrival over the served trace, ns.
    #[must_use]
    pub fn first_arrival_ns(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.arrival_ns)
            .fold(f64::INFINITY, f64::min)
    }

    /// Sustained throughput in requests per second over the *busy*
    /// window: last completion minus first arrival. Measuring from t=0
    /// would overstate the window for open-loop traces whose first
    /// request arrives late. Returns 0 for an empty or degenerate
    /// (single-instant) report.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let span = self.makespan_ns() - self.first_arrival_ns();
        if span <= 0.0 {
            return 0.0;
        }
        self.outcomes.len() as f64 * 1e9 / span
    }

    /// Total time the engine pipeline was occupied by batches, ns.
    #[must_use]
    pub fn busy_ns_total(&self) -> f64 {
        self.batches.iter().map(BatchRecord::busy_ns).sum()
    }

    /// Module idle time inside the busy window (first arrival → last
    /// completion) not covered by any batch, ns.
    #[must_use]
    pub fn idle_ns_total(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        (self.makespan_ns() - self.first_arrival_ns() - self.busy_ns_total()).max(0.0)
    }

    /// Total energy of the run, nJ: every batch's attributed energy
    /// plus the idle background burn between batches.
    #[must_use]
    pub fn total_energy_nj(&self) -> f64 {
        self.batches.iter().map(|b| b.energy_nj).sum::<f64>()
            + self.idle_floor_w * self.idle_ns_total()
    }

    /// Energy per served request, J (0 with no outcomes).
    #[must_use]
    pub fn joules_per_request(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.total_energy_nj() * 1e-9 / self.outcomes.len() as f64
    }

    /// Energy per served request of one priority class, J: the class's
    /// batch-energy shares (a batch's energy splits equally over its
    /// requests) plus an equal per-request share of the idle burn.
    /// Returns 0 when the class is empty.
    #[must_use]
    pub fn class_joules_per_request(&self, priority: u8) -> f64 {
        let members: Vec<&RequestOutcome> = self
            .outcomes
            .iter()
            .filter(|o| o.priority == priority)
            .collect();
        if members.is_empty() {
            return 0.0;
        }
        let idle_share = self.idle_floor_w * self.idle_ns_total() / self.outcomes.len() as f64;
        let busy: f64 = members
            .iter()
            .map(|o| {
                let b = &self.batches[o.batch];
                b.energy_nj / b.size as f64
            })
            .sum();
        (busy / members.len() as f64 + idle_share) * 1e-9
    }

    /// Average power over the busy window, W (0 degenerate).
    #[must_use]
    pub fn mean_power_w(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let span = self.makespan_ns() - self.first_arrival_ns();
        if span <= 0.0 {
            return 0.0;
        }
        self.total_energy_nj() / span
    }

    /// Worst rolling-window average power over the sampled timeline, W
    /// (0 with no samples). A run under a *feasible* power cap keeps
    /// this at or below the cap; an infeasible cap — one a lone
    /// request breaches even with a drained window — saturates
    /// instead of stalling, and the breach shows here as a peak above
    /// the cap.
    #[must_use]
    pub fn peak_window_power_w(&self) -> f64 {
        self.power_timeline
            .iter()
            .map(|s| s.power_w)
            .fold(0.0, f64::max)
    }

    /// Mean requests per dispatched batch.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.batches.iter().map(|b| b.size as f64).sum::<f64>() / self.batches.len() as f64
    }

    /// Peak queue depth over the sampled timeline.
    #[must_use]
    pub fn peak_queue_depth(&self) -> usize {
        self.queue_depth.iter().map(|s| s.depth).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, arrival: f64, done: f64) -> RequestOutcome {
        RequestOutcome {
            id,
            tenant: 0,
            priority: 0,
            arrival_ns: arrival,
            deadline_ns: f64::INFINITY,
            completion_ns: done,
            batch: 0,
        }
    }

    #[test]
    fn percentiles_pick_order_statistics() {
        let rep = ServeReport {
            outcomes: (0..100).map(|i| outcome(i, 0.0, (i + 1) as f64)).collect(),
            ..ServeReport::default()
        };
        assert_eq!(rep.p50_ns(), 50.0);
        assert_eq!(rep.p95_ns(), 95.0);
        assert_eq!(rep.p99_ns(), 99.0);
        assert_eq!(
            rep.latency_percentiles_ns(&[50.0, 95.0, 99.0]),
            vec![50.0, 95.0, 99.0]
        );
        assert_eq!(rep.latency_percentile_ns(100.0), 100.0);
        assert_eq!(rep.latency_percentile_ns(0.0), 1.0);
        assert_eq!(rep.makespan_ns(), 100.0);
        assert!((rep.throughput_rps() - 1e9).abs() < 1e-6);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let rep = ServeReport::default();
        assert_eq!(rep.p99_ns(), 0.0);
        assert_eq!(rep.throughput_rps(), 0.0);
        assert_eq!(rep.mean_batch_size(), 0.0);
        assert_eq!(rep.peak_queue_depth(), 0);
        assert_eq!(rep.deadline_miss_rate(), 0.0);
        assert_eq!(rep.reload_count(), 0);
        assert!(rep.class_stats().is_empty());
    }

    #[test]
    fn throughput_window_starts_at_first_arrival() {
        // Two requests arriving late: the busy window is completion −
        // first arrival, not completion − 0. Measured from t=0 the
        // window would be 5x too wide here.
        let rep = ServeReport {
            outcomes: vec![outcome(0, 400.0, 450.0), outcome(1, 410.0, 500.0)],
            ..ServeReport::default()
        };
        assert!((rep.throughput_rps() - 2.0 * 1e9 / 100.0).abs() < 1e-6);
        assert_eq!(rep.first_arrival_ns(), 400.0);
    }

    #[test]
    fn degenerate_single_instant_reports_zero_throughput() {
        let rep = ServeReport {
            outcomes: vec![outcome(0, 100.0, 100.0)],
            ..ServeReport::default()
        };
        assert_eq!(rep.throughput_rps(), 0.0);
    }

    #[test]
    fn class_stats_split_by_priority_and_count_misses() {
        let mut outcomes = Vec::new();
        for i in 0..10u64 {
            // Priority 1: deadline 50, completion 10·i → 5 misses.
            outcomes.push(RequestOutcome {
                id: i,
                tenant: 0,
                priority: 1,
                arrival_ns: 0.0,
                deadline_ns: 50.0,
                completion_ns: 10.0 * (i + 1) as f64,
                batch: 0,
            });
            // Priority 0: best-effort, never missed.
            outcomes.push(outcome(100 + i, 0.0, 1_000.0));
        }
        let rep = ServeReport {
            outcomes,
            ..ServeReport::default()
        };
        assert_eq!(rep.priorities(), vec![0, 1]);
        let stats = rep.class_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].priority, 0);
        assert_eq!(stats[0].miss_rate, 0.0);
        assert_eq!(stats[1].priority, 1);
        assert!((stats[1].miss_rate - 0.5).abs() < 1e-9);
        assert_eq!(stats[1].count, 10);
        assert!((rep.deadline_miss_rate() - 0.25).abs() < 1e-9);
        assert_eq!(rep.deadline_miss_count(), 5);
        assert!((rep.max_lateness_ns() - 50.0).abs() < 1e-9);
        assert_eq!(rep.class_latency_percentiles_ns(1, &[50.0])[0], 50.0);
    }

    #[test]
    fn reload_totals_come_from_batches() {
        let batch = |rows: usize, ns: f64| BatchRecord {
            size: 1,
            tenant: 0,
            formed_ns: 0.0,
            fetch_done_ns: 0.0,
            plan_ns: 0.0,
            reload_rows: rows,
            reload_ns: ns,
            exec_ns: 1.0,
            exec_start_ns: 0.0,
            exec_done_ns: 1.0,
            energy_nj: 0.0,
            reload_energy_nj: 0.0,
        };
        let rep = ServeReport {
            batches: vec![batch(0, 0.0), batch(100, 5.0), batch(200, 7.0)],
            ..ServeReport::default()
        };
        assert_eq!(rep.reload_count(), 2);
        assert!((rep.reload_ns_total() - 12.0).abs() < 1e-12);
    }

    fn energy_batch(start: f64, done: f64, energy_nj: f64, size: usize) -> BatchRecord {
        BatchRecord {
            size,
            tenant: 0,
            formed_ns: start,
            fetch_done_ns: start,
            plan_ns: 0.0,
            reload_rows: 0,
            reload_ns: 0.0,
            exec_ns: done - start,
            exec_start_ns: start,
            exec_done_ns: done,
            energy_nj,
            reload_energy_nj: 0.0,
        }
    }

    #[test]
    fn energy_totals_add_batches_and_idle_floor() {
        // Two requests; two batches of 100 nJ over [0,100] and
        // [200,300]; idle floor 0.5 W over the 100 ns gap = 50 nJ.
        let mut rep = ServeReport {
            outcomes: vec![outcome(0, 0.0, 100.0), outcome(1, 0.0, 300.0)],
            batches: vec![
                energy_batch(0.0, 100.0, 100.0, 1),
                energy_batch(200.0, 300.0, 100.0, 1),
            ],
            idle_floor_w: 0.5,
            ..ServeReport::default()
        };
        rep.outcomes[1].batch = 1;
        assert!((rep.busy_ns_total() - 200.0).abs() < 1e-12);
        assert!((rep.idle_ns_total() - 100.0).abs() < 1e-12);
        assert!((rep.total_energy_nj() - 250.0).abs() < 1e-12);
        assert!((rep.joules_per_request() - 125.0e-9).abs() < 1e-18);
        // Single class: the class figure equals the overall figure.
        assert!((rep.class_joules_per_request(0) - rep.joules_per_request()).abs() < 1e-18);
        assert_eq!(rep.class_joules_per_request(7), 0.0);
        // Mean power over the 300 ns span.
        assert!((rep.mean_power_w() - 250.0 / 300.0).abs() < 1e-12);
        // Per-batch power.
        assert!((rep.batches[0].power_w() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn class_energy_splits_batches_equally_per_request() {
        // One batch of 4 requests, 400 nJ: 3 of class 0, 1 of class 9.
        let mut outcomes: Vec<RequestOutcome> = (0..4).map(|i| outcome(i, 0.0, 100.0)).collect();
        outcomes[3].priority = 9;
        let rep = ServeReport {
            outcomes,
            batches: vec![energy_batch(0.0, 100.0, 400.0, 4)],
            idle_floor_w: 0.0,
            ..ServeReport::default()
        };
        assert!((rep.class_joules_per_request(9) - 100.0e-9).abs() < 1e-18);
        assert!((rep.class_joules_per_request(0) - 100.0e-9).abs() < 1e-18);
    }

    #[test]
    fn latency_breakdown_components_sum_to_end_to_end() {
        // Batch 0: plan 10, reload 5, occupancy [100, 175] (exec+dispatch
        // = 70 after the reload). Batch 1: plan-free, reload-free,
        // occupancy [200, 260].
        let mut b0 = energy_batch(100.0, 175.0, 0.0, 2);
        b0.plan_ns = 10.0;
        b0.reload_ns = 5.0;
        let b1 = energy_batch(200.0, 260.0, 0.0, 1);
        let mut outcomes = vec![
            outcome(0, 0.0, 175.0),
            outcome(1, 30.0, 175.0),
            outcome(2, 180.0, 260.0),
        ];
        outcomes[2].batch = 1;
        outcomes[2].priority = 3;
        let rep = ServeReport {
            outcomes,
            batches: vec![b0, b1],
            ..ServeReport::default()
        };

        let c = rep.latency_components(&rep.outcomes[0]);
        assert!((c.plan_ns - 10.0).abs() < 1e-12);
        assert!((c.reload_ns - 5.0).abs() < 1e-12);
        assert!((c.exec_ns - 70.0).abs() < 1e-12);
        assert!((c.total_ns - 175.0).abs() < 1e-12);
        assert!((c.queue_ns - 90.0).abs() < 1e-12);

        let rows = rep.latency_breakdown();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            let m = row.mean;
            assert!(
                (m.queue_ns + m.plan_ns + m.reload_ns + m.exec_ns - m.total_ns).abs() < 1e-9,
                "mean components must sum to the mean end-to-end latency"
            );
            let per_request: Vec<LatencyComponents> = rep
                .outcomes
                .iter()
                .filter(|o| o.priority == row.priority)
                .map(|o| rep.latency_components(o))
                .collect();
            assert_eq!(per_request.len(), row.count);
            for c in per_request {
                assert!(
                    (c.queue_ns + c.plan_ns + c.reload_ns + c.exec_ns - c.total_ns).abs() < 1e-9
                );
            }
        }
        // Class 0 (two requests of batch 0): mean total = (175+145)/2.
        assert_eq!(rows[0].priority, 0);
        assert!((rows[0].mean.total_ns - 160.0).abs() < 1e-12);
        // Singleton class: p99 components coincide with the lone split.
        assert_eq!(rows[1].priority, 3);
        assert!((rows[1].p99.total_ns - 80.0).abs() < 1e-12);
        assert!((rows[1].p99.exec_ns - 60.0).abs() < 1e-12);
        assert!(rep.latency_breakdown().len() == 2);
        assert!(ServeReport::default().latency_breakdown().is_empty());
    }

    #[test]
    fn batch_cache_hit_rate_is_zero_when_never_consulted() {
        let rep = ServeReport::default();
        assert_eq!(rep.batch_cache_hit_rate(), 0.0);
        assert!(!rep.batch_cache_hit_rate().is_nan());
        let warm = ServeReport {
            batch_cache_hits: 3,
            batch_cache_misses: 1,
            ..ServeReport::default()
        };
        assert!((warm.batch_cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn peak_window_power_scans_the_timeline() {
        let rep = ServeReport {
            power_timeline: vec![
                PowerSample {
                    t_ns: 1.0,
                    power_w: 0.5,
                },
                PowerSample {
                    t_ns: 2.0,
                    power_w: 2.5,
                },
                PowerSample {
                    t_ns: 3.0,
                    power_w: 1.0,
                },
            ],
            ..ServeReport::default()
        };
        assert!((rep.peak_window_power_w() - 2.5).abs() < 1e-12);
        assert_eq!(ServeReport::default().peak_window_power_w(), 0.0);
        assert_eq!(ServeReport::default().total_energy_nj(), 0.0);
        assert_eq!(ServeReport::default().joules_per_request(), 0.0);
        assert_eq!(ServeReport::default().mean_power_w(), 0.0);
    }
}
