//! Serving metrics: per-request latency percentiles, throughput, batch
//! shapes and queue-depth timelines.

use serde::Serialize;

/// Outcome of one served request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RequestOutcome {
    /// Request id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: usize,
    /// Arrival at the front end, ns.
    pub arrival_ns: f64,
    /// Completion (its batch's execution finished), ns.
    pub completion_ns: f64,
    /// Index of the batch that served it.
    pub batch: usize,
}

impl RequestOutcome {
    /// End-to-end latency (arrival → completion), ns.
    #[must_use]
    pub fn latency_ns(&self) -> f64 {
        self.completion_ns - self.arrival_ns
    }
}

/// One dispatched batch's cost breakdown and pipeline placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BatchRecord {
    /// Requests coalesced into the batch.
    pub size: usize,
    /// The batch's tenant (batches never mix tenants).
    pub tenant: usize,
    /// Host fetch of the batch's input vectors finished at, ns.
    pub fetch_done_ns: f64,
    /// Host-side planning time (digit unpack + IARM), ns.
    pub plan_ns: f64,
    /// Engine execution time, ns.
    pub exec_ns: f64,
    /// Execution started at, ns.
    pub exec_start_ns: f64,
    /// Execution finished at, ns.
    pub exec_done_ns: f64,
}

/// Queue depth sampled at a pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct QueueSample {
    /// Sample instant, ns.
    pub t_ns: f64,
    /// Requests arrived but not yet completed at that instant.
    pub depth: usize,
}

/// Aggregate results of one serving run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ServeReport {
    /// Per-request outcomes, in completion order.
    pub outcomes: Vec<RequestOutcome>,
    /// Per-batch pipeline records, in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// Queue depth at each batch completion.
    pub queue_depth: Vec<QueueSample>,
    /// Row-buffer hit rate of the host fetch path over the whole run.
    pub host_hit_rate: f64,
}

impl ServeReport {
    /// Latencies at each percentile of `ps` (values in [0, 100]), ns —
    /// sorts the outcomes once however many percentiles are asked for.
    /// All zeros when there are no outcomes.
    #[must_use]
    pub fn latency_percentiles_ns(&self, ps: &[f64]) -> Vec<f64> {
        if self.outcomes.is_empty() {
            return vec![0.0; ps.len()];
        }
        let mut lat: Vec<f64> = self
            .outcomes
            .iter()
            .map(RequestOutcome::latency_ns)
            .collect();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        ps.iter()
            .map(|p| {
                let rank = (p / 100.0 * lat.len() as f64).ceil() as usize;
                lat[rank.clamp(1, lat.len()) - 1]
            })
            .collect()
    }

    /// Latency at percentile `p` in [0, 100], ns (0 when no outcomes).
    #[must_use]
    pub fn latency_percentile_ns(&self, p: f64) -> f64 {
        self.latency_percentiles_ns(&[p])[0]
    }

    /// Median latency, ns.
    #[must_use]
    pub fn p50_ns(&self) -> f64 {
        self.latency_percentile_ns(50.0)
    }

    /// 95th-percentile latency, ns.
    #[must_use]
    pub fn p95_ns(&self) -> f64 {
        self.latency_percentile_ns(95.0)
    }

    /// 99th-percentile latency, ns.
    #[must_use]
    pub fn p99_ns(&self) -> f64 {
        self.latency_percentile_ns(99.0)
    }

    /// Mean latency, ns.
    #[must_use]
    pub fn mean_latency_ns(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(RequestOutcome::latency_ns)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Completion time of the last request, ns.
    #[must_use]
    pub fn makespan_ns(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.completion_ns)
            .fold(0.0, f64::max)
    }

    /// Sustained throughput in requests per second over the makespan.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        let span = self.makespan_ns();
        if span <= 0.0 {
            return 0.0;
        }
        self.outcomes.len() as f64 * 1e9 / span
    }

    /// Mean requests per dispatched batch.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.batches.iter().map(|b| b.size as f64).sum::<f64>() / self.batches.len() as f64
    }

    /// Peak queue depth over the sampled timeline.
    #[must_use]
    pub fn peak_queue_depth(&self) -> usize {
        self.queue_depth.iter().map(|s| s.depth).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, arrival: f64, done: f64) -> RequestOutcome {
        RequestOutcome {
            id,
            tenant: 0,
            arrival_ns: arrival,
            completion_ns: done,
            batch: 0,
        }
    }

    #[test]
    fn percentiles_pick_order_statistics() {
        let rep = ServeReport {
            outcomes: (0..100).map(|i| outcome(i, 0.0, (i + 1) as f64)).collect(),
            ..ServeReport::default()
        };
        assert_eq!(rep.p50_ns(), 50.0);
        assert_eq!(rep.p95_ns(), 95.0);
        assert_eq!(rep.p99_ns(), 99.0);
        assert_eq!(
            rep.latency_percentiles_ns(&[50.0, 95.0, 99.0]),
            vec![50.0, 95.0, 99.0]
        );
        assert_eq!(rep.latency_percentile_ns(100.0), 100.0);
        assert_eq!(rep.latency_percentile_ns(0.0), 1.0);
        assert_eq!(rep.makespan_ns(), 100.0);
        assert!((rep.throughput_rps() - 1e9).abs() < 1e-6);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let rep = ServeReport::default();
        assert_eq!(rep.p99_ns(), 0.0);
        assert_eq!(rep.throughput_rps(), 0.0);
        assert_eq!(rep.mean_batch_size(), 0.0);
        assert_eq!(rep.peak_queue_depth(), 0);
    }
}
