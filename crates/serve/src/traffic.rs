//! Multi-tenant traffic generators for the serving runtime.
//!
//! Open-loop traffic draws Poisson arrivals
//! ([`c2m_workloads::distributions::exp_interarrivals`]) and assigns
//! each request a tenant and an input vector drawn from the Fig. 3b
//! int8 embedding distribution; closed-loop traffic is generated
//! interactively by [`crate::runtime::ServeRuntime::run_closed_loop`],
//! which needs completion feedback, and is configured here.

use crate::request::{ServeRequest, ServiceClass};
use c2m_workloads::distributions::{int8_embeddings, poisson_arrivals};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// One tenant's resident model: the GEMV shape its requests run and the
/// SLO class they carry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Output width N of the tenant's ternary weight matrix.
    pub n: usize,
    /// Inner dimension K (input vector length).
    pub k: usize,
    /// SLO class stamped on every request of this tenant.
    pub class: ServiceClass,
}

impl TenantSpec {
    /// A best-effort tenant of shape `n × k`.
    #[must_use]
    pub fn new(n: usize, k: usize) -> Self {
        Self {
            n,
            k,
            class: ServiceClass::BEST_EFFORT,
        }
    }

    /// The same tenant with an explicit SLO class.
    #[must_use]
    pub fn with_class(mut self, class: ServiceClass) -> Self {
        self.class = class;
        self
    }
}

/// Open-loop (arrival-driven) traffic: requests arrive on a Poisson
/// process regardless of completions — the "heavy traffic" regime where
/// the queue builds and batching pays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopConfig {
    /// The tenants sharing the module; each request picks one uniformly
    /// at random. A single tenant yields a row-hit-heavy trace.
    pub tenants: Vec<TenantSpec>,
    /// Total requests to generate.
    pub requests: usize,
    /// Mean inter-arrival gap, ns.
    pub mean_interarrival_ns: f64,
    /// RNG seed (arrivals, tenant choice and inputs all derive from it).
    pub seed: u64,
}

/// Closed-loop (completion-driven) traffic: each client waits for its
/// previous request to finish, thinks, then issues the next.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopConfig {
    /// The tenants sharing the module; client `c` uses tenant
    /// `c % tenants.len()`.
    pub tenants: Vec<TenantSpec>,
    /// Concurrent clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Think time between a completion and the client's next request, ns.
    pub think_ns: f64,
    /// RNG seed for the input vectors.
    pub seed: u64,
}

/// Generates an open-loop trace: `requests` Poisson arrivals with
/// uniformly random tenants and int8-embedding inputs.
///
/// # Panics
///
/// Panics if `tenants` is empty or the mean gap is not positive.
#[must_use]
pub fn open_loop(cfg: &OpenLoopConfig) -> Vec<ServeRequest> {
    assert!(!cfg.tenants.is_empty(), "at least one tenant required");
    let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed ^ 0x007E_4A17);
    poisson_arrivals(cfg.requests, cfg.mean_interarrival_ns, cfg.seed)
        .into_iter()
        .enumerate()
        .map(|(i, arrival_ns)| {
            let tenant = rng.gen_range(0..cfg.tenants.len());
            let spec = cfg.tenants[tenant];
            ServeRequest {
                id: i as u64,
                arrival_ns,
                tenant,
                class: spec.class,
                n: spec.n,
                x: request_input(spec.k, cfg.seed, i as u64),
            }
        })
        .collect()
}

/// The input vector of request `id`: int8 embeddings, deterministically
/// seeded so traces reproduce across runs and runtimes.
#[must_use]
pub fn request_input(k: usize, seed: u64, id: u64) -> Vec<i64> {
    int8_embeddings(k, seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OpenLoopConfig {
        OpenLoopConfig {
            tenants: vec![
                TenantSpec::new(256, 64).with_class(ServiceClass::new(2, 1e6)),
                TenantSpec::new(128, 32),
            ],
            requests: 200,
            mean_interarrival_ns: 500.0,
            seed: 7,
        }
    }

    #[test]
    fn open_loop_arrivals_increase_and_cover_tenants() {
        let reqs = open_loop(&cfg());
        assert_eq!(reqs.len(), 200);
        assert!(reqs.windows(2).all(|w| w[1].arrival_ns > w[0].arrival_ns));
        assert!(reqs.iter().any(|r| r.tenant == 0));
        assert!(reqs.iter().any(|r| r.tenant == 1));
        for r in &reqs {
            let spec = cfg().tenants[r.tenant];
            assert_eq!(r.k(), spec.k);
            assert_eq!(r.n, spec.n);
            assert_eq!(r.class, spec.class, "requests inherit the tenant class");
        }
    }

    #[test]
    fn traces_are_deterministic() {
        assert_eq!(open_loop(&cfg()), open_loop(&cfg()));
    }

    #[test]
    #[should_panic(expected = "tenant")]
    fn empty_tenant_list_panics() {
        let mut c = cfg();
        c.tenants.clear();
        let _ = open_loop(&c);
    }
}
