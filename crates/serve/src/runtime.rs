//! The discrete-event serving runtime: batch formation, host fetch
//! pricing, (optionally overlapped) host planning, and engine execution.
//!
//! The pipeline per batch is
//!
//! ```text
//! fetch (FR-FCFS batched host queue) → plan (IARM, host CPU) → execute
//! ```
//!
//! with three levers over the seed one-request-at-a-time host path:
//!
//! * **Batching** — same-tenant requests arriving within the queue
//!   window coalesce into one engine launch
//!   ([`C2mEngine::ternary_gemv_batch`]), amortising the per-dispatch
//!   overhead and replacing per-request cross-unit partial-sum merges
//!   with row sharding. The host fetch of the batch's input vectors is
//!   priced through [`RequestQueue::run_batched`], where same-tenant
//!   requests are row hits on each other's buffer rows.
//! * **Async planning** — with [`ServeConfig::async_planner`] the host
//!   plans batch *i+1* while batch *i* executes (double buffering), so
//!   a steady-state step costs `max(plan, execute)` instead of their
//!   sum.
//! * **Heterogeneity-aware sizing** — configure the engine with
//!   [`C2mEngine::heterogeneity_weights`] and mixed Ambit/FCDRAM
//!   topologies stop being paced by their slow channels.
//!
//! With `max_batch == 1`, synchronous planning and a 1-channel/1-rank
//! engine, every request executes through the seed
//! [`C2mEngine::ternary_gemv`] path bit-for-bit.

use crate::report::{BatchRecord, QueueSample, RequestOutcome, ServeReport};
use crate::request::ServeRequest;
use crate::traffic::{request_input, ClosedLoopConfig};
use c2m_core::engine::C2mEngine;
use c2m_dram::{BatchWindow, MemoryRequest, RequestQueue};
use serde::{Deserialize, Serialize};

/// Serving-runtime configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Batch admission window, ns: a batch coalesces same-tenant
    /// requests arriving within this window of its oldest request.
    pub window_ns: f64,
    /// Hard cap on requests per batch.
    pub max_batch: usize,
    /// FR-FCFS starvation cap on the host fetch queue, ns.
    pub max_wait_ns: f64,
    /// Host planning cost per broadcast command sequence, ns (digit
    /// unpacking + IARM bookkeeping on the host CPU).
    pub host_ns_per_seq: f64,
    /// Fixed host→controller launch overhead per dispatched batch, ns.
    pub dispatch_ns: f64,
    /// Double-buffer the planner: plan batch *i+1* during execution of
    /// batch *i* instead of serialising planning with the command
    /// stream.
    pub async_planner: bool,
}

impl Default for ServeConfig {
    /// The seed-faithful configuration: no batching (one request per
    /// dispatch), synchronous planning.
    fn default() -> Self {
        Self {
            window_ns: 0.0,
            max_batch: 1,
            max_wait_ns: BatchWindow::DEFAULT_MAX_WAIT_NS,
            host_ns_per_seq: 25.0,
            dispatch_ns: 2_000.0,
            async_planner: false,
        }
    }
}

/// The serving runtime: owns a configured engine and prices request
/// traces through the fetch → plan → execute pipeline.
#[derive(Debug, Clone)]
pub struct ServeRuntime {
    engine: C2mEngine,
    cfg: ServeConfig,
}

/// Pipeline clock state threaded through batch dispatches.
#[derive(Debug, Default)]
struct Pipeline {
    planner_free: f64,
    engine_free: f64,
    hits: u64,
    accesses: u64,
}

impl ServeRuntime {
    /// Creates a runtime over `engine` with the given policy.
    ///
    /// # Panics
    ///
    /// Panics on a zero batch cap or negative window.
    #[must_use]
    pub fn new(engine: C2mEngine, cfg: ServeConfig) -> Self {
        assert!(cfg.max_batch >= 1, "batches hold at least one request");
        assert!(
            cfg.window_ns >= 0.0 && !cfg.window_ns.is_nan(),
            "window must be non-negative"
        );
        Self { engine, cfg }
    }

    /// The engine being served.
    #[must_use]
    pub fn engine(&self) -> &C2mEngine {
        &self.engine
    }

    /// The serving policy in force.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Serves an open-loop trace (arrivals fixed in advance) and
    /// reports per-request latencies, batch records and queue depth.
    pub fn run(&self, requests: &[ServeRequest]) -> ServeReport {
        let mut pending: Vec<ServeRequest> = requests.to_vec();
        pending.sort_by(|a, b| {
            a.arrival_ns
                .partial_cmp(&b.arrival_ns)
                .expect("finite arrivals")
                .then(a.id.cmp(&b.id))
        });
        // `pending` is sorted by arrival, so this is non-decreasing and
        // ready for `partition_point`.
        let arrivals: Vec<f64> = pending.iter().map(|r| r.arrival_ns).collect();

        let mut fetch_q = self.fetch_queue();
        let mut pipe = Pipeline::default();
        let mut report = ServeReport::default();
        while !pending.is_empty() {
            let batch = self.form_batch(&mut pending);
            self.dispatch(&batch, &mut fetch_q, &mut pipe, &mut report);
            let done = report.batches.last().expect("batch recorded").exec_done_ns;
            let arrived = arrivals.partition_point(|&a| a <= done);
            report.queue_depth.push(QueueSample {
                t_ns: done,
                depth: arrived - report.outcomes.len(),
            });
        }
        report.host_hit_rate = if pipe.accesses == 0 {
            0.0
        } else {
            pipe.hits as f64 / pipe.accesses as f64
        };
        report
    }

    /// Serves closed-loop traffic: each of `cfg.clients` clients waits
    /// for its previous request to complete, thinks for
    /// `cfg.think_ns`, then issues the next, `cfg.requests_per_client`
    /// times. Queue depth is sampled over *issued* requests.
    ///
    /// # Panics
    ///
    /// Panics if the tenant list is empty.
    pub fn run_closed_loop(&self, cfg: &ClosedLoopConfig) -> ServeReport {
        assert!(!cfg.tenants.is_empty(), "at least one tenant required");
        let mut remaining = vec![cfg.requests_per_client; cfg.clients];
        // Ids are issued sequentially, so `client_of[id]` recovers the
        // owning client without threading tuples through the batcher.
        let mut client_of: Vec<usize> = Vec::new();
        let issue = |client: usize, arrival: f64, client_of: &mut Vec<usize>| -> ServeRequest {
            let tenant = client % cfg.tenants.len();
            let spec = cfg.tenants[tenant];
            let id = client_of.len() as u64;
            client_of.push(client);
            ServeRequest {
                id,
                arrival_ns: arrival,
                tenant,
                n: spec.n,
                x: request_input(spec.k, cfg.seed, id),
            }
        };
        // Every client fires its first request at t = 0.
        let mut pending: Vec<ServeRequest> = Vec::new();
        for (c, rem) in remaining.iter_mut().enumerate() {
            if *rem > 0 {
                *rem -= 1;
                let r = issue(c, 0.0, &mut client_of);
                pending.push(r);
            }
        }

        let mut fetch_q = self.fetch_queue();
        let mut pipe = Pipeline::default();
        let mut report = ServeReport::default();
        let mut issued_arrivals: Vec<f64> = pending.iter().map(|r| r.arrival_ns).collect();
        while !pending.is_empty() {
            pending.sort_by(|a, b| {
                a.arrival_ns
                    .partial_cmp(&b.arrival_ns)
                    .expect("finite arrivals")
                    .then(a.id.cmp(&b.id))
            });
            let batch = self.form_batch(&mut pending);
            let clients: Vec<usize> = batch.iter().map(|r| client_of[r.id as usize]).collect();
            self.dispatch(&batch, &mut fetch_q, &mut pipe, &mut report);
            let done = report.batches.last().expect("batch recorded").exec_done_ns;
            // Served clients think, then issue their next request.
            for &c in &clients {
                if remaining[c] > 0 {
                    remaining[c] -= 1;
                    let r = issue(c, done + cfg.think_ns, &mut client_of);
                    issued_arrivals.push(r.arrival_ns);
                    pending.push(r);
                }
            }
            let arrived = issued_arrivals.iter().filter(|&&a| a <= done).count();
            report.queue_depth.push(QueueSample {
                t_ns: done,
                depth: arrived - report.outcomes.len(),
            });
        }
        report.host_hit_rate = if pipe.accesses == 0 {
            0.0
        } else {
            pipe.hits as f64 / pipe.accesses as f64
        };
        report
    }

    /// A fresh FR-FCFS queue over the engine's host-visible banks.
    fn fetch_queue(&self) -> RequestQueue {
        let cfg = self.engine.config();
        RequestQueue::new(cfg.timing, cfg.dram.banks)
    }

    /// Pops the next batch off `pending` (sorted by arrival): the oldest
    /// request seeds it, and later same-tenant same-shape requests
    /// within the window join, up to the cap. Other tenants' requests
    /// are left for their own batches — the serving-layer analogue of
    /// first-ready row hits bypassing a conflicting request.
    fn form_batch(&self, pending: &mut Vec<ServeRequest>) -> Vec<ServeRequest> {
        debug_assert!(!pending.is_empty());
        let seed_arrival = pending[0].arrival_ns;
        let (tenant, n, k) = (pending[0].tenant, pending[0].n, pending[0].k());
        let mut batch = Vec::new();
        let mut i = 0;
        while i < pending.len() && batch.len() < self.cfg.max_batch {
            if pending[i].arrival_ns - seed_arrival > self.cfg.window_ns {
                break;
            }
            if pending[i].tenant == tenant && pending[i].n == n && pending[i].k() == k {
                batch.push(pending.remove(i));
            } else {
                i += 1;
            }
        }
        batch
    }

    /// Prices one batch through fetch → plan → execute and records the
    /// outcomes.
    fn dispatch(
        &self,
        batch: &[ServeRequest],
        fetch_q: &mut RequestQueue,
        pipe: &mut Pipeline,
        report: &mut ServeReport,
    ) {
        debug_assert!(!batch.is_empty());
        // Host fetch: stream every request's input vector through the
        // batched FR-FCFS queue. Same-tenant requests share buffer rows,
        // so coalescing them is row-hit heavy.
        let mem: Vec<MemoryRequest> = batch.iter().flat_map(|r| self.fetch_plan(r)).collect();
        let fetch = fetch_q.run_batched(
            &mem,
            BatchWindow {
                window_ns: self.cfg.window_ns,
                max_wait_ns: self.cfg.max_wait_ns,
            },
        );
        pipe.accesses += fetch.completions.len() as u64;
        pipe.hits += fetch
            .completions
            .iter()
            .filter(|c| c.kind == c2m_dram::AccessKind::RowHit)
            .count() as u64;
        let fetch_done = fetch.makespan_ns();

        // Host planning: the real IARM pass over each request's doubled
        // ternary stream, costed per emitted sequence.
        let plan_ns = batch
            .iter()
            .map(|r| self.engine.sequences_for_stream(&r.ternary_stream()) as f64)
            .sum::<f64>()
            * self.cfg.host_ns_per_seq;

        // Engine execution: the seed GEMV path for a lone request (bit
        // compatible with the paper model), the row-sharded batch entry
        // point otherwise.
        let exec_ns = if batch.len() == 1 {
            self.engine.ternary_gemv(&batch[0].x, batch[0].n).elapsed_ns
        } else {
            let xs: Vec<&[i64]> = batch.iter().map(|r| r.x.as_slice()).collect();
            self.engine.ternary_gemv_batch(&xs, batch[0].n).elapsed_ns
        };

        let plan_start = fetch_done.max(pipe.planner_free);
        let plan_done = plan_start + plan_ns;
        let exec_start = plan_done.max(pipe.engine_free);
        let exec_done = exec_start + self.cfg.dispatch_ns + exec_ns;
        pipe.engine_free = exec_done;
        pipe.planner_free = if self.cfg.async_planner {
            plan_done
        } else {
            exec_done
        };

        let batch_idx = report.batches.len();
        report.batches.push(BatchRecord {
            size: batch.len(),
            tenant: batch[0].tenant,
            fetch_done_ns: fetch_done,
            plan_ns,
            exec_ns,
            exec_start_ns: exec_start,
            exec_done_ns: exec_done,
        });
        for r in batch {
            report.outcomes.push(RequestOutcome {
                id: r.id,
                tenant: r.tenant,
                arrival_ns: r.arrival_ns,
                completion_ns: exec_done,
                batch: batch_idx,
            });
        }
    }

    /// The memory requests streaming one request's input vector out of
    /// the host buffer: one read per 64-byte burst, same-tenant vectors
    /// aliasing the same rows (the weights-resident tenant keeps its
    /// input buffer hot).
    fn fetch_plan(&self, r: &ServeRequest) -> Vec<MemoryRequest> {
        let dram = &self.engine.config().dram;
        let row_bytes = dram.row_bits_per_rank() / 8;
        let bank = r.tenant % dram.banks;
        let base_row = (r.tenant / dram.banks) * 64;
        let bursts = r.k().div_ceil(64).max(1);
        (0..bursts)
            .map(|b| MemoryRequest::read(r.arrival_ns, bank, base_row + (b * 64) / row_bytes))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{open_loop, OpenLoopConfig, TenantSpec};
    use c2m_core::engine::EngineConfig;

    fn engine(channels: usize) -> C2mEngine {
        let mut cfg = EngineConfig::c2m(16);
        cfg.dram.channels = channels;
        C2mEngine::new(cfg)
    }

    fn trace(requests: usize, tenants: usize) -> Vec<ServeRequest> {
        open_loop(&OpenLoopConfig {
            tenants: vec![TenantSpec { n: 512, k: 256 }; tenants],
            requests,
            mean_interarrival_ns: 2_000.0,
            seed: 11,
        })
    }

    fn cfg(max_batch: usize, window_ns: f64) -> ServeConfig {
        ServeConfig {
            window_ns,
            max_batch,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let reqs = trace(40, 2);
        let rep = ServeRuntime::new(engine(1), cfg(4, 1e6)).run(&reqs);
        assert_eq!(rep.outcomes.len(), 40);
        let mut ids: Vec<u64> = rep.outcomes.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 40);
        for o in &rep.outcomes {
            assert!(o.completion_ns > o.arrival_ns, "request {}", o.id);
        }
        assert_eq!(
            rep.batches.iter().map(|b| b.size).sum::<usize>(),
            40,
            "batch sizes partition the trace"
        );
    }

    #[test]
    fn batches_respect_cap_window_and_tenant() {
        let reqs = trace(60, 2);
        let rep = ServeRuntime::new(engine(1), cfg(4, 1e6)).run(&reqs);
        assert!(rep.batches.iter().all(|b| b.size <= 4));
        assert!(rep.mean_batch_size() > 1.0, "window should coalesce");
        // Per-batch tenants are single-valued by construction: cross
        // check through outcomes.
        for (i, b) in rep.batches.iter().enumerate() {
            assert!(rep
                .outcomes
                .iter()
                .filter(|o| o.batch == i)
                .all(|o| o.tenant == b.tenant));
        }
    }

    #[test]
    fn batching_improves_throughput_on_single_tenant_traffic() {
        let reqs = trace(32, 1);
        let serial = ServeRuntime::new(engine(1), cfg(1, 0.0)).run(&reqs);
        let batched = ServeRuntime::new(engine(1), cfg(8, 1e9)).run(&reqs);
        assert!(
            batched.throughput_rps() > serial.throughput_rps(),
            "batched {} vs serial {}",
            batched.throughput_rps(),
            serial.throughput_rps()
        );
    }

    #[test]
    fn async_planner_is_never_slower_and_hides_plan_time() {
        let reqs = trace(32, 1);
        let sync_cfg = ServeConfig {
            host_ns_per_seq: 100.0,
            ..cfg(4, 1e9)
        };
        let async_cfg = ServeConfig {
            async_planner: true,
            ..sync_cfg.clone()
        };
        let e = engine(4);
        let sync = ServeRuntime::new(e.clone(), sync_cfg).run(&reqs);
        let asyncr = ServeRuntime::new(e, async_cfg).run(&reqs);
        assert!(
            asyncr.makespan_ns() < sync.makespan_ns(),
            "async {} vs sync {}",
            asyncr.makespan_ns(),
            sync.makespan_ns()
        );
        assert!(asyncr.mean_latency_ns() < sync.mean_latency_ns());
    }

    #[test]
    fn closed_loop_serves_every_client_quota() {
        let ccfg = ClosedLoopConfig {
            tenants: vec![TenantSpec { n: 512, k: 256 }],
            clients: 4,
            requests_per_client: 5,
            think_ns: 1_000.0,
            seed: 3,
        };
        let rep = ServeRuntime::new(engine(1), cfg(4, 1e6)).run_closed_loop(&ccfg);
        assert_eq!(rep.outcomes.len(), 20);
        // Completions are strictly ordered per client: a client's next
        // request arrives only after its previous completion + think.
        for o in &rep.outcomes {
            assert!(o.completion_ns > o.arrival_ns);
        }
        assert!(rep.queue_depth.iter().all(|s| s.depth <= 4));
    }

    #[test]
    fn queue_depth_never_exceeds_outstanding_requests() {
        let reqs = trace(50, 2);
        let rep = ServeRuntime::new(engine(1), cfg(2, 5_000.0)).run(&reqs);
        assert!(rep.peak_queue_depth() <= 50);
        assert_eq!(rep.queue_depth.len(), rep.batches.len());
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_batch_cap_is_rejected() {
        let _ = ServeRuntime::new(engine(1), cfg(0, 0.0));
    }
}
