//! The discrete-event serving runtime: clock-driven batch admission,
//! host fetch pricing, (optionally overlapped) host planning, tenant
//! residency and engine execution.
//!
//! The pipeline per batch is
//!
//! ```text
//! admit (scheduler, at a dispatch instant) → fetch (FR-FCFS batched
//! host queue) → plan (IARM, host CPU) → [mask reload] → execute
//! ```
//!
//! **Admission is clock-driven.** A batch is formed *at* a dispatch
//! instant — the time the host is free to take the next batch (previous
//! execution done, or previous *plan* done under
//! [`ServeConfig::async_planner`]) — and may only admit requests that
//! have actually arrived by that instant. The scheduler never sees the
//! future: a request arriving one nanosecond after the dispatch instant
//! waits for the next batch, exactly like a memory request arriving
//! after the controller issued.
//!
//! Which arrived request seeds the batch is the pluggable
//! [`SchedPolicy`]:
//!
//! * [`SchedPolicy::Fifo`] — oldest arrival first (seed-faithful: with
//!   `max_batch == 1`, synchronous planning and a 1-channel/1-rank
//!   engine, every request executes through the seed
//!   [`C2mEngine::ternary_gemv`] path bit-for-bit).
//! * [`SchedPolicy::EarliestDeadlineFirst`] — earliest absolute
//!   deadline ([`ServeRequest::deadline_ns`]) first.
//! * [`SchedPolicy::PriorityWeighted`] — highest
//!   [`ServiceClass::priority`](crate::request::ServiceClass) first,
//!   except that a request waiting longer than
//!   [`ServeConfig::max_wait_ns`] is served oldest-first regardless of
//!   class — the same starvation cap
//!   [`c2m_dram::BatchWindow::max_wait_ns`] applies to row hits in the
//!   fetch queue.
//!
//! Same-tenant same-shape requests that arrived by the dispatch instant
//! coalesce with the seed (up to [`ServeConfig::max_batch`], within
//! [`ServeConfig::window_ns`] of the seed's arrival) into one engine
//! launch ([`C2mEngine::ternary_gemv_batch`]), amortising the
//! per-dispatch overhead; the host fetch of the batch's input vectors
//! is priced through [`RequestQueue::run_batched`].
//!
//! **Tenant weight residency** ([`ServeConfig::residency_rows`]) makes
//! tenant switches real: a [`ResidencyModel`] tracks which tenants'
//! mask planes still fit in the CIM subarrays, and dispatching a
//! non-resident tenant pays a mask-plane reload
//! ([`C2mEngine::mask_reload_ns`]) on the engine's critical path — the
//! serving-layer analogue of a row-buffer conflict. The scheduler
//! therefore faces a genuine affinity-vs-deadline trade-off.
//!
//! **Energy accounting** rides the engine's per-launch
//! [`c2m_dram::EnergyBreakdown`]: every batch records the joules of its
//! pipeline occupancy (launch energy, mask-reload energy for residency
//! misses — priced in *joules* here, not just time — and background
//! power over the dispatch overhead), gaps between batches burn the
//! module's static idle floor, and the report carries a rolling-window
//! power timeline alongside the queue-depth timeline.
//!
//! **Power-capped admission** ([`ServeConfig::power_budget_w`]): before
//! committing a batch, the scheduler projects the rolling-window
//! average power at the batch's completion. If it would exceed the cap
//! the batch *shrinks* (latest-arriving coalesced mates return to the
//! ready set; the policy-chosen seed is kept, so capping composes with
//! every [`SchedPolicy`]), and if even a lone request would breach it
//! the dispatch is *deferred* until enough of the window has drained.
//! With `power_budget_w: None` the pipeline is byte-identical to the
//! uncapped runtime.

use crate::cache::{BatchPrice, BatchPriceCache};
use crate::report::{BatchRecord, PowerSample, QueueSample, RequestOutcome, ServeReport};
use crate::request::ServeRequest;
use crate::traffic::{request_input, ClosedLoopConfig};
use c2m_core::engine::C2mEngine;
use c2m_core::residency::{ResidencyModel, ResidencyOutcome};
use c2m_dram::{hit_fraction, BatchWindow, CacheCounters, MemoryRequest, RequestQueue};
use c2m_trace::{TraceEvent, TraceSink, Track};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Batch admission policy: which arrived request seeds the next batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedPolicy {
    /// Oldest arrival first — the seed-faithful baseline.
    #[default]
    Fifo,
    /// Earliest absolute deadline first.
    EarliestDeadlineFirst,
    /// Highest service-class priority first, starvation-capped: any
    /// request waiting longer than [`ServeConfig::max_wait_ns`] is
    /// served oldest-first before any younger higher-class request.
    PriorityWeighted,
}

/// Serving-runtime configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Batch coalescing window, ns: a batch admits same-tenant requests
    /// that arrived within this window after its seed's arrival (and by
    /// the dispatch instant — the window never reaches into the future).
    pub window_ns: f64,
    /// Hard cap on requests per batch.
    pub max_batch: usize,
    /// Starvation cap, ns, applied at both layers: in the host fetch
    /// queue (FR-FCFS bypass bound) and by
    /// [`SchedPolicy::PriorityWeighted`] (class bypass bound).
    pub max_wait_ns: f64,
    /// Host planning cost per broadcast command sequence, ns (digit
    /// unpacking + IARM bookkeeping on the host CPU).
    pub host_ns_per_seq: f64,
    /// Fixed host→controller launch overhead per dispatched batch, ns.
    pub dispatch_ns: f64,
    /// Double-buffer the planner: plan batch *i+1* during execution of
    /// batch *i* instead of serialising planning with the command
    /// stream. Admission then happens at plan pickup, so batch *i+1*'s
    /// contents are fixed when its planning starts.
    pub async_planner: bool,
    /// Admission policy.
    pub policy: SchedPolicy,
    /// Tenant weight residency: `Some(rows)` models an LRU mask-plane
    /// budget of `rows` CIM subarray rows, charging
    /// [`C2mEngine::mask_reload_ns`] whenever a dispatched tenant is
    /// not resident. `None` (seed-faithful) assumes every tenant stays
    /// resident for free. [`C2mEngine::residency_capacity_rows`] derives
    /// the budget from the engine's actual geometry.
    pub residency_rows: Option<usize>,
    /// Independent residency slots the budget splits over — one per
    /// (channel, rank, SALP stream) when the engine runs with
    /// subarray-level parallelism
    /// ([`C2mEngine::residency_slots`] derives the count from the
    /// engine's topology). Each slot runs its own LRU over
    /// `residency_rows / slots` rows and a dispatched tenant only
    /// restreams the slots it actually missed. 1 (the default, and the
    /// pre-SALP behaviour bit for bit) keeps the single module-wide
    /// budget. Ignored when `residency_rows` is `None`.
    pub residency_slots: usize,
    /// Rolling window the power timeline (and the power cap) averages
    /// over, ns.
    pub power_window_ns: f64,
    /// Power-capped admission: `Some(cap)` defers or shrinks a batch
    /// whenever the rolling-window average power at its completion
    /// would exceed `cap` watts. Must sit above the module's static
    /// idle floor
    /// ([`c2m_dram::EnergyModel::system_background_power_w`]) — below
    /// it no schedule complies. A cap that even a *lone* request
    /// breaches with a fully drained window is infeasible for the
    /// workload: the scheduler saturates (waits out the window, then
    /// runs the request anyway) rather than stall forever, and the
    /// breach is visible as
    /// [`ServeReport::peak_window_power_w`](crate::report::ServeReport::peak_window_power_w)
    /// exceeding the cap. `None` (seed-faithful) admits on latency
    /// policy alone.
    pub power_budget_w: Option<f64>,
    /// Memoise the pure part of batch pricing (host planning cost and
    /// engine execution) on the batch signature — tenant, output width
    /// and member input vectors (see [`crate::cache::BatchPriceCache`]).
    /// Observational only: cached and uncached serving are bit-for-bit
    /// identical, because the stateful fetch-queue and residency pricing
    /// always run live. Disable for cache-equivalence testing.
    pub batch_cache: bool,
}

impl Default for ServeConfig {
    /// The seed-faithful configuration — the single place field
    /// defaults live (the builder starts from it):
    ///
    /// | field | default | meaning |
    /// |---|---|---|
    /// | `window_ns` | `0.0` | no coalescing window |
    /// | `max_batch` | `1` | one request per dispatch |
    /// | `max_wait_ns` | [`BatchWindow::DEFAULT_MAX_WAIT_NS`] | FR-FCFS starvation cap |
    /// | `host_ns_per_seq` | `25.0` | host planning cost per sequence |
    /// | `dispatch_ns` | `2_000.0` | per-batch launch overhead |
    /// | `async_planner` | `false` | planning serialises with execution |
    /// | `policy` | [`SchedPolicy::Fifo`] | oldest arrival first |
    /// | `residency_rows` | `None` | tenants stay resident for free |
    /// | `residency_slots` | `1` | one flat module-wide budget |
    /// | `power_window_ns` | `1e6` | rolling power window, 1 ms |
    /// | `power_budget_w` | `None` | no power cap |
    /// | `batch_cache` | `true` | memoise pure batch pricing |
    fn default() -> Self {
        Self {
            window_ns: 0.0,
            max_batch: 1,
            max_wait_ns: BatchWindow::DEFAULT_MAX_WAIT_NS,
            host_ns_per_seq: 25.0,
            dispatch_ns: 2_000.0,
            async_planner: false,
            policy: SchedPolicy::Fifo,
            residency_rows: None,
            residency_slots: 1,
            power_window_ns: 1e6,
            power_budget_w: None,
            batch_cache: true,
        }
    }
}

/// A validation failure from [`ServeConfigBuilder::try_build`],
/// carrying a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfigError(String);

impl std::fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ServeConfigError {}

/// Typed builder for [`ServeConfig`]: starts from
/// [`ServeConfig::default`] (the seed-faithful configuration — see its
/// table of defaults), applies the setters, and validates every
/// engine-independent invariant at [`Self::build`] /
/// [`Self::try_build`]. The one engine-*dependent* check — a power cap
/// must sit above the module's static idle floor — still happens in
/// [`ServeRuntime::new`], where the engine is known.
///
/// ```
/// use c2m_serve::{SchedPolicy, ServeConfig};
/// let cfg = ServeConfig::builder()
///     .max_batch(8)
///     .window_ns(1e6)
///     .policy(SchedPolicy::EarliestDeadlineFirst)
///     .build();
/// assert_eq!(cfg.max_batch, 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
    trace: Option<Arc<dyn TraceSink>>,
}

impl ServeConfigBuilder {
    /// Sets the batch coalescing window, ns.
    #[must_use]
    pub fn window_ns(mut self, v: f64) -> Self {
        self.cfg.window_ns = v;
        self
    }

    /// Sets the hard cap on requests per batch.
    #[must_use]
    pub fn max_batch(mut self, v: usize) -> Self {
        self.cfg.max_batch = v;
        self
    }

    /// Sets the starvation cap, ns.
    #[must_use]
    pub fn max_wait_ns(mut self, v: f64) -> Self {
        self.cfg.max_wait_ns = v;
        self
    }

    /// Sets the host planning cost per broadcast sequence, ns.
    #[must_use]
    pub fn host_ns_per_seq(mut self, v: f64) -> Self {
        self.cfg.host_ns_per_seq = v;
        self
    }

    /// Sets the fixed per-batch launch overhead, ns.
    #[must_use]
    pub fn dispatch_ns(mut self, v: f64) -> Self {
        self.cfg.dispatch_ns = v;
        self
    }

    /// Double-buffers the planner (plan batch *i+1* during execution of
    /// batch *i*).
    #[must_use]
    pub fn async_planner(mut self, v: bool) -> Self {
        self.cfg.async_planner = v;
        self
    }

    /// Sets the admission policy.
    #[must_use]
    pub fn policy(mut self, v: SchedPolicy) -> Self {
        self.cfg.policy = v;
        self
    }

    /// Models an LRU mask-plane residency budget of `rows` CIM subarray
    /// rows.
    #[must_use]
    pub fn residency_rows(mut self, rows: usize) -> Self {
        self.cfg.residency_rows = Some(rows);
        self
    }

    /// Splits the residency budget over `slots` independent per-subarray
    /// LRU slots (see [`ServeConfig::residency_slots`]).
    #[must_use]
    pub fn residency_slots(mut self, slots: usize) -> Self {
        self.cfg.residency_slots = slots;
        self
    }

    /// Sets the rolling power window, ns.
    #[must_use]
    pub fn power_window_ns(mut self, v: f64) -> Self {
        self.cfg.power_window_ns = v;
        self
    }

    /// Caps rolling-window average power at `watts`.
    #[must_use]
    pub fn power_budget_w(mut self, watts: f64) -> Self {
        self.cfg.power_budget_w = Some(watts);
        self
    }

    /// Enables or disables the priced-batch cache (default on).
    #[must_use]
    pub fn batch_cache(mut self, v: bool) -> Self {
        self.cfg.batch_cache = v;
        self
    }

    /// Attaches a trace sink to the runtime built by
    /// [`Self::build_runtime`]. The sink observes the full serving
    /// pipeline: per-request lifecycle and batch spans here, engine
    /// launch spans, and the host fetch queue's per-bank access spans.
    /// Ignored by [`Self::build`] / [`Self::try_build`], which return
    /// the engine-independent [`ServeConfig`] only.
    #[must_use]
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Validates the configuration and builds a serving runtime over
    /// `engine`, attaching the builder's trace sink when one was set.
    ///
    /// # Errors
    ///
    /// Returns the same [`ServeConfigError`]s as [`Self::try_build`].
    ///
    /// # Panics
    ///
    /// Panics on an engine-dependent invariant violation — a power cap
    /// at or below the module's static idle floor (see
    /// [`ServeRuntime::new`]).
    pub fn try_build_runtime(self, engine: C2mEngine) -> Result<ServeRuntime, ServeConfigError> {
        let Self { cfg, trace } = self;
        cfg.validate().map_err(ServeConfigError)?;
        let mut rt = ServeRuntime::new(engine, cfg);
        if let Some(sink) = trace {
            rt = rt.with_trace(sink);
        }
        Ok(rt)
    }

    /// Validates the configuration and builds a serving runtime over
    /// `engine`, panicking on invalid input.
    ///
    /// # Panics
    ///
    /// Panics with the [`ServeConfigError`] message on any validation
    /// failure, or on the engine-dependent invariants of
    /// [`ServeRuntime::new`].
    #[must_use]
    pub fn build_runtime(self, engine: C2mEngine) -> ServeRuntime {
        match self.try_build_runtime(engine) {
            Ok(rt) => rt,
            // c2m-lint: allow(unwrap-in-lib, reason = "documented panic contract of build_runtime(); try_build_runtime is the fallible API")
            Err(e) => panic!("invalid serve configuration: {e}"),
        }
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeConfigError`] on a zero batch cap, a negative
    /// or NaN window, a zero residency budget, or a non-positive /
    /// non-finite power window — the same engine-independent invariants
    /// [`ServeRuntime::new`] asserts.
    pub fn try_build(self) -> Result<ServeConfig, ServeConfigError> {
        self.cfg.validate().map_err(ServeConfigError)?;
        Ok(self.cfg)
    }

    /// Validates and returns the configuration, panicking on invalid
    /// input.
    ///
    /// # Panics
    ///
    /// Panics with the [`ServeConfigError`] message on any validation
    /// failure — see [`Self::try_build`] for the exact conditions.
    #[must_use]
    pub fn build(self) -> ServeConfig {
        match self.try_build() {
            Ok(cfg) => cfg,
            // c2m-lint: allow(unwrap-in-lib, reason = "documented panic contract of build(); try_build is the fallible API")
            Err(e) => panic!("invalid serve configuration: {e}"),
        }
    }
}

impl ServeConfig {
    /// Starts a builder from the seed-faithful defaults.
    #[must_use]
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder::default()
    }

    /// The engine-independent invariants shared by
    /// [`ServeConfigBuilder::try_build`] and [`ServeRuntime::new`].
    fn validate(&self) -> Result<(), String> {
        if self.max_batch < 1 {
            return Err("batches hold at least one request".into());
        }
        if self.window_ns.is_nan() || self.window_ns < 0.0 {
            return Err("window must be non-negative".into());
        }
        if self.residency_rows == Some(0) {
            return Err("residency budget must be positive".into());
        }
        if self.residency_slots == 0 {
            return Err("residency slots must be positive".into());
        }
        if self.power_window_ns <= 0.0 || !self.power_window_ns.is_finite() {
            return Err("power window must be positive and finite".into());
        }
        Ok(())
    }
}

/// The serving runtime: owns a configured engine and prices request
/// traces through the admit → fetch → plan → execute pipeline.
///
/// Clones share the priced-batch cache (and, through the engine, the
/// plan/pricing cache), so clones warm each other.
#[derive(Debug, Clone)]
pub struct ServeRuntime {
    engine: C2mEngine,
    cfg: ServeConfig,
    batch_cache: Option<Arc<BatchPriceCache>>,
    trace: Option<Arc<dyn TraceSink>>,
}

/// Cumulative cache tallies at the start of a run. Subtracted from the
/// end-of-run totals so each [`ServeReport`] carries only the hits and
/// misses that run generated.
#[derive(Debug, Clone, Copy)]
struct CacheBaseline {
    batch_hits: u64,
    batch_misses: u64,
    engine: CacheCounters,
}

/// Pipeline clock state threaded through batch dispatches.
#[derive(Debug)]
struct Pipeline {
    planner_free: f64,
    engine_free: f64,
    hits: u64,
    accesses: u64,
    residency: Option<ResidencyModel>,
    /// Committed busy intervals `(exec_start, exec_done, energy_nj)`,
    /// in dispatch order — the integrand of the rolling power window.
    busy: Vec<(f64, f64, f64)>,
    /// Power governor: no dispatch may be admitted before this instant.
    defer_until: f64,
}

/// One batch's priced pipeline traversal, before commitment.
#[derive(Debug, Clone, Copy)]
struct Priced {
    fetch_done: f64,
    plan_ns: f64,
    reload_rows: usize,
    reload_ns: f64,
    reload_energy_nj: f64,
    exec_ns: f64,
    exec_energy_nj: f64,
    hits: u64,
    accesses: u64,
}

/// Average power over the rolling window `[t−window, t]`: committed
/// busy intervals (plus an optional uncommitted candidate) contribute
/// their energy pro-rata to the overlap, everything else — including
/// the pre-trace history before t = 0, when the module sat powered but
/// idle — burns the idle floor. The window is always full-width, so
/// compliance means the same thing at the start of a trace as in
/// steady state.
fn window_avg_power_w(
    busy: &[(f64, f64, f64)],
    candidate: Option<(f64, f64, f64)>,
    idle_floor_w: f64,
    window_ns: f64,
    t: f64,
) -> f64 {
    let lo = t - window_ns;
    let mut energy = 0.0;
    let mut busy_in = 0.0;
    for &(s, d, e) in busy.iter().chain(candidate.iter()) {
        let ov = (d.min(t) - s.max(lo)).max(0.0);
        if ov > 0.0 && d > s {
            energy += e * ov / (d - s);
            busy_in += ov;
        }
    }
    (energy + idle_floor_w * (window_ns - busy_in).max(0.0)) / window_ns
}

/// Min-heap key: requests ordered by arrival time, ties by id.
#[derive(Debug, Clone)]
struct ByArrival(ServeRequest);

impl PartialEq for ByArrival {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for ByArrival {}

impl PartialOrd for ByArrival {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ByArrival {
    fn cmp(&self, other: &Self) -> Ordering {
        // FCFS order reversed: BinaryHeap is a max-heap, we want the
        // earliest arrival on top.
        fcfs(&other.0, &self.0)
    }
}

/// The pending set shared by the open- and closed-loop drivers: a
/// min-heap of future arrivals (ordered by arrival time, so neither
/// loop ever re-sorts) plus the requests already arrived by the last
/// admission instant. Replaces the seed's sorted `Vec` with its
/// per-batch whole-vector re-sort and `Vec::remove` mid-scan.
#[derive(Debug, Default)]
struct PendingQueue {
    future: BinaryHeap<ByArrival>,
    ready: Vec<ServeRequest>,
}

impl PendingQueue {
    fn push(&mut self, r: ServeRequest) {
        self.future.push(ByArrival(r));
    }

    fn is_empty(&self) -> bool {
        self.future.is_empty() && self.ready.is_empty()
    }

    /// Earliest arrival over everything still pending.
    fn earliest_arrival(&self) -> f64 {
        let ready = self
            .ready
            .iter()
            .map(|r| r.arrival_ns)
            .fold(f64::INFINITY, f64::min);
        let future = self.future.peek().map_or(f64::INFINITY, |b| b.0.arrival_ns);
        ready.min(future)
    }

    /// Moves every request that has arrived by `now` into the ready set.
    fn admit_until(&mut self, now: f64) {
        while self.future.peek().is_some_and(|b| b.0.arrival_ns <= now) {
            self.ready.push(self.future.pop().expect("peeked").0);
        }
    }
}

/// `(arrival, id)` FCFS ordering.
fn fcfs(a: &ServeRequest, b: &ServeRequest) -> Ordering {
    a.arrival_ns
        .partial_cmp(&b.arrival_ns)
        .expect("finite arrivals")
        .then(a.id.cmp(&b.id))
}

impl ServeRuntime {
    /// Creates a runtime over `engine` with the given policy.
    ///
    /// # Panics
    ///
    /// Panics on a zero batch cap, negative window, zero residency
    /// budget, non-positive power window, or a power cap at or below
    /// the module's static idle floor (no schedule can comply: the
    /// ranks burn that much doing nothing).
    #[must_use]
    pub fn new(engine: C2mEngine, cfg: ServeConfig) -> Self {
        if let Err(m) = cfg.validate() {
            // c2m-lint: allow(unwrap-in-lib, reason = "documented panic contract of ServeRuntime::new; the builder path validates first")
            panic!("{m}");
        }
        if let Some(cap) = cfg.power_budget_w {
            let ecfg = engine.config();
            let floor = ecfg.energy.system_background_power_w(&ecfg.dram);
            assert!(
                cap > floor,
                "power budget {cap} W is not above the module's static idle \
                 floor {floor} W — no schedule can comply"
            );
        }
        let batch_cache = cfg
            .batch_cache
            .then(|| Arc::new(BatchPriceCache::default()));
        Self {
            engine,
            cfg,
            batch_cache,
            trace: None,
        }
    }

    /// Attaches a trace sink, threading it through every layer the
    /// runtime drives: serve-pipeline lifecycle spans here, launch
    /// spans in the owned engine, and per-bank access spans in each
    /// host fetch queue the runtime spins up. Tracing is observational
    /// only — reports are bit-identical with or without a sink.
    ///
    /// Note that under a power cap the fetch queue's *trial* clones
    /// keep the sink, so rejected governor candidates are visible in
    /// the trace as extra fetch spans — deliberately, since the point
    /// of tracing is to see what the governor actually tried.
    #[must_use]
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.engine.set_trace(Arc::clone(&sink));
        self.trace = Some(sink);
        self
    }

    /// The attached trace sink, if any.
    #[must_use]
    pub fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.trace.as_ref()
    }

    /// Static background power of the served module, W: every rank of
    /// the engine's topology burns it whether or not it computes.
    #[must_use]
    pub fn idle_floor_w(&self) -> f64 {
        let ecfg = self.engine.config();
        ecfg.energy.system_background_power_w(&ecfg.dram)
    }

    /// The engine being served.
    #[must_use]
    pub fn engine(&self) -> &C2mEngine {
        &self.engine
    }

    /// The serving policy in force.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Serves an open-loop trace (arrivals fixed in advance) and
    /// reports per-request latencies, batch records and queue depth.
    pub fn run(&self, requests: &[ServeRequest]) -> ServeReport {
        let cache_base = self.cache_baseline();
        let mut q = PendingQueue::default();
        for r in requests {
            q.push(r.clone());
        }
        let mut arrivals: Vec<f64> = requests.iter().map(|r| r.arrival_ns).collect();
        arrivals.sort_by(|a, b| a.partial_cmp(b).expect("finite arrivals"));

        let mut fetch_q = self.fetch_queue();
        let mut pipe = self.pipeline();
        let mut report = self.report_shell();
        while !q.is_empty() {
            self.admit_and_dispatch(&mut q, &mut fetch_q, &mut pipe, &mut report);
            let done = report.batches.last().expect("batch recorded").exec_done_ns;
            let arrived = arrivals.partition_point(|&a| a <= done);
            let depth = arrived - report.outcomes.len();
            self.sample_queue_depth(&mut report, done, depth);
        }
        if report.batches.len() == 1 {
            let formed = report.batches[0].formed_ns;
            let depth = arrivals.partition_point(|&a| a <= formed);
            self.backfill_formation_sample(&mut report, formed, depth);
        }
        report.host_hit_rate = hit_fraction(pipe.hits, pipe.accesses);
        self.stamp_cache_counters(&mut report, &cache_base);
        report
    }

    /// Serves closed-loop traffic: each of `cfg.clients` clients waits
    /// for its previous request to complete, thinks for
    /// `cfg.think_ns`, then issues the next, `cfg.requests_per_client`
    /// times. Queue depth is sampled over *issued* requests.
    ///
    /// # Panics
    ///
    /// Panics if the tenant list is empty.
    pub fn run_closed_loop(&self, cfg: &ClosedLoopConfig) -> ServeReport {
        assert!(!cfg.tenants.is_empty(), "at least one tenant required");
        let cache_base = self.cache_baseline();
        let mut remaining = vec![cfg.requests_per_client; cfg.clients];
        // Ids are issued sequentially, so `client_of[id]` recovers the
        // owning client without threading tuples through the batcher.
        let mut client_of: Vec<usize> = Vec::new();
        let issue = |client: usize, arrival: f64, client_of: &mut Vec<usize>| -> ServeRequest {
            let tenant = client % cfg.tenants.len();
            let spec = cfg.tenants[tenant];
            let id = client_of.len() as u64;
            client_of.push(client);
            ServeRequest {
                id,
                arrival_ns: arrival,
                tenant,
                class: spec.class,
                n: spec.n,
                x: request_input(spec.k, cfg.seed, id),
            }
        };
        // Every client fires its first request at t = 0.
        let mut q = PendingQueue::default();
        let mut issued_arrivals: Vec<f64> = Vec::new();
        for (c, rem) in remaining.iter_mut().enumerate() {
            if *rem > 0 {
                *rem -= 1;
                let r = issue(c, 0.0, &mut client_of);
                issued_arrivals.push(r.arrival_ns);
                q.push(r);
            }
        }

        let mut fetch_q = self.fetch_queue();
        let mut pipe = self.pipeline();
        let mut report = self.report_shell();
        while !q.is_empty() {
            let batch = self.admit_and_dispatch(&mut q, &mut fetch_q, &mut pipe, &mut report);
            let clients: Vec<usize> = batch.iter().map(|r| client_of[r.id as usize]).collect();
            let done = report.batches.last().expect("batch recorded").exec_done_ns;
            // Served clients think, then issue their next request.
            for &c in &clients {
                if remaining[c] > 0 {
                    remaining[c] -= 1;
                    let r = issue(c, done + cfg.think_ns, &mut client_of);
                    issued_arrivals.push(r.arrival_ns);
                    q.push(r);
                }
            }
            let arrived = issued_arrivals.iter().filter(|&&a| a <= done).count();
            let depth = arrived - report.outcomes.len();
            self.sample_queue_depth(&mut report, done, depth);
        }
        if report.batches.len() == 1 {
            let formed = report.batches[0].formed_ns;
            let depth = issued_arrivals.iter().filter(|&&a| a <= formed).count();
            self.backfill_formation_sample(&mut report, formed, depth);
        }
        report.host_hit_rate = hit_fraction(pipe.hits, pipe.accesses);
        self.stamp_cache_counters(&mut report, &cache_base);
        report
    }

    /// Books a queue-depth sample, mirroring it onto the trace's
    /// request-track counter series when a sink is attached.
    fn sample_queue_depth(&self, report: &mut ServeReport, t_ns: f64, depth: usize) {
        report.queue_depth.push(QueueSample { t_ns, depth });
        if let Some(sink) = &self.trace {
            sink.record(TraceEvent::Counter {
                t_ns,
                name: "queue_depth",
                cat: "serve",
                track: Track::serve(0),
                value: depth as f64,
            });
        }
    }

    /// A run that dispatched exactly one batch otherwise samples the
    /// queue only at that batch's completion — where the depth is
    /// already drained to the stragglers — leaving
    /// [`ServeReport::peak_queue_depth`] degenerate (it never sees the
    /// backlog the batch actually served). Prepend a sample at the
    /// formation instant, when every admitted request was queued and
    /// none had completed, so the single-batch timeline is well-defined
    /// for both the queue-depth peak and the power window it brackets.
    fn backfill_formation_sample(&self, report: &mut ServeReport, formed_ns: f64, depth: usize) {
        report.queue_depth.insert(
            0,
            QueueSample {
                t_ns: formed_ns,
                depth,
            },
        );
        if let Some(sink) = &self.trace {
            sink.record(TraceEvent::Counter {
                t_ns: formed_ns,
                name: "queue_depth",
                cat: "serve",
                track: Track::serve(0),
                value: depth as f64,
            });
        }
    }

    /// The cumulative cache tallies (priced-batch and engine
    /// plan/stream/report) right now — snapshotted at run start so a
    /// finished report can carry per-run deltas.
    fn cache_baseline(&self) -> CacheBaseline {
        CacheBaseline {
            batch_hits: self.batch_cache.as_ref().map_or(0, |c| c.hits()),
            batch_misses: self.batch_cache.as_ref().map_or(0, |c| c.misses()),
            engine: self.engine.cache_stats(),
        }
    }

    /// Stamps the cache tallies accumulated *during this run* (current
    /// cumulative totals minus the run-start `base` snapshot) into a
    /// finished report. Observational only: back-to-back runs on one
    /// runtime each report only their own hits and misses, not the
    /// runtime's lifetime totals.
    fn stamp_cache_counters(&self, report: &mut ServeReport, base: &CacheBaseline) {
        if let Some(c) = &self.batch_cache {
            report.batch_cache_hits = c.hits().saturating_sub(base.batch_hits);
            report.batch_cache_misses = c.misses().saturating_sub(base.batch_misses);
        }
        report.engine_cache = self.engine.cache_stats().delta_since(&base.engine);
    }

    /// A fresh FR-FCFS queue over the engine's host-visible banks,
    /// wired to the runtime's trace sink when one is attached.
    fn fetch_queue(&self) -> RequestQueue {
        let cfg = self.engine.config();
        let mut q = RequestQueue::new(cfg.timing, cfg.dram.banks);
        if let Some(sink) = &self.trace {
            q.set_trace(Arc::clone(sink));
        }
        q
    }

    /// Fresh pipeline clock state, with the residency tracker when the
    /// policy models one.
    fn pipeline(&self) -> Pipeline {
        Pipeline {
            planner_free: 0.0,
            engine_free: 0.0,
            hits: 0,
            accesses: 0,
            residency: self.cfg.residency_rows.map(|rows| {
                // The budget is module-wide; each slot owns an even
                // share. One slot reproduces the flat pre-SALP model.
                let slots = self.cfg.residency_slots;
                ResidencyModel::with_slots(slots, (rows / slots).max(1))
            }),
            busy: Vec::new(),
            defer_until: 0.0,
        }
    }

    /// A report shell carrying the run's energy-accounting constants.
    fn report_shell(&self) -> ServeReport {
        ServeReport {
            idle_floor_w: self.idle_floor_w(),
            power_window_ns: self.cfg.power_window_ns,
            ..ServeReport::default()
        }
    }

    /// Forms the next batch at the dispatch instant implied by `t_free`
    /// (the time the host can take a new batch): admission moves every
    /// request arrived by that instant into the ready set, the policy
    /// picks the seed among them, and same-tenant same-shape ready
    /// requests within the window of the seed's arrival join, up to the
    /// cap. Returns the batch (FCFS order) and the admission instant.
    ///
    /// Requests arriving *after* the dispatch instant are not eligible
    /// — the fix for the seed batcher's clairvoyance bug, which let a
    /// batch seeded on an idle engine coalesce requests arriving up to
    /// `window_ns` later.
    ///
    /// Returns the batch (FCFS order), the admission instant, and the
    /// id of the policy-chosen seed (the member a shrinking power
    /// governor must keep).
    fn form_batch(&self, q: &mut PendingQueue, t_free: f64) -> (Vec<ServeRequest>, f64, u64) {
        debug_assert!(!q.is_empty());
        let formed = t_free.max(q.earliest_arrival());
        q.admit_until(formed);
        debug_assert!(!q.ready.is_empty(), "admission must free a request");

        let seed_idx = self.pick_seed(&q.ready, formed);
        let seed = q.ready.swap_remove(seed_idx);
        let seed_id = seed.id;
        let mut mates: Vec<(f64, u64)> = q
            .ready
            .iter()
            .filter(|r| {
                r.tenant == seed.tenant
                    && r.n == seed.n
                    && r.k() == seed.k()
                    && r.arrival_ns <= seed.arrival_ns + self.cfg.window_ns
            })
            .map(|r| (r.arrival_ns, r.id))
            .collect();
        mates.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite arrivals")
                .then(a.1.cmp(&b.1))
        });
        mates.truncate(self.cfg.max_batch - 1);
        let ids: Vec<u64> = mates.into_iter().map(|(_, id)| id).collect();

        let mut batch = vec![seed];
        for r in std::mem::take(&mut q.ready) {
            if ids.contains(&r.id) {
                batch.push(r);
            } else {
                q.ready.push(r);
            }
        }
        batch.sort_by(fcfs);
        (batch, formed, seed_id)
    }

    /// The policy's choice of batch seed among the ready requests at
    /// admission instant `now`.
    fn pick_seed(&self, ready: &[ServeRequest], now: f64) -> usize {
        let argmin_by = |key: &dyn Fn(&ServeRequest) -> (f64, f64, u64)| -> usize {
            (0..ready.len())
                .min_by(|&a, &b| {
                    let (ka, kb) = (key(&ready[a]), key(&ready[b]));
                    ka.0.partial_cmp(&kb.0)
                        .expect("finite keys")
                        .then(ka.1.partial_cmp(&kb.1).expect("finite keys"))
                        .then(ka.2.cmp(&kb.2))
                })
                .expect("non-empty ready set")
        };
        match self.cfg.policy {
            SchedPolicy::Fifo => argmin_by(&|r| (r.arrival_ns, 0.0, r.id)),
            SchedPolicy::EarliestDeadlineFirst => {
                argmin_by(&|r| (r.deadline_ns(), r.arrival_ns, r.id))
            }
            SchedPolicy::PriorityWeighted => {
                // Starvation cap first: the oldest over-cap request wins
                // regardless of class, bounding how long high classes
                // may bypass a waiting request (mirrors the fetch
                // queue's FR-FCFS cap).
                let starving = (0..ready.len())
                    .filter(|&i| now - ready[i].arrival_ns > self.cfg.max_wait_ns)
                    .min_by(|&a, &b| fcfs(&ready[a], &ready[b]));
                starving.unwrap_or_else(|| {
                    argmin_by(&|r| (f64::from(u8::MAX - r.class.priority), r.arrival_ns, r.id))
                })
            }
        }
    }

    /// Forms and dispatches the next batch, governing admission by the
    /// power cap when one is configured. Returns the served batch.
    fn admit_and_dispatch(
        &self,
        q: &mut PendingQueue,
        fetch_q: &mut RequestQueue,
        pipe: &mut Pipeline,
        report: &mut ServeReport,
    ) -> Vec<ServeRequest> {
        let Some(cap) = self.cfg.power_budget_w else {
            // Uncapped: price against the live pipeline state directly
            // — the exact pre-governor sequence of operations.
            let (batch, formed, _) = self.form_batch(q, pipe.planner_free);
            let priced = self.price(&batch, fetch_q, &mut pipe.residency);
            self.commit(&batch, formed, &priced, pipe, report);
            return batch;
        };

        let window = self.cfg.power_window_ns;
        loop {
            let t_free = pipe.planner_free.max(pipe.defer_until);
            let (mut batch, formed, seed_id) = self.form_batch(q, t_free);
            loop {
                // Trial-price against clones: a rejected candidate must
                // not advance the fetch queue's row state or the LRU.
                let mut trial_fetch = fetch_q.clone();
                let mut trial_res = pipe.residency.clone();
                let priced = self.price(&batch, &mut trial_fetch, &mut trial_res);
                let (_, exec_start, exec_done) = self.place(&priced, formed, pipe);
                let energy = self.batch_energy_nj(&priced);
                let p = window_avg_power_w(
                    &pipe.busy,
                    Some((exec_start, exec_done, energy)),
                    self.idle_floor_w(),
                    window,
                    exec_done,
                );
                // Once the window has slid past every committed burst,
                // no amount of waiting lowers it further: a lone
                // request that still breaches runs anyway (the cap is
                // infeasible for this workload, and stalling forever
                // serves no one).
                let drained = pipe.busy.last().is_none_or(|b| exec_done - window >= b.1);
                if p <= cap || (batch.len() == 1 && drained) {
                    *fetch_q = trial_fetch;
                    pipe.residency = trial_res;
                    self.commit(&batch, formed, &priced, pipe, report);
                    return batch;
                }
                if batch.len() > 1 {
                    // Shrink: return the latest-arriving coalesced mate
                    // (never the policy-chosen seed) to the ready set.
                    let drop_idx = (0..batch.len())
                        .rev()
                        .find(|&i| batch[i].id != seed_id)
                        .expect("a batch of 2+ holds a non-seed member");
                    q.ready.push(batch.remove(drop_idx));
                    continue;
                }
                // Defer: hand the request back and retry once part of
                // the window has drained.
                q.ready.append(&mut batch);
                pipe.defer_until = formed + window / 8.0;
                break;
            }
        }
    }

    /// Prices one batch through fetch → plan → [reload] → execute
    /// against the given queue/residency state (live or trial clones).
    fn price(
        &self,
        batch: &[ServeRequest],
        fetch_q: &mut RequestQueue,
        residency: &mut Option<ResidencyModel>,
    ) -> Priced {
        debug_assert!(!batch.is_empty());
        // Host fetch: stream every request's input vector through the
        // batched FR-FCFS queue. Same-tenant requests share buffer rows,
        // so coalescing them is row-hit heavy.
        let mem: Vec<MemoryRequest> = batch.iter().flat_map(|r| self.fetch_plan(r)).collect();
        let fetch = fetch_q.run_batched(
            &mem,
            BatchWindow {
                window_ns: self.cfg.window_ns,
                max_wait_ns: self.cfg.max_wait_ns,
            },
        );
        let accesses = fetch.completions.len() as u64;
        let hits = fetch
            .completions
            .iter()
            .filter(|c| c.kind == c2m_dram::AccessKind::RowHit)
            .count() as u64;
        let fetch_done = fetch.makespan_ns();

        // The pure part of the pricing — host planning sequences and
        // the engine launch — depends only on the batch's own content,
        // so it memoises on the batch signature. The stateful parts
        // (fetch queue, residency LRU) always run live above/below.
        let pure = self.pure_price(batch);
        let plan_ns = pure.plan_seqs * self.cfg.host_ns_per_seq;

        // Tenant residency: dispatching a non-resident tenant streams
        // its mask planes back into the CIM subarrays before execution
        // — spending time *and* joules.
        let (reload_rows, reload_ns, reload_energy_nj) = match residency.as_mut() {
            Some(res) => {
                let rows = self.engine.tenant_mask_rows(batch[0].n, batch[0].k());
                let outcome = if res.slots() == 1 {
                    // The flat path, bit-for-bit the pre-SALP pricing.
                    res.touch(batch[0].tenant, rows)
                } else {
                    // Per-subarray masks: the tenant's K-slices spread
                    // over every slot; a dispatch only restreams the
                    // slots whose planes were evicted.
                    let per_slot = rows.div_ceil(res.slots());
                    let needs: Vec<(usize, usize)> =
                        (0..res.slots()).map(|s| (s, per_slot)).collect();
                    res.touch_slots(batch[0].tenant, &needs)
                };
                match outcome {
                    ResidencyOutcome::Hit => (0, 0.0, 0.0),
                    ResidencyOutcome::Reload { rows } => (
                        rows,
                        self.engine.mask_reload_ns(rows),
                        self.engine.mask_reload_energy_nj(rows),
                    ),
                }
            }
            None => (0, 0.0, 0.0),
        };

        Priced {
            fetch_done,
            plan_ns,
            reload_rows,
            reload_ns,
            reload_energy_nj,
            exec_ns: pure.exec_ns,
            exec_energy_nj: pure.exec_energy_nj,
            hits,
            accesses,
        }
    }

    /// The content-only part of a batch's pricing: the host planning
    /// sequence count and the engine launch — the seed GEMV path for a
    /// lone request (bit compatible with the paper model), the
    /// row-sharded batch entry point otherwise. Memoised on the batch
    /// signature when the priced-batch cache is enabled.
    fn pure_price(&self, batch: &[ServeRequest]) -> BatchPrice {
        let compute = || {
            // Host planning: the real IARM pass over each request's
            // doubled ternary stream (through the engine's stream
            // cache), costed per emitted sequence by the caller.
            let plan_seqs = batch
                .iter()
                .map(|r| self.engine.cached_sequences_for_doubled(&r.x) as f64)
                .sum::<f64>();
            // The launch report's ledger total carries the batch's
            // execution energy.
            let exec = if batch.len() == 1 {
                self.engine.ternary_gemv(&batch[0].x, batch[0].n)
            } else {
                let xs: Vec<&[i64]> = batch.iter().map(|r| r.x.as_slice()).collect();
                self.engine.ternary_gemv_batch(&xs, batch[0].n)
            };
            BatchPrice {
                plan_seqs,
                exec_ns: exec.elapsed_ns,
                exec_energy_nj: exec.energy_nj,
            }
        };
        match &self.batch_cache {
            Some(c) => {
                let xs: Vec<&[i64]> = batch.iter().map(|r| r.x.as_slice()).collect();
                c.price(batch[0].tenant, batch[0].n, &xs, compute)
            }
            None => compute(),
        }
    }

    /// Where a priced batch lands on the pipeline clocks:
    /// `(plan_done, exec_start, exec_done)`. `formed_ns` lower-bounds
    /// the plan start so a power-deferred dispatch actually waits.
    fn place(&self, priced: &Priced, formed_ns: f64, pipe: &Pipeline) -> (f64, f64, f64) {
        let plan_start = priced.fetch_done.max(pipe.planner_free).max(formed_ns);
        let plan_done = plan_start + priced.plan_ns;
        let exec_start = plan_done.max(pipe.engine_free);
        let exec_done = exec_start + priced.reload_ns + self.cfg.dispatch_ns + priced.exec_ns;
        (plan_done, exec_start, exec_done)
    }

    /// Energy attributed to a priced batch's busy interval, nJ: the
    /// engine launch (dynamic + all-rank background over the launch),
    /// the mask reload, and the module's background floor over the
    /// reload/dispatch overhead the launch energy does not cover.
    fn batch_energy_nj(&self, priced: &Priced) -> f64 {
        priced.exec_energy_nj
            + priced.reload_energy_nj
            + self.idle_floor_w() * (priced.reload_ns + self.cfg.dispatch_ns)
    }

    /// Commits a priced batch: advances the pipeline clocks, books the
    /// busy interval into the power ledger, samples the power timeline
    /// and records batch + outcomes.
    fn commit(
        &self,
        batch: &[ServeRequest],
        formed_ns: f64,
        priced: &Priced,
        pipe: &mut Pipeline,
        report: &mut ServeReport,
    ) {
        let (plan_done, exec_start, exec_done) = self.place(priced, formed_ns, pipe);
        pipe.engine_free = exec_done;
        pipe.planner_free = if self.cfg.async_planner {
            plan_done
        } else {
            exec_done
        };
        pipe.hits += priced.hits;
        pipe.accesses += priced.accesses;

        let energy_nj = self.batch_energy_nj(priced);
        // Intervals that ended before the window's reach contribute
        // zero overlap to every future query (commit times are
        // monotone), so drop them — the scan stays bounded by the
        // window occupancy instead of the whole dispatch history.
        let horizon = exec_done - self.cfg.power_window_ns;
        let expired = pipe.busy.partition_point(|&(_, end, _)| end <= horizon);
        pipe.busy.drain(..expired);
        pipe.busy.push((exec_start, exec_done, energy_nj));
        let power_w = window_avg_power_w(
            &pipe.busy,
            None,
            self.idle_floor_w(),
            self.cfg.power_window_ns,
            exec_done,
        );
        report.power_timeline.push(PowerSample {
            t_ns: exec_done,
            power_w,
        });

        let batch_idx = report.batches.len();
        let rec = BatchRecord {
            size: batch.len(),
            tenant: batch[0].tenant,
            formed_ns,
            fetch_done_ns: priced.fetch_done,
            plan_ns: priced.plan_ns,
            reload_rows: priced.reload_rows,
            reload_ns: priced.reload_ns,
            exec_ns: priced.exec_ns,
            exec_start_ns: exec_start,
            exec_done_ns: exec_done,
            energy_nj,
            reload_energy_nj: priced.reload_energy_nj,
        };
        if let Some(sink) = &self.trace {
            self.trace_commit(sink.as_ref(), batch, &rec, plan_done, power_w);
        }
        report.batches.push(rec);
        for r in batch {
            report.outcomes.push(RequestOutcome {
                id: r.id,
                tenant: r.tenant,
                priority: r.class.priority,
                arrival_ns: r.arrival_ns,
                deadline_ns: r.deadline_ns(),
                completion_ns: exec_done,
                batch: batch_idx,
            });
        }
    }

    /// Emits one committed batch's lifecycle onto the serve tracks:
    /// arrival/completion instants per request (tid 0), the fetch-done
    /// instant and the planning span (tid 1), and the batch's engine
    /// occupancy — reload, dispatch and execution nested under one
    /// `batch` span (tid 2) — plus the rolling-window power counter at
    /// its completion.
    fn trace_commit(
        &self,
        sink: &dyn TraceSink,
        batch: &[ServeRequest],
        rec: &BatchRecord,
        plan_done: f64,
        power_w: f64,
    ) {
        let requests = Track::serve(0);
        let planner = Track::serve(1);
        let engine = Track::serve(2);
        sink.record(TraceEvent::Instant {
            t_ns: rec.formed_ns,
            name: "batch_formed",
            cat: "serve",
            track: requests,
        });
        sink.record(TraceEvent::Instant {
            t_ns: rec.fetch_done_ns,
            name: "fetch_done",
            cat: "serve",
            track: planner,
        });
        sink.span(planner, "plan", "serve", plan_done - rec.plan_ns, plan_done);
        sink.record(TraceEvent::Begin {
            t_ns: rec.exec_start_ns,
            name: "batch",
            cat: "serve",
            track: engine,
        });
        let reload_end = rec.exec_start_ns + rec.reload_ns;
        if rec.reload_ns > 0.0 {
            sink.span(engine, "reload", "serve", rec.exec_start_ns, reload_end);
        }
        let dispatch_end = reload_end + self.cfg.dispatch_ns;
        if self.cfg.dispatch_ns > 0.0 {
            sink.span(engine, "dispatch", "serve", reload_end, dispatch_end);
        }
        sink.span(engine, "exec", "serve", dispatch_end, rec.exec_done_ns);
        sink.record(TraceEvent::End {
            t_ns: rec.exec_done_ns,
            track: engine,
        });
        sink.record(TraceEvent::Counter {
            t_ns: rec.exec_done_ns,
            name: "window_power_w",
            cat: "serve",
            track: engine,
            value: power_w,
        });
        for r in batch {
            sink.record(TraceEvent::Instant {
                t_ns: r.arrival_ns,
                name: "arrival",
                cat: "serve",
                track: requests,
            });
            sink.record(TraceEvent::Instant {
                t_ns: rec.exec_done_ns,
                name: "completion",
                cat: "serve",
                track: requests,
            });
        }
        if let Some(m) = sink.metrics() {
            m.inc("serve.batches", 1);
            m.inc("serve.requests", batch.len() as u64);
            for r in batch {
                m.observe_ns("serve.e2e_latency_ns", rec.exec_done_ns - r.arrival_ns);
            }
        }
    }

    /// The memory requests streaming one request's input vector out of
    /// the host buffer: one read per 64-byte burst, same-tenant vectors
    /// aliasing the same rows (the weights-resident tenant keeps its
    /// input buffer hot).
    fn fetch_plan(&self, r: &ServeRequest) -> Vec<MemoryRequest> {
        let dram = &self.engine.config().dram;
        let row_bytes = dram.row_bits_per_rank() / 8;
        let bank = r.tenant % dram.banks;
        let base_row = (r.tenant / dram.banks) * 64;
        let bursts = r.k().div_ceil(64).max(1);
        (0..bursts)
            .map(|b| MemoryRequest::read(r.arrival_ns, bank, base_row + (b * 64) / row_bytes))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServiceClass;
    use crate::traffic::{open_loop, OpenLoopConfig, TenantSpec};
    use c2m_core::engine::EngineConfig;

    fn engine(channels: usize) -> C2mEngine {
        let mut cfg = EngineConfig::c2m(16);
        cfg.dram.channels = channels;
        C2mEngine::builder(cfg).build()
    }

    fn trace(requests: usize, tenants: usize) -> Vec<ServeRequest> {
        open_loop(&OpenLoopConfig {
            tenants: vec![TenantSpec::new(512, 256); tenants],
            requests,
            mean_interarrival_ns: 2_000.0,
            seed: 11,
        })
    }

    fn cfg(max_batch: usize, window_ns: f64) -> ServeConfig {
        ServeConfig {
            window_ns,
            max_batch,
            ..ServeConfig::default()
        }
    }

    /// A bare request with a constant input vector (equal-cost jobs).
    fn req(id: u64, arrival_ns: f64, tenant: usize, class: ServiceClass) -> ServeRequest {
        ServeRequest {
            id,
            arrival_ns,
            tenant,
            class,
            n: 256,
            x: vec![3; 64],
        }
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let reqs = trace(40, 2);
        let rep = ServeRuntime::new(engine(1), cfg(4, 1e6)).run(&reqs);
        assert_eq!(rep.outcomes.len(), 40);
        let mut ids: Vec<u64> = rep.outcomes.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 40);
        for o in &rep.outcomes {
            assert!(o.completion_ns > o.arrival_ns, "request {}", o.id);
        }
        assert_eq!(
            rep.batches.iter().map(|b| b.size).sum::<usize>(),
            40,
            "batch sizes partition the trace"
        );
    }

    #[test]
    fn batches_respect_cap_window_and_tenant() {
        let reqs = trace(60, 2);
        let rep = ServeRuntime::new(engine(1), cfg(4, 1e6)).run(&reqs);
        assert!(rep.batches.iter().all(|b| b.size <= 4));
        assert!(rep.mean_batch_size() > 1.0, "window should coalesce");
        // Per-batch tenants are single-valued by construction: cross
        // check through outcomes.
        for (i, b) in rep.batches.iter().enumerate() {
            assert!(rep
                .outcomes
                .iter()
                .filter(|o| o.batch == i)
                .all(|o| o.tenant == b.tenant));
        }
    }

    #[test]
    fn single_batch_run_samples_the_formation_backlog() {
        // Regression: a run whose whole trace coalesces into ONE batch
        // used to sample the queue only at that batch's completion —
        // depth 0, since everyone had completed — so peak_queue_depth
        // reported an empty queue for a run that served a real backlog,
        // and the timeline gave the power window nothing to bracket.
        let reqs = [
            req(0, 0.0, 0, ServiceClass::BEST_EFFORT),
            req(1, 10.0, 0, ServiceClass::BEST_EFFORT),
            req(2, 20.0, 0, ServiceClass::BEST_EFFORT),
        ];
        let rt = ServeRuntime::new(engine(1), cfg(8, 1e6));
        // Hold admission until everyone has arrived: a queue seeded at
        // t=0 forms immediately, so replay the trace shifted to share
        // one arrival instant instead.
        let shifted: Vec<ServeRequest> = reqs
            .iter()
            .cloned()
            .map(|mut r| {
                r.arrival_ns = 0.0;
                r
            })
            .collect();
        let rep = rt.run(&shifted);
        assert_eq!(rep.batches.len(), 1, "the trace coalesces into one batch");
        assert!(
            rep.queue_depth.len() >= 2,
            "single-batch run still gets a formation sample"
        );
        assert_eq!(rep.queue_depth[0].t_ns, rep.batches[0].formed_ns);
        assert_eq!(
            rep.peak_queue_depth(),
            3,
            "the peak sees the backlog the batch served"
        );
        assert_eq!(rep.power_timeline.len(), 1);
        assert!(rep.peak_window_power_w() > 0.0);
        // Samples stay time-ordered after the front insertion.
        for w in rep.queue_depth.windows(2) {
            assert!(w[0].t_ns <= w[1].t_ns);
        }
    }

    #[test]
    fn admission_cuts_off_at_the_dispatch_instant() {
        // Regression for the clairvoyance bug: an idle engine seeds a
        // batch at t = 0; a same-tenant request arriving 500 ns later —
        // well inside the 1 ms window — must NOT be coalesced
        // retroactively. It lands in the next batch.
        let reqs = vec![
            req(0, 0.0, 0, ServiceClass::BEST_EFFORT),
            req(1, 500.0, 0, ServiceClass::BEST_EFFORT),
        ];
        let rep = ServeRuntime::new(engine(1), cfg(8, 1e6)).run(&reqs);
        assert_eq!(rep.batches.len(), 2, "late arrival lands in next batch");
        assert_eq!(rep.batches[0].size, 1);
        assert_eq!(rep.batches[0].formed_ns, 0.0);
        assert_eq!(rep.batches[1].size, 1);
        assert!(
            rep.batches[1].formed_ns >= 500.0,
            "second batch formed after the arrival it admits"
        );
        // Both arrived before the first batch finished: once the queue
        // is backlogged the SAME config does coalesce.
        let backlogged = vec![
            req(0, 0.0, 0, ServiceClass::BEST_EFFORT),
            req(1, 500.0, 0, ServiceClass::BEST_EFFORT),
            req(2, 600.0, 0, ServiceClass::BEST_EFFORT),
        ];
        let rep2 = ServeRuntime::new(engine(1), cfg(8, 1e6)).run(&backlogged);
        assert_eq!(rep2.batches.len(), 2);
        assert_eq!(rep2.batches[1].size, 2, "backlogged requests coalesce");
    }

    #[test]
    fn every_batch_admits_only_arrived_requests() {
        let reqs = trace(50, 2);
        let rep = ServeRuntime::new(engine(1), cfg(4, 1e6)).run(&reqs);
        for (i, b) in rep.batches.iter().enumerate() {
            for o in rep.outcomes.iter().filter(|o| o.batch == i) {
                assert!(
                    o.arrival_ns <= b.formed_ns,
                    "request {} (arrival {}) admitted clairvoyantly at {}",
                    o.id,
                    o.arrival_ns,
                    b.formed_ns
                );
            }
        }
    }

    #[test]
    fn batching_improves_throughput_on_single_tenant_traffic() {
        let reqs = trace(32, 1);
        let serial = ServeRuntime::new(engine(1), cfg(1, 0.0)).run(&reqs);
        let batched = ServeRuntime::new(engine(1), cfg(8, 1e9)).run(&reqs);
        assert!(
            batched.throughput_rps() > serial.throughput_rps(),
            "batched {} vs serial {}",
            batched.throughput_rps(),
            serial.throughput_rps()
        );
    }

    #[test]
    fn async_planner_is_never_slower_and_hides_plan_time() {
        let reqs = trace(32, 1);
        let sync_cfg = ServeConfig {
            host_ns_per_seq: 100.0,
            ..cfg(4, 1e9)
        };
        let async_cfg = ServeConfig {
            async_planner: true,
            ..sync_cfg.clone()
        };
        let e = engine(4);
        let sync = ServeRuntime::new(e.clone(), sync_cfg).run(&reqs);
        let asyncr = ServeRuntime::new(e, async_cfg).run(&reqs);
        assert!(
            asyncr.makespan_ns() < sync.makespan_ns(),
            "async {} vs sync {}",
            asyncr.makespan_ns(),
            sync.makespan_ns()
        );
        assert!(asyncr.mean_latency_ns() < sync.mean_latency_ns());
    }

    #[test]
    fn edf_reorders_urgent_requests_ahead() {
        // Three best-effort requests queue ahead of an urgent one under
        // FIFO; EDF pulls the urgent request forward once it arrives.
        let urgent = ServiceClass::new(1, 50_000.0);
        let reqs = vec![
            req(0, 0.0, 0, ServiceClass::BEST_EFFORT),
            req(1, 10.0, 1, ServiceClass::BEST_EFFORT),
            req(2, 20.0, 2, ServiceClass::BEST_EFFORT),
            req(3, 30.0, 3, urgent),
        ];
        let fifo = ServeRuntime::new(engine(1), cfg(1, 0.0)).run(&reqs);
        let edf = ServeRuntime::new(
            engine(1),
            ServeConfig {
                policy: SchedPolicy::EarliestDeadlineFirst,
                ..cfg(1, 0.0)
            },
        )
        .run(&reqs);
        let done = |rep: &ServeReport, id: u64| {
            rep.outcomes
                .iter()
                .find(|o| o.id == id)
                .expect("served")
                .completion_ns
        };
        assert!(
            done(&edf, 3) < done(&fifo, 3),
            "EDF must serve the urgent request earlier"
        );
        // Request 0 seeds the first batch either way (only arrival at
        // t=0); the urgent request is served second under EDF.
        assert_eq!(edf.outcomes[1].id, 3);
    }

    #[test]
    fn priority_weighted_prefers_high_class_until_the_cap() {
        let high = ServiceClass {
            priority: 5,
            deadline_ns: f64::INFINITY,
        };
        // A low-class request and a burst of high-class ones, all
        // already waiting when the engine frees up.
        let mut reqs = vec![req(0, 0.0, 0, ServiceClass::BEST_EFFORT)];
        for i in 1..12 {
            reqs.push(req(i, 0.0, 1, high));
        }
        let capped = ServeRuntime::new(
            engine(1),
            ServeConfig {
                policy: SchedPolicy::PriorityWeighted,
                max_wait_ns: 30_000.0,
                ..cfg(1, 0.0)
            },
        )
        .run(&reqs);
        let uncapped = ServeRuntime::new(
            engine(1),
            ServeConfig {
                policy: SchedPolicy::PriorityWeighted,
                max_wait_ns: f64::INFINITY,
                ..cfg(1, 0.0)
            },
        )
        .run(&reqs);
        let low = |rep: &ServeReport| {
            rep.outcomes
                .iter()
                .find(|o| o.id == 0)
                .expect("served")
                .latency_ns()
        };
        // Uncapped: the low request drains last. Capped: it is served
        // once its wait crosses the cap.
        assert!(low(&capped) < low(&uncapped));
        // High-class requests bypass the older low-class one at first.
        assert_ne!(uncapped.outcomes[1].id, 0);
    }

    #[test]
    fn residency_prices_tenant_switches() {
        // Two tenants, alternating arrivals, budget fits only one: every
        // switch reloads. The same trace with both resident never
        // reloads after the two cold loads.
        let reqs: Vec<ServeRequest> = (0..8)
            .map(|i| req(i, i as f64, (i % 2) as usize, ServiceClass::BEST_EFFORT))
            .collect();
        let e = engine(1);
        let rows = e.tenant_mask_rows(256, 64);
        let tight = ServeRuntime::new(
            e.clone(),
            ServeConfig {
                residency_rows: Some(rows),
                ..cfg(1, 0.0)
            },
        )
        .run(&reqs);
        let roomy = ServeRuntime::new(
            e.clone(),
            ServeConfig {
                residency_rows: Some(2 * rows),
                ..cfg(1, 0.0)
            },
        )
        .run(&reqs);
        let free = ServeRuntime::new(e, cfg(1, 0.0)).run(&reqs);
        assert_eq!(tight.reload_count(), 8, "every dispatch switches tenant");
        assert_eq!(roomy.reload_count(), 2, "only the two cold loads");
        assert_eq!(free.reload_count(), 0);
        assert!(tight.reload_ns_total() > roomy.reload_ns_total());
        assert!(
            tight.makespan_ns() > free.makespan_ns(),
            "reloads are on the critical path"
        );
        // Reload time never appears outside the residency-modelled runs.
        assert_eq!(free.reload_ns_total(), 0.0);
    }

    #[test]
    fn slotted_residency_reduces_to_flat_and_prices_per_slot() {
        let reqs: Vec<ServeRequest> = (0..8)
            .map(|i| req(i, i as f64, (i % 2) as usize, ServiceClass::BEST_EFFORT))
            .collect();
        let e = engine(1);
        let rows = e.tenant_mask_rows(256, 64);
        let roomy = |slots: usize| ServeConfig {
            residency_rows: Some(2 * rows),
            residency_slots: slots,
            ..cfg(1, 0.0)
        };
        // One slot is the flat pre-SALP model, bit for bit.
        let flat = ServeRuntime::new(e.clone(), roomy(1)).run(&reqs);
        assert_eq!(flat.reload_count(), 2, "only the two cold loads");
        // Four slots with the same total budget: both tenants still fit
        // every slot, so the reload *count* is unchanged; each cold
        // load's rows restream slot by slot (⌈rows/slots⌉ each), so the
        // total reload time can only round up.
        let slotted = ServeRuntime::new(e, roomy(4)).run(&reqs);
        assert_eq!(slotted.reload_count(), 2);
        assert!(slotted.reload_ns_total() >= flat.reload_ns_total());
    }

    #[test]
    fn closed_loop_serves_every_client_quota() {
        let ccfg = ClosedLoopConfig {
            tenants: vec![TenantSpec::new(512, 256)],
            clients: 4,
            requests_per_client: 5,
            think_ns: 1_000.0,
            seed: 3,
        };
        let rep = ServeRuntime::new(engine(1), cfg(4, 1e6)).run_closed_loop(&ccfg);
        assert_eq!(rep.outcomes.len(), 20);
        // Completions are strictly ordered per client: a client's next
        // request arrives only after its previous completion + think.
        for o in &rep.outcomes {
            assert!(o.completion_ns > o.arrival_ns);
        }
        assert!(rep.queue_depth.iter().all(|s| s.depth <= 4));
    }

    #[test]
    fn queue_depth_never_exceeds_outstanding_requests() {
        let reqs = trace(50, 2);
        let rep = ServeRuntime::new(engine(1), cfg(2, 5_000.0)).run(&reqs);
        assert!(rep.peak_queue_depth() <= 50);
        assert_eq!(rep.queue_depth.len(), rep.batches.len());
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_batch_cap_is_rejected() {
        let _ = ServeRuntime::new(engine(1), cfg(0, 0.0));
    }

    #[test]
    #[should_panic(expected = "residency budget")]
    fn zero_residency_budget_is_rejected() {
        let _ = ServeRuntime::new(
            engine(1),
            ServeConfig {
                residency_rows: Some(0),
                ..ServeConfig::default()
            },
        );
    }

    // ---- energy accounting and power-capped admission ----

    #[test]
    fn reports_carry_energy_and_a_power_timeline() {
        let reqs = trace(24, 1);
        let rep = ServeRuntime::new(engine(1), cfg(4, 1e6)).run(&reqs);
        assert!(rep.total_energy_nj() > 0.0);
        assert!(rep.joules_per_request() > 0.0);
        assert!(rep.idle_floor_w > 0.0);
        assert_eq!(rep.power_timeline.len(), rep.batches.len());
        for b in &rep.batches {
            assert!(b.energy_nj > 0.0, "every batch costs joules");
            assert!(b.power_w() > rep.idle_floor_w, "active power above floor");
        }
        // Every sample sits between the idle floor and the worst
        // single-batch power.
        let max_batch_w = rep
            .batches
            .iter()
            .map(BatchRecord::power_w)
            .fold(0.0, f64::max);
        for s in &rep.power_timeline {
            assert!(s.power_w >= rep.idle_floor_w * (1.0 - 1e-9));
            assert!(s.power_w <= max_batch_w * (1.0 + 1e-9));
        }
        // Single class: per-class J/request equals the overall figure.
        let j = rep.class_joules_per_request(0);
        assert!((j - rep.joules_per_request()).abs() / j < 1e-9);
    }

    #[test]
    fn residency_reloads_cost_joules_only_when_modelled() {
        let reqs: Vec<ServeRequest> = (0..6)
            .map(|i| req(i, i as f64, (i % 2) as usize, ServiceClass::BEST_EFFORT))
            .collect();
        let e = engine(1);
        let rows = e.tenant_mask_rows(256, 64);
        let tight = ServeRuntime::new(
            e.clone(),
            ServeConfig {
                residency_rows: Some(rows),
                ..cfg(1, 0.0)
            },
        )
        .run(&reqs);
        let free = ServeRuntime::new(e, cfg(1, 0.0)).run(&reqs);
        let reload_j: f64 = tight.batches.iter().map(|b| b.reload_energy_nj).sum();
        assert!(reload_j > 0.0, "thrashing tenants pay reload energy");
        assert!(free.batches.iter().all(|b| b.reload_energy_nj == 0.0));
        assert!(tight.total_energy_nj() > free.total_energy_nj());
    }

    #[test]
    fn power_cap_holds_the_window_and_trades_latency() {
        let reqs = trace(32, 1);
        for &policy in &[
            SchedPolicy::Fifo,
            SchedPolicy::EarliestDeadlineFirst,
            SchedPolicy::PriorityWeighted,
        ] {
            let base_cfg = ServeConfig {
                policy,
                ..cfg(8, 1e9)
            };
            let e = engine(1);
            let uncapped = ServeRuntime::new(e.clone(), base_cfg.clone()).run(&reqs);
            let peak = uncapped.peak_window_power_w();
            assert!(peak > uncapped.idle_floor_w);
            // A cap halfway between the idle floor and the uncapped
            // peak must bind.
            let cap = uncapped.idle_floor_w + 0.5 * (peak - uncapped.idle_floor_w);
            let capped = ServeRuntime::new(
                e,
                ServeConfig {
                    power_budget_w: Some(cap),
                    ..base_cfg
                },
            )
            .run(&reqs);
            assert!(
                capped.peak_window_power_w() <= cap * (1.0 + 1e-9),
                "{policy:?}: window peak {} exceeds cap {cap}",
                capped.peak_window_power_w()
            );
            assert!(
                capped.makespan_ns() > uncapped.makespan_ns(),
                "{policy:?}: cap compliance must cost wall-clock"
            );
            // Work is conserved: every request still completes once.
            assert_eq!(capped.outcomes.len(), reqs.len());
            let mut ids: Vec<u64> = capped.outcomes.iter().map(|o| o.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), reqs.len());
        }
    }

    #[test]
    fn power_cap_shrinks_batches_before_deferring() {
        // Backlogged single-tenant traffic coalesces to the cap when
        // unconstrained; a binding power cap must shrink batches.
        let reqs = trace(32, 1);
        let e = engine(1);
        let uncapped = ServeRuntime::new(e.clone(), cfg(8, 1e9)).run(&reqs);
        let peak = uncapped.peak_window_power_w();
        let cap = uncapped.idle_floor_w + 0.4 * (peak - uncapped.idle_floor_w);
        let capped = ServeRuntime::new(
            e,
            ServeConfig {
                power_budget_w: Some(cap),
                ..cfg(8, 1e9)
            },
        )
        .run(&reqs);
        assert!(
            capped.mean_batch_size() < uncapped.mean_batch_size(),
            "capped {} vs uncapped {}",
            capped.mean_batch_size(),
            uncapped.mean_batch_size()
        );
    }

    #[test]
    fn uncapped_config_is_unaffected_by_power_plumbing() {
        // power_budget_w: None must leave latency/throughput identical
        // to the default pipeline (the acceptance bar for the ledger
        // refactor) — trivially true here because None skips the
        // governor, but pinned so a regression screams.
        let reqs = trace(24, 2);
        let a = ServeRuntime::new(engine(1), cfg(4, 1e6)).run(&reqs);
        let b = ServeRuntime::new(
            engine(1),
            ServeConfig {
                power_budget_w: None,
                power_window_ns: 5e5,
                ..cfg(4, 1e6)
            },
        )
        .run(&reqs);
        assert_eq!(a.makespan_ns(), b.makespan_ns());
        assert_eq!(a.throughput_rps(), b.throughput_rps());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.completion_ns, y.completion_ns);
        }
    }

    #[test]
    #[should_panic(expected = "idle")]
    fn power_cap_below_the_idle_floor_is_rejected() {
        let e = engine(4);
        let floor = e
            .config()
            .energy
            .system_background_power_w(&e.config().dram);
        let _ = ServeRuntime::new(
            e,
            ServeConfig {
                power_budget_w: Some(floor * 0.5),
                ..ServeConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "power window")]
    fn non_positive_power_window_is_rejected() {
        let _ = ServeRuntime::new(
            engine(1),
            ServeConfig {
                power_window_ns: 0.0,
                ..ServeConfig::default()
            },
        );
    }

    // ---- config builder and priced-batch cache ----

    #[test]
    fn config_builder_mirrors_struct_literals() {
        let built = ServeConfig::builder()
            .window_ns(5e5)
            .max_batch(8)
            .max_wait_ns(2e6)
            .host_ns_per_seq(40.0)
            .dispatch_ns(1_500.0)
            .async_planner(true)
            .policy(SchedPolicy::EarliestDeadlineFirst)
            .residency_rows(4096)
            .residency_slots(4)
            .power_window_ns(2e6)
            .power_budget_w(12.0)
            .batch_cache(false)
            .build();
        let literal = ServeConfig {
            window_ns: 5e5,
            max_batch: 8,
            max_wait_ns: 2e6,
            host_ns_per_seq: 40.0,
            dispatch_ns: 1_500.0,
            async_planner: true,
            policy: SchedPolicy::EarliestDeadlineFirst,
            residency_rows: Some(4096),
            residency_slots: 4,
            power_window_ns: 2e6,
            power_budget_w: Some(12.0),
            batch_cache: false,
        };
        assert_eq!(format!("{built:?}"), format!("{literal:?}"));
    }

    #[test]
    fn config_builder_reports_each_validation_failure() {
        let cases: [(ServeConfigBuilder, &str); 5] = [
            (ServeConfig::builder().max_batch(0), "at least one request"),
            (ServeConfig::builder().window_ns(-1.0), "non-negative"),
            (ServeConfig::builder().residency_rows(0), "positive"),
            (ServeConfig::builder().residency_slots(0), "slots"),
            (ServeConfig::builder().power_window_ns(0.0), "power window"),
        ];
        for (builder, needle) in cases {
            let err = builder.try_build().expect_err("must be rejected");
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn batch_cache_on_and_off_serve_identically() {
        // The cache memoises only the content-pure pricing, so every
        // observable number — latencies, energy, power, batch shapes —
        // must be bit-for-bit the same with it on or off.
        let reqs = trace(48, 2);
        for channels in [1usize, 4] {
            let cached = ServeRuntime::new(engine(channels), cfg(4, 1e6)).run(&reqs);
            let uncached_cfg = ServeConfig {
                batch_cache: false,
                ..cfg(4, 1e6)
            };
            let uncached = ServeRuntime::new(engine(channels), uncached_cfg).run(&reqs);
            assert!(cached.batch_cache_hits + cached.batch_cache_misses > 0);
            assert_eq!(uncached.batch_cache_hits, 0);
            assert_eq!(uncached.batch_cache_misses, 0);
            for (a, b) in cached.outcomes.iter().zip(&uncached.outcomes) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.completion_ns.to_bits(), b.completion_ns.to_bits());
            }
            for (a, b) in cached.batches.iter().zip(&uncached.batches) {
                assert_eq!(a.size, b.size);
                assert_eq!(a.exec_ns.to_bits(), b.exec_ns.to_bits());
                assert_eq!(a.energy_nj.to_bits(), b.energy_nj.to_bits());
            }
            assert_eq!(
                cached.joules_per_request().to_bits(),
                uncached.joules_per_request().to_bits()
            );
        }
    }

    #[test]
    fn repeated_compositions_hit_the_batch_cache() {
        // Equal-cost jobs from one tenant: after the first composition
        // of each batch size is priced, repeats are hits.
        let reqs: Vec<ServeRequest> = (0..32)
            .map(|i| req(i, i as f64 * 10.0, 0, ServiceClass::BEST_EFFORT))
            .collect();
        let rep = ServeRuntime::new(engine(1), cfg(4, 1e6)).run(&reqs);
        assert!(
            rep.batch_cache_hits > 0,
            "identical compositions must hit (hits {}, misses {})",
            rep.batch_cache_hits,
            rep.batch_cache_misses
        );
        assert!(rep.batch_cache_hit_rate() > 0.5);
        // The engine-level caches warm too: the plan pass and the exec
        // pass share per-request stream entries, and a repeated launch
        // short-circuits at the whole-report tier.
        assert!(rep.engine_cache.stream_hits + rep.engine_cache.report_hits > 0);
    }

    #[test]
    fn reports_carry_per_run_cache_deltas() {
        // Back-to-back runs on one runtime: the second report must carry
        // only its own tallies, not the runtime's cumulative totals.
        let reqs = trace(24, 2);
        let rt = ServeRuntime::new(engine(1), cfg(4, 1e6));
        let first = rt.run(&reqs);
        let second = rt.run(&reqs);
        assert!(first.batch_cache_misses > 0, "cold run must miss");
        // Run 2 re-prices the same compositions against the warm cache:
        // all hits, and crucially *no* carried-over misses from run 1.
        assert_eq!(second.batch_cache_misses, 0);
        assert!(second.batch_cache_hits > 0);
        assert_eq!(
            second.engine_cache.plan_misses
                + second.engine_cache.stream_misses
                + second.engine_cache.report_misses,
            0,
            "run-2 engine tallies must not include run-1 misses"
        );
        // The deltas partition the cumulative totals.
        let total = rt.engine().cache_stats();
        let mut sum = first.engine_cache;
        sum.merge(&second.engine_cache);
        assert_eq!(sum, total);
    }
}
