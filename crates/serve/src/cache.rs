//! Priced-batch cache for the serving runtime.
//!
//! The runtime's `price()` pass decomposes per batch into a *stateful*
//! part (the FR-FCFS fetch queue and the residency LRU, whose answers
//! depend on every batch dispatched before) and a *pure* part: host
//! planning cost and engine execution, which depend only on the batch's
//! own content — tenant, output width and the member input vectors.
//! This cache memoises the pure part, keyed on the batch signature.
//!
//! Exactness contract: entries are indexed by a 64-bit FNV-1a hash of
//! the signature, but a lookup only *hits* after comparing the stored
//! signature for full equality (tenant, shape, mate count and every
//! input value). A hash collision therefore degrades to a recompute —
//! it can never return another batch's pricing — and cached serving is
//! bit-for-bit identical to uncached serving.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What identifies a batch's pure pricing: tenant, output width and the
/// member input vectors in dispatch (FCFS) order. The mate count is the
/// vector length, so a lone request (priced through the seed GEMV path)
/// can never alias a one-member batch of a different composition.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BatchSig {
    tenant: usize,
    n: usize,
    xs: Vec<Box<[i64]>>,
}

/// The memoised pure pricing of one batch composition.
#[derive(Debug, Clone, Copy)]
pub struct BatchPrice {
    /// Σ over members of the planned sequence count, as the f64 sum the
    /// runtime folds (multiply by `host_ns_per_seq` for plan time).
    pub plan_seqs: f64,
    /// Engine launch latency, ns.
    pub exec_ns: f64,
    /// Engine launch energy, nJ.
    pub exec_energy_nj: f64,
}

#[derive(Debug)]
struct Entry {
    sig: BatchSig,
    price: BatchPrice,
}

/// Content-addressed map from batch signature to pure pricing, with
/// hit/miss tallies. Shared across runtime clones (each [`crate::ServeRuntime`]
/// holds it behind an `Arc`); interior mutability keeps the pricing
/// path `&self`.
#[derive(Debug)]
pub struct BatchPriceCache {
    entries: Mutex<BTreeMap<u64, Entry>>,
    max_entries: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for BatchPriceCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_MAX_ENTRIES)
    }
}

impl BatchPriceCache {
    /// Default entry cap; on overflow the map is cleared wholesale
    /// (epoch eviction — O(1) amortised, trivially correct, and a full
    /// epoch is far larger than any steady-state working set).
    pub const DEFAULT_MAX_ENTRIES: usize = 4096;

    /// A cache bounded to `max_entries` compositions.
    #[must_use]
    pub fn new(max_entries: usize) -> Self {
        Self {
            entries: Mutex::new(BTreeMap::new()),
            max_entries: max_entries.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The memoised pricing for the batch `(tenant, n, xs)`, computing
    /// and storing it on a miss. `xs` must be in dispatch (FCFS) order —
    /// the same order the uncached pricing folds.
    pub fn price(
        &self,
        tenant: usize,
        n: usize,
        xs: &[&[i64]],
        compute: impl FnOnce() -> BatchPrice,
    ) -> BatchPrice {
        let index = Self::index(tenant, n, xs);
        {
            let entries = self.entries.lock().expect("batch cache poisoned");
            if let Some(e) = entries.get(&index) {
                // Equality gate: the hash only indexes; content decides.
                if e.sig.tenant == tenant
                    && e.sig.n == n
                    && e.sig.xs.len() == xs.len()
                    && e.sig.xs.iter().zip(xs).all(|(a, b)| a.as_ref() == *b)
                {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return e.price;
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let price = compute();
        let sig = BatchSig {
            tenant,
            n,
            xs: xs.iter().map(|x| Box::from(*x)).collect(),
        };
        let mut entries = self.entries.lock().expect("batch cache poisoned");
        if entries.len() >= self.max_entries {
            entries.clear();
        }
        entries.insert(index, Entry { sig, price });
        price
    }

    /// FNV-1a over the signature: tenant, n, mate count, then each
    /// member's length and values.
    fn index(tenant: usize, n: usize, xs: &[&[i64]]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(tenant as u64);
        mix(n as u64);
        mix(xs.len() as u64);
        for x in xs {
            mix(x.len() as u64);
            for &v in *x {
                mix(v as u64);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn price(v: f64) -> BatchPrice {
        BatchPrice {
            plan_seqs: v,
            exec_ns: 2.0 * v,
            exec_energy_nj: 3.0 * v,
        }
    }

    #[test]
    fn hits_only_on_identical_composition() {
        let c = BatchPriceCache::default();
        let a: &[i64] = &[1, 2, 3];
        let b: &[i64] = &[1, 2, 4];
        let first = c.price(0, 64, &[a, b], || price(1.0));
        assert_eq!(c.misses(), 1);
        let again = c.price(0, 64, &[a, b], || unreachable!("must hit"));
        assert_eq!(c.hits(), 1);
        assert_eq!(first.exec_ns, again.exec_ns);
        // Different tenant, width, order or membership all miss.
        let _ = c.price(1, 64, &[a, b], || price(2.0));
        let _ = c.price(0, 32, &[a, b], || price(3.0));
        let _ = c.price(0, 64, &[b, a], || price(4.0));
        let _ = c.price(0, 64, &[a], || price(5.0));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 5);
    }

    #[test]
    fn epoch_eviction_bounds_the_map() {
        let c = BatchPriceCache::new(4);
        for i in 0..20i64 {
            let x = [i];
            let xs: &[&[i64]] = &[&x];
            let _ = c.price(0, 8, xs, || price(i as f64));
        }
        assert_eq!(c.misses(), 20);
        assert!(c.entries.lock().unwrap().len() <= 4);
    }
}
