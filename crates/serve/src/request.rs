//! Serving-layer request types: what the multi-tenant ingest layer
//! accepts and what the runtime batches.

use c2m_core::engine::doubled_ternary;
use serde::{Deserialize, Serialize};

/// One inference request: a ternary GEMV `y = x · Z_t` against the
/// weight matrix of tenant `t`.
///
/// Requests carry their own input vector so the runtime can run the
/// real host-side planning pass (digit unpacking + IARM) per request —
/// the same exactness contract as the engine's kernel methods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Unique request id (assigned by the traffic generator).
    pub id: u64,
    /// Arrival time at the serving front end, ns.
    pub arrival_ns: f64,
    /// Owning tenant: selects the resident weight matrix. Requests of
    /// the same tenant are row hits on each other — they share mask
    /// planes and input-buffer rows, so the batcher may coalesce them.
    pub tenant: usize,
    /// Output width N of the tenant's weight matrix.
    pub n: usize,
    /// The input vector (length K).
    pub x: Vec<i64>,
}

impl ServeRequest {
    /// Inner dimension K of this request.
    #[must_use]
    pub fn k(&self) -> usize {
        self.x.len()
    }

    /// The doubled ternary command stream (`x` then `−x`): the +1-plane
    /// accumulation pass followed by the −1-plane subtraction pass,
    /// built by the engine's canonical
    /// [`doubled_ternary`](c2m_core::engine::doubled_ternary) so the
    /// serving path can never diverge from the kernel paths.
    #[must_use]
    pub fn ternary_stream(&self) -> Vec<i64> {
        doubled_ternary(&self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ternary_stream_doubles_and_negates() {
        let r = ServeRequest {
            id: 0,
            arrival_ns: 0.0,
            tenant: 0,
            n: 4,
            x: vec![1, -2, 3],
        };
        assert_eq!(r.k(), 3);
        assert_eq!(r.ternary_stream(), vec![1, -2, 3, -1, 2, -3]);
    }
}
