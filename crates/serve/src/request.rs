//! Serving-layer request types: what the multi-tenant ingest layer
//! accepts and what the runtime batches.

use c2m_core::engine::doubled_ternary;
use serde::{Deserialize, Serialize};

/// SLO class of a request: how urgent it is and how important its
/// tenant is. Set per tenant in [`crate::traffic::TenantSpec`] and
/// consumed by the admission scheduler's pluggable policies
/// ([`crate::runtime::SchedPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceClass {
    /// Scheduling weight: higher wins under
    /// [`SchedPolicy::PriorityWeighted`](crate::runtime::SchedPolicy).
    pub priority: u8,
    /// Relative deadline, ns after arrival. `f64::INFINITY` means
    /// best-effort (never counted as missed).
    pub deadline_ns: f64,
}

impl ServiceClass {
    /// Best-effort: priority 0, no deadline.
    pub const BEST_EFFORT: Self = Self {
        priority: 0,
        deadline_ns: f64::INFINITY,
    };

    /// A class with `priority` and a relative `deadline_ns`.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or NaN deadline.
    #[must_use]
    pub fn new(priority: u8, deadline_ns: f64) -> Self {
        assert!(deadline_ns > 0.0, "deadline must be positive");
        Self {
            priority,
            deadline_ns,
        }
    }
}

impl Default for ServiceClass {
    /// Best-effort.
    fn default() -> Self {
        Self::BEST_EFFORT
    }
}

/// One inference request: a ternary GEMV `y = x · Z_t` against the
/// weight matrix of tenant `t`.
///
/// Requests carry their own input vector so the runtime can run the
/// real host-side planning pass (digit unpacking + IARM) per request —
/// the same exactness contract as the engine's kernel methods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Unique request id (assigned by the traffic generator).
    pub id: u64,
    /// Arrival time at the serving front end, ns.
    pub arrival_ns: f64,
    /// Owning tenant: selects the resident weight matrix. Requests of
    /// the same tenant are row hits on each other — they share mask
    /// planes and input-buffer rows, so the batcher may coalesce them.
    pub tenant: usize,
    /// SLO class (inherited from the tenant's spec).
    pub class: ServiceClass,
    /// Output width N of the tenant's weight matrix.
    pub n: usize,
    /// The input vector (length K).
    pub x: Vec<i64>,
}

impl ServeRequest {
    /// Inner dimension K of this request.
    #[must_use]
    pub fn k(&self) -> usize {
        self.x.len()
    }

    /// Absolute deadline, ns (`+∞` for best-effort requests).
    #[must_use]
    pub fn deadline_ns(&self) -> f64 {
        self.arrival_ns + self.class.deadline_ns
    }

    /// The doubled ternary command stream (`x` then `−x`): the +1-plane
    /// accumulation pass followed by the −1-plane subtraction pass,
    /// built by the engine's canonical
    /// [`doubled_ternary`](c2m_core::engine::doubled_ternary) so the
    /// serving path can never diverge from the kernel paths.
    #[must_use]
    pub fn ternary_stream(&self) -> Vec<i64> {
        doubled_ternary(&self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ternary_stream_doubles_and_negates() {
        let r = ServeRequest {
            id: 0,
            arrival_ns: 0.0,
            tenant: 0,
            class: ServiceClass::BEST_EFFORT,
            n: 4,
            x: vec![1, -2, 3],
        };
        assert_eq!(r.k(), 3);
        assert_eq!(r.ternary_stream(), vec![1, -2, 3, -1, 2, -3]);
        assert_eq!(r.deadline_ns(), f64::INFINITY);
    }

    #[test]
    fn deadlines_are_arrival_relative() {
        let r = ServeRequest {
            id: 1,
            arrival_ns: 500.0,
            tenant: 0,
            class: ServiceClass::new(3, 1_000.0),
            n: 4,
            x: vec![1],
        };
        assert_eq!(r.deadline_ns(), 1_500.0);
        assert_eq!(r.class.priority, 3);
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn non_positive_deadline_is_rejected() {
        let _ = ServiceClass::new(1, 0.0);
    }
}
