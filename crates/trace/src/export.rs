//! Chrome-trace/Perfetto JSON export and validation.
//!
//! The export format is the Chrome trace-event JSON that Perfetto's
//! legacy importer reads: an object with a `traceEvents` array whose
//! entries carry `ph` (`"B"`/`"E"` span pairs, `"i"` instants, `"C"`
//! counters, `"M"` metadata), `ts` in microseconds, and `pid`/`tid`
//! selecting the track. [`process_label`] and the exporter's
//! thread-name metadata decode the [`Track`] encodings so the Perfetto
//! UI shows e.g. `dram / ch0 rk1 sa3` instead of raw ids.

use crate::event::{TraceEvent, Track, PID_CORE, PID_DRAM, PID_SERVE};
use serde::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Human label for a layer pid (`"dram"` / `"core"` / `"serve"`).
#[must_use]
pub fn process_label(pid: u32) -> &'static str {
    match pid {
        PID_DRAM => "dram",
        PID_CORE => "core",
        PID_SERVE => "serve",
        _ => "other",
    }
}

/// Human label for a track within its layer.
fn thread_label(track: Track) -> String {
    match track.pid {
        PID_DRAM => {
            if track.is_fetch_lane() {
                format!("fetch bank {}", track.tid & 0x00FF_FFFF)
            } else {
                let (c, r, s) = track.dram_lane_parts();
                format!("ch{c} rk{r} sa{s}")
            }
        }
        PID_CORE => {
            if track.tid == 0 {
                "launch".to_string()
            } else {
                format!("channel {}", track.tid - 1)
            }
        }
        PID_SERVE => match track.tid {
            0 => "requests".to_string(),
            1 => "planner".to_string(),
            2 => "engine".to_string(),
            t => format!("serve {t}"),
        },
        _ => format!("tid {}", track.tid),
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// `ts` is microseconds in the Chrome trace format; events carry ns.
fn ts_us(t_ns: f64) -> Value {
    Value::Float(t_ns / 1000.0)
}

fn track_fields(track: Track) -> [(&'static str, Value); 2] {
    [
        ("pid", Value::Int(i128::from(track.pid))),
        ("tid", Value::Int(i128::from(track.tid))),
    ]
}

/// Exports recorded events as Chrome-trace/Perfetto JSON.
///
/// The output is always well-formed even when the recording ring
/// evicted events mid-span: orphaned `End`s (whose `Begin` was evicted)
/// are dropped, and any still-open `Begin` gets a synthetic `End` at
/// the latest timestamp seen on its track. Metadata events name every
/// process (layer) and thread (lane) present.
#[must_use]
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    // Per-track open-span depth (with last timestamp) for balancing.
    let mut depth: BTreeMap<Track, (usize, f64)> = BTreeMap::new();
    let mut out: Vec<Value> = Vec::new();

    // Metadata: name processes and threads up front.
    let mut pids: Vec<u32> = events.iter().map(|e| e.track().pid).collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in &pids {
        out.push(obj(vec![
            ("name", Value::Str("process_name".to_string())),
            ("ph", Value::Str("M".to_string())),
            ("pid", Value::Int(i128::from(*pid))),
            ("tid", Value::Int(0)),
            (
                "args",
                obj(vec![("name", Value::Str(process_label(*pid).to_string()))]),
            ),
        ]));
    }
    let mut tracks: Vec<Track> = events.iter().map(TraceEvent::track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for track in &tracks {
        out.push(obj(vec![
            ("name", Value::Str("thread_name".to_string())),
            ("ph", Value::Str("M".to_string())),
            ("pid", Value::Int(i128::from(track.pid))),
            ("tid", Value::Int(i128::from(track.tid))),
            (
                "args",
                obj(vec![("name", Value::Str(thread_label(*track)))]),
            ),
        ]));
    }

    for ev in events {
        let track = ev.track();
        let entry = depth.entry(track).or_insert((0, f64::NEG_INFINITY));
        entry.1 = entry.1.max(ev.t_ns());
        match *ev {
            TraceEvent::Begin {
                t_ns, name, cat, ..
            } => {
                entry.0 += 1;
                let mut fields = vec![
                    ("name", Value::Str(name.to_string())),
                    ("cat", Value::Str(cat.to_string())),
                    ("ph", Value::Str("B".to_string())),
                    ("ts", ts_us(t_ns)),
                ];
                fields.extend(track_fields(track));
                out.push(obj(fields));
            }
            TraceEvent::End { t_ns, .. } => {
                if entry.0 == 0 {
                    continue; // orphaned by ring eviction — drop
                }
                entry.0 -= 1;
                let mut fields = vec![("ph", Value::Str("E".to_string())), ("ts", ts_us(t_ns))];
                fields.extend(track_fields(track));
                out.push(obj(fields));
            }
            TraceEvent::Instant {
                t_ns, name, cat, ..
            } => {
                let mut fields = vec![
                    ("name", Value::Str(name.to_string())),
                    ("cat", Value::Str(cat.to_string())),
                    ("ph", Value::Str("i".to_string())),
                    ("s", Value::Str("t".to_string())),
                    ("ts", ts_us(t_ns)),
                ];
                fields.extend(track_fields(track));
                out.push(obj(fields));
            }
            TraceEvent::Counter {
                t_ns,
                name,
                cat,
                value,
                ..
            } => {
                let mut fields = vec![
                    ("name", Value::Str(name.to_string())),
                    ("cat", Value::Str(cat.to_string())),
                    ("ph", Value::Str("C".to_string())),
                    ("ts", ts_us(t_ns)),
                ];
                fields.extend(track_fields(track));
                fields.push(("args", obj(vec![(name, Value::Float(value))])));
                out.push(obj(fields));
            }
        }
    }

    // Close any spans left open (their End was evicted or never
    // recorded) at the last timestamp seen on the track.
    for (track, (open, last_t)) in &depth {
        for _ in 0..*open {
            let mut fields = vec![("ph", Value::Str("E".to_string())), ("ts", ts_us(*last_t))];
            fields.extend(track_fields(*track));
            out.push(obj(fields));
        }
    }

    let top = obj(vec![
        ("traceEvents", Value::Array(out)),
        ("displayTimeUnit", Value::Str("ns".to_string())),
    ]);
    serde_json::to_string(&top).expect("chrome trace serialises")
}

/// What [`validate_chrome_trace`] found in a valid trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCheck {
    /// Non-metadata events in `traceEvents`.
    pub events: usize,
    /// Balanced begin/end span pairs.
    pub spans: usize,
    /// Distinct `(pid, tid)` tracks carrying events.
    pub tracks: usize,
    /// Distinct categories seen, sorted (e.g. `["core", "dram", "serve"]`).
    pub cats: Vec<String>,
}

fn field<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn int_field(fields: &[(String, Value)], key: &str) -> Option<i128> {
    match field(fields, key)? {
        Value::Int(v) => Some(*v),
        _ => None,
    }
}

fn str_field<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a str> {
    match field(fields, key)? {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn num_field(fields: &[(String, Value)], key: &str) -> Option<f64> {
    match field(fields, key)? {
        Value::Float(v) => Some(*v),
        Value::Int(v) => Some(*v as f64),
        _ => None,
    }
}

/// Parses and structurally validates a Chrome-trace JSON string.
///
/// Checks: the document parses, has a `traceEvents` array, every event
/// carries the fields its phase requires (`ts`/`pid`/`tid` everywhere,
/// `name`+`cat` on begins/instants/counters, an `args` object on
/// counters), and begin/end pairs balance on every `(pid, tid)` track.
/// This is what the CI smoke job and `c2m trace --check` run.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate_chrome_trace(json: &str) -> Result<TraceCheck, String> {
    let doc = serde_json::from_str(json).map_err(|e| format!("trace does not parse: {e:?}"))?;
    let Value::Object(top) = doc else {
        return Err("top level is not an object".to_string());
    };
    let Some(Value::Array(events)) = field(&top, "traceEvents") else {
        return Err("missing traceEvents array".to_string());
    };

    let mut depth: BTreeMap<(i128, i128), usize> = BTreeMap::new();
    let mut track_set: BTreeSet<(i128, i128)> = BTreeSet::new();
    let mut cats: Vec<String> = Vec::new();
    let mut counted = 0usize;
    let mut spans = 0usize;

    for (i, ev) in events.iter().enumerate() {
        let Value::Object(fields) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let Some(ph) = str_field(fields, "ph") else {
            return Err(format!("event {i} has no ph"));
        };
        let pid =
            int_field(fields, "pid").ok_or_else(|| format!("event {i} has no integer pid"))?;
        let tid =
            int_field(fields, "tid").ok_or_else(|| format!("event {i} has no integer tid"))?;
        if ph == "M" {
            continue; // metadata: no ts, not a track event
        }
        if num_field(fields, "ts").is_none() {
            return Err(format!("event {i} (ph {ph}) has no numeric ts"));
        }
        counted += 1;
        track_set.insert((pid, tid));
        if let Some(cat) = str_field(fields, "cat") {
            if !cats.iter().any(|c| c == cat) {
                cats.push(cat.to_string());
            }
        }
        match ph {
            "B" => {
                if str_field(fields, "name").is_none() || str_field(fields, "cat").is_none() {
                    return Err(format!("B event {i} missing name/cat"));
                }
                *depth.entry((pid, tid)).or_insert(0) += 1;
            }
            "E" => {
                let d = depth.entry((pid, tid)).or_insert(0);
                if *d == 0 {
                    return Err(format!(
                        "E event {i} on track ({pid},{tid}) has no open span"
                    ));
                }
                *d -= 1;
                spans += 1;
            }
            "i" | "I" => {
                if str_field(fields, "name").is_none() {
                    return Err(format!("instant event {i} missing name"));
                }
            }
            "C" => {
                if str_field(fields, "name").is_none() {
                    return Err(format!("C event {i} missing name"));
                }
                match field(fields, "args") {
                    Some(Value::Object(_)) => {}
                    _ => return Err(format!("C event {i} missing args object")),
                }
            }
            other => return Err(format!("event {i} has unknown ph {other:?}")),
        }
    }

    for ((pid, tid), d) in &depth {
        if *d != 0 {
            return Err(format!(
                "track ({pid},{tid}) ends with {d} unclosed span(s)"
            ));
        }
    }

    cats.sort();
    Ok(TraceCheck {
        events: counted,
        spans,
        tracks: track_set.len(),
        cats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{RecordingSink, TraceSink};

    fn sample_sink() -> RecordingSink {
        let sink = RecordingSink::new(64);
        sink.span(Track::dram_lane(0, 0, 0), "Aap", "dram", 0.0, 10.0);
        sink.record(TraceEvent::Instant {
            t_ns: 4.0,
            name: "gate_stall",
            cat: "dram",
            track: Track::dram_lane(0, 0, 1),
        });
        sink.span(Track::core(0), "launch", "core", 0.0, 100.0);
        sink.record(TraceEvent::Counter {
            t_ns: 50.0,
            name: "queue_depth",
            cat: "serve",
            track: Track::serve(0),
            value: 3.0,
        });
        sink
    }

    #[test]
    fn export_round_trips_through_validator() {
        let json = sample_sink().chrome_trace_json();
        let check = validate_chrome_trace(&json).expect("exported trace validates");
        assert_eq!(check.spans, 2);
        assert_eq!(check.cats, vec!["core", "dram", "serve"]);
        assert!(check.tracks >= 4);
        assert!(check.events >= 6);
    }

    #[test]
    fn orphan_end_is_dropped_and_open_begin_is_closed() {
        let events = vec![
            // Orphan end: its begin was evicted from the ring.
            TraceEvent::End {
                t_ns: 1.0,
                track: Track::core(0),
            },
            TraceEvent::Begin {
                t_ns: 2.0,
                name: "launch",
                cat: "core",
                track: Track::core(0),
            },
            // No matching end — the exporter must synthesise one.
            TraceEvent::Instant {
                t_ns: 9.0,
                name: "tick",
                cat: "core",
                track: Track::core(0),
            },
        ];
        let json = chrome_trace_json(&events);
        let check = validate_chrome_trace(&json).expect("balanced after repair");
        assert_eq!(check.spans, 1);
    }

    #[test]
    fn validator_rejects_unbalanced_trace() {
        let json = r#"{"traceEvents":[
            {"name":"x","cat":"core","ph":"B","ts":0.0,"pid":2,"tid":0}
        ]}"#;
        let err = validate_chrome_trace(json).unwrap_err();
        assert!(err.contains("unclosed"), "err = {err}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":[{"ph":"B"}]}"#).is_err());
    }

    #[test]
    fn process_labels() {
        assert_eq!(process_label(PID_DRAM), "dram");
        assert_eq!(process_label(PID_CORE), "core");
        assert_eq!(process_label(PID_SERVE), "serve");
        assert_eq!(process_label(99), "other");
    }
}
