//! Zero-cost structured tracing + metrics for the Count2Multiply stack.
//!
//! The execution layers (`c2m_dram` schedulers, the `c2m_core` engine,
//! the `c2m_serve` runtime) compute detailed per-command / per-shard /
//! per-request timelines and, until this crate, threw them away: the
//! only visibility into a run was the end-of-run aggregate. This crate
//! provides the instrumentation substrate they thread events through:
//!
//! * [`TraceEvent`] — typed, allocation-free events: span begin/end
//!   with a category and a [`Track`] (Perfetto pid/tid), instant
//!   events, and numeric counter samples.
//! * [`TraceSink`] — the hook trait. Hot paths hold an
//!   `Option<Arc<dyn TraceSink>>`; the disabled (`None`) path performs
//!   no allocation and no arithmetic, so untraced runs are bit-for-bit
//!   identical to builds with no hooks at all. [`NullSink`] is the
//!   explicit do-nothing sink; [`RecordingSink`] keeps a bounded ring
//!   buffer of events plus a [`MetricsRegistry`].
//! * [`MetricsRegistry`] — named monotonic counters and log₂-bucketed
//!   latency histograms ([`LogHistogram`]), exported as flat JSON.
//! * [`chrome_trace_json`] — Chrome-trace/Perfetto JSON export
//!   (`traceEvents` array, pid/tid = layer/lane tracks), and
//!   [`validate_chrome_trace`] — the parser/balance checker the CI
//!   smoke job and the `c2m trace --check` subcommand run.
//!
//! Track conventions (see [`Track`]): pid [`PID_DRAM`] carries
//! per-(channel, rank, subarray) command lanes and per-bank host-fetch
//! lanes, pid [`PID_CORE`] carries engine launches (one launch track
//! plus one track per channel), pid [`PID_SERVE`] carries the serving
//! pipeline (requests / planner / engine tracks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod metrics;
mod sink;

pub use event::{TraceEvent, Track, PID_CORE, PID_DRAM, PID_SERVE};
pub use export::{chrome_trace_json, process_label, validate_chrome_trace, TraceCheck};
pub use metrics::{HistogramSummary, LogHistogram, MetricsRegistry, MetricsSnapshot};
pub use sink::{NullSink, RecordingSink, TraceSink};
