//! Typed trace events and track identities.

/// Perfetto process id for the DRAM layer (command schedulers and the
/// host fetch queue).
pub const PID_DRAM: u32 = 1;
/// Perfetto process id for the core layer (engine launches).
pub const PID_CORE: u32 = 2;
/// Perfetto process id for the serving layer (request pipeline).
pub const PID_SERVE: u32 = 3;

/// A timeline track: the Perfetto `(pid, tid)` pair an event lands on.
///
/// The pid selects the execution layer ([`PID_DRAM`] / [`PID_CORE`] /
/// [`PID_SERVE`]); the tid encodes the lane within it. The constructors
/// own the encodings so emitters and the exporter's track labels agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Track {
    /// Perfetto process id — the execution layer.
    pub pid: u32,
    /// Perfetto thread id — the lane within the layer.
    pub tid: u32,
}

/// Tid bit marking a DRAM host-fetch bank lane (vs a command lane).
const FETCH_LANE: u32 = 0x0100_0000;

impl Track {
    /// An arbitrary track.
    #[must_use]
    pub const fn new(pid: u32, tid: u32) -> Self {
        Self { pid, tid }
    }

    /// The command lane of `(channel, rank, subarray)` on the DRAM pid:
    /// one track per SALP stream gate lane of a
    /// [`ChannelScheduler`](https://docs.rs/c2m_dram).
    #[must_use]
    pub const fn dram_lane(channel: u32, rank: u32, subarray: u32) -> Self {
        Self::new(PID_DRAM, (channel << 16) | (rank << 8) | subarray)
    }

    /// The host-fetch lane of one bank of the FR-FCFS request queue.
    #[must_use]
    pub const fn dram_fetch(bank: u32) -> Self {
        Self::new(PID_DRAM, FETCH_LANE | bank)
    }

    /// A core-layer track: tid 0 is the launch track (launch spans,
    /// merge rounds, cache counters); tid `1 + c` is channel `c`'s
    /// shard-execution track.
    #[must_use]
    pub const fn core(tid: u32) -> Self {
        Self::new(PID_CORE, tid)
    }

    /// A serve-layer track: tid 0 = requests (arrival/completion
    /// instants, queue-depth counter), tid 1 = planner (fetch + plan),
    /// tid 2 = engine (reload / dispatch / exec spans, power counter).
    #[must_use]
    pub const fn serve(tid: u32) -> Self {
        Self::new(PID_SERVE, tid)
    }

    /// Whether this is a DRAM host-fetch lane (vs a command lane).
    #[must_use]
    pub const fn is_fetch_lane(self) -> bool {
        self.pid == PID_DRAM && self.tid & FETCH_LANE != 0
    }

    /// Decodes a DRAM command lane tid into `(channel, rank, subarray)`.
    #[must_use]
    pub const fn dram_lane_parts(self) -> (u32, u32, u32) {
        (self.tid >> 16, (self.tid >> 8) & 0xFF, self.tid & 0xFF)
    }
}

/// One structured trace event. All payloads are `Copy` (`&'static str`
/// names, numeric fields), so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A span opens on `track` at `t_ns`. Spans on one track must nest:
    /// emitters record begin/end pairs back-to-back (via
    /// [`TraceSink::span`](crate::TraceSink::span)) with
    /// non-overlapping or properly contained intervals.
    Begin {
        /// Start instant, ns.
        t_ns: f64,
        /// Span name (static — recording stays allocation-free).
        name: &'static str,
        /// Category: the emitting layer (`"dram"` / `"core"` / `"serve"`).
        cat: &'static str,
        /// Timeline track.
        track: Track,
    },
    /// The innermost open span on `track` closes at `t_ns`.
    End {
        /// End instant, ns.
        t_ns: f64,
        /// Timeline track.
        track: Track,
    },
    /// A point event (e.g. a gate stall, a request arrival).
    Instant {
        /// Instant, ns.
        t_ns: f64,
        /// Event name.
        name: &'static str,
        /// Category: the emitting layer.
        cat: &'static str,
        /// Timeline track.
        track: Track,
    },
    /// A numeric counter sample (e.g. queue depth, cache hit tallies).
    Counter {
        /// Sample instant, ns.
        t_ns: f64,
        /// Counter series name.
        name: &'static str,
        /// Category: the emitting layer.
        cat: &'static str,
        /// Timeline track.
        track: Track,
        /// Sampled value.
        value: f64,
    },
}

impl TraceEvent {
    /// The event's timestamp, ns.
    #[must_use]
    pub fn t_ns(&self) -> f64 {
        match self {
            Self::Begin { t_ns, .. }
            | Self::End { t_ns, .. }
            | Self::Instant { t_ns, .. }
            | Self::Counter { t_ns, .. } => *t_ns,
        }
    }

    /// The track the event lands on.
    #[must_use]
    pub fn track(&self) -> Track {
        match self {
            Self::Begin { track, .. }
            | Self::End { track, .. }
            | Self::Instant { track, .. }
            | Self::Counter { track, .. } => *track,
        }
    }

    /// The event's category, if it carries one (`End` does not).
    #[must_use]
    pub fn cat(&self) -> Option<&'static str> {
        match self {
            Self::Begin { cat, .. } | Self::Instant { cat, .. } | Self::Counter { cat, .. } => {
                Some(cat)
            }
            Self::End { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_encodings_round_trip() {
        let lane = Track::dram_lane(3, 2, 7);
        assert_eq!(lane.dram_lane_parts(), (3, 2, 7));
        assert!(!lane.is_fetch_lane());
        assert!(Track::dram_fetch(5).is_fetch_lane());
        assert_eq!(Track::core(0).pid, PID_CORE);
        assert_eq!(Track::serve(2).tid, 2);
    }

    #[test]
    fn event_accessors() {
        let ev = TraceEvent::Counter {
            t_ns: 12.5,
            name: "queue_depth",
            cat: "serve",
            track: Track::serve(0),
            value: 4.0,
        };
        assert_eq!(ev.t_ns(), 12.5);
        assert_eq!(ev.track(), Track::serve(0));
        assert_eq!(ev.cat(), Some("serve"));
        let end = TraceEvent::End {
            t_ns: 1.0,
            track: Track::core(0),
        };
        assert_eq!(end.cat(), None);
    }
}
