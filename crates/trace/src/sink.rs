//! Trace sinks: the hook trait, the no-op sink and the bounded
//! recording sink.

use crate::event::{TraceEvent, Track};
use crate::metrics::MetricsRegistry;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// The hook the execution layers call into.
///
/// Hot paths hold an `Option<Arc<dyn TraceSink>>` and guard every
/// emission with the `Option`, so the disabled path is a single branch
/// — no allocation, no event construction, no arithmetic that could
/// perturb pricing. Implementations must be `Send + Sync`: the engine's
/// parallel shard pricing and shared serve runtimes record from
/// multiple threads.
pub trait TraceSink: fmt::Debug + Send + Sync {
    /// Records one event. Implementations must not block for long —
    /// emitters call this inside scheduling loops.
    fn record(&self, ev: TraceEvent);

    /// Records a complete `[t0_ns, t1_ns]` span as a begin/end pair.
    /// [`RecordingSink`] overrides this to push both events under one
    /// lock so ring eviction can never split the pair.
    fn span(&self, track: Track, name: &'static str, cat: &'static str, t0_ns: f64, t1_ns: f64) {
        self.record(TraceEvent::Begin {
            t_ns: t0_ns,
            name,
            cat,
            track,
        });
        self.record(TraceEvent::End { t_ns: t1_ns, track });
    }

    /// The sink's metrics registry, when it keeps one. Emitters bump
    /// counters/histograms only when this returns `Some`.
    fn metrics(&self) -> Option<&MetricsRegistry> {
        None
    }
}

/// The explicit do-nothing sink: every event is discarded.
///
/// Attaching a `NullSink` must leave every report bit-for-bit identical
/// to attaching no sink at all (property-tested in the workspace's
/// trace-invariance suite) — emitters pass values *into* the sink and
/// never read anything back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _ev: TraceEvent) {}

    fn span(&self, _track: Track, _name: &'static str, _cat: &'static str, _t0: f64, _t1: f64) {}
}

/// Ring state behind the [`RecordingSink`] lock.
#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded in-memory event recorder with an attached
/// [`MetricsRegistry`].
///
/// Events land in a ring buffer of at most `capacity` entries; when the
/// ring is full the *oldest* events are evicted (and tallied in
/// [`Self::dropped`]), so a long run keeps its most recent window.
/// Span begin/end pairs are pushed under one lock and the exporter
/// drops any orphaned ends left by eviction, so an exported trace
/// always has balanced spans per track.
#[derive(Debug)]
pub struct RecordingSink {
    capacity: usize,
    ring: Mutex<Ring>,
    metrics: MetricsRegistry,
}

impl Default for RecordingSink {
    /// A ring of 2¹⁸ events (~16 MB worst case) — enough for every
    /// bench sweep's traced run.
    fn default() -> Self {
        Self::new(1 << 18)
    }
}

impl RecordingSink {
    /// A recorder keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a recording sink needs room for events");
        Self {
            capacity,
            ring: Mutex::new(Ring::default()),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring poisoned").events.len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted so far because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("trace ring poisoned").dropped
    }

    /// A snapshot of the recorded events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .expect("trace ring poisoned")
            .events
            .iter()
            .copied()
            .collect()
    }

    /// The attached metrics registry (also reachable via
    /// [`TraceSink::metrics`]).
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Exports the recorded events as Chrome-trace/Perfetto JSON.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        crate::export::chrome_trace_json(&self.events())
    }

    /// Exports the metrics registry as flat pretty-printed JSON.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.metrics.to_json()
    }

    fn push_all(&self, evs: &[TraceEvent]) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        for &ev in evs {
            if ring.events.len() == self.capacity {
                ring.events.pop_front();
                ring.dropped += 1;
            }
            ring.events.push_back(ev);
        }
    }
}

impl TraceSink for RecordingSink {
    fn record(&self, ev: TraceEvent) {
        self.push_all(&[ev]);
    }

    fn span(&self, track: Track, name: &'static str, cat: &'static str, t0_ns: f64, t1_ns: f64) {
        self.push_all(&[
            TraceEvent::Begin {
                t_ns: t0_ns,
                name,
                cat,
                track,
            },
            TraceEvent::End { t_ns: t1_ns, track },
        ]);
    }

    fn metrics(&self) -> Option<&MetricsRegistry> {
        Some(&self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant(t: f64) -> TraceEvent {
        TraceEvent::Instant {
            t_ns: t,
            name: "tick",
            cat: "test",
            track: Track::core(0),
        }
    }

    #[test]
    fn records_in_order() {
        let sink = RecordingSink::new(8);
        sink.record(instant(1.0));
        sink.span(Track::core(0), "work", "test", 2.0, 3.0);
        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].t_ns(), 1.0);
        assert!(matches!(evs[1], TraceEvent::Begin { .. }));
        assert!(matches!(evs[2], TraceEvent::End { .. }));
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let sink = RecordingSink::new(4);
        for i in 0..10 {
            sink.record(instant(f64::from(i)));
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].t_ns(), 6.0, "oldest events evicted first");
        assert_eq!(sink.dropped(), 6);
    }

    #[test]
    fn null_sink_discards_everything() {
        let sink = NullSink;
        sink.record(instant(1.0));
        sink.span(Track::serve(0), "x", "test", 0.0, 1.0);
        assert!(sink.metrics().is_none());
    }

    #[test]
    fn recording_sink_exposes_metrics() {
        let sink = RecordingSink::default();
        let m = TraceSink::metrics(&sink).expect("recording sink keeps metrics");
        m.inc("events", 3);
        assert_eq!(sink.registry().counter_value("events"), 3);
    }
}
